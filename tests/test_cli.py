"""Unit tests for the command-line interface (repro.cli)."""

import io
import json

import pytest

from repro.cli import build_parser, main
from repro.export import SCHEMA_VERSION
from repro.graphs.generators import planted_nuclei
from repro.graphs.io import write_edge_list


@pytest.fixture()
def graph_file(tmp_path):
    path = tmp_path / "graph.txt"
    write_edge_list(planted_nuclei([6, 5, 4], bridge=True), str(path))
    return str(path)


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestDecompose:
    def test_from_file(self, graph_file):
        code, text = run(["decompose", graph_file, "--r", "2", "--s", "3"])
        assert code == 0
        assert "max core 4" in text
        assert "hierarchy" in text

    def test_from_dataset(self):
        code, text = run(["decompose", "--dataset", "dblp",
                          "--scale", "0.08", "--r", "1", "--s", "2"])
        assert code == 0
        assert "(1,2) nucleus decomposition" in text

    def test_approx_flag(self, graph_file):
        code, text = run(["decompose", graph_file, "--approx",
                          "--delta", "0.5"])
        assert code == 0
        assert "approximate" in text

    def test_method_selection(self, graph_file):
        code, text = run(["decompose", graph_file, "--method", "anh-te"])
        assert code == 0
        assert "anh-te" in text

    def test_requires_exactly_one_input(self, graph_file):
        code, _ = run(["decompose"])
        assert code == 2
        code, _ = run(["decompose", graph_file, "--dataset", "dblp"])
        assert code == 2

    def test_missing_file(self):
        code, _ = run(["decompose", "/nonexistent/graph.txt"])
        assert code == 2


class TestNuclei:
    def test_cut_at_level(self, graph_file):
        code, text = run(["nuclei", graph_file, "--level", "4"])
        assert code == 0
        assert "nuclei at level 4" in text
        assert "[6 vertices]" in text  # the K6

    def test_densest_listing(self, graph_file):
        code, text = run(["nuclei", graph_file, "--top", "2"])
        assert code == 0
        assert "densest nuclei" in text
        assert "1.000" in text  # planted cliques have density 1


class TestExport:
    def test_json_to_stdout(self, graph_file):
        code, text = run(["export", graph_file, "--format", "json"])
        assert code == 0
        doc = json.loads(text)
        assert doc["schema_version"] == SCHEMA_VERSION

    def test_dot_to_file(self, graph_file, tmp_path):
        out_path = tmp_path / "tree.dot"
        code, text = run(["export", graph_file, "--format", "dot",
                          "-o", str(out_path)])
        assert code == 0
        assert "wrote dot" in text
        assert out_path.read_text().startswith("digraph")


class TestVerify:
    def test_verify_passes(self, graph_file):
        code, text = run(["verify", graph_file, "--r", "2", "--s", "3"])
        assert code == 0
        assert "PASSED" in text

    def test_verify_approx(self, graph_file):
        code, text = run(["verify", graph_file, "--approx", "--delta", "1"])
        assert code == 0
        assert "bound" in text


class TestDatasets:
    def test_listing(self):
        code, text = run(["datasets", "--scale", "0.05"])
        assert code == 0
        for name in ("amazon", "friendster"):
            assert name in text


@pytest.fixture(scope="module")
def artifact_file(tmp_path_factory):
    """A (2,3) artifact of the planted graph, built through the CLI."""
    directory = tmp_path_factory.mktemp("cli-store")
    graph_path = directory / "graph.txt"
    write_edge_list(planted_nuclei([6, 5, 4], bridge=True), str(graph_path))
    artifact_path = directory / "planted.nda"
    code, text = run(["store", "build", str(graph_path),
                      "--r", "2", "--s", "3", "-o", str(artifact_path)])
    assert code == 0 and "wrote" in text
    return str(artifact_path)


class TestStore:
    def test_build_reports_summary(self, artifact_file):
        # the fixture already asserts the build; check the file exists
        import os
        assert os.path.getsize(artifact_file) > 0

    def test_info_text(self, artifact_file):
        code, text = run(["store", "info", artifact_file])
        assert code == 0
        assert "(2,3) artifact" in text
        assert "n_nuclei" in text

    def test_info_json(self, artifact_file):
        code, text = run(["store", "info", artifact_file,
                          "--format", "json", "--verify"])
        assert code == 0
        doc = json.loads(text)
        assert doc["meta"]["r"] == 2 and doc["meta"]["s"] == 3
        assert doc["verified"] is True
        assert doc["stats"]["n_nuclei"] == 3
        assert [c["name"] for c in doc["columns"]]

    def test_info_verify_text(self, artifact_file):
        code, text = run(["store", "info", artifact_file, "--verify"])
        assert code == 0
        assert "payload checksum: OK" in text

    def test_info_rejects_non_artifact(self, graph_file, capsys):
        code, _ = run(["store", "info", graph_file])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestQueryLocal:
    def test_community_text(self, artifact_file):
        code, text = run(["query", "--artifact", artifact_file,
                          "--op", "community", "--vertices", "0,5"])
        assert code == 0
        assert "level" in text and "density" in text

    def test_community_json(self, artifact_file):
        code, text = run(["query", "--artifact", artifact_file,
                          "--op", "community", "--vertices", "0,5",
                          "--format", "json"])
        assert code == 0
        doc = json.loads(text)
        assert doc["found"] is True
        assert doc["community"]["vertices"] == [0, 1, 2, 3, 4, 5]

    def test_not_found_exits_one(self, artifact_file):
        # K6 and K5 share no nucleus at level >= 1 (bridge edges only)
        code, text = run(["query", "--artifact", artifact_file,
                          "--op", "community", "--vertices", "0,6"])
        assert code == 1
        assert "no matching community" in text

    def test_membership_and_coreness(self, artifact_file):
        code, text = run(["query", "--artifact", artifact_file,
                          "--op", "membership", "--vertex", "0"])
        assert code == 0
        code, text = run(["query", "--artifact", artifact_file,
                          "--op", "coreness", "--clique", "0,1"])
        assert code == 0
        assert "core 4" in text

    def test_top_k_densest(self, artifact_file):
        code, text = run(["query", "--artifact", artifact_file,
                          "--op", "top_k_densest", "--k", "2",
                          "--min-vertices", "4"])
        assert code == 0
        assert "1.000" in text  # planted cliques have density 1

    def test_url_xor_artifact_enforced(self, artifact_file, capsys):
        code, _ = run(["query", "--op", "membership", "--vertex", "0"])
        assert code == 2
        code, _ = run(["query", "--artifact", artifact_file,
                       "--url", "http://127.0.0.1:1", "--op", "membership",
                       "--vertex", "0"])
        assert code == 2
        assert "exactly one" in capsys.readouterr().err

    def test_stats_requires_url(self, artifact_file, capsys):
        code, _ = run(["query", "--artifact", artifact_file, "--op", "stats"])
        assert code == 2
        assert "requires --url" in capsys.readouterr().err

    def test_bad_vertex_list_exits_two(self, artifact_file, capsys):
        code, _ = run(["query", "--artifact", artifact_file,
                       "--op", "community", "--vertices", "a,b"])
        assert code == 2
        assert "comma-separated integers" in capsys.readouterr().err

    def test_missing_artifact_exits_two(self, tmp_path, capsys):
        code, _ = run(["query", "--artifact", str(tmp_path / "nope.nda"),
                       "--op", "membership", "--vertex", "0"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_unreachable_server_exits_two(self, capsys):
        code, _ = run(["query", "--url", "http://127.0.0.1:1",
                       "--op", "health"])
        assert code == 2
        assert "cannot reach" in capsys.readouterr().err

    def test_malformed_url_exits_two(self, capsys):
        code, _ = run(["query", "--url", "", "--op", "health"])
        assert code == 2
        assert "invalid --url" in capsys.readouterr().err


class TestServe:
    @pytest.fixture(scope="class")
    def served_url(self, artifact_file):
        import re
        import subprocess
        import sys
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--artifact", artifact_file, "--port", "0"],
            stdout=subprocess.PIPE, text=True)
        try:
            line = proc.stdout.readline()
            match = re.search(r"http://[\d.]+:\d+", line)
            assert match, f"no URL in serve banner: {line!r}"
            yield match.group(0)
        finally:
            proc.terminate()
            proc.wait(timeout=10)

    def test_health_over_http(self, served_url):
        code, text = run(["query", "--url", served_url, "--op", "health"])
        assert code == 0
        assert json.loads(text)["ok"] is True

    def test_query_over_http_matches_local(self, served_url, artifact_file):
        code_http, text_http = run(
            ["query", "--url", served_url, "--op", "community",
             "--vertices", "0,5", "--format", "json"])
        code_local, text_local = run(
            ["query", "--artifact", artifact_file, "--op", "community",
             "--vertices", "0,5", "--format", "json"])
        assert code_http == code_local == 0
        assert json.loads(text_http) == json.loads(text_local)

    def test_stats_over_http(self, served_url):
        code, text = run(["query", "--url", served_url, "--op", "stats"])
        assert code == 0
        doc = json.loads(text)
        assert "endpoints" in doc and "cache" in doc


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_module_entry_point(self, graph_file):
        import subprocess
        import sys
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "decompose", graph_file],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0
        assert "nucleus decomposition" in proc.stdout
