"""Legacy setup shim.

The metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works on minimal offline environments whose setuptools
cannot build PEP 660 editable wheels (no ``wheel`` package available).
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("Parallel algorithms for hierarchical nucleus decomposition "
                 "(SIGMOD 2024 reproduction)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.9",
    install_requires=["numpy>=1.20"],
)
