"""Unit tests for SNAP edge-list IO."""

import io

import pytest

from repro.errors import GraphFormatError
from repro.graphs.generators import erdos_renyi
from repro.graphs.io import graph_from_string, read_edge_list, write_edge_list


class TestRead:
    def test_basic_parse(self):
        g = graph_from_string("0 1\n1 2\n")
        assert g.n == 3 and g.m == 2

    def test_comments_and_blank_lines(self):
        g = graph_from_string("# SNAP header\n% other comment\n\n0 1\n")
        assert g.m == 1

    def test_duplicate_and_reverse_edges_merge(self):
        g = graph_from_string("0 1\n1 0\n0 1\n")
        assert g.m == 1

    def test_directed_rejection_mode(self):
        with pytest.raises(GraphFormatError):
            read_edge_list(io.StringIO("0 1\n1 0\n"), directed_ok=False)

    def test_self_loops_skipped(self):
        g = graph_from_string("0 0\n0 1\n")
        assert g.m == 1

    def test_sparse_integer_labels_densified_in_order(self):
        g = graph_from_string("100 7\n7 1000\n")
        # numeric labels keep numeric order: 7 -> 0, 100 -> 1, 1000 -> 2
        assert g.n == 3
        assert g.has_edge(1, 0) and g.has_edge(0, 2)

    def test_non_numeric_labels(self):
        g = graph_from_string("alice bob\nbob carol\n")
        assert g.n == 3 and g.m == 2

    def test_malformed_line(self):
        with pytest.raises(GraphFormatError):
            graph_from_string("0\n")

    def test_extra_columns_tolerated(self):
        # SNAP sometimes ships weighted lists; extra columns are ignored.
        g = graph_from_string("0 1 0.5\n")
        assert g.m == 1

    def test_empty_input(self):
        g = graph_from_string("")
        assert g.n == 0 and g.m == 0


class TestWrite:
    def test_round_trip_in_memory(self):
        g = erdos_renyi(40, 0.15, seed=8)
        buf = io.StringIO()
        write_edge_list(g, buf)
        back = read_edge_list(io.StringIO(buf.getvalue()))
        assert back.m == g.m
        assert set(back.edges()) == set(g.edges())

    def test_round_trip_via_file(self, tmp_path):
        g = erdos_renyi(30, 0.2, seed=3)
        path = tmp_path / "graph.txt"
        write_edge_list(g, str(path), header=True)
        back = read_edge_list(str(path), name="reloaded")
        assert back.name == "reloaded"
        assert set(back.edges()) == set(g.edges())

    def test_header_content(self):
        g = erdos_renyi(10, 0.3, seed=1, name="demo")
        buf = io.StringIO()
        write_edge_list(g, buf)
        text = buf.getvalue()
        assert text.startswith(f"# Nodes: {g.n} Edges: {g.m}")
        assert "demo" in text

    def test_no_header(self):
        g = erdos_renyi(10, 0.3, seed=1)
        buf = io.StringIO()
        write_edge_list(g, buf, header=False)
        assert not buf.getvalue().startswith("#")


class TestGzip:
    def test_round_trip_gzip(self, tmp_path):
        from repro.graphs.generators import erdos_renyi
        g = erdos_renyi(30, 0.2, seed=13)
        path = tmp_path / "graph.txt.gz"
        write_edge_list(g, str(path))
        import gzip
        with gzip.open(str(path), "rt") as handle:
            assert handle.readline().startswith("#")
        back = read_edge_list(str(path))
        assert set(back.edges()) == set(g.edges())
