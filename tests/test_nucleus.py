"""Unit + property tests for exact nucleus peeling (ARB-NUCLEUS)."""

from math import comb

import pytest
from hypothesis import given, settings, strategies as st

from conftest import RS_PAIRS
from repro.baselines.kcore import core_numbers
from repro.baselines.ktruss import truss_core_numbers
from repro.baselines.naive_hierarchy import sequential_coreness
from repro.core.nucleus import arb_nucleus, peel_exact, prepare
from repro.errors import ParameterError
from repro.graphs.generators import (erdos_renyi, planted_nuclei,
                                     random_bipartite_like)
from repro.graphs.graph import Graph
from repro.parallel.counters import WorkSpanCounter


class TestKnownAnswers:
    def test_complete_graph_truss(self):
        # Every edge of K_n is in n-2 triangles and the graph is one
        # nucleus: all (2,3) core numbers equal n-2.
        res = arb_nucleus(Graph.complete(6), 2, 3)
        assert res.core == [4.0] * 15
        assert res.k_max == 4
        assert res.rho == 1

    def test_planted_cliques_have_closed_form_cores(self, planted):
        # Blocks K6, K5, K4 with bridges: (2,3) cores are 4, 3, 2; the
        # bridge edges are in no triangle (core 0).
        prep = prepare(planted, 2, 3)
        res = peel_exact(prep.incidence)
        by_clique = {prep.index.clique_of(i): res.core[i]
                     for i in range(prep.n_r)}
        for a in range(6):
            for b in range(a + 1, 6):
                assert by_clique[(a, b)] == 4
        for a in range(6, 11):
            for b in range(a + 1, 11):
                assert by_clique[(a, b)] == 3
        assert by_clique[(0, 6)] == 0  # bridge

    def test_triangle_free_graph_is_all_zero(self):
        g = random_bipartite_like(8, 8, 0.4, seed=1)
        res = arb_nucleus(g, 2, 3)
        assert all(c == 0 for c in res.core)
        assert res.n_s == 0

    def test_empty_graph(self):
        res = arb_nucleus(Graph.empty(5), 1, 2)
        assert res.core == [0.0] * 5
        assert res.k_max == 0

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            arb_nucleus(Graph.empty(2), 2, 2)
        with pytest.raises(ParameterError):
            arb_nucleus(Graph.empty(2), 0, 2)


class TestOracleAgreement:
    def test_12_matches_classic_kcore(self):
        g = erdos_renyi(60, 0.15, seed=3)
        prep = prepare(g, 1, 2)
        res = peel_exact(prep.incidence)
        classic = core_numbers(g)
        for rid in range(prep.n_r):
            (v,) = prep.index.clique_of(rid)
            assert res.core[rid] == classic[v]

    def test_12_matches_networkx(self):
        import networkx as nx
        g = erdos_renyi(60, 0.15, seed=5)
        prep = prepare(g, 1, 2)
        res = peel_exact(prep.incidence)
        nxg = nx.Graph(list(g.edges()))
        nxg.add_nodes_from(range(g.n))
        expected = nx.core_number(nxg)
        for rid in range(prep.n_r):
            (v,) = prep.index.clique_of(rid)
            assert res.core[rid] == expected[v]

    def test_23_matches_classic_ktruss(self):
        g = erdos_renyi(30, 0.3, seed=7)
        prep = prepare(g, 2, 3)
        res = peel_exact(prep.incidence)
        classic = truss_core_numbers(g)
        for rid in range(prep.n_r):
            edge = prep.index.clique_of(rid)
            assert res.core[rid] == classic[edge]

    @settings(deadline=None, max_examples=20)
    @given(st.sets(st.tuples(st.integers(0, 13), st.integers(0, 13)),
                   max_size=50),
           st.sampled_from(RS_PAIRS))
    def test_batch_peeling_equals_one_at_a_time(self, pairs, rs):
        """The parallel batch peel must equal the textbook sequential peel."""
        r, s = rs
        g = Graph(14, [(u, v) for u, v in pairs if u != v])
        prep = prepare(g, r, s)
        if prep.n_r == 0:
            return
        assert peel_exact(prep.incidence).core == \
            sequential_coreness(prep.incidence)

    def test_strategies_produce_identical_cores(self):
        g = erdos_renyi(25, 0.35, seed=8)
        for r, s in [(1, 2), (2, 3), (2, 4), (3, 4)]:
            a = arb_nucleus(g, r, s, strategy="materialized")
            b = arb_nucleus(g, r, s, strategy="reenum")
            assert a.core == b.core


class TestStructuralProperties:
    @settings(deadline=None, max_examples=15)
    @given(st.sets(st.tuples(st.integers(0, 12), st.integers(0, 12)),
                   max_size=45),
           st.sampled_from([(1, 2), (2, 3), (2, 4)]))
    def test_core_bounded_by_degree_and_counts(self, pairs, rs):
        r, s = rs
        g = Graph(13, [(u, v) for u, v in pairs if u != v])
        prep = prepare(g, r, s)
        if prep.n_r == 0:
            return
        degrees = prep.incidence.initial_degrees()
        res = peel_exact(prep.incidence)
        for rid in range(prep.n_r):
            assert 0 <= res.core[rid] <= degrees[rid]
        assert res.k_max <= max(degrees, default=0)
        # rho: at least one round per distinct positive core value
        assert res.rho >= len({c for c in res.core})

    def test_rho_and_k_relationship(self):
        g = planted_nuclei([5, 5, 5], backbone_p=0.1, seed=2)
        res = arb_nucleus(g, 2, 3)
        assert res.k_max <= res.rho <= res.n_r

    def test_core_out_filled_in_place(self):
        g = Graph.complete(4)
        prep = prepare(g, 2, 3)
        sink = [99.0] * prep.n_r
        res = peel_exact(prep.incidence, core_out=sink)
        assert sink == res.core
        assert res.core is sink

    def test_core_out_wrong_length_rejected(self):
        prep = prepare(Graph.complete(4), 2, 3)
        with pytest.raises(ParameterError):
            peel_exact(prep.incidence, core_out=[0.0])

    def test_work_span_metered(self):
        c = WorkSpanCounter()
        arb_nucleus(erdos_renyi(30, 0.3, seed=1), 2, 3, counter=c)
        assert c.work > 0 and c.span > 0

    def test_link_called_only_with_final_cores(self):
        """The Algorithm 3 call discipline: both cores final at link time."""
        g = erdos_renyi(20, 0.4, seed=9)
        prep = prepare(g, 2, 3)
        reference = peel_exact(prep.incidence).core
        live = [0.0] * prep.n_r
        seen = []

        def link(early, late):
            # Both entries must already hold their final values.
            assert live[early] == reference[early]
            assert live[late] == reference[late]
            assert live[early] <= live[late]
            seen.append((early, late))

        peel_exact(prep.incidence, link=link, core_out=live)
        assert seen  # links actually happened

    def test_every_adjacent_pair_linked_at_least_once(self):
        g = erdos_renyi(15, 0.5, seed=10)
        prep = prepare(g, 2, 3)
        expected_pairs = set()
        for members in prep.incidence.iter_s_cliques():
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    expected_pairs.add((min(a, b), max(a, b)))
        linked = set()
        peel_exact(prep.incidence,
                   link=lambda a, b: linked.add((min(a, b), max(a, b))))
        assert linked == expected_pairs
