"""Synthetic stand-ins for the paper's SNAP input graphs (Table 1).

The paper evaluates on seven SNAP [37] graphs, up to friendster's 1.8
billion edges. Those inputs are not redistributable here and far exceed a
pure-Python budget, so this registry provides deterministic synthetic
stand-ins with matched structural *character* at laptop scale (see
DESIGN.md Section 2 for why this substitution preserves the experiments'
shape):

=============  =======================  ==========================================
stand-in       generator                rationale
=============  =======================  ==========================================
amazon         watts-strogatz           co-purchase: high local clustering, low
                                        hub skew, small max core
dblp           powerlaw-cluster (hi p)  collaboration: cliques from co-authorship
youtube        powerlaw-cluster (lo p)  social, sparse clustering, heavy tail
skitter        rmat                     internet topology: strong degree skew
livejournal    powerlaw-cluster         large social network, moderate clustering
orkut          powerlaw-cluster (dense) dense social network, deep cores
friendster     barabasi-albert          the scale outlier; sparse, huge
=============  =======================  ==========================================

Every dataset accepts a ``scale`` factor multiplying its vertex count, so
tests run on tiny instances of the same families the benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..errors import ParameterError
from . import generators
from .graph import Graph


@dataclass(frozen=True)
class DatasetSpec:
    """One stand-in: name, the paper's true size, and a builder."""

    name: str
    paper_n: int
    paper_m: int
    build: Callable[[float], Graph]
    description: str


def _amazon(scale: float) -> Graph:
    n = max(16, int(900 * scale))
    return generators.watts_strogatz(n, k_each_side=3, p_rewire=0.08,
                                     seed=11, name="amazon")


def _dblp(scale: float) -> Graph:
    n = max(16, int(800 * scale))
    return generators.powerlaw_cluster(n, m_attach=5, p_triangle=0.95,
                                       seed=23, name="dblp")


def _youtube(scale: float) -> Graph:
    n = max(16, int(1600 * scale))
    base = generators.powerlaw_cluster(n, m_attach=3, p_triangle=0.4,
                                       seed=37)
    # Real social networks carry dense communities that pure preferential
    # attachment lacks; a few overlaid groups give youtube its deep,
    # multi-level nucleus hierarchy (cf. the paper's Figure 10).
    sizes = [max(4, n // 60), max(4, n // 80), max(3, n // 100),
             max(3, n // 130), max(3, n // 160)]
    return generators.with_planted_communities(base, sizes, p_in=0.6,
                                               seed=38, name="youtube")


def _skitter(scale: float) -> Graph:
    import math
    target = max(64, int(1800 * scale))
    log_scale = max(6, int(math.ceil(math.log2(target))))
    g = generators.rmat(scale=log_scale, edge_factor=4, seed=41,
                        name="skitter")
    return g


def _livejournal(scale: float) -> Graph:
    n = max(16, int(2000 * scale))
    return generators.powerlaw_cluster(n, m_attach=5, p_triangle=0.55,
                                       seed=53, name="livejournal")


def _orkut(scale: float) -> Graph:
    n = max(16, int(1200 * scale))
    return generators.powerlaw_cluster(n, m_attach=7, p_triangle=0.6,
                                       seed=67, name="orkut")


def _friendster(scale: float) -> Graph:
    n = max(16, int(4000 * scale))
    return generators.barabasi_albert(n, m_attach=4, seed=79,
                                      name="friendster")


_REGISTRY: Dict[str, DatasetSpec] = {
    spec.name: spec for spec in [
        DatasetSpec("amazon", 334_863, 925_872, _amazon,
                    "co-purchase network stand-in (high clustering)"),
        DatasetSpec("dblp", 317_080, 1_049_866, _dblp,
                    "collaboration network stand-in (clique-rich)"),
        DatasetSpec("youtube", 1_134_890, 2_987_624, _youtube,
                    "social network stand-in (sparse clustering)"),
        DatasetSpec("skitter", 1_696_415, 11_095_298, _skitter,
                    "internet topology stand-in (degree skew)"),
        DatasetSpec("livejournal", 3_997_962, 34_681_189, _livejournal,
                    "large social network stand-in"),
        DatasetSpec("orkut", 3_072_441, 117_185_083, _orkut,
                    "dense social network stand-in (deep cores)"),
        DatasetSpec("friendster", 65_608_366, 1_806_067_135, _friendster,
                    "very large sparse network stand-in"),
    ]
}

#: Names in the paper's Table 1 order.
DATASET_NAMES: Tuple[str, ...] = ("amazon", "dblp", "youtube", "skitter",
                                  "livejournal", "orkut", "friendster")


def dataset_names() -> List[str]:
    """The registry's dataset names in Table 1 order."""
    return list(DATASET_NAMES)


def dataset_spec(name: str) -> DatasetSpec:
    if name not in _REGISTRY:
        raise ParameterError(
            f"unknown dataset {name!r}; available: {sorted(_REGISTRY)}")
    return _REGISTRY[name]


def load_dataset(name: str, scale: float = 1.0) -> Graph:
    """Build a stand-in graph. ``scale`` multiplies the vertex count.

    ``scale=1.0`` is benchmark scale (10^3-10^4 vertices); tests typically
    use ``scale`` around 0.05.
    """
    if scale <= 0:
        raise ParameterError(f"scale must be > 0, got {scale}")
    return dataset_spec(name).build(scale)


def table1_rows(scale: float = 1.0) -> List[Tuple[str, int, int, int, int]]:
    """Rows of (name, paper n, paper m, stand-in n, stand-in m).

    The data behind ``benchmarks/bench_table1_graphs.py``.
    """
    rows = []
    for name in DATASET_NAMES:
        spec = dataset_spec(name)
        g = spec.build(scale)
        rows.append((name, spec.paper_n, spec.paper_m, g.n, g.m))
    return rows
