"""A linear-probing parallel hash table (Gil-Matias-Vishkin model [25]).

The paper's preliminaries assume parallel hash tables supporting ``n``
inserts/deletes/queries in ``O(n)`` work and ``O(log n)`` span w.h.p. This
module implements the standard concurrent open-addressing design those
bounds describe:

* a slot array of (key, value) pairs; insertion claims a slot by CAS on
  its key cell, so concurrent inserts of distinct keys never collide and
  concurrent inserts of the same key linearize (first CAS wins, the loser
  re-probes and lands on the winner's slot);
* deletion marks tombstones (slots are never un-claimed, as in the
  lock-free versions);
* the table grows by rebuilding at 50% load, amortizing to O(1) per
  insert.

:class:`~repro.core.hierarchy_te` uses it for Algorithm 1's per-level
``L_i`` tables, and tests drive it against a dict model (property-based)
including forced CAS contention.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from ..errors import DataStructureError
from .atomics import AtomicCell, AtomicStats
from .counters import NullCounter, WorkSpanCounter, log2_ceil

#: Slot states for the key cells.
_EMPTY = object()
_TOMBSTONE = object()


class ParallelHashTable:
    """Open-addressing hash table with CAS-claimed slots.

    Keys may be any hashable; values any object. ``set`` overwrites,
    ``setdefault`` is the atomic insert-if-absent the parallel algorithms
    use. Iteration order is probe order (deterministic for a fixed
    insertion history).
    """

    _MIN_CAPACITY = 8

    def __init__(self, capacity: int = _MIN_CAPACITY,
                 counter: Optional[WorkSpanCounter] = None) -> None:
        capacity = max(self._MIN_CAPACITY, capacity)
        self._counter = counter if counter is not None else NullCounter()
        self.atomic_stats = AtomicStats()
        self._init_slots(1 << (capacity - 1).bit_length())
        self._size = 0
        self._used = 0  # live + tombstoned slots

    def _init_slots(self, capacity: int) -> None:
        self._capacity = capacity
        self._keys: List[AtomicCell[Any]] = [
            AtomicCell(_EMPTY, self.atomic_stats) for _ in range(capacity)]
        self._values: List[Any] = [None] * capacity

    # -- internals ---------------------------------------------------------

    def _probe(self, key: Any) -> Iterator[int]:
        mask = self._capacity - 1
        index = hash(key) & mask
        for step in range(self._capacity):
            yield (index + step) & mask

    def _grow(self) -> None:
        entries = list(self.items())
        self._init_slots(self._capacity * 2)
        self._size = 0
        self._used = 0
        for key, value in entries:
            self._insert(key, value, overwrite=True)

    def _insert(self, key: Any, value: Any, overwrite: bool) -> Any:
        if 2 * (self._used + 1) > self._capacity:
            self._grow()
        for index in self._probe(key):
            current = self._keys[index].load()
            if current is _EMPTY:
                # Claim the slot; a CAS failure means another insert won
                # the race for this slot -- re-read and fall through.
                if self._keys[index].compare_and_swap(_EMPTY, key):
                    self._values[index] = value
                    self._size += 1
                    self._used += 1
                    return value
                current = self._keys[index].load()
            if current is _TOMBSTONE:
                continue
            if current == key:
                if overwrite:
                    self._values[index] = value
                    return value
                return self._values[index]
        raise DataStructureError("hash table probe exhausted (bug)")

    # -- public API ------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Any) -> bool:
        return self.get(key, _EMPTY) is not _EMPTY

    def get(self, key: Any, default: Any = None) -> Any:
        self._counter.add_work(1)
        for index in self._probe(key):
            current = self._keys[index].load()
            if current is _EMPTY:
                return default
            if current is _TOMBSTONE:
                continue
            if current == key:
                return self._values[index]
        return default

    def __getitem__(self, key: Any) -> Any:
        value = self.get(key, _EMPTY)
        if value is _EMPTY:
            raise KeyError(key)
        return value

    def set(self, key: Any, value: Any) -> None:
        """Insert or overwrite."""
        self._counter.add_work(1)
        self._insert(key, value, overwrite=True)

    def __setitem__(self, key: Any, value: Any) -> None:
        self.set(key, value)

    def setdefault(self, key: Any, value: Any) -> Any:
        """Atomic insert-if-absent; returns the winning value."""
        self._counter.add_work(1)
        return self._insert(key, value, overwrite=False)

    def pop(self, key: Any, default: Any = _EMPTY) -> Any:
        """Remove ``key``; tombstones its slot."""
        self._counter.add_work(1)
        for index in self._probe(key):
            current = self._keys[index].load()
            if current is _EMPTY:
                break
            if current is _TOMBSTONE:
                continue
            if current == key:
                value = self._values[index]
                self._keys[index].store(_TOMBSTONE)
                self._values[index] = None
                self._size -= 1
                return value
        if default is _EMPTY:
            raise KeyError(key)
        return default

    def items(self) -> Iterator[Tuple[Any, Any]]:
        for index in range(self._capacity):
            current = self._keys[index].load()
            if current is not _EMPTY and current is not _TOMBSTONE:
                yield current, self._values[index]

    def keys(self) -> Iterator[Any]:
        return (k for k, _ in self.items())

    def __iter__(self) -> Iterator[Any]:
        return self.keys()

    def values(self) -> Iterator[Any]:
        return (v for _, v in self.items())

    def charge_batch(self, n_operations: int) -> None:
        """Charge the parallel cost of a batch of ``n_operations``.

        ``n`` hash-table operations cost O(n) work and O(log n) span
        w.h.p. [25]; algorithms call this once per parallel round.
        """
        self._counter.add_parallel(max(n_operations, 1),
                                   1 + log2_ceil(max(n_operations, 1)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ParallelHashTable(size={self._size}, "
                f"capacity={self._capacity})")
