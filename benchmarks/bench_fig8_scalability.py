"""Figure 8: self-relative speedup of ANH-TE and ANH-EL vs thread count.

The paper plots speedups on dblp and skitter for several (r, s) values on
1..30 cores plus 60 hyper-threads ("30h"). Pure Python cannot run the
threads (GIL; see DESIGN.md Section 2), so this harness measures the
algorithms' *work* and *span* with the instrumented runtime and maps them
through Brent's bound -- the same scheduling model the paper's analysis
uses. T_1 is calibrated to the measured wall-clock.

Expected shape: near-linear speedup at low thread counts, saturation
toward 30h; larger (r, s) (more work per peel round) scale further, and
the approximate algorithm (polylog span) scales furthest.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.reporting import banner, format_series
from repro.core.approx import approx_anh_el
from repro.core.framework import anh_el
from repro.core.hierarchy_te import hierarchy_te_practical
from repro.parallel.counters import WorkSpanCounter
from repro.parallel.runtime import (amdahl_fraction, speedup_curve)

from bench_common import bench_graph, kernel_graph, timed, within_budget

THREADS = (1, 2, 4, 8, 16, 30, 60)
GRAPHS = ("dblp", "skitter")
RS = ((2, 3), (3, 4), (1, 2))


def run_curves(graph_names=GRAPHS, rs_values=RS):
    """List of (label, curve, serial_fraction, wall_seconds)."""
    out = []
    for name in graph_names:
        graph = bench_graph(name)
        for r, s in rs_values:
            if not within_budget(graph, r, s):
                continue
            for algo_name, fn in (("anh-te", hierarchy_te_practical),
                                  ("anh-el", anh_el)):
                counter = WorkSpanCounter()
                run = timed(lambda: fn(graph, r, s, counter=counter))
                snap = counter.snapshot()
                out.append((f"{name} ({r},{s}) {algo_name}",
                            speedup_curve(snap, THREADS),
                            amdahl_fraction(snap), run.seconds))
    return out


def build_report(curves=None) -> str:
    if curves is None:
        curves = run_curves()
    series = {label: [f"{v:.2f}x" for v in curve]
              for label, curve, _, _ in curves}
    xs = [f"{t}t" if t <= 30 else "30h" for t in THREADS]
    table = format_series("threads", xs, series,
                          title="Figure 8: simulated self-relative speedups "
                                "(Brent's bound over measured work/span)")
    details = "\n".join(
        f"  {label}: wall {seconds:.3f}s, span/work {fraction:.2e}"
        for label, _, fraction, seconds in curves)
    return banner("Figure 8") + "\n" + table + "\n" + details


def test_fig8_report():
    curves = run_curves(graph_names=("dblp",), rs_values=((2, 3), (3, 4)))
    print(build_report(curves))
    assert curves
    for label, curve, fraction, _ in curves:
        # monotone speedups starting at 1
        assert abs(curve[0] - 1.0) < 1e-9
        assert curve == sorted(curve), label
        # meaningful parallelism: 30 cores give clearly superlinear-over-1
        assert curve[THREADS.index(30)] > 4, label

    # Larger (r, s) scales at least as well (more work per round).
    by_rs = {}
    for label, curve, _, _ in curves:
        rs = label.split("(")[1].split(")")[0]
        by_rs.setdefault(rs, []).append(curve[-1])
    if "2,3" in by_rs and "3,4" in by_rs:
        assert max(by_rs["3,4"]) >= 0.8 * max(by_rs["2,3"])


def test_fig8_approx_scales_further():
    graph = bench_graph("dblp")
    exact_counter, approx_counter = WorkSpanCounter(), WorkSpanCounter()
    anh_el(graph, 2, 3, counter=exact_counter)
    approx_anh_el(graph, 2, 3, delta=0.5, counter=approx_counter)
    exact_curve = speedup_curve(exact_counter.snapshot(), THREADS)
    approx_curve = speedup_curve(approx_counter.snapshot(), THREADS)
    print(f"exact 30h speedup {exact_curve[-1]:.2f}x, "
          f"approx 30h speedup {approx_curve[-1]:.2f}x")
    assert approx_curve[-1] >= exact_curve[-1] * 0.9


def test_benchmark_counter_overhead(benchmark):
    """The instrumented run vs the kernel cost (overhead sanity)."""
    graph = kernel_graph("dblp")
    benchmark(lambda: anh_el(graph, 2, 3, counter=WorkSpanCounter()))


if __name__ == "__main__":
    print(build_report())
