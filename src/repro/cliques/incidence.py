"""s-clique <-> r-clique incidence: the peeling algorithms' working set.

Peeling needs two queries:

* the initial s-clique degree of every r-clique (Algorithm 2/3, line 5);
* for a given r-clique ``R``, the s-cliques containing ``R`` together with
  their other member r-cliques (the update loop, lines 12-15).

Two strategies are provided behind one interface:

* :class:`MaterializedIncidence` stores every s-clique's member-id tuple
  and a per-r-clique postings list. Space is proportional to the number of
  s-cliques -- the variant the paper's work bound assumes ("the version of
  their algorithm that takes space proportional to the number of s-cliques
  in G", proof of Theorem 5.1).
* :class:`ReEnumIncidence` stores only degrees and re-enumerates the
  s-cliques containing ``R`` on demand by extending ``R`` inside the common
  neighborhood of its vertices -- the space-lean alternative the paper's
  practical sections discuss. Same results, different time/space tradeoff
  (compared head-to-head in ``benchmarks/bench_ablation.py``).

A third strategy, ``"csr"``, lives in :mod:`repro.cliques.csr`: the same
data as :class:`MaterializedIncidence` in flat numpy CSR arrays (the
paper artifact's layout), enabling the vectorized peeling kernel and
zero-copy process broadcast. All three are interchangeable behind
:func:`build_incidence` and produce identical decompositions.
"""

from __future__ import annotations

from functools import partial
from itertools import combinations
from math import comb
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import ParameterError
from ..parallel.backend import ExecutionBackend
from ..parallel.counters import NullCounter, WorkSpanCounter, log2_ceil
from ..graphs.graph import Graph
from ..graphs.orientation import Orientation, arb_orient
from .enumeration import (Clique, cliques_containing, cliques_of_vertices,
                          enumerate_cliques)
from .index import CliqueIndex
from .list_kernel import clique_matrix, clique_matrix_via, use_array_kernel

MemberTuple = Tuple[int, ...]

#: Incidence strategies accepted by :func:`build_incidence` (and the
#: CLI's ``--strategy`` / ``--incidence`` flag).
INCIDENCE_STRATEGIES = ("materialized", "reenum", "csr")


def _use_pool(backend: Optional[ExecutionBackend]) -> bool:
    return backend is not None and backend.is_parallel()


def _members_chunk(context, vertices: List[int],
                   s: int) -> Tuple[List[MemberTuple], int]:
    """Backend task: member-id tuples of the s-cliques rooted at a chunk.

    ``context`` is the broadcast ``(orientation, index)`` pair; the
    returned tuples appear in the serial enumeration order for these
    vertices, so concatenating chunk results in chunk order reproduces
    the streaming construction exactly.
    """
    from .csr import member_id_array
    orientation, index = context
    s_cliques, work = cliques_of_vertices(orientation, vertices, s)
    rows = member_id_array(index, s_cliques, s)
    return [tuple(row) for row in rows.tolist()], work


def _degrees_chunk(context, vertices: List[int],
                   s: int) -> Tuple[Dict[int, int], int, int]:
    """Backend task: partial s-clique degrees contributed by a chunk.

    Returns ``(rid -> count, n_s_in_chunk, enumeration_work)``; partial
    counts are summed by the caller (addition commutes, so the result is
    independent of chunking).
    """
    orientation, index = context
    s_cliques, work = cliques_of_vertices(orientation, vertices, s)
    r = index.r
    counts: Dict[int, int] = {}
    for c in s_cliques:
        for sub in combinations(c, r):
            rid = index.id_of(sub)
            counts[rid] = counts.get(rid, 0) + 1
    return counts, len(s_cliques), work


def validate_rs(r: int, s: int) -> None:
    """Check the (r, s) parameter contract: ``1 <= r < s``."""
    if r < 1:
        raise ParameterError(f"r must be >= 1, got {r}")
    if s <= r:
        raise ParameterError(f"s must be > r, got r={r}, s={s}")


class MaterializedIncidence:
    """Incidence with all s-cliques stored (space ~ number of s-cliques)."""

    strategy = "materialized"

    def __init__(self, graph: Graph, orientation: Orientation,
                 index: CliqueIndex, s: int,
                 counter: Optional[WorkSpanCounter] = None,
                 backend: Optional[ExecutionBackend] = None,
                 chunk_size: Optional[int] = None,
                 kernel: str = "auto") -> None:
        counter = counter if counter is not None else NullCounter()
        validate_rs(index.r, s)
        self.graph = graph
        self.orientation = orientation
        self.index = index
        self.r = index.r
        self.s = s
        self.s_choose_r = comb(s, index.r)
        members: List[MemberTuple] = []
        postings: List[List[int]] = [[] for _ in index.ids()]
        if use_array_kernel(kernel):
            # Array kernel: one clique matrix + bulk member-id lookup;
            # the streaming sid/postings walk below is order-identical to
            # the tuple paths because the matrix rows are in enumeration
            # order.
            from .csr import member_id_array
            if _use_pool(backend):
                matrix = clique_matrix_via(backend, orientation, s, counter,
                                           chunk_size=chunk_size)
            else:
                matrix = clique_matrix(orientation, s, counter)
            for member_ids in map(tuple,
                                  member_id_array(index, matrix, s).tolist()):
                sid = len(members)
                members.append(member_ids)
                for rid in member_ids:
                    postings[rid].append(sid)
        elif _use_pool(backend):
            # Per-vertex s-clique listing + member-id computation in
            # worker processes; sid assignment and postings stay in the
            # parent, walking chunk results in vertex-major order so the
            # layout matches the streaming path bit for bit.
            token = backend.broadcast((orientation, index))
            results = backend.map_chunks(partial(_members_chunk, s=s),
                                         range(graph.n), token=token,
                                         chunk_size=chunk_size)
            enum_work = 0
            for chunk_members, chunk_work in results:
                enum_work += chunk_work
                for member_ids in chunk_members:
                    sid = len(members)
                    members.append(member_ids)
                    for rid in member_ids:
                        postings[rid].append(sid)
            counter.add_parallel(max(enum_work, 1),
                                 s + log2_ceil(max(graph.n, 1)))
        else:
            for s_clique in enumerate_cliques(orientation, s, counter):
                sid = len(members)
                member_ids = tuple(index.id_of(sub)
                                   for sub in combinations(s_clique, index.r))
                members.append(member_ids)
                for rid in member_ids:
                    postings[rid].append(sid)
        self._members = members
        self._postings = [tuple(p) for p in postings]
        counter.add_parallel(len(members) * self.s_choose_r + 1,
                             1 + log2_ceil(max(len(members), 1)))

    @property
    def n_r(self) -> int:
        return len(self.index)

    @property
    def n_s(self) -> int:
        return len(self._members)

    def initial_degrees(self) -> List[int]:
        return [len(p) for p in self._postings]

    def members(self, sid: int) -> MemberTuple:
        """Member r-clique ids of s-clique ``sid``."""
        return self._members[sid]

    def s_clique_ids_of(self, rid: int) -> Tuple[int, ...]:
        """Ids of the s-cliques containing r-clique ``rid``."""
        return self._postings[rid]

    def s_cliques_containing(self, rid: int) -> Iterator[MemberTuple]:
        """Member tuples of every s-clique containing ``rid``."""
        for sid in self._postings[rid]:
            yield self._members[sid]

    def iter_s_cliques(self) -> Iterator[MemberTuple]:
        """All s-cliques as member-id tuples (Algorithm 1, line 6)."""
        return iter(self._members)

    def memory_units(self) -> int:
        """Integers held (the memory-overhead proxy used by Section 8.1)."""
        return sum(len(m) for m in self._members) + \
            sum(len(p) for p in self._postings)


class ReEnumIncidence:
    """Incidence that re-enumerates s-cliques on demand (space ~ n_r)."""

    strategy = "reenum"

    def __init__(self, graph: Graph, orientation: Orientation,
                 index: CliqueIndex, s: int,
                 counter: Optional[WorkSpanCounter] = None,
                 backend: Optional[ExecutionBackend] = None,
                 chunk_size: Optional[int] = None,
                 kernel: str = "auto") -> None:
        counter = counter if counter is not None else NullCounter()
        validate_rs(index.r, s)
        self.graph = graph
        self.orientation = orientation
        self.index = index
        self.r = index.r
        self.s = s
        self.s_choose_r = comb(s, index.r)
        degrees = [0] * len(index)
        n_s = 0
        if use_array_kernel(kernel):
            # Array kernel: degrees are one bincount over the bulk
            # member-id rows; addition commutes, so the result matches
            # the streaming increments exactly.
            from .csr import member_degree_counts, member_id_array
            if _use_pool(backend):
                matrix = clique_matrix_via(backend, orientation, s, counter,
                                           chunk_size=chunk_size)
            else:
                matrix = clique_matrix(orientation, s, counter)
            rows = member_id_array(index, matrix, s)
            degrees = member_degree_counts(rows, len(index))
            n_s = rows.shape[0]
        elif _use_pool(backend):
            token = backend.broadcast((orientation, index))
            results = backend.map_chunks(partial(_degrees_chunk, s=s),
                                         range(graph.n), token=token,
                                         chunk_size=chunk_size)
            enum_work = 0
            for counts, chunk_n_s, chunk_work in results:
                enum_work += chunk_work
                n_s += chunk_n_s
                for rid, count in counts.items():
                    degrees[rid] += count
            counter.add_parallel(max(enum_work, 1),
                                 s + log2_ceil(max(graph.n, 1)))
        else:
            for s_clique in enumerate_cliques(orientation, s, counter):
                n_s += 1
                for sub in combinations(s_clique, index.r):
                    degrees[index.id_of(sub)] += 1
        self._degrees = degrees
        self._n_s = n_s
        counter.add_parallel(n_s * self.s_choose_r + 1,
                             1 + log2_ceil(max(n_s, 1)))

    @property
    def n_r(self) -> int:
        return len(self.index)

    @property
    def n_s(self) -> int:
        return self._n_s

    def initial_degrees(self) -> List[int]:
        return list(self._degrees)

    def s_cliques_containing(self, rid: int) -> Iterator[MemberTuple]:
        """Re-enumerate the s-cliques containing ``rid``."""
        base = self.index.clique_of(rid)
        for s_clique in cliques_containing(self.graph, base, self.s - self.r):
            yield tuple(self.index.id_of(sub)
                        for sub in combinations(s_clique, self.r))

    def iter_s_cliques(self) -> Iterator[MemberTuple]:
        for s_clique in enumerate_cliques(self.orientation, self.s):
            yield tuple(self.index.id_of(sub)
                        for sub in combinations(s_clique, self.r))

    def memory_units(self) -> int:
        return len(self._degrees)


def build_incidence(graph: Graph, r: int, s: int,
                    strategy: str = "materialized",
                    counter: Optional[WorkSpanCounter] = None,
                    orientation: Optional[Orientation] = None,
                    backend: Optional[ExecutionBackend] = None,
                    chunk_size: Optional[int] = None,
                    kernel: str = "auto"):
    """Orient the graph, index the r-cliques, and build the incidence.

    Returns ``(orientation, index, incidence)`` -- the common preamble of
    every decomposition algorithm (Algorithm 2/3, lines 3-5). When a
    parallel ``backend`` is given, the r-clique listing and the s-clique
    degree/incidence construction dispatch through it.

    ``kernel`` selects the enumeration engine
    (:data:`~repro.cliques.list_kernel.ENUM_KERNEL_NAMES`): ``"auto"``
    and ``"array"`` run the flat-array ``REC-LIST-CLIQUES`` kernel for
    both the r-clique indexing and the s-clique incidence; ``"loop"``
    forces the recursive tuple enumerator (the differential oracle).
    Results -- cliques, ids, incidence layout, and work/span meters --
    are identical either way.
    """
    validate_rs(r, s)
    counter = counter if counter is not None else NullCounter()
    if orientation is None:
        orientation = arb_orient(graph, counter=counter)
    index = CliqueIndex.from_orientation(orientation, r, counter,
                                         backend=backend,
                                         chunk_size=chunk_size,
                                         kernel=kernel)
    if strategy == "materialized":
        incidence = MaterializedIncidence(graph, orientation, index, s,
                                          counter, backend=backend,
                                          chunk_size=chunk_size,
                                          kernel=kernel)
    elif strategy == "reenum":
        incidence = ReEnumIncidence(graph, orientation, index, s, counter,
                                    backend=backend, chunk_size=chunk_size,
                                    kernel=kernel)
    elif strategy == "csr":
        from .csr import CSRIncidence
        incidence = CSRIncidence(graph, orientation, index, s, counter,
                                 backend=backend, chunk_size=chunk_size,
                                 kernel=kernel)
    else:
        raise ParameterError(
            f"unknown incidence strategy {strategy!r}; "
            f"expected one of {INCIDENCE_STRATEGIES}")
    return orientation, index, incidence
