"""Figure 7: best hierarchy construction time per (r, s), r < s <= 7.

For every stand-in graph and every (r, s) with ``r < s <= 7``, runs the
method the paper's selection rule picks (the fastest of ANH-TE/ANH-EL in
practice -- Section 8.1) and reports each configuration's slowdown over
the per-graph fastest, exactly like Figure 7's bars. Configurations whose
estimated work exceeds the budget are reported as OOM/timeout, mirroring
the paper's omitted bars (its friendster and large-(r,s) cases).

``--json`` additionally writes ``BENCH_fig7.json`` at the repo root: the
grid rows, a dict-vs-CSR peeling comparison (the flat-array layout +
vectorized kernel against the Python dict/list path, same coreness
asserted), an array-vs-loop enumeration-kernel comparison split into
``enumerate``/``build``/``peel``/``total`` stage rows (identical cliques,
incidence, and coreness asserted), and an array-vs-loop hierarchy
construction comparison (``hierarchy`` stage rows; element-identical
trees asserted) -- all in the uniform :func:`bench_common.bench_row`
schema.
"""

from __future__ import annotations

import argparse
from typing import Dict

import numpy as np

from repro import nucleus_decomposition
from repro.analysis.reporting import banner, format_table
from repro.cliques.enumeration import enumerate_cliques
from repro.cliques.incidence import build_incidence
from repro.cliques.list_kernel import clique_matrix
from repro.core.api import choose_method
from repro.core.nucleus import peel_exact, prepare
from repro.graphs.orientation import arb_orient
from repro.parallel.counters import WorkSpanCounter

from bench_common import (SKIPPED, bench_graph, bench_row, emit_json,
                          guarded, kernel_graph, rs_grid, timed,
                          within_budget)

GRAPHS = ("amazon", "dblp", "youtube", "skitter", "livejournal", "orkut",
          "friendster")

#: (graph, r, s) configurations for the dict-vs-CSR peel comparison --
#: the Figure 7 graphs with clique-rich structure at stand-in scale.
PEEL_COMPARISON = (("amazon", 2, 3), ("dblp", 2, 3), ("dblp", 2, 4),
                   ("youtube", 2, 3), ("orkut", 3, 4))


def run_grid(graph_names=GRAPHS, max_s: int = 7):
    rows = []
    for name in graph_names:
        graph = bench_graph(name)
        for r, s in rs_grid(max_s):
            run = guarded(graph, r, s,
                          lambda: nucleus_decomposition(graph, r, s))
            rows.append((name, r, s, run.seconds))
    return rows


def build_report(rows=None) -> str:
    if rows is None:
        rows = run_grid()
    by_graph: Dict[str, float] = {}
    for name, r, s, seconds in rows:
        if seconds != SKIPPED:
            by_graph[name] = min(by_graph.get(name, float("inf")), seconds)
    out_rows = []
    for name, r, s, seconds in rows:
        if seconds == SKIPPED:
            out_rows.append((name, f"({r},{s})", "OOM/timeout", "",
                             choose_method(r, s)))
        else:
            fastest = by_graph[name]
            out_rows.append((name, f"({r},{s})", f"{seconds:.4f}s",
                             f"{seconds / fastest:.2f}x",
                             choose_method(r, s)))
    table = format_table(
        ("graph", "(r,s)", "time", "slowdown vs graph-best", "method"),
        out_rows,
        title="Figure 7: hierarchy time per (r,s) configuration, r < s <= 7")
    fastest_lines = "\n".join(
        f"  {name}: fastest {seconds:.4f}s"
        for name, seconds in sorted(by_graph.items()))
    return banner("Figure 7") + "\n" + table + "\n" + fastest_lines


def run_peel_comparison(configs=PEEL_COMPARISON, repeats: int = 3):
    """Dict/list peeling vs CSR + vectorized kernel, same coreness.

    Returns uniform json rows: one per (config, strategy) with the best
    of ``repeats`` peel wall-clocks, metered work, and rho, plus the
    measured speedup on the CSR rows.
    """
    rows = []
    for name, r, s in configs:
        graph = bench_graph(name)
        if not within_budget(graph, r, s):
            rows.append(bench_row(name, r, s, None, stage="peel"))
            continue
        timings = {}
        results = {}
        for strategy in ("materialized", "csr"):
            prepared = prepare(graph, r, s, strategy=strategy)
            best = None
            for _ in range(repeats):
                counter = WorkSpanCounter()
                run = timed(lambda: peel_exact(prepared.incidence,
                                               counter=counter))
                if best is None or run.seconds < best.seconds:
                    best = run
            timings[strategy] = best
            results[strategy] = best.payload
        assert results["csr"].core == results["materialized"].core, \
            (name, r, s)
        assert results["csr"].rho == results["materialized"].rho
        dict_seconds = timings["materialized"].seconds
        for strategy in ("materialized", "csr"):
            result = results[strategy]
            rows.append(bench_row(
                name, r, s, timings[strategy].seconds,
                stage="peel", strategy=strategy,
                kernel="vectorized" if strategy == "csr" else "loop",
                backend="serial", workers=1,
                work=result.work_span.work, rho=result.rho,
                speedup=round(dict_seconds / timings[strategy].seconds, 2)))
    return rows


def run_stage_comparison(configs=PEEL_COMPARISON, repeats: int = 3):
    """Array vs loop enumeration kernel, stage by stage.

    For each configuration and each kernel the pipeline is split into the
    stages the paper's Figure 6/7 breakdowns use: ``enumerate`` (s-clique
    listing alone), ``build`` (the full CSR incidence construction,
    enumeration included), ``peel`` (exact peeling of the built
    incidence) and ``total`` (build + peel). Every stage is the best of
    ``repeats`` wall-clocks on a fresh orientation, so the array rows pay
    for their own CSR/flat-array conversions. The two kernels' clique
    matrices, incidence arrays, and coreness are asserted identical
    before any row is emitted -- a slow-but-wrong kernel cannot win.

    Returns uniform json rows, one per (config, kernel, stage); array
    rows carry ``speedup`` = loop seconds / array seconds.
    """
    rows = []
    for name, r, s in configs:
        graph = bench_graph(name)
        if not within_budget(graph, r, s):
            rows.append(bench_row(name, r, s, None, stage="enumerate"))
            continue
        stage_seconds = {}
        artifacts = {}
        for kernel in ("loop", "array"):
            if kernel == "loop":
                def enum_once():
                    orientation = arb_orient(graph)
                    return timed(lambda: list(enumerate_cliques(orientation,
                                                                s)))
            else:
                def enum_once():
                    orientation = arb_orient(graph)
                    return timed(lambda: clique_matrix(orientation, s))

            def build_once():
                orientation = arb_orient(graph)
                return timed(lambda: build_incidence(
                    graph, r, s, strategy="csr", kernel=kernel,
                    orientation=orientation))

            enum_run = min((enum_once() for _ in range(repeats)),
                           key=lambda run: run.seconds)
            build_run = min((build_once() for _ in range(repeats)),
                            key=lambda run: run.seconds)
            incidence = build_run.payload[2]
            peel_run = min((timed(lambda: peel_exact(incidence))
                            for _ in range(repeats)),
                           key=lambda run: run.seconds)
            stage_seconds[kernel] = {
                "enumerate": enum_run.seconds,
                "build": build_run.seconds,
                "peel": peel_run.seconds,
                "total": build_run.seconds + peel_run.seconds,
            }
            artifacts[kernel] = (enum_run.payload, incidence,
                                 peel_run.payload)
        # Differential verification: both kernels produced the same
        # cliques, the same incidence arrays, and the same decomposition.
        cliques, loop_inc, loop_peel = artifacts["loop"]
        matrix, array_inc, array_peel = artifacts["array"]
        assert matrix.shape[0] == len(cliques), (name, r, s)
        assert [tuple(row) for row in matrix.tolist()] == cliques
        assert np.array_equal(loop_inc.member_array, array_inc.member_array)
        assert np.array_equal(loop_inc.posting_indptr,
                              array_inc.posting_indptr)
        assert np.array_equal(loop_inc.posting_indices,
                              array_inc.posting_indices)
        assert np.array_equal(loop_inc.degree_array, array_inc.degree_array)
        assert array_peel.core == loop_peel.core, (name, r, s)
        assert array_peel.rho == loop_peel.rho
        for kernel in ("loop", "array"):
            for stage, seconds in stage_seconds[kernel].items():
                extra = {}
                if kernel == "array":
                    extra["speedup"] = round(
                        stage_seconds["loop"][stage] / seconds, 2)
                rows.append(bench_row(
                    name, r, s, seconds, stage=stage, kernel=kernel,
                    strategy="csr", backend="serial", workers=1, **extra))
    return rows


def run_hierarchy_comparison(configs=PEEL_COMPARISON, repeats: int = 3):
    """Array vs loop hierarchy (tree) construction, shared coreness.

    For each configuration the CSR incidence is prepared and peeled once;
    both tree kernels then rebuild the hierarchy from the same coreness,
    best of ``repeats`` wall-clocks each. The trees are asserted
    **element-identical** (same node ids, parents, levels,
    representatives -- the ``hierarchy_kernel`` contract, stricter than
    isomorphism) before any row is emitted. Rows use ``stage=
    "hierarchy"``; array rows carry ``speedup`` = loop / array seconds.
    """
    from repro.core.hierarchy_te import hierarchy_te_practical
    rows = []
    for name, r, s in configs:
        graph = bench_graph(name)
        if not within_budget(graph, r, s):
            rows.append(bench_row(name, r, s, None, stage="hierarchy"))
            continue
        prepared = prepare(graph, r, s, strategy="csr")
        coreness = peel_exact(prepared.incidence)
        timings = {}
        for kernel in ("loop", "array"):
            best = None
            for _ in range(repeats):
                run = timed(lambda: hierarchy_te_practical(
                    graph, r, s, prepared=prepared, coreness=coreness,
                    kernel=kernel))
                if best is None or run.seconds < best.seconds:
                    best = run
            timings[kernel] = best
        loop_tree = timings["loop"].payload.tree
        array_tree = timings["array"].payload.tree
        assert array_tree.parent == loop_tree.parent, (name, r, s)
        assert array_tree.level == loop_tree.level, (name, r, s)
        assert array_tree.rep == loop_tree.rep, (name, r, s)
        loop_seconds = timings["loop"].seconds
        for kernel in ("loop", "array"):
            extra = {}
            if kernel == "array":
                extra["speedup"] = round(
                    loop_seconds / timings[kernel].seconds, 2)
            rows.append(bench_row(
                name, r, s, timings[kernel].seconds, stage="hierarchy",
                kernel=kernel, strategy="csr", backend="serial", workers=1,
                **extra))
    return rows


def grid_json_rows(rows):
    """The Figure 7 grid in the uniform json row schema."""
    return [bench_row(name, r, s, seconds, stage="total",
                      strategy="materialized", backend="serial", workers=1,
                      method=choose_method(r, s))
            for name, r, s, seconds in rows]


def test_fig7_report():
    rows = run_grid(graph_names=("amazon", "dblp"), max_s=5)
    print(build_report(rows))
    finished = [row for row in rows if row[3] != SKIPPED]
    assert finished, "budget guard skipped everything"
    # Larger (r, s) generally cost more -- check the trend on dblp where
    # the clique counts grow with s (amazon's shrink, like the paper notes).
    dblp = {(r, s): t for name, r, s, t in finished if name == "dblp"}
    if (2, 3) in dblp and (2, 4) in dblp:
        assert dblp[(2, 4)] > dblp[(2, 3)] * 0.3  # same order or larger


def test_benchmark_auto_method_kernel(benchmark):
    graph = kernel_graph("dblp")
    benchmark(lambda: nucleus_decomposition(graph, 2, 4))


def test_peel_comparison_rows():
    rows = run_peel_comparison(configs=(("dblp", 2, 3),), repeats=1)
    finished = [row for row in rows if not row["skipped"]]
    assert finished, "budget guard skipped the comparison"
    by_strategy = {row["strategy"]: row for row in finished}
    assert by_strategy["csr"]["work"] == by_strategy["materialized"]["work"]
    assert by_strategy["csr"]["rho"] == by_strategy["materialized"]["rho"]


def test_hierarchy_comparison_rows():
    rows = run_hierarchy_comparison(configs=(("dblp", 2, 3),), repeats=1)
    finished = [row for row in rows if not row["skipped"]]
    assert finished, "budget guard skipped the comparison"
    kernels = {row["kernel"] for row in finished}
    assert kernels == {"loop", "array"}
    assert all(row["stage"] == "hierarchy" for row in finished)
    assert all("speedup" in row for row in finished
               if row["kernel"] == "array")


def test_stage_comparison_rows():
    rows = run_stage_comparison(configs=(("dblp", 2, 3),), repeats=1)
    finished = [row for row in rows if not row["skipped"]]
    assert finished, "budget guard skipped the comparison"
    stages = {(row["kernel"], row["stage"]) for row in finished}
    for kernel in ("loop", "array"):
        for stage in ("enumerate", "build", "peel", "total"):
            assert (kernel, stage) in stages
    assert all("speedup" in row for row in finished
               if row["kernel"] == "array")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", action="store_true",
                        help="also write BENCH_fig7.json at the repo root")
    args = parser.parse_args(argv)
    rows = run_grid()
    print(build_report(rows))
    if args.json:
        comparison = run_peel_comparison()
        stages = run_stage_comparison()
        hierarchy = run_hierarchy_comparison()
        path = emit_json("fig7",
                         grid_json_rows(rows) + comparison + stages
                         + hierarchy)
        print(f"\nwrote {path}")
        finished = [row for row in comparison
                    if not row["skipped"] and row["strategy"] == "csr"]
        for row in finished:
            print(f"  peel {row['graph']} ({row['r']},{row['s']}): "
                  f"csr {row['seconds']:.4f}s, {row['speedup']}x vs dict")
        for row in stages + hierarchy:
            if row["skipped"] or row.get("kernel") != "array":
                continue
            print(f"  {row['stage']:<9} {row['graph']} "
                  f"({row['r']},{row['s']}): array {row['seconds']:.4f}s, "
                  f"{row['speedup']}x vs loop")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
