"""Work-span instrumentation for simulated parallel execution.

The paper analyzes algorithms in the *work-span* model (Section 3): the
**work** ``W`` is the total number of operations and the **span** ``S`` is the
length of the longest dependency chain. A randomized work-stealing scheduler
on ``P`` processors achieves expected running time ``W/P + O(S)`` (Brent's
bound / Blumofe-Leiserson).

CPython's GIL prevents real shared-memory parallel speedups, so this module
is the substitution layer: algorithms execute deterministically on one thread
while metering the work and span that the genuinely parallel execution would
incur. Downstream, :mod:`repro.parallel.runtime` maps the metered quantities
through Brent's bound to predict multi-processor running times, which is what
the scalability experiments (Figure 8) report.

Conventions used throughout the library:

* one unit of work = one constant-time operation on the data being processed
  (a comparison, a hash-table probe, a pointer hop, ...);
* a *parallel round* over ``n`` items contributes ``n * w`` work but only the
  per-item span (typically ``O(1)`` or ``O(log n)``) to the span;
* sequential code contributes equally to work and span.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def log2_ceil(n: int) -> int:
    """Return ``ceil(log2(n))`` for ``n >= 1`` (0 for ``n <= 1``).

    Used to charge the span of tree-shaped parallel combines (reductions,
    scans, parallel hash-table construction) without floating-point noise.
    """
    if n <= 1:
        return 0
    return (n - 1).bit_length()


@dataclass
class WorkSpanSnapshot:
    """An immutable reading of a :class:`WorkSpanCounter`."""

    work: int
    span: int

    def __sub__(self, other: "WorkSpanSnapshot") -> "WorkSpanSnapshot":
        return WorkSpanSnapshot(self.work - other.work, self.span - other.span)

    @property
    def parallelism(self) -> float:
        """Average parallelism ``W / S`` (the maximum useful processor count)."""
        if self.span == 0:
            return float(self.work) if self.work else 1.0
        return self.work / self.span


class WorkSpanCounter:
    """Accumulates work and span for one (simulated) parallel computation.

    The counter is deliberately simple: algorithms call :meth:`add_parallel`
    when they finish a parallel round, :meth:`add_serial` for sequential
    sections, and :meth:`add_work` for work whose span was already charged.
    There is no automatic nesting machinery -- each algorithm knows its own
    round structure, and the tests check the resulting totals against the
    paper's bounds on small instances.
    """

    __slots__ = ("work", "span")

    def __init__(self) -> None:
        self.work = 0
        self.span = 0

    # -- recording -------------------------------------------------------

    def add_work(self, work: int) -> None:
        """Add work that happened within an already-charged span."""
        self.work += work

    def add_span(self, span: int) -> None:
        """Add span for a dependency chain whose work was already charged."""
        self.span += span

    def add_serial(self, work: int) -> None:
        """Add a sequential section: contributes equally to work and span."""
        self.work += work
        self.span += work

    def add_parallel(self, work: int, span: int = 1) -> None:
        """Add one parallel round: ``work`` total operations, ``span`` depth."""
        self.work += work
        self.span += span

    def add_parallel_for(self, n_items: int, work_per_item: int = 1) -> None:
        """Charge a flat parallel-for over ``n_items``.

        Work is ``n_items * work_per_item``; span is the per-item cost plus
        the ``O(log n)`` fork-join overhead of spawning the loop.
        """
        if n_items <= 0:
            return
        self.work += n_items * work_per_item
        self.span += work_per_item + log2_ceil(n_items)

    def merge(self, other: "WorkSpanCounter") -> None:
        """Fold another counter in sequentially (work adds, span adds)."""
        self.work += other.work
        self.span += other.span

    def merge_parallel(self, other: "WorkSpanCounter") -> None:
        """Fold another counter in as a parallel sibling (span maxes)."""
        self.work += other.work
        self.span = max(self.span, other.span)

    # -- reading ---------------------------------------------------------

    def snapshot(self) -> WorkSpanSnapshot:
        return WorkSpanSnapshot(self.work, self.span)

    def reset(self) -> None:
        self.work = 0
        self.span = 0

    @property
    def parallelism(self) -> float:
        """Average parallelism ``W / S``."""
        return self.snapshot().parallelism

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkSpanCounter(work={self.work}, span={self.span})"


class NullCounter(WorkSpanCounter):
    """A counter that ignores everything.

    Passed to algorithms when instrumentation is not wanted (e.g. in the
    wall-clock benchmarks, where metering overhead would distort timings).
    All recording methods are no-ops; reads always return zero.
    """

    __slots__ = ()

    def add_work(self, work: int) -> None:  # noqa: D102 - inherited docs
        pass

    def add_span(self, span: int) -> None:
        pass

    def add_serial(self, work: int) -> None:
        pass

    def add_parallel(self, work: int, span: int = 1) -> None:
        pass

    def add_parallel_for(self, n_items: int, work_per_item: int = 1) -> None:
        pass

    def merge(self, other: WorkSpanCounter) -> None:
        pass

    def merge_parallel(self, other: WorkSpanCounter) -> None:
        pass


def geometric_span(n: int, base: float = 2.0) -> int:
    """Span of a contraction process that shrinks ``n`` by ``base`` per round.

    Several primitives (hook-and-contract connectivity, pointer jumping)
    run for ``ceil(log_base(n))`` rounds; this helper keeps that charge in
    one place.
    """
    if n <= 1:
        return 0
    return max(1, math.ceil(math.log(n, base)))
