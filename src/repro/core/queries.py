"""Hierarchy-backed queries: the downstream API the hierarchy exists for.

The paper motivates the hierarchy as "easy to visualize and explore as
part of structural graph analysis tasks" (Section 1) and demonstrates the
cut operation (Figure 10). This module packages the query patterns that
follow-up systems (e.g. Chu et al.'s subgraph search) build on the tree:

* :class:`HierarchyQueryIndex` -- preprocesses a decomposition once so
  that point queries are tree-path-sized:
  - ``community(vertices, ...)`` -- the smallest nucleus containing all
    query vertices (community search);
  - ``strongest_community(vertex)`` -- the deepest nucleus a vertex
    participates in;
  - ``top_k_densest(k)`` / ``top_k_deepest(k)`` -- ranked nuclei;
  - ``membership(vertex)`` -- the chain of nuclei containing a vertex,
    deepest first.
* :func:`hierarchy_statistics` -- the structural summary reports print.

All results are vertex-space (the index handles r-clique translation).
A vertex generally belongs to several r-cliques, possibly in different
subtrees, so vertex queries consider every leaf containing the vertex,
not just one chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..analysis.density import edge_density
from ..errors import ParameterError
from .decomposition import NucleusDecomposition
from .tree import NO_PARENT, HierarchyTree


@dataclass(frozen=True)
class Community:
    """One nucleus, in vertex space, with its provenance."""

    node: int            # tree node id
    level: float         # the nucleus's level (min s-clique degree)
    vertices: Tuple[int, ...]
    n_r_cliques: int
    density: float

    def __len__(self) -> int:
        return len(self.vertices)


class HierarchyQueryIndex:
    """Preprocessed query index over one decomposition's hierarchy.

    Construction is one pass over the tree (computing vertex sets
    bottom-up and a vertex -> leaves map); queries then walk tree paths.

    The per-node vertex sets are memoized as one flat CSR pair of sorted
    numpy arrays (``node_vertex_csr()``), and the vertex -> leaves map as
    another (``vertex_leaf_csr()``). This is exactly the on-disk column
    layout of :mod:`repro.store`, so building an artifact is a copy of
    these arrays, and a loaded artifact answers queries over the same
    representation.
    """

    def __init__(self, decomposition: NucleusDecomposition) -> None:
        if decomposition.tree is None:
            raise ParameterError(
                "the decomposition has no hierarchy; run with hierarchy=True")
        self.decomposition = decomposition
        self.tree: HierarchyTree = decomposition.tree
        self.graph = decomposition.graph
        index = decomposition.index
        tree = self.tree
        # Vertex sets per node, bottom-up (children before parents).
        vertex_sets: List[Set[int]] = [set() for _ in range(tree.n_nodes)]
        n_leaves_under = [0] * tree.n_nodes
        order = sorted(range(tree.n_nodes),
                       key=lambda node: tree.level[node], reverse=True)
        for node in order:
            if tree.is_leaf(node):
                vertex_sets[node].update(index.clique_of(node))
                n_leaves_under[node] = 1
            par = tree.parent[node]
            if par != NO_PARENT:
                vertex_sets[par].update(vertex_sets[node])
                n_leaves_under[par] += n_leaves_under[node]
        self._n_leaves_under = np.asarray(n_leaves_under, dtype=np.int64)
        # Freeze the sets into one sorted CSR pair: indptr[node] ..
        # indptr[node+1] slices the sorted vertex ids of that node.
        indptr = np.zeros(tree.n_nodes + 1, dtype=np.int64)
        for node, vs in enumerate(vertex_sets):
            indptr[node + 1] = indptr[node] + len(vs)
        data = np.empty(int(indptr[-1]), dtype=np.int64)
        for node, vs in enumerate(vertex_sets):
            data[indptr[node]:indptr[node + 1]] = sorted(vs)
        self._node_indptr = indptr
        self._node_vertices = data
        # Every leaf (r-clique) each vertex belongs to: vertex queries
        # must consider all of them, since they may sit in different
        # subtrees of the forest. CSR keyed by vertex id.
        leaf_counts = np.zeros(self.graph.n + 1, dtype=np.int64)
        for leaf in range(tree.n_leaves):
            for v in index.clique_of(leaf):
                leaf_counts[v + 1] += 1
        vptr = np.cumsum(leaf_counts, dtype=np.int64)
        vdata = np.empty(int(vptr[-1]), dtype=np.int64)
        cursor = vptr[:-1].copy()
        for leaf in range(tree.n_leaves):
            for v in index.clique_of(leaf):
                vdata[cursor[v]] = leaf
                cursor[v] += 1
        self._vertex_indptr = vptr
        self._vertex_leaves = vdata
        self._communities: Dict[int, Community] = {}

    # -- array surface (shared with repro.store) ---------------------------

    def __len__(self) -> int:
        """Number of nuclei (internal nodes) in the index."""
        return self.tree.n_internal

    def node_vertex_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(indptr, data)``: sorted vertex ids per tree node, flattened."""
        return self._node_indptr, self._node_vertices

    def vertex_leaf_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(indptr, data)``: leaf (r-clique) ids per vertex, flattened."""
        return self._vertex_indptr, self._vertex_leaves

    def n_leaves_under(self) -> np.ndarray:
        """Leaf count per tree node (leaves count as 1)."""
        return self._n_leaves_under

    def vertices_of(self, node: int) -> np.ndarray:
        """Sorted vertex ids of ``node``'s nucleus (read-only view)."""
        return self._node_vertices[
            self._node_indptr[node]:self._node_indptr[node + 1]]

    def n_vertices_of(self, node: int) -> int:
        return int(self._node_indptr[node + 1] - self._node_indptr[node])

    def node_density(self, node: int) -> float:
        """Edge density of ``node``'s nucleus (memoized via Community)."""
        return self._community_at(node).density

    def leaves_of_vertex(self, vertex: int) -> np.ndarray:
        """Leaf (r-clique) ids containing ``vertex`` (read-only view)."""
        if not 0 <= vertex < self.graph.n:
            return np.empty(0, dtype=np.int64)
        return self._vertex_leaves[
            self._vertex_indptr[vertex]:self._vertex_indptr[vertex + 1]]

    def stats(self) -> Dict[str, float]:
        """Structural + size summary (the service's per-artifact report)."""
        levels = self.tree.distinct_levels()
        return {
            "n_leaves": self.tree.n_leaves,
            "n_nuclei": self.tree.n_internal,
            "n_nodes": self.tree.n_nodes,
            "n_roots": len(self.tree.roots()),
            "max_level": float(levels[0]) if levels else 0.0,
            "n_vertices": int((self._vertex_indptr[1:]
                               > self._vertex_indptr[:-1]).sum()),
            "n_vertex_entries": int(self._node_indptr[-1]),
            "index_bytes": int(self._node_indptr.nbytes
                               + self._node_vertices.nbytes
                               + self._vertex_indptr.nbytes
                               + self._vertex_leaves.nbytes
                               + self._n_leaves_under.nbytes),
        }

    # -- internals ---------------------------------------------------------

    def _contains_all(self, node: int, vertices: Sequence[int]) -> bool:
        """Whether every query vertex is in ``node``'s sorted vertex slice."""
        mine = self.vertices_of(node)
        pos = np.searchsorted(mine, list(vertices))
        return bool(np.all(pos < len(mine))
                    and np.all(mine[np.minimum(pos, len(mine) - 1)]
                               == list(vertices)))

    def _community_at(self, node: int) -> Community:
        cached = self._communities.get(node)
        if cached is None:
            vertices = tuple(int(v) for v in self.vertices_of(node))
            cached = Community(
                node=node,
                level=self.tree.level[node],
                vertices=vertices,
                n_r_cliques=int(self._n_leaves_under[node]),
                density=edge_density(self.graph, vertices),
            )
            self._communities[node] = cached
        return cached

    def _ancestors(self, node: int) -> List[int]:
        out = [node]
        while self.tree.parent[out[-1]] != NO_PARENT:
            out.append(self.tree.parent[out[-1]])
        return out

    def _nodes_containing(self, vertex: int) -> List[int]:
        """All tree nodes whose vertex set includes ``vertex``, deepest first.

        Union of the ancestor chains of every leaf using the vertex,
        deduplicated, ordered by (level, -size).
        """
        seen: Set[int] = set()
        for leaf in self.leaves_of_vertex(vertex):
            for node in self._ancestors(int(leaf)):
                if node in seen:
                    break  # the rest of this chain is already recorded
                seen.add(node)
        return sorted(seen,
                      key=lambda n: (self.tree.level[n],
                                     -self.n_vertices_of(n)),
                      reverse=True)

    # -- queries -----------------------------------------------------------

    def community(self, vertices: Sequence[int],
                  min_level: float = 1.0) -> Optional[Community]:
        """Smallest (deepest, then smallest) nucleus containing the query.

        Community search: any covering nucleus must be an ancestor of some
        leaf containing the first query vertex, so only those chains are
        examined. Requires the nucleus level to be at least ``min_level``;
        returns ``None`` when no single nucleus covers the query.
        """
        query = set(vertices)
        if not query:
            raise ParameterError("community() needs at least one vertex")
        for v in query:
            if not 0 <= v < self.graph.n:
                raise ParameterError(f"vertex {v} out of range")
        sorted_query = sorted(query)
        anchor = next(iter(query))
        best: Optional[int] = None
        for node in self._nodes_containing(anchor):
            if self.tree.is_leaf(node):
                # A leaf is a single r-clique, not a nucleus; any r-clique
                # with positive core has an internal ancestor that is.
                continue
            if self.tree.level[node] < min_level:
                continue
            if not self._contains_all(node, sorted_query):
                continue
            if best is None or self._better_community(node, best):
                best = node
        return self._community_at(best) if best is not None else None

    def _better_community(self, a: int, b: int) -> bool:
        la, lb = self.tree.level[a], self.tree.level[b]
        if la != lb:
            return la > lb
        return self.n_vertices_of(a) < self.n_vertices_of(b)

    def strongest_community(self, vertex: int,
                            min_vertices: int = 2) -> Optional[Community]:
        """The deepest nucleus of size >= ``min_vertices`` containing ``vertex``."""
        for node in self._nodes_containing(vertex):
            if (self.tree.level[node] >= 1
                    and self.n_vertices_of(node) >= min_vertices
                    and not self.tree.is_leaf(node)):
                return self._community_at(node)
        return None

    def membership(self, vertex: int) -> List[Community]:
        """All nuclei containing ``vertex``, deepest first."""
        return [self._community_at(node)
                for node in self._nodes_containing(vertex)
                if self.tree.level[node] >= 1 and not self.tree.is_leaf(node)]

    def top_k_densest(self, k: int, min_vertices: int = 3) -> List[Community]:
        """The k densest nuclei with at least ``min_vertices`` vertices."""
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        candidates = [
            self._community_at(node)
            for node in range(self.tree.n_leaves, self.tree.n_nodes)
            if self.n_vertices_of(node) >= min_vertices
        ]
        candidates.sort(key=lambda c: (c.density, c.level, -len(c)),
                        reverse=True)
        return candidates[:k]

    def top_k_deepest(self, k: int, min_vertices: int = 2) -> List[Community]:
        """The k deepest (highest-level) nuclei with >= ``min_vertices``."""
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        candidates = [
            self._community_at(node)
            for node in range(self.tree.n_leaves, self.tree.n_nodes)
            if self.n_vertices_of(node) >= min_vertices
        ]
        candidates.sort(key=lambda c: (c.level, c.density), reverse=True)
        return candidates[:k]


@dataclass(frozen=True)
class HierarchyStatistics:
    """Structural summary of one hierarchy tree."""

    n_leaves: int
    n_nuclei: int
    n_roots: int
    height: int
    n_levels: int
    max_level: float
    largest_nucleus: int
    mean_branching: float


def hierarchy_statistics(tree: HierarchyTree) -> HierarchyStatistics:
    """Compute the summary the reports and examples print."""
    internal = range(tree.n_leaves, tree.n_nodes)
    child_counts = [len(tree.children(node)) for node in internal]
    largest = max((len(tree.leaves_under(node)) for node in internal),
                  default=0)
    levels = tree.distinct_levels()
    return HierarchyStatistics(
        n_leaves=tree.n_leaves,
        n_nuclei=tree.n_internal,
        n_roots=len(tree.roots()),
        height=tree.height(),
        n_levels=len(levels),
        max_level=levels[0] if levels else 0.0,
        largest_nucleus=largest,
        mean_branching=(sum(child_counts) / len(child_counts)
                        if child_counts else 0.0),
    )
