"""Graph statistics used by the dataset registry and reports.

Small, dependency-free analytics for characterizing workloads: degree
distribution summaries, global/local clustering, degeneracy, and a
one-call profile the benchmarks use to describe each stand-in graph the
way the paper's Table 1 and surrounding prose describe the SNAP inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean, median
from typing import Dict, List, Tuple

from .graph import Graph
from .orientation import degeneracy_order


def degree_summary(graph: Graph) -> Dict[str, float]:
    """min / median / mean / max degree."""
    degrees = graph.degrees()
    if not degrees:
        return {"min": 0.0, "median": 0.0, "mean": 0.0, "max": 0.0}
    return {
        "min": float(min(degrees)),
        "median": float(median(degrees)),
        "mean": mean(degrees),
        "max": float(max(degrees)),
    }


def degree_histogram(graph: Graph) -> List[Tuple[int, int]]:
    """Sorted (degree, count) pairs."""
    counts: Dict[int, int] = {}
    for d in graph.degrees():
        counts[d] = counts.get(d, 0) + 1
    return sorted(counts.items())


def global_clustering(graph: Graph) -> float:
    """Transitivity: 3 * triangles / open-or-closed wedges."""
    triangles = 0
    wedges = 0
    for v in range(graph.n):
        d = graph.degree(v)
        wedges += d * (d - 1) // 2
        nbrs = graph.neighbor_set(v)
        for u in graph.neighbors(v):
            if u > v:
                triangles += len(nbrs & graph.neighbor_set(u))
    # each triangle counted once per edge with u > v => 3 times total
    if wedges == 0:
        return 0.0
    return triangles / wedges


def average_local_clustering(graph: Graph) -> float:
    """Mean of per-vertex clustering coefficients (Watts-Strogatz)."""
    if graph.n == 0:
        return 0.0
    total = 0.0
    for v in range(graph.n):
        d = graph.degree(v)
        if d < 2:
            continue
        nbrs = graph.neighbors(v)
        nbr_set = graph.neighbor_set(v)
        links = 0
        for i, u in enumerate(nbrs):
            links += sum(1 for w in nbrs[i + 1:]
                         if w in graph.neighbor_set(u))
        total += 2 * links / (d * (d - 1))
    return total / graph.n


def degree_skew(graph: Graph) -> float:
    """max degree / mean degree (hub-dominance indicator)."""
    degrees = graph.degrees()
    if not degrees or sum(degrees) == 0:
        return 0.0
    return max(degrees) / (sum(degrees) / len(degrees))


@dataclass(frozen=True)
class GraphProfile:
    """One-call characterization of a workload graph."""

    name: str
    n: int
    m: int
    max_degree: int
    mean_degree: float
    degeneracy: int
    global_clustering: float
    degree_skew: float


def profile_graph(graph: Graph) -> GraphProfile:
    """Compute the profile the dataset reports print."""
    _, degeneracy = degeneracy_order(graph)
    degrees = graph.degrees()
    return GraphProfile(
        name=graph.name,
        n=graph.n,
        m=graph.m,
        max_degree=max(degrees, default=0),
        mean_degree=(sum(degrees) / len(degrees)) if degrees else 0.0,
        degeneracy=degeneracy,
        global_clustering=global_clustering(graph),
        degree_skew=degree_skew(graph),
    )
