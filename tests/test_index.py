"""Unit tests for the r-clique index."""

import pytest

from repro.cliques.index import CliqueIndex
from repro.errors import DataStructureError, ParameterError
from repro.graphs.graph import Graph
from repro.graphs.orientation import arb_orient


class TestConstruction:
    def test_sorted_deterministic_ids(self):
        idx = CliqueIndex([(2, 1), (0, 1), (0, 2)])
        assert list(idx) == [(0, 1), (0, 2), (1, 2)]
        assert idx.id_of((1, 0)) == 0

    def test_duplicates_collapse(self):
        idx = CliqueIndex([(0, 1), (1, 0)])
        assert len(idx) == 1

    def test_inconsistent_sizes_rejected(self):
        with pytest.raises(DataStructureError):
            CliqueIndex([(0, 1), (0, 1, 2)])

    def test_declared_r_checked(self):
        with pytest.raises(DataStructureError):
            CliqueIndex([(0, 1)], r=3)

    def test_empty_requires_r(self):
        with pytest.raises(ParameterError):
            CliqueIndex([])
        idx = CliqueIndex([], r=2)
        assert len(idx) == 0 and idx.r == 2

    def test_from_orientation(self):
        g = Graph.complete(4)
        idx = CliqueIndex.from_orientation(arb_orient(g), 2)
        assert len(idx) == 6
        assert idx.r == 2


class TestLookups:
    def setup_method(self):
        self.idx = CliqueIndex([(0, 1, 2), (1, 2, 3)])

    def test_round_trip(self):
        for rid in self.idx.ids():
            assert self.idx.id_of(self.idx.clique_of(rid)) == rid

    def test_order_insensitive_lookup(self):
        assert self.idx.id_of((2, 1, 0)) == self.idx.id_of((0, 1, 2))

    def test_contains(self):
        assert (2, 1, 0) in self.idx
        assert (0, 1, 3) not in self.idx

    def test_get_missing_returns_none(self):
        assert self.idx.get((0, 1, 3)) is None

    def test_id_of_missing_raises(self):
        with pytest.raises(DataStructureError):
            self.idx.id_of((0, 1, 3))

    def test_clique_of_out_of_range(self):
        with pytest.raises(DataStructureError):
            self.idx.clique_of(2)
        with pytest.raises(DataStructureError):
            self.idx.clique_of(-1)

    def test_label(self):
        assert self.idx.label(0) == "{0,1,2}"
