"""Classic sequential k-core decomposition (Matula-Beck / Batagelj-Zaversnik).

The (1, 2) nucleus decomposition's textbook algorithm, used as an
independent oracle for the general machinery: ``arb_nucleus(G, 1, 2)`` must
produce exactly these core numbers (tested, and also cross-checked against
``networkx.core_number`` in the test suite).
"""

from __future__ import annotations

from typing import List

from ..graphs.graph import Graph


def core_numbers(graph: Graph) -> List[int]:
    """Vertex core numbers by repeated minimum-degree removal, O(n + m)."""
    n = graph.n
    degree = graph.degrees()
    max_deg = max(degree, default=0)
    buckets: List[List[int]] = [[] for _ in range(max_deg + 1)]
    for v in range(n):
        buckets[degree[v]].append(v)
    removed = [False] * n
    core = [0] * n
    k = 0
    processed = 0
    cursor = 0
    while processed < n:
        while cursor > 0 and buckets[cursor - 1]:
            cursor -= 1
        while cursor <= max_deg and not buckets[cursor]:
            cursor += 1
        v = buckets[cursor].pop()
        if removed[v] or degree[v] != cursor:
            continue  # stale bucket entry
        removed[v] = True
        processed += 1
        k = max(k, degree[v])
        core[v] = k
        for u in graph.neighbors(v):
            if not removed[u]:
                degree[u] -= 1
                buckets[degree[u]].append(u)
    return core


def degeneracy(graph: Graph) -> int:
    """The graph's degeneracy (= maximum core number)."""
    return max(core_numbers(graph), default=0)


def k_core_subgraph(graph: Graph, k: int) -> List[int]:
    """Vertices of the k-core (possibly empty)."""
    return [v for v, c in enumerate(core_numbers(graph)) if c >= k]
