"""Atomic-operation model for concurrent data structures.

The paper's concurrent structures (Jayanti-Tarjan union-find, the ``L``
table in ``LINK-EFFICIENT``) synchronize with ``compare-and-swap``. This
module provides:

* :class:`AtomicCell` -- the single-threaded model used during normal runs:
  CAS succeeds exactly when the expected value matches, which is the
  sequentially-consistent semantics the algorithms rely on. Operation counts
  are still recorded so benchmarks can report CAS totals.
* :class:`FlakyAtomicCell` -- a fault-injection variant whose CAS spuriously
  fails on a caller-controlled schedule. Tests use it to exercise the retry
  loops in ``LINK-EFFICIENT`` (Algorithm 5, lines 12-27) and the union-find,
  which in a real multicore run would be triggered by contention.

Serializing the physical interleavings is the documented substitution for
shared-memory threads (see DESIGN.md); the algorithmic structure -- retry
loops, idempotent re-linking, helping -- executes unchanged.
"""

from __future__ import annotations

from typing import Any, Callable, Generic, Iterator, Optional, TypeVar

T = TypeVar("T")


class AtomicStats:
    """Shared operation counters for a family of atomic cells."""

    __slots__ = ("loads", "stores", "cas_attempts", "cas_failures")

    def __init__(self) -> None:
        self.loads = 0
        self.stores = 0
        self.cas_attempts = 0
        self.cas_failures = 0

    def reset(self) -> None:
        self.loads = 0
        self.stores = 0
        self.cas_attempts = 0
        self.cas_failures = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"AtomicStats(loads={self.loads}, stores={self.stores}, "
                f"cas={self.cas_attempts}, failed={self.cas_failures})")


class AtomicCell(Generic[T]):
    """A memory cell supporting load / store / compare-and-swap.

    In the single-threaded simulation a CAS fails only on a genuine value
    mismatch, matching what any linearization of the concurrent execution
    would produce for the algorithms in this library (their CAS loops re-read
    state on failure and retry).
    """

    __slots__ = ("_value", "_stats")

    def __init__(self, value: T, stats: Optional[AtomicStats] = None) -> None:
        self._value = value
        self._stats = stats

    def load(self) -> T:
        if self._stats is not None:
            self._stats.loads += 1
        return self._value

    def store(self, value: T) -> None:
        if self._stats is not None:
            self._stats.stores += 1
        self._value = value

    def compare_and_swap(self, expected: T, new: T) -> bool:
        """Atomically replace ``expected`` with ``new``; report success."""
        if self._stats is not None:
            self._stats.cas_attempts += 1
        if self._value == expected:
            self._value = new
            return True
        if self._stats is not None:
            self._stats.cas_failures += 1
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AtomicCell({self._value!r})"


class FlakyAtomicCell(AtomicCell[T]):
    """An :class:`AtomicCell` whose CAS can be forced to fail.

    ``failure_schedule`` yields booleans; when it yields ``True`` the next
    CAS fails spuriously (as if another thread won the race) *and* the
    injected ``interference`` callback may mutate the cell first, modelling
    the competing write. Once the schedule is exhausted the cell behaves
    normally.
    """

    __slots__ = ("_schedule", "_interference")

    def __init__(self, value: T,
                 failure_schedule: Iterator[bool],
                 interference: Optional[Callable[["FlakyAtomicCell[T]"], None]] = None,
                 stats: Optional[AtomicStats] = None) -> None:
        super().__init__(value, stats)
        self._schedule = iter(failure_schedule)
        self._interference = interference

    def compare_and_swap(self, expected: T, new: T) -> bool:
        should_fail = next(self._schedule, False)
        if should_fail:
            if self._stats is not None:
                self._stats.cas_attempts += 1
                self._stats.cas_failures += 1
            if self._interference is not None:
                self._interference(self)
            return False
        return super().compare_and_swap(expected, new)


def write_min(cell: AtomicCell[Any], value: Any) -> bool:
    """Atomically lower ``cell`` to ``value`` if it is currently larger.

    The standard priority-write primitive built from a CAS loop; returns
    whether this call performed the final successful write.
    """
    while True:
        current = cell.load()
        if value >= current:
            return False
        if cell.compare_and_swap(current, value):
            return True


def fetch_and_add(cell: AtomicCell[int], delta: int) -> int:
    """Atomically add ``delta``; return the previous value."""
    while True:
        current = cell.load()
        if cell.compare_and_swap(current, current + delta):
            return current
