"""Core contribution: nucleus decomposition and hierarchy construction.

Algorithm map (paper -> module):

* ``ARB-NUCLEUS`` (coreness peeling)          -> :mod:`repro.core.nucleus`
* ``APPROX-ARB-NUCLEUS`` (Algorithm 2)        -> :mod:`repro.core.approx`
* ``ARB-NUCLEUS-HIERARCHY`` (Algorithm 1)     -> :mod:`repro.core.hierarchy_te`
* framework (Algorithm 3)                     -> :mod:`repro.core.framework`
* ``LINK-BASIC`` (Algorithm 4)                -> :mod:`repro.core.link_basic`
* ``LINK-EFFICIENT`` (Algorithm 5)            -> :mod:`repro.core.link_efficient`
* hierarchy tree + result objects             -> :mod:`repro.core.tree`,
                                                 :mod:`repro.core.decomposition`
* public façade                               -> :mod:`repro.core.api`
"""

from .api import (choose_method, decompose_to_artifact, k_core, k_truss,
                  nucleus_decomposition)
from .approx import (approx_anh_bl, approx_anh_el, approx_anh_te,
                     approx_arb_nucleus, approximation_bound, peel_approx)
from .decomposition import NucleusDecomposition
from .densest import (DensestResult, exact_density, k_clique_densest,
                      k_clique_densest_parallel)
from .framework import InterleavedResult, anh_bl, anh_el, run_interleaved
from .hierarchy_te import hierarchy_te_practical, hierarchy_te_theoretical
from .link_basic import LinkBasic
from .link_efficient import LinkEfficient
from .nucleus import (CorenessResult, NucleusInput, arb_nucleus, peel_exact,
                      prepare)
from .queries import (Community, HierarchyQueryIndex, HierarchyStatistics,
                      hierarchy_statistics)
from .validation import ValidationReport, verify_decomposition
from .tree import (HierarchyTree, HierarchyTreeBuilder,
                   tree_from_partition_chain)

__all__ = [
    "choose_method", "decompose_to_artifact", "k_core", "k_truss",
    "nucleus_decomposition",
    "approx_anh_bl", "approx_anh_el", "approx_anh_te", "approx_arb_nucleus",
    "approximation_bound", "peel_approx", "NucleusDecomposition",
    "DensestResult", "exact_density", "k_clique_densest",
    "k_clique_densest_parallel",
    "InterleavedResult", "anh_bl", "anh_el", "run_interleaved",
    "hierarchy_te_practical", "hierarchy_te_theoretical", "LinkBasic",
    "LinkEfficient", "CorenessResult", "NucleusInput", "arb_nucleus",
    "peel_exact", "prepare", "HierarchyTree", "HierarchyTreeBuilder",
    "tree_from_partition_chain", "Community", "HierarchyQueryIndex",
    "HierarchyStatistics", "hierarchy_statistics", "ValidationReport",
    "verify_decomposition",
]
