"""Data-structure substrates used by the nucleus decomposition algorithms.

* :mod:`repro.ds.union_find` -- concurrent (Jayanti-Tarjan) and sequential DSU.
* :mod:`repro.ds.flat_union_find` -- batched min-label DSU over flat arrays.
* :mod:`repro.ds.bucketing` -- Julienne-style exact bucketing for peeling.
* :mod:`repro.ds.approx_bucketing` -- geometric range buckets (Algorithm 2).
* :mod:`repro.ds.linked_list` -- O(1)-concat linked lists (Algorithm 1).
"""

from .approx_bucketing import (GeometricBucketQueue, bucket_of_degree,
                               bucket_upper_bound, default_round_cap)
from .bucketing import BucketQueue
from .flat_union_find import FlatUnionFind
from .heap_bucketing import HeapBucketQueue
from .linked_list import CatList
from .union_find import (ConcurrentUnionFind, SequentialUnionFind,
                         UnionFindStats, partition_refines)

__all__ = [
    "GeometricBucketQueue", "bucket_of_degree", "bucket_upper_bound",
    "default_round_cap", "BucketQueue", "FlatUnionFind", "HeapBucketQueue",
    "CatList", "ConcurrentUnionFind",
    "SequentialUnionFind", "UnionFindStats", "partition_refines",
]
