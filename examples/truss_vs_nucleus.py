"""Why (r, s) nuclei: k-core vs k-truss vs (3, 4) on the same graph.

Sariyuce et al. introduced nucleus decomposition because higher (r, s)
values find higher-quality dense subgraphs than k-core or k-truss (the
quality metric is edge density, as in the paper's Figure 10). This
example runs (1,2), (2,3), and (3,4) on one graph and compares the edge
density of the best subgraph each decomposition surfaces at a comparable
size -- plus the round-trip through SNAP edge-list files, showing the IO
path users would take with real data.

Run:  python examples/truss_vs_nucleus.py
"""

import io

from repro import nucleus_decomposition, read_edge_list, write_edge_list
from repro.analysis.density import edge_density
from repro.analysis.reporting import format_table
from repro.graphs.generators import powerlaw_cluster, with_planted_communities


def build_graph():
    base = powerlaw_cluster(700, 3, 0.55, seed=33)
    return with_planted_communities(base, sizes=[26, 14, 10], p_in=0.55,
                                    seed=34, name="quality-demo")


def main():
    graph = build_graph()

    # Round-trip through the SNAP edge-list format (what you would do
    # with a real downloaded graph).
    buffer = io.StringIO()
    write_edge_list(graph, buffer)
    graph = read_edge_list(io.StringIO(buffer.getvalue()),
                           name="quality-demo")
    print(f"graph: n={graph.n}, m={graph.m} "
          f"(round-tripped through edge-list IO)\n")

    rows = []
    for r, s, label in ((1, 2, "k-core"), (2, 3, "k-truss"),
                        (3, 4, "(3,4) nucleus")):
        result = nucleus_decomposition(graph, r, s)
        # the deepest nucleus of a nontrivial size
        best = result.densest_nucleus(min_vertices=8)
        deepest = result.nuclei_at(result.max_core)
        deepest_vertices = deepest[0] if deepest else []
        rows.append((
            label,
            f"{result.max_core:g}",
            len(deepest_vertices),
            f"{edge_density(graph, deepest_vertices):.3f}",
            best.n_vertices,
            f"{best.density:.3f}",
        ))
    print(format_table(
        ("decomposition", "max core", "deepest |V|", "deepest density",
         "best |V|>=8", "best density"),
        rows,
        title="quality comparison: deeper (r,s) = denser discovered subgraphs"))

    best = [float(row[5]) for row in rows]
    print("\nBest >=8-vertex subgraph surfaced by each decomposition:")
    print(f"  k-core {best[0]:.3f} <= k-truss {best[1]:.3f} "
          f"<= (3,4) nucleus {best[2]:.3f}")
    assert best[0] <= best[1] + 1e-9 and best[1] <= best[2] + 1e-9


if __name__ == "__main__":
    main()
