"""``APPROX-ARB-NUCLEUS`` (Algorithm 2) and the approximate hierarchies.

The exact peeling's span is ``O(rho * log n)`` and the peeling complexity
``rho`` can be huge. The approximate algorithm peels *ranges* of degrees:
bucket ``B_i`` covers degrees in ``[(C+d)(1+d)^i, (C+d)(1+d)^(i+1))`` with
``C = comb(s, r)`` and ``d = delta``, each bucket is processed at most
``O(log_{1+d/C} n)`` rounds, and cliques whose degree falls below the
active range are simply peeled with it. Theorem 6.3: the estimates are a
``(C + eps)``-approximation (``(C+d)(1+d)`` multiplicative) of the true
core numbers, in ``O(m * alpha^(s-2))`` work and ``O(log^3 n)`` span.

A peeled clique's estimate is the upper bound of its bucket, improved in
practice to ``min(upper bound, original s-clique degree)`` (Section 6).

The hierarchy variants (``APPROX-ANH-*``) reuse the exact machinery with
the estimates in place of core numbers: the same LINK call discipline holds
(estimates are final when a clique is peeled), so Algorithms 1, 4, and 5
apply unchanged -- exactly how the paper composes
``ARB-APPROX-NUCLEUS-HIERARCHY``.
"""

from __future__ import annotations

import time
from typing import List, Optional

from ..ds.approx_bucketing import GeometricBucketQueue
from ..errors import ParameterError
from ..graphs.graph import Graph
from ..parallel.counters import (NullCounter, WorkSpanCounter, log2_ceil)
from .framework import InterleavedResult, run_interleaved
from .link_basic import LinkBasic
from .link_efficient import LinkEfficient
from .nucleus import CorenessResult, LinkFn, NucleusInput, prepare
from .tree import HierarchyTree


def peel_approx(incidence, delta: float,
                counter: Optional[WorkSpanCounter] = None,
                link: Optional[LinkFn] = None,
                core_out: Optional[List[float]] = None,
                round_cap: Optional[int] = None) -> CorenessResult:
    """Approximate peeling over a prebuilt incidence (Algorithm 2).

    Same alive/decrement/link discipline as
    :func:`~repro.core.nucleus.peel_exact`; only the bucketing changes.
    """
    if delta <= 0:
        raise ParameterError(f"delta must be > 0, got {delta}")
    counter = counter if counter is not None else NullCounter()
    n_r = incidence.n_r
    original = incidence.initial_degrees()
    queue = GeometricBucketQueue(original, incidence.s_choose_r, delta,
                                 round_cap=round_cap)
    if core_out is None:
        core: List[float] = [0.0] * n_r
    else:
        if len(core_out) != n_r:
            raise ParameterError(
                f"core_out has length {len(core_out)}, expected {n_r}")
        core = core_out
        for i in range(n_r):
            core[i] = 0.0
    alive = [True] * n_r
    link_calls = 0
    n_log = log2_ceil(max(n_r, 1))
    while not queue.empty:
        upper, batch = queue.next_round()                  # lines 8-11
        round_work = len(batch)
        for rid in batch:
            # Bucket upper bound, refined by the original degree (Sec. 6).
            core[rid] = min(upper, float(original[rid]))   # line 16
        for rid in batch:
            for members in incidence.s_cliques_containing(rid):  # line 13
                round_work += len(members)
                others = [x for x in members if x != rid]
                if all(alive[o] for o in others):
                    for other in others:
                        if queue.alive(other):
                            queue.decrement(other)         # line 15
                else:
                    if link is not None:
                        for other in others:
                            if not alive[other]:
                                link(other, rid)
                                link_calls += 1
            alive[rid] = False
        counter.add_parallel(round_work, 1 + n_log)
    return CorenessResult(
        core=core,
        rho=queue.rounds,
        k_max=max(core, default=0.0),
        n_r=n_r,
        n_s=incidence.n_s,
        work_span=counter.snapshot(),
        stats={
            "bucket_updates": float(queue.updates),
            "bucket_promotions": float(queue.bucket_promotions),
            "round_cap": float(queue.round_cap),
            "link_calls": float(link_calls),
        },
    )


def approx_arb_nucleus(graph: Graph, r: int, s: int, delta: float = 0.5,
                       strategy: str = "materialized",
                       counter: Optional[WorkSpanCounter] = None,
                       prepared: Optional[NucleusInput] = None,
                       round_cap: Optional[int] = None) -> CorenessResult:
    """Approximate (r, s)-clique core estimates (``APPROX-ARB-NUCLEUS``)."""
    counter = counter if counter is not None else WorkSpanCounter()
    if prepared is None:
        prepared = prepare(graph, r, s, strategy=strategy, counter=counter)
    return peel_approx(prepared.incidence, delta, counter=counter,
                       round_cap=round_cap)


def approximation_bound(s_choose_r: int, delta: float) -> float:
    """The proven multiplicative factor ``(C + delta) * (1 + delta)``."""
    return (s_choose_r + delta) * (1.0 + delta)


def _basic_levels(incidence, delta: float) -> List[float]:
    """A level universe covering every possible approximate estimate.

    Estimates are ``min(bucket upper bound, original degree)``, so the
    distinct positive degrees plus every geometric bucket boundary up to
    the maximum degree cover all values an estimate can take. ANH-BL
    allocates one union-find per candidate level -- over-allocation that is
    faithful to its memory profile (Section 8.1).
    """
    from ..ds.approx_bucketing import bucket_of_degree, bucket_upper_bound
    degrees = incidence.initial_degrees()
    levels = {float(d) for d in degrees if d > 0}
    max_degree = max(degrees, default=0)
    if max_degree > 0:
        base = incidence.s_choose_r + delta
        growth = 1.0 + delta
        top = bucket_of_degree(max_degree, base, growth)
        for i in range(top + 2):
            upper = bucket_upper_bound(i, base, growth)
            if upper <= max_degree:
                levels.add(upper)
    return sorted(levels)


def approx_anh_el(graph: Graph, r: int, s: int, delta: float = 0.5,
                  strategy: str = "materialized",
                  counter: Optional[WorkSpanCounter] = None,
                  prepared: Optional[NucleusInput] = None,
                  round_cap: Optional[int] = None,
                  seed: int = 0) -> InterleavedResult:
    """APPROX-ANH-EL: approximate peeling interleaved with Algorithm 5."""
    counter = counter if counter is not None else WorkSpanCounter()
    if prepared is None:
        prepared = prepare(graph, r, s, strategy=strategy, counter=counter)

    def peel(incidence, counter=None, link=None, core_out=None):
        return peel_approx(incidence, delta, counter=counter, link=link,
                           core_out=core_out, round_cap=round_cap)

    return run_interleaved(prepared,
                           lambda core: LinkEfficient(core, seed=seed),
                           counter, peel=peel)


def approx_anh_bl(graph: Graph, r: int, s: int, delta: float = 0.5,
                  strategy: str = "materialized",
                  counter: Optional[WorkSpanCounter] = None,
                  prepared: Optional[NucleusInput] = None,
                  round_cap: Optional[int] = None,
                  seed: int = 0) -> InterleavedResult:
    """APPROX-ANH-BL: approximate peeling interleaved with Algorithm 4."""
    counter = counter if counter is not None else WorkSpanCounter()
    if prepared is None:
        prepared = prepare(graph, r, s, strategy=strategy, counter=counter)
    levels = _basic_levels(prepared.incidence, delta)

    def peel(incidence, counter=None, link=None, core_out=None):
        return peel_approx(incidence, delta, counter=counter, link=link,
                           core_out=core_out, round_cap=round_cap)

    return run_interleaved(prepared,
                           lambda core: LinkBasic(core, levels=levels,
                                                  seed=seed),
                           counter, peel=peel)


def approx_anh_te(graph: Graph, r: int, s: int, delta: float = 0.5,
                  strategy: str = "materialized",
                  counter: Optional[WorkSpanCounter] = None,
                  prepared: Optional[NucleusInput] = None,
                  round_cap: Optional[int] = None,
                  theoretical: bool = False,
                  seed: int = 0) -> InterleavedResult:
    """APPROX-ANH-TE: approximate coreness, then the two-phase hierarchy.

    ``theoretical=True`` selects the faithful Algorithm 1 construction;
    the default is the practical Section 7.4 variant (as benchmarked).
    """
    from .hierarchy_te import (hierarchy_te_practical,
                               hierarchy_te_theoretical)
    counter = counter if counter is not None else WorkSpanCounter()
    if prepared is None:
        prepared = prepare(graph, r, s, strategy=strategy, counter=counter)
    coreness = peel_approx(prepared.incidence, delta, counter=counter,
                           round_cap=round_cap)
    if theoretical:
        return hierarchy_te_theoretical(graph, r, s, prepared=prepared,
                                        coreness=coreness, counter=counter)
    return hierarchy_te_practical(graph, r, s, prepared=prepared,
                                  coreness=coreness, counter=counter,
                                  seed=seed)
