"""``LINK-EFFICIENT`` and ``CONSTRUCT-TREE-EFFICIENT`` (Algorithm 5) -- ANH-EL.

The paper's main practical contribution: instead of one union-find per
level, a *single* concurrent union-find ``uf`` plus one hash table ``L``:

* ``uf`` connects r-cliques with **equal** core numbers (the sets of
  r-cliques with distinct core numbers are disjoint, so one structure
  suffices);
* ``L`` maps each component representative to its **nearest core**: an
  r-clique of the largest core number *strictly below* the component's, to
  which the component is connected through r-cliques of core number at
  least that value.

New adjacency information arriving mid-peel can invalidate either
structure, so ``LINK-EFFICIENT`` cascades: uniting two components must
re-negotiate their nearest cores, and displacing an entry of ``L`` must
re-link the displaced clique. All updates go through compare-and-swap on
:class:`~repro.parallel.atomics.AtomicCell` (the concurrency model of
DESIGN.md); the retry loop of Algorithm 5 lines 12-27 is implemented
verbatim, and the cascading recursive calls become an explicit work stack
(Python's recursion limit would otherwise bound the cascade depth).

Extra space is exactly ``2 * n_r`` integers (``uf`` parents + ``L``), the
figure the paper quotes against NH's ``comb(s,r)*n_s + n_r``.

Alongside its baseline role, this builder serves as a differential
oracle for the array-native hierarchy kernel
(:mod:`repro.core.hierarchy_kernel`): the randomized suite in
``tests/test_hierarchy_kernel.py`` pins every kernel route to the same
canonical tree this interleaved construction produces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..ds.union_find import ConcurrentUnionFind
from ..errors import DataStructureError
from ..parallel.atomics import AtomicCell, AtomicStats
from .tree import HierarchyTree, HierarchyTreeBuilder, Level

#: Sentinel for "no entry" in the nearest-core table ``L``.
EMPTY = -1


class LinkEfficient:
    """Single union-find + nearest-core table linking (Algorithm 5)."""

    name = "link-efficient"

    #: Safety valve for the cascade loop; a correct execution performs at
    #: most O(n_r) effective updates per link, so hitting this indicates a
    #: bug rather than a big input.
    MAX_STEPS_FACTOR = 64

    def __init__(self, core: Sequence[Level], seed: int = 0) -> None:
        # Hold the list by reference: the interleaved framework fills core
        # numbers in place while linking (Algorithm 3's call discipline).
        self.core = core if isinstance(core, list) else list(core)
        n_r = len(self.core)
        self.uf = ConcurrentUnionFind(n_r, seed=seed)
        self.atomic_stats = AtomicStats()
        self.L: List[AtomicCell[int]] = [
            AtomicCell(EMPTY, self.atomic_stats) for _ in range(n_r)
        ]
        self.link_calls = 0
        self.cascade_calls = 0

    # -- the LINK subroutine ----------------------------------------------

    def link(self, r_early: int, r_late: int) -> None:
        """Record that two r-cliques are s-clique-adjacent.

        Core numbers of both arguments must be final (guaranteed by the
        peeling framework's call discipline).
        """
        self.link_calls += 1
        nd = self.core
        uf = self.uf
        stack = [(r_early, r_late)]
        budget = self.MAX_STEPS_FACTOR * (len(nd) + 4)
        while stack:
            budget -= 1
            if budget < 0:
                raise DataStructureError(
                    "LINK-EFFICIENT cascade exceeded its step budget; "
                    "this indicates a bug in the link invariants")
            r, q = stack.pop()
            if r == EMPTY or q == EMPTY:                       # line 4
                continue
            if nd[q] < nd[r]:                                  # line 5
                r, q = q, r
            r = uf.find(r)                                     # line 6
            q = uf.find(q)
            if r == q:
                continue
            if nd[r] == nd[q]:                                 # line 7
                self.cascade_calls += 1
                uf.unite(r, q)                                 # line 8
                if uf.find(r) != r:                            # line 9
                    stack.append((self.L[r].load(), uf.find(r)))
                if uf.find(q) != q:                            # line 10
                    stack.append((self.L[q].load(), uf.find(q)))
                continue
            # nd[r] < nd[q]                                      line 11
            while True:                                        # line 12
                lq = self.L[q].load()                          # line 13
                q = uf.find(q)                                 # line 14
                if self.L[q].compare_and_swap(EMPTY, r):       # line 15
                    if uf.find(q) != q:                        # line 16
                        stack.append((r, uf.find(q)))          # line 17
                    break                                      # line 18
                if lq == EMPTY:
                    # The entry appeared between our read and the CAS
                    # (possible under contention): retry with fresh reads.
                    continue
                if nd[lq] < nd[r]:                             # line 19
                    if self.L[q].compare_and_swap(lq, r):      # line 20
                        if uf.find(q) != q:                    # line 21
                            stack.append((r, uf.find(q)))      # line 22
                        stack.append((r, lq))                  # line 23
                        break                                  # line 24
                    continue  # CAS failed: retry the loop
                # nd[lq] >= nd[r]                                line 25
                stack.append((r, self.L[q].load()))            # line 26
                break                                          # line 27

    # -- tree construction --------------------------------------------------

    def construct_tree(self) -> HierarchyTree:
        """``CONSTRUCT-TREE-EFFICIENT`` (Algorithm 5, lines 28-36).

        Stage 1 creates one parent per union-find component (equal-core
        nuclei); stage 2 attaches each component under the component of its
        nearest core. Both stages are flat parallel loops in the paper; the
        builder realizes the same tree with single-child chains suppressed
        (the equivalence the paper notes in Section 7.3).
        """
        components = self.uf.components()
        # Group attachments by the *component* of the nearest core.
        attached_to: Dict[int, List[int]] = {}
        for root in components:
            nearest = self.L[root].load()
            if nearest != EMPTY:
                target = self.uf.find(nearest)
                attached_to.setdefault(target, []).append(root)
        builder = HierarchyTreeBuilder(self.core)
        # Descending core order: children exist before their parents merge.
        for root in sorted(components, key=lambda x: self.core[x],
                           reverse=True):
            group = list(components[root])
            for source_root in attached_to.get(root, ()):
                # Any member leaf stands for the attached component: the
                # builder resolves it to that component's current top node.
                group.append(components[source_root][0])
            builder.merge(group, self.core[root], rep=root)
        return builder.build()

    def memory_units(self) -> int:
        """Extra integers held: uf parents + L (the paper's ``2 n_r``)."""
        return 2 * len(self.core)

    def stats(self) -> Dict[str, float]:
        return {
            "link_calls": float(self.link_calls),
            "cascade_calls": float(self.cascade_calls),
            "unite_calls": float(self.uf.stats.unites),
            "effective_unites": float(self.uf.stats.effective_unites),
            "cas_attempts": float(self.atomic_stats.cas_attempts),
            "cas_failures": float(self.atomic_stats.cas_failures),
            "memory_units": float(self.memory_units()),
        }
