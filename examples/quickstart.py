"""Quickstart: compute a nucleus decomposition hierarchy in five lines.

Run:  python examples/quickstart.py
"""

from repro import nucleus_decomposition, powerlaw_cluster

# 1. Get a graph. Any repro.graphs.Graph works; here, a clique-rich
#    synthetic social network. To use your own data:
#        from repro import read_edge_list
#        graph = read_edge_list("my_snap_file.txt")
graph = powerlaw_cluster(400, 4, 0.8, seed=42, name="demo")

# 2. Decompose. (2, 3) is the k-truss; the method is chosen automatically
#    (the paper's rule: ANH-EL for small s-r, ANH-TE otherwise).
result = nucleus_decomposition(graph, r=2, s=3)
print(result.summary())
print()

# 3. Core numbers: how deeply nested each r-clique (here: edge) is.
some_edge = next(iter(graph.edges()))
print(f"core number of edge {some_edge}: {result.core_of(some_edge):g}")
print(f"maximum core number: {result.max_core:g}")
print()

# 4. The hierarchy: nuclei at every resolution. Cutting at level c gives
#    all c-(2,3) nuclei -- the maximal subgraphs where every edge is in at
#    least c triangles.
for level in result.hierarchy_levels():
    nuclei = result.nuclei_at(level)
    sizes = sorted((len(n) for n in nuclei), reverse=True)
    print(f"level {level:g}: {len(nuclei)} nuclei, "
          f"largest {sizes[0]} vertices")
print()

# 5. The densest community the hierarchy found.
best = result.densest_nucleus(min_vertices=4)
print(f"densest nucleus: {best.n_vertices} vertices at edge density "
      f"{best.density:.2f} (level {best.level:g})")

# Bonus: how would this scale on the paper's 30-core machine?
print(f"\npredicted self-relative speedup on 30 cores: "
      f"{result.speedup(30):.1f}x "
      f"(Brent's bound over measured work/span)")
