"""Randomized differential tests for the array hierarchy kernel.

The contract under test (see ``repro.core.hierarchy_kernel``): the
level-batched flat-array construction emits a tree **element-identical**
to the scalar ANH-TE path -- same node ids, parents, levels,
representatives -- with the same stats and work/span meters, and both
agree with the definition-level oracle ``repro.baselines.naive_hierarchy``
up to canonical relabeling. The suite sweeps seeded G(n, p) and
power-law graphs over the Fig. 7 ``(r, s)`` grid, crossed with
``kernel x strategy x backend``, plus unit tests for
:class:`repro.ds.flat_union_find.FlatUnionFind` and the artifact
byte-match guarantee.
"""

from __future__ import annotations

import os
import random

import numpy as np
import pytest

from conftest import RS_PAIRS
from repro.baselines.naive_hierarchy import naive_hierarchy
from repro.core.api import nucleus_decomposition
from repro.core.hierarchy_kernel import build_tree_arrays, supports_array_tree
from repro.core.hierarchy_te import hierarchy_te_practical
from repro.core.nucleus import peel_exact, prepare
from repro.ds.flat_union_find import FlatUnionFind
from repro.ds.union_find import SequentialUnionFind
from repro.errors import DataStructureError, ParameterError
from repro.graphs import Graph, erdos_renyi, powerlaw_cluster
from repro.parallel.backend import ProcessBackend
from repro.parallel.counters import WorkSpanCounter
from repro.store.format import read_header

#: The (r, s) pairs of the five Fig. 7 configurations.
FIG7_GRID = ((2, 3), (2, 4), (3, 4))

#: Stats keys both tree constructions must agree on exactly.
TREE_STAT_KEYS = ("link_calls", "unite_calls", "effective_unites",
                  "memory_units")


def exact_triple(tree):
    """The element-identity witness: raw parent/level/rep lists."""
    return (tree.parent, tree.level, tree.rep)


def chain_of(tree):
    """Canonical partition chain as nested sorted lists."""
    return {level: sorted(sorted(group) for group in groups)
            for level, groups in tree.partition_chain().items()}


def loop_and_array(graph, r, s):
    """One prepared CSR run of both tree kernels over shared coreness."""
    prep = prepare(graph, r, s, strategy="csr")
    coreness = peel_exact(prep.incidence)
    c_loop, c_arr = WorkSpanCounter(), WorkSpanCounter()
    loop = hierarchy_te_practical(graph, r, s, prepared=prep,
                                  coreness=coreness, counter=c_loop,
                                  kernel="loop")
    arr = hierarchy_te_practical(graph, r, s, prepared=prep,
                                 coreness=coreness, counter=c_arr,
                                 kernel="array")
    return prep, coreness, loop, arr, c_loop, c_arr


@pytest.fixture(scope="module")
def pool():
    """A shared 2-worker process pool (instance => API does not close it)."""
    with ProcessBackend(workers=2) as backend:
        yield backend


class TestFlatUnionFind:
    """Unit tests for the batched min-label union-find."""

    def test_matches_sequential_on_random_batches(self):
        rng = random.Random(13)
        for trial in range(25):
            n = rng.randint(1, 60)
            flat = FlatUnionFind(n)
            seq = SequentialUnionFind(n)
            for _ in range(rng.randint(1, 5)):
                m = rng.randint(0, 2 * n)
                u = np.array([rng.randrange(n) for _ in range(m)],
                             dtype=np.int64)
                v = np.array([rng.randrange(n) for _ in range(m)],
                             dtype=np.int64)
                gained = flat.unite_batch(u, v)
                before = sum(1 for x in range(n) if seq.find(x) == x)
                for a, b in zip(u.tolist(), v.tolist()):
                    seq.unite(a, b)
                after = sum(1 for x in range(n) if seq.find(x) == x)
                assert gained == before - after
                # Same partition, and every root is its component minimum.
                for x in range(n):
                    assert flat.find(x) == min(
                        y for y in range(n) if seq.find(y) == seq.find(x))

    def test_min_label_invariant_allows_vectorized_find(self):
        uf = FlatUnionFind(8)
        uf.unite_batch(np.array([7, 5, 3], dtype=np.int64),
                       np.array([5, 3, 1], dtype=np.int64))
        assert uf.find_many(np.arange(8)).tolist() == \
            uf.parent.tolist()
        assert uf.find(7) == 1
        assert uf.n_components() == 5
        assert uf.components()[1] == [1, 3, 5, 7]

    def test_empty_and_errors(self):
        uf = FlatUnionFind(4)
        empty = np.empty(0, dtype=np.int64)
        assert uf.unite_batch(empty, empty) == 0
        assert uf.n_components() == 4
        with pytest.raises(DataStructureError):
            uf.unite_batch(np.array([0]), np.array([1, 2]))
        with pytest.raises(DataStructureError):
            uf.find(4)
        with pytest.raises(DataStructureError):
            FlatUnionFind(-1)

    def test_self_loops_and_duplicates(self):
        uf = FlatUnionFind(5)
        u = np.array([0, 1, 1, 2, 2], dtype=np.int64)
        v = np.array([0, 2, 2, 1, 3], dtype=np.int64)
        assert uf.unite_batch(u, v) == 2
        assert uf.same_set(1, 3)
        assert not uf.same_set(0, 4)


class TestKernelNodeIdentity:
    """kernel=array is element-identical to kernel=loop, meters included."""

    @pytest.mark.parametrize("r,s", RS_PAIRS)
    def test_fixtures_all_rs(self, paper_like_graph, planted,
                             two_triangles_bridge, r, s):
        for graph in (paper_like_graph, planted, two_triangles_bridge):
            _, _, loop, arr, c_loop, c_arr = loop_and_array(graph, r, s)
            assert exact_triple(arr.tree) == exact_triple(loop.tree), \
                (graph.name, r, s)
            for key in TREE_STAT_KEYS:
                assert arr.stats[key] == loop.stats[key], (graph.name, key)
            assert (c_arr.work, c_arr.span) == (c_loop.work, c_loop.span), \
                (graph.name, r, s)

    def test_canonical_form_matches_too(self, planted):
        _, _, loop, arr, _, _ = loop_and_array(planted, 2, 3)
        assert arr.tree.canonical_form() == loop.tree.canonical_form()


class TestRandomizedDifferential:
    """The >= 200 seeded random graph sweep against both oracles."""

    def _check_graph(self, graph, r, s):
        prep, coreness, loop, arr, c_loop, c_arr = loop_and_array(graph, r, s)
        # Element-identical tree vs the scalar path...
        assert exact_triple(arr.tree) == exact_triple(loop.tree), \
            (graph.name, r, s)
        for key in TREE_STAT_KEYS:
            assert arr.stats[key] == loop.stats[key], (graph.name, r, s, key)
        assert (c_arr.work, c_arr.span) == (c_loop.work, c_loop.span)
        # ...definitional agreement with the naive oracle (ND[R] is the
        # leaf level vector; the chain is the nucleus-set witness)...
        oracle = naive_hierarchy(prep.incidence, coreness.core)
        assert arr.tree.core_numbers() == oracle.core_numbers()
        assert chain_of(arr.tree) == chain_of(oracle), (graph.name, r, s)
        # ...and the leaves partition the r-clique set.
        seen = sorted(leaf for root in arr.tree.roots()
                      for leaf in arr.tree.leaves_under(root))
        assert seen == list(range(prep.n_r))

    def test_gnp_sweep(self):
        rng = random.Random(2024)
        for trial in range(120):
            n = rng.randint(10, 30)
            p = rng.uniform(0.15, 0.45)
            graph = erdos_renyi(n, p, seed=rng.randint(0, 10**6))
            r, s = FIG7_GRID[trial % len(FIG7_GRID)]
            self._check_graph(graph, r, s)

    def test_powerlaw_sweep(self):
        rng = random.Random(777)
        for trial in range(80):
            n = rng.randint(16, 40)
            m_attach = rng.randint(2, 3)
            graph = powerlaw_cluster(n, m_attach, rng.uniform(0.2, 0.7),
                                     seed=rng.randint(0, 10**6))
            r, s = FIG7_GRID[trial % len(FIG7_GRID)]
            self._check_graph(graph, r, s)


class TestKernelStrategyBackendMatrix:
    """kernel x strategy x backend: one decomposition, every route."""

    KERNELS = ("auto", "array", "vectorized", "loop")
    STRATEGIES = ("csr", "materialized")

    @pytest.mark.parametrize("r,s", FIG7_GRID)
    def test_matrix(self, paper_like_graph, planted, pool, r, s):
        for graph in (paper_like_graph, planted):
            reference = None
            for strategy in self.STRATEGIES:
                for kern in self.KERNELS:
                    if strategy != "csr" and kern in ("array", "vectorized"):
                        continue  # both force CSR-only engines
                    for backend in (None, pool):
                        got = nucleus_decomposition(
                            graph, r, s, strategy=strategy, method="anh-te",
                            kernel=kern, backend=backend)
                        snap = (got.coreness.core, chain_of(got.tree),
                                got.tree.canonical_form())
                        if reference is None:
                            reference = snap
                        assert snap == reference, \
                            (graph.name, r, s, strategy, kern,
                             "process" if backend else "serial")

    def test_array_tree_requires_csr(self, planted):
        with pytest.raises(ParameterError):
            nucleus_decomposition(planted, 2, 3, strategy="materialized",
                                  method="anh-te", kernel="array")

    def test_auto_on_materialized_falls_back(self, planted):
        loop = nucleus_decomposition(planted, 2, 3, strategy="materialized",
                                     method="anh-te", kernel="loop")
        auto = nucleus_decomposition(planted, 2, 3, strategy="materialized",
                                     method="anh-te", kernel="auto")
        assert exact_triple(auto.tree) == exact_triple(loop.tree)


class TestEdgeCases:
    def test_rejects_non_csr_incidence(self, planted):
        prep = prepare(planted, 2, 3, strategy="materialized")
        assert not supports_array_tree(prep.incidence)
        with pytest.raises(ParameterError):
            build_tree_arrays(prep.incidence, [0.0] * prep.n_r)

    def test_no_s_cliques(self):
        graph = Graph(4, [(0, 1), (2, 3)], name="no-triangles")
        prep = prepare(graph, 2, 3, strategy="csr")
        coreness = peel_exact(prep.incidence)
        tree, stats = build_tree_arrays(prep.incidence, coreness.core)
        assert tree.n_leaves == prep.n_r
        assert tree.n_internal == 0
        assert stats["unite_calls"] == 0

    def test_empty_graph(self):
        graph = Graph(0, [], name="empty")
        prep = prepare(graph, 1, 2, strategy="csr")
        tree, _ = build_tree_arrays(prep.incidence, [])
        assert tree.n_nodes == 0

    def test_single_clique(self):
        graph = Graph(4, [(a, b) for a in range(4)
                          for b in range(a + 1, 4)], name="k4")
        _, _, loop, arr, _, _ = loop_and_array(graph, 2, 3)
        assert exact_triple(arr.tree) == exact_triple(loop.tree)
        assert arr.tree.n_internal == 1


class TestArtifactByteMatch:
    """Artifacts built via the array kernel byte-match the loop kernel's."""

    def test_payloads_identical(self, planted, tmp_path):
        from repro.core.api import decompose_to_artifact
        payloads = {}
        for kern in ("array", "loop"):
            path = os.fspath(tmp_path / f"planted-{kern}.nda")
            decompose_to_artifact(planted, 2, 3, path, strategy="csr",
                                  method="anh-te", kernel=kern)
            payload_start, meta = read_header(path)
            with open(path, "rb") as handle:
                handle.seek(payload_start)
                payloads[kern] = (meta["payload_crc32"], handle.read())
        assert payloads["array"] == payloads["loop"]
