"""Differential tests: every incidence strategy is indistinguishable.

``MaterializedIncidence`` (dict/list), ``ReEnumIncidence`` (recompute on
demand), and ``CSRIncidence`` (flat numpy arrays) are three layouts of
one mathematical object. These tests promote the equality check that
used to live only in ``benchmarks/bench_ablation.py`` into the tier-1
suite: identical degrees, postings, and member tuples on the seeded
corpus over every ``(r, s)`` pair with ``s <= 5``, and identical
end-to-end decompositions against the ``naive_hierarchy`` oracle.
"""

from __future__ import annotations

from array import array

import numpy as np
import pytest

from conftest import RS_PAIRS, oracle_chain, random_graphs
from repro.cliques.csr import CSRIncidence, member_id_array
from repro.cliques.incidence import INCIDENCE_STRATEGIES, build_incidence
from repro.core.nucleus import peel_exact


@pytest.fixture(scope="module")
def corpus(paper_like_graph, planted, social_graph):
    """(graph, restrict_to_cheap_rs) pairs: the seeded generator corpus."""
    graphs = [(paper_like_graph, False), (planted, False)]
    graphs += [(g, False) for g in random_graphs(count=2, n=24)]
    graphs += [(social_graph, True)]
    return graphs


def incidences(graph, r, s):
    """One incidence per strategy, built from the same graph."""
    built = {}
    for strategy in INCIDENCE_STRATEGIES:
        _, _, incidence = build_incidence(graph, r, s, strategy=strategy)
        built[strategy] = incidence
    return built


class TestStructuralEquality:
    """Degrees, postings, and member tuples agree across strategies."""

    @pytest.mark.parametrize("r,s", RS_PAIRS)
    def test_corpus_all_rs(self, corpus, r, s):
        assert s <= 5
        for graph, cheap_only in corpus:
            if cheap_only and (r, s) != (2, 3):
                continue
            built = incidences(graph, r, s)
            base = built["materialized"]
            for strategy, incidence in built.items():
                assert incidence.n_r == base.n_r, (graph.name, strategy)
                assert incidence.n_s == base.n_s, (graph.name, strategy)
                assert incidence.initial_degrees() == \
                    base.initial_degrees(), (graph.name, strategy)
                for rid in range(base.n_r):
                    assert sorted(incidence.s_cliques_containing(rid)) == \
                        sorted(base.s_cliques_containing(rid)), \
                        (graph.name, strategy, rid)

    def test_csr_matches_materialized_exactly(self, planted):
        """CSR reproduces the streaming layout bit for bit, not just as sets:
        same sid numbering, same member tuples, same posting order."""
        for r, s in ((1, 2), (2, 3), (2, 4), (3, 4)):
            _, _, mat = build_incidence(planted, r, s, strategy="materialized")
            _, _, csr = build_incidence(planted, r, s, strategy="csr")
            assert isinstance(csr, CSRIncidence)
            for sid in range(mat.n_s):
                assert csr.members(sid) == mat.members(sid), (r, s, sid)
            for rid in range(mat.n_r):
                assert csr.s_clique_ids_of(rid) == \
                    mat.s_clique_ids_of(rid), (r, s, rid)
            assert list(csr.iter_s_cliques()) == list(mat.iter_s_cliques())
            assert csr.memory_units() == mat.memory_units(), (r, s)

    def test_csr_array_types(self, planted):
        _, _, csr = build_incidence(planted, 2, 3, strategy="csr")
        assert csr.member_array.dtype == np.int64
        assert csr.member_array.shape == (csr.n_s, csr.s_choose_r)
        assert csr.posting_indptr.shape == (csr.n_r + 1,)
        assert csr.posting_indices.shape[0] == csr.n_s * csr.s_choose_r
        assert csr.degree_array.tolist() == csr.initial_degrees()

    def test_member_id_array_empty(self, triangle_graph):
        _, index, _ = build_incidence(triangle_graph, 2, 3)
        out = member_id_array(index, [], 3)
        assert out.shape == (0, 3)

    def test_unknown_strategy_rejected(self, triangle_graph):
        from repro.errors import ParameterError
        with pytest.raises(ParameterError, match="csr"):
            build_incidence(triangle_graph, 2, 3, strategy="nope")


class TestEndToEndOracle:
    """Full decompositions agree with the naive-hierarchy oracle."""

    @pytest.mark.parametrize("r,s", RS_PAIRS)
    def test_coreness_bytes_and_chain(self, corpus, r, s):
        for graph, cheap_only in corpus:
            if cheap_only and (r, s) != (2, 3):
                continue
            _, exact, chain = oracle_chain(graph, r, s)
            reference = array("d", exact.core).tobytes()
            for strategy in ("reenum", "csr"):
                _, _, incidence = build_incidence(graph, r, s,
                                                  strategy=strategy)
                result = peel_exact(incidence)
                assert array("d", result.core).tobytes() == reference, \
                    (graph.name, r, s, strategy)
                assert result.rho == exact.rho, (graph.name, r, s, strategy)
                from repro.baselines.naive_hierarchy import naive_hierarchy
                tree = naive_hierarchy(incidence, result.core)
                assert tree.partition_chain() == chain, \
                    (graph.name, r, s, strategy)
