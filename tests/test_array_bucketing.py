"""Unit + property tests for the array-backed Julienne bucketing."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ds.array_bucketing import ArrayBucketQueue
from repro.ds.bucketing import BucketQueue
from repro.errors import DataStructureError


class TestBasics:
    def test_extracts_minimum_bucket(self):
        q = ArrayBucketQueue([3, 1, 2, 1])
        value, ids = q.next_bucket()
        assert value == 1
        assert sorted(ids.tolist()) == [1, 3]

    def test_extraction_marks_dead(self):
        q = ArrayBucketQueue([1, 2])
        q.next_bucket()
        assert not q.alive(0)
        assert q.alive(1)

    def test_len_and_empty(self):
        q = ArrayBucketQueue([5, 5])
        assert len(q) == 2 and not q.empty
        q.next_bucket()
        assert len(q) == 0 and q.empty

    def test_empty_extraction_raises(self):
        q = ArrayBucketQueue([])
        with pytest.raises(DataStructureError):
            q.next_bucket()

    def test_negative_value_rejected(self):
        with pytest.raises(DataStructureError):
            ArrayBucketQueue([1, -1])

    def test_alive_mask_is_live_view(self):
        q = ArrayBucketQueue([0, 1])
        mask = q.alive_mask()
        q.next_bucket()
        assert mask.tolist() == [False, True]


class TestUpdates:
    def test_decrement_rebuckets(self):
        q = ArrayBucketQueue([5, 3])
        q.decrement(0, 4)  # 0 now has value 1 < 3
        value, ids = q.next_bucket()
        assert (value, ids.tolist()) == (1, [0])

    def test_update_below_cursor_is_seen(self):
        q = ArrayBucketQueue([0, 5])
        q.next_bucket()      # extracts id 0, cursor at 0
        q.decrement(1, 5)    # drops to the cursor's level
        value, ids = q.next_bucket()
        assert (value, ids.tolist()) == (0, [1])

    def test_negative_amount_rejected(self):
        q = ArrayBucketQueue([1, 2])
        with pytest.raises(DataStructureError):
            q.decrement(0, -1)

    def test_update_dead_rejected(self):
        q = ArrayBucketQueue([1, 2])
        q.next_bucket()
        with pytest.raises(DataStructureError):
            q.decrement(0)

    def test_decrement_clamps_at_zero(self):
        q = ArrayBucketQueue([1, 5])
        q.decrement(0, 10)
        assert q.value(0) == 0

    def test_stale_entries_skipped(self):
        q = ArrayBucketQueue([4, 4])
        q.decrement(0, 2)
        q.decrement(0, 1)  # two stale entries for id 0 now exist
        value, ids = q.next_bucket()
        assert (value, ids.tolist()) == (1, [0])
        value, ids = q.next_bucket()
        assert (value, ids.tolist()) == (4, [1])

    def test_updates_count_elementary_decrements(self):
        q = ArrayBucketQueue([4, 4, 0])
        q.apply_decrements(np.asarray([0, 1]), np.asarray([2, 3]))
        assert q.updates == 5
        # clamped portion does not count: id 2 is already at zero
        q.apply_decrements(np.asarray([2]), np.asarray([7]))
        assert q.updates == 5
        # partially clamped: only the distance to zero counts
        q.apply_decrements(np.asarray([0]), np.asarray([10]))
        assert q.updates == 7

    def test_batched_decrement_groups_by_new_value(self):
        q = ArrayBucketQueue([9, 9, 9, 9])
        q.apply_decrements(np.asarray([0, 1, 2]), np.asarray([4, 2, 4]))
        value, ids = q.next_bucket()
        assert (value, sorted(ids.tolist())) == (5, [0, 2])
        value, ids = q.next_bucket()
        assert (value, ids.tolist()) == (7, [1])

    def test_empty_batch_is_noop(self):
        q = ArrayBucketQueue([3])
        q.apply_decrements(np.asarray([], dtype=np.int64),
                           np.asarray([], dtype=np.int64))
        assert q.value(0) == 3 and q.updates == 0


class TestRounds:
    def test_rounds_counts_extractions(self):
        q = ArrayBucketQueue([1, 1, 2, 3])
        list(q.drain())
        assert q.rounds == 3  # buckets 1, 2, 3

    def test_drain_yields_everything_once(self):
        q = ArrayBucketQueue([2, 0, 2, 5])
        seen = [i for _, ids in q.drain() for i in ids.tolist()]
        assert sorted(seen) == [0, 1, 2, 3]


@given(st.lists(st.integers(0, 20), min_size=1, max_size=50))
def test_static_drain_matches_scalar_queue(values):
    """With no updates, both queues yield identical (value, set) rounds."""
    array_q = ArrayBucketQueue(values)
    scalar_q = BucketQueue(values)
    while not scalar_q.empty:
        sv, sids = scalar_q.next_bucket()
        av, aids = array_q.next_bucket()
        assert (av, sorted(aids.tolist())) == (sv, sorted(sids))
    assert array_q.empty
    assert array_q.rounds == scalar_q.rounds


@given(st.lists(st.integers(0, 15), min_size=2, max_size=30),
       st.lists(st.tuples(st.integers(0, 29), st.integers(1, 5)),
                max_size=30))
def test_peeling_discipline_differential(values, decrements):
    """Interleave rounds and decrements; the two queues stay in lockstep.

    Per-round extraction sets, values, the round count, and the
    elementary-update statistic must all agree -- this is the invariant
    the vectorized peeling kernel's byte-identity rests on.
    """
    array_q = ArrayBucketQueue(values)
    scalar_q = BucketQueue(values)
    decrements = list(decrements)
    extracted = []
    while not scalar_q.empty:
        sv, sids = scalar_q.next_bucket()
        av, aids = array_q.next_bucket()
        assert (av, sorted(aids.tolist())) == (sv, sorted(sids))
        extracted.extend(sids)
        batch = {}
        while decrements:
            ident, amount = decrements.pop()
            ident %= len(values)
            if scalar_q.alive(ident):
                batch[ident] = batch.get(ident, 0) + amount
                break
        for ident, amount in batch.items():
            for _ in range(amount):
                scalar_q.decrement(ident)
        if batch:
            ids = np.asarray(sorted(batch), dtype=np.int64)
            amounts = np.asarray([batch[i] for i in sorted(batch)],
                                 dtype=np.int64)
            array_q.apply_decrements(ids, amounts)
        assert array_q.updates == scalar_q.updates
    assert array_q.empty
    assert sorted(extracted) == list(range(len(values)))
    assert array_q.rounds == scalar_q.rounds
