"""Unit tests for the r-clique index."""

import numpy as np
import pytest

from repro.cliques.index import CliqueIndex, _is_sorted_unique
from repro.errors import DataStructureError, ParameterError
from repro.graphs.graph import Graph
from repro.graphs.orientation import arb_orient


class TestConstruction:
    def test_sorted_deterministic_ids(self):
        idx = CliqueIndex([(2, 1), (0, 1), (0, 2)])
        assert list(idx) == [(0, 1), (0, 2), (1, 2)]
        assert idx.id_of((1, 0)) == 0

    def test_duplicates_collapse(self):
        idx = CliqueIndex([(0, 1), (1, 0)])
        assert len(idx) == 1

    def test_inconsistent_sizes_rejected(self):
        with pytest.raises(DataStructureError):
            CliqueIndex([(0, 1), (0, 1, 2)])

    def test_declared_r_checked(self):
        with pytest.raises(DataStructureError):
            CliqueIndex([(0, 1)], r=3)

    def test_empty_requires_r(self):
        with pytest.raises(ParameterError):
            CliqueIndex([])
        idx = CliqueIndex([], r=2)
        assert len(idx) == 0 and idx.r == 2

    def test_from_orientation(self):
        g = Graph.complete(4)
        idx = CliqueIndex.from_orientation(arb_orient(g), 2)
        assert len(idx) == 6
        assert idx.r == 2


class TestLookups:
    def setup_method(self):
        self.idx = CliqueIndex([(0, 1, 2), (1, 2, 3)])

    def test_round_trip(self):
        for rid in self.idx.ids():
            assert self.idx.id_of(self.idx.clique_of(rid)) == rid

    def test_order_insensitive_lookup(self):
        assert self.idx.id_of((2, 1, 0)) == self.idx.id_of((0, 1, 2))

    def test_contains(self):
        assert (2, 1, 0) in self.idx
        assert (0, 1, 3) not in self.idx

    def test_get_missing_returns_none(self):
        assert self.idx.get((0, 1, 3)) is None

    def test_id_of_missing_raises(self):
        with pytest.raises(DataStructureError):
            self.idx.id_of((0, 1, 3))

    def test_clique_of_out_of_range(self):
        with pytest.raises(DataStructureError):
            self.idx.clique_of(2)
        with pytest.raises(DataStructureError):
            self.idx.clique_of(-1)

    def test_label(self):
        assert self.idx.label(0) == "{0,1,2}"


class TestSortedSkip:
    """Pre-sorted canonical input skips the canonicalizing re-sort."""

    def test_detector(self):
        assert _is_sorted_unique([(0, 1), (0, 2), (1, 2)])
        assert not _is_sorted_unique([(0, 2), (0, 1)])    # not ascending
        assert not _is_sorted_unique([(0, 1), (0, 1)])    # duplicate
        assert not _is_sorted_unique([(1, 0), (1, 2)])    # not canonical
        assert _is_sorted_unique([])

    def test_presorted_input_identical_index(self):
        presorted = [(0, 1), (0, 2), (1, 2)]
        shuffled = [(2, 1), (0, 1), (2, 0)]
        a, b = CliqueIndex(presorted), CliqueIndex(shuffled)
        assert list(a) == list(b) == presorted
        assert all(a.id_of(c) == b.id_of(c) for c in presorted)

    def test_presorted_list_is_adopted_without_copying_order(self):
        presorted = [(0, 1, 2), (0, 1, 3), (1, 2, 3)]
        idx = CliqueIndex(presorted)
        assert [idx.clique_of(i) for i in idx.ids()] == presorted

    def test_enumeration_output_takes_fast_path(self):
        g = Graph.complete(5)
        idx = CliqueIndex.from_orientation(arb_orient(g), 2)
        assert _is_sorted_unique(list(idx))


class TestBulkLookup:
    """``ids_of``: the vectorized counterpart of ``id_of``."""

    def setup_method(self):
        g = Graph.complete(5)
        self.idx = CliqueIndex.from_orientation(arb_orient(g), 2)

    def test_matches_scalar_lookup(self):
        rows = [self.idx.clique_of(i) for i in self.idx.ids()]
        got = self.idx.ids_of(np.asarray(rows))
        assert got.tolist() == list(self.idx.ids())

    def test_unsorted_rows_canonicalized(self):
        got = self.idx.ids_of(np.asarray([(3, 0), (4, 2)]))
        assert got.tolist() == [self.idx.id_of((0, 3)), self.idx.id_of((2, 4))]

    def test_empty_query(self):
        got = self.idx.ids_of(np.empty((0, 2), dtype=np.int64))
        assert got.shape == (0,)

    def test_missing_row_raises(self):
        with pytest.raises(DataStructureError, match=r"\(0, 9\)"):
            self.idx.ids_of(np.asarray([(0, 1), (0, 9)]))

    def test_negative_vertex_raises(self):
        with pytest.raises(DataStructureError):
            self.idx.ids_of(np.asarray([(-1, 2)]))

    def test_wrong_width_rejected(self):
        with pytest.raises(ParameterError):
            self.idx.ids_of(np.asarray([(0, 1, 2)]))

    def test_missing_interior_row_raises(self):
        # a key that searchsorts between existing keys, not past the end
        idx = CliqueIndex([(0, 1), (0, 5), (3, 4)])
        with pytest.raises(DataStructureError):
            idx.ids_of(np.asarray([(0, 3)]))

    def test_overflow_falls_back_to_dict(self):
        big = 1 << 40
        idx = CliqueIndex([(0, big), (1, big)])
        assert idx._encoding() == (None, 0)
        got = idx.ids_of(np.asarray([(big, 1), (0, big)]))
        assert got.tolist() == [idx.id_of((1, big)), idx.id_of((0, big))]

    def test_overflow_fallback_missing_raises(self):
        big = 1 << 40
        idx = CliqueIndex([(0, big)])
        with pytest.raises(DataStructureError):
            idx.ids_of(np.asarray([(1, big)]))

    def test_triples(self):
        g = Graph.complete(6)
        idx = CliqueIndex.from_orientation(arb_orient(g), 3)
        rows = np.asarray([idx.clique_of(i) for i in idx.ids()])
        shuffled = rows[:, ::-1]
        assert idx.ids_of(shuffled).tolist() == list(idx.ids())
