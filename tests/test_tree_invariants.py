"""Structural property checks for hierarchy trees on golden datasets.

These invariants come straight from the nucleus-hierarchy definition
(DESIGN.md Section 1): levels decrease upward, the leaves partition the
r-clique set, and cutting the tree at any level reproduces exactly the
connected components of that level graph. They run against full
decompositions of the golden dataset instances -- through the default
(array) and scalar tree kernels -- so a kernel that produces a *valid
looking* but wrong tree cannot hide behind the differential suite.
"""

from __future__ import annotations

import pytest

from repro.baselines.naive_hierarchy import level_graph_components
from repro.core.api import nucleus_decomposition
from repro.core.nucleus import prepare
from repro.core.tree import NO_PARENT
from repro.graphs.datasets import load_dataset

from test_golden import GOLDEN_CASES

#: Tree kernels to validate (auto routes through the array kernel on the
#: CSR strategy used below; loop is the scalar reference).
TREE_KERNELS = ("auto", "loop")


@pytest.fixture(scope="module", params=GOLDEN_CASES,
                ids=lambda case: f"{case[0]}-r{case[2]}s{case[3]}")
def golden_case(request):
    """(graph, r, s, incidence, {kernel: decomposition}) per golden case."""
    name, scale, r, s = request.param
    graph = load_dataset(name, scale=scale)
    prep = prepare(graph, r, s, strategy="csr")
    results = {kern: nucleus_decomposition(graph, r, s, strategy="csr",
                                           method="anh-te", kernel=kern)
               for kern in TREE_KERNELS}
    return graph, r, s, prep.incidence, results


class TestTreeInvariants:
    @pytest.mark.parametrize("kern", TREE_KERNELS)
    def test_levels_decrease_upward(self, golden_case, kern):
        tree = golden_case[4][kern].tree
        for node, par in enumerate(tree.parent):
            if par == NO_PARENT:
                continue
            if tree.is_leaf(node):
                assert tree.level[par] <= tree.level[node], (node, par)
            else:
                assert tree.level[par] < tree.level[node], (node, par)

    @pytest.mark.parametrize("kern", TREE_KERNELS)
    def test_leaves_partition_r_cliques(self, golden_case, kern):
        result = golden_case[4][kern]
        tree = result.tree
        assert tree.n_leaves == result.n_r
        collected = sorted(leaf for root in tree.roots()
                           for leaf in tree.leaves_under(root))
        assert collected == list(range(tree.n_leaves))

    @pytest.mark.parametrize("kern", TREE_KERNELS)
    def test_internal_nodes_have_children_and_leaf_reps(self, golden_case,
                                                        kern):
        tree = golden_case[4][kern].tree
        for node in range(tree.n_leaves, tree.n_nodes):
            children = tree.children(node)
            assert children, node
            assert 0 <= tree.rep[node] < tree.n_leaves
            # the representative must actually live under the node
            assert tree.rep[node] in tree.leaves_under(node)

    @pytest.mark.parametrize("kern", TREE_KERNELS)
    def test_nuclei_match_level_graph_components(self, golden_case, kern):
        """Cutting the tree at c == connectivity over the level-c graph."""
        graph, r, s, incidence, results = golden_case
        result = results[kern]
        tree = result.tree
        core = result.core
        for c in tree.distinct_levels():
            expected = sorted(
                sorted(group)
                for group in level_graph_components(incidence, core, c)
                if len(group) >= 1)
            got = sorted(sorted(group) for group in tree.nuclei_at(c))
            assert got == expected, (graph.name, r, s, kern, c)

    def test_kernels_agree_exactly(self, golden_case):
        results = golden_case[4]
        ref = results["loop"].tree
        for kern, result in results.items():
            tree = result.tree
            assert tree.parent == ref.parent, kern
            assert tree.level == ref.level, kern
            assert tree.rep == ref.rep, kern
