"""Documentation correctness: the README's code actually runs.

Stale snippets are the most common failure mode of reproduction repos;
this extracts every ``python`` code block from README.md and executes it.
Also sanity-checks that the documentation files reference real modules.
"""

import importlib
import os
import re

import pytest

ROOT = os.path.join(os.path.dirname(__file__), "..")


def read(name):
    with open(os.path.join(ROOT, name), "r", encoding="utf-8") as handle:
        return handle.read()


def python_blocks(text):
    return re.findall(r"```python\n(.*?)```", text, re.DOTALL)


class TestReadme:
    def test_python_snippets_execute(self):
        blocks = python_blocks(read("README.md"))
        assert blocks, "README lost its code examples"
        namespace = {}
        for block in blocks:
            exec(compile(block, "<README>", "exec"), namespace)
        # the quickstart's result object materialized
        assert "result" in namespace

    def test_documented_modules_exist(self):
        text = read("README.md")
        for dotted in re.findall(r"\brepro\.[a-z_]+(?:\.[a-z_]+)?\b", text):
            base = ".".join(dotted.split(".")[:2])
            importlib.import_module(base)

    def test_benchmark_table_is_accurate(self):
        text = read("README.md")
        for match in re.findall(r"`(bench_[a-z0-9_]+\.py)`", text):
            assert os.path.exists(os.path.join(ROOT, "benchmarks", match)), \
                match


class TestDesignDoc:
    def test_inventory_modules_exist(self):
        text = read("DESIGN.md")
        for dotted in set(re.findall(r"`(repro(?:\.[a-z_]+)+)`", text)):
            importlib.import_module(dotted)

    def test_experiment_index_names_real_benches(self):
        text = read("DESIGN.md")
        for match in set(re.findall(r"benchmarks/(bench_[a-z0-9_]+\.py)",
                                    text)):
            assert os.path.exists(os.path.join(ROOT, "benchmarks", match)), \
                match


class TestExperimentsDoc:
    def test_references_real_harnesses(self):
        text = read("EXPERIMENTS.md")
        for match in set(re.findall(r"`(bench_[a-z0-9_]+\.py)`", text)):
            assert os.path.exists(os.path.join(ROOT, "benchmarks", match)), \
                match

    def test_results_archive_exists(self):
        results = os.path.join(ROOT, "results")
        assert os.path.isdir(results)
        assert len(os.listdir(results)) >= 9


class TestAlgorithmsDoc:
    def test_code_references_resolve(self):
        """Every `repro.x.y[.name]` reference is a real module or member."""
        text = read(os.path.join("docs", "ALGORITHMS.md"))
        for dotted in set(re.findall(r"`(repro(?:\.[a-z_]+)+)`", text)):
            parts = dotted.split(".")
            for split in range(len(parts), 1, -1):
                try:
                    module = importlib.import_module(".".join(parts[:split]))
                except ModuleNotFoundError:
                    continue
                obj = module
                ok = True
                for attr in parts[split:]:
                    if not hasattr(obj, attr):
                        ok = False
                        break
                    obj = getattr(obj, attr)
                if ok:
                    break
            else:
                pytest.fail(f"unresolvable reference {dotted}")
