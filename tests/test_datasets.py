"""Unit tests for the SNAP stand-in dataset registry."""

import pytest

from repro.errors import ParameterError
from repro.graphs.datasets import (DATASET_NAMES, dataset_names, dataset_spec,
                                   load_dataset, table1_rows)


class TestRegistry:
    def test_table1_order(self):
        assert dataset_names() == ["amazon", "dblp", "youtube", "skitter",
                                   "livejournal", "orkut", "friendster"]

    def test_specs_carry_paper_sizes(self):
        spec = dataset_spec("friendster")
        assert spec.paper_n == 65_608_366
        assert spec.paper_m > 10 ** 9

    def test_unknown_name(self):
        with pytest.raises(ParameterError):
            dataset_spec("facebook")
        with pytest.raises(ParameterError):
            load_dataset("facebook")

    def test_invalid_scale(self):
        with pytest.raises(ParameterError):
            load_dataset("dblp", scale=0)


class TestStandIns:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_loadable_and_nonempty(self, name):
        g = load_dataset(name, scale=0.05)
        assert g.n > 0 and g.m > 0
        assert g.name == name

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_deterministic(self, name):
        assert load_dataset(name, scale=0.05) == load_dataset(name, scale=0.05)

    def test_scale_changes_size(self):
        small = load_dataset("dblp", scale=0.05)
        large = load_dataset("dblp", scale=0.2)
        assert large.n > small.n

    def test_relative_sizes_follow_table1(self):
        # friendster stand-in is the largest by vertices, like the paper.
        sizes = {name: load_dataset(name, scale=0.25).n
                 for name in DATASET_NAMES}
        assert max(sizes, key=sizes.get) == "friendster"

    def test_dblp_is_clique_rich(self):
        from repro.cliques import triangle_count
        dblp = load_dataset("dblp", scale=0.2)
        youtube = load_dataset("youtube", scale=0.2)
        assert (triangle_count(dblp) / dblp.m
                > triangle_count(youtube) / youtube.m)


class TestTable1Rows:
    def test_rows_shape(self):
        rows = table1_rows(scale=0.05)
        assert len(rows) == 7
        for name, paper_n, paper_m, n, m in rows:
            assert paper_n > n  # stand-ins are scaled down
            assert m > 0
