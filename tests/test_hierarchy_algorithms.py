"""Cross-validation: every hierarchy algorithm vs the definition oracle.

This is the heart of the test suite. For each graph and (r, s) pair, the
oracle (:func:`repro.baselines.naive_hierarchy.naive_hierarchy`, built
directly from the definition of the level graphs) fixes the ground-truth
partition chain; every optimized algorithm must produce an equivalent tree.
"""

import pytest
from hypothesis import given, settings, strategies as st

from conftest import RS_PAIRS, oracle_chain
from repro.baselines.naive_hierarchy import (level_graph_components,
                                             naive_hierarchy)
from repro.core.framework import anh_bl, anh_el
from repro.core.hierarchy_te import (hierarchy_te_practical,
                                     hierarchy_te_theoretical)
from repro.core.nucleus import peel_exact, prepare
from repro.ds.union_find import partition_refines
from repro.graphs.generators import erdos_renyi, planted_nuclei
from repro.graphs.graph import Graph

ALGORITHMS = [
    ("anh-el", anh_el),
    ("anh-bl", anh_bl),
    ("anh-te-practical", hierarchy_te_practical),
    ("anh-te-theoretical", hierarchy_te_theoretical),
]


@pytest.mark.parametrize("name,algorithm", ALGORITHMS)
class TestAgainstOracle:
    def test_two_triangles(self, name, algorithm, two_triangles_bridge):
        prep, res, oracle = oracle_chain(two_triangles_bridge, 2, 3)
        out = algorithm(two_triangles_bridge, 2, 3, prepared=prep)
        assert out.coreness.core == res.core
        assert out.tree.partition_chain() == oracle
        # two separate triangles at level 1
        assert len(out.tree.nuclei_at(1)) == 2

    def test_paper_like_graph(self, name, algorithm, paper_like_graph):
        for r, s in [(1, 2), (1, 3), (2, 3), (2, 4), (3, 4)]:
            prep, res, oracle = oracle_chain(paper_like_graph, r, s)
            out = algorithm(paper_like_graph, r, s, prepared=prep)
            assert out.coreness.core == res.core, (r, s)
            assert out.tree.partition_chain() == oracle, (r, s)

    def test_planted_nuclei_nesting(self, name, algorithm, planted):
        prep, res, oracle = oracle_chain(planted, 2, 3)
        out = algorithm(planted, 2, 3, prepared=prep)
        assert out.tree.partition_chain() == oracle
        # The K6 nucleus (level 4) nests inside the level-2 nucleus that
        # also contains the K4.
        tree = out.tree
        deep = tree.nuclei_at(4)
        assert len(deep) == 1 and len(deep[0]) == 15  # K6's 15 edges

    def test_social_graph(self, name, algorithm, social_graph):
        for r, s in [(2, 3), (1, 3)]:
            prep, res, oracle = oracle_chain(social_graph, r, s)
            out = algorithm(social_graph, r, s, prepared=prep)
            assert out.tree.partition_chain() == oracle, (r, s)

    @settings(deadline=None, max_examples=12)
    @given(pairs=st.sets(st.tuples(st.integers(0, 11), st.integers(0, 11)),
                         max_size=40),
           rs=st.sampled_from(RS_PAIRS))
    def test_random_graphs_property(self, name, algorithm, pairs, rs):
        r, s = rs
        g = Graph(12, [(u, v) for u, v in pairs if u != v])
        prep, res, oracle = oracle_chain(g, r, s)
        if prep.n_r == 0:
            return
        out = algorithm(g, r, s, prepared=prep)
        assert out.coreness.core == res.core
        assert out.tree.partition_chain() == oracle

    def test_tree_structurally_valid(self, name, algorithm, social_graph):
        out = algorithm(social_graph, 2, 3)
        out.tree.validate()  # raises on violation

    def test_leaves_biject_with_r_cliques(self, name, algorithm, planted):
        prep = prepare(planted, 2, 3)
        out = algorithm(planted, 2, 3, prepared=prep)
        assert out.tree.n_leaves == prep.n_r


class TestHierarchySemantics:
    def test_partitions_nest_across_levels(self, social_graph):
        """Components at level c refine components at c' < c (monotone)."""
        prep = prepare(social_graph, 2, 3)
        res = peel_exact(prep.incidence)
        tree = naive_hierarchy(prep.incidence, res.core)
        levels = tree.distinct_levels()
        for hi, lo in zip(levels, levels[1:]):
            fine = {i: set(nucleus)
                    for i, nucleus in enumerate(tree.nuclei_at(hi))}
            coarse = {i: set(nucleus)
                      for i, nucleus in enumerate(tree.nuclei_at(lo))}
            assert partition_refines(
                {k: sorted(v) for k, v in fine.items()},
                {k: sorted(v) for k, v in coarse.items()})

    def test_nuclei_match_level_graph_components(self, social_graph):
        """Cutting the tree = running connectivity on the level graph."""
        prep = prepare(social_graph, 2, 3)
        res = peel_exact(prep.incidence)
        out = anh_el(social_graph, 2, 3, prepared=prep)
        for c in out.tree.distinct_levels():
            from_tree = sorted(tuple(x) for x in out.tree.nuclei_at(c))
            from_graph = sorted(
                tuple(x) for x in level_graph_components(
                    prep.incidence, res.core, c))
            assert from_tree == from_graph, c

    def test_interleaved_and_two_phase_trees_equivalent(self, social_graph):
        a = anh_el(social_graph, 2, 3)
        b = hierarchy_te_practical(social_graph, 2, 3)
        c = hierarchy_te_theoretical(social_graph, 2, 3)
        assert (a.tree.partition_chain() == b.tree.partition_chain()
                == c.tree.partition_chain())

    def test_stats_exposed(self, social_graph):
        out = anh_el(social_graph, 2, 3)
        assert out.stats["link_calls"] > 0
        assert out.stats["memory_units"] > 0
        out_bl = anh_bl(social_graph, 2, 3)
        # ANH-BL's defining inefficiency: many more unites, more memory.
        assert out_bl.stats["unite_calls"] > out.stats["unite_calls"]
        assert out_bl.stats["memory_units"] > out.stats["memory_units"]

    def test_isolated_r_cliques_stay_roots(self):
        # A triangle plus an isolated edge: the edge has (2,3) core 0 and
        # must remain a root leaf.
        g = Graph(5, [(0, 1), (1, 2), (0, 2), (3, 4)])
        prep = prepare(g, 2, 3)
        out = anh_el(g, 2, 3, prepared=prep)
        isolated = prep.index.id_of((3, 4))
        assert out.tree.parent[isolated] == -1

    def test_seed_does_not_change_partitions(self, social_graph):
        chains = set()
        for seed in (0, 1, 17):
            out = anh_el(social_graph, 2, 3, seed=seed)
            chains.add(frozenset(
                (lvl, parts) for lvl, parts
                in out.tree.partition_chain().items()))
        assert len(chains) == 1
