"""Ablations on design choices called out in DESIGN.md.

Not a paper figure -- these isolate two choices the paper discusses in
prose:

1. **Incidence strategy** (Section 7.4 / Theorem 5.1 footnote): storing
   the s-clique incidence (space ~ n_s) as Python dicts/lists vs
   re-enumerating s-cliques on demand (space ~ n_r) vs the same
   materialized data in flat numpy CSR arrays (the paper artifact's
   layout, with the vectorized peeling kernel). Reports time and memory
   for all three. The structural equality asserted here is additionally
   pinned by ``tests/test_incidence_equivalence.py`` in the tier-1
   suite.
2. **Round cap in Algorithm 2** (lines 17-19): the per-bucket round budget
   trades peeling rounds (span) against promotion-induced over-estimates.
   Sweeps the cap and reports rounds + error.
"""

from __future__ import annotations

from typing import List

from repro.analysis.errors import summarize_errors
from repro.analysis.reporting import banner, format_table
from repro.core.approx import peel_approx
from repro.core.nucleus import peel_exact, prepare

from bench_common import (bench_graph, bench_row, emit_json, kernel_graph,
                          timed)

RS = ((2, 3), (2, 4), (3, 4))


def run_strategy_ablation(graph=None, rs_values=RS):
    graph = graph if graph is not None else bench_graph("dblp")
    rows = []
    for r, s in rs_values:
        runs = {}
        for strategy in ("materialized", "reenum", "csr"):
            prep = timed(lambda: prepare(graph, r, s, strategy=strategy))
            peel = timed(lambda: peel_exact(prep.payload.incidence))
            runs[strategy] = (prep, peel)
        reference = runs["materialized"][1].payload.core
        for strategy, (_, peel) in runs.items():
            assert peel.payload.core == reference, (r, s, strategy)
        rows.append((f"({r},{s})",
                     *(runs[k][0].seconds + runs[k][1].seconds
                       for k in ("materialized", "reenum", "csr")),
                     *(runs[k][0].payload.incidence.memory_units()
                       for k in ("materialized", "reenum", "csr"))))
    return rows


def strategy_json_rows(graph_name: str, rows):
    """The strategy ablation in the uniform json row schema."""
    out = []
    for label, t_mat, t_ree, t_csr, mem_mat, mem_ree, mem_csr in rows:
        r, s = (int(x) for x in label.strip("()").split(","))
        for strategy, seconds, memory in (("materialized", t_mat, mem_mat),
                                          ("reenum", t_ree, mem_ree),
                                          ("csr", t_csr, mem_csr)):
            out.append(bench_row(graph_name, r, s, seconds, stage="total",
                                 strategy=strategy, backend="serial",
                                 workers=1, memory_units=memory))
    return out


def run_round_cap_ablation(graph=None, r: int = 2, s: int = 3,
                           caps=(1, 2, 4, 16, None)):
    graph = graph if graph is not None else bench_graph("dblp")
    prepared = prepare(graph, r, s)
    exact = peel_exact(prepared.incidence)
    rows = []
    for cap in caps:
        approx = peel_approx(prepared.incidence, 0.5, round_cap=cap)
        summary = summarize_errors(exact.core, approx.core)
        rows.append(("default" if cap is None else cap,
                     approx.rho,
                     int(approx.stats["bucket_promotions"]),
                     f"{summary.median_error:.2f}x",
                     f"{summary.max_error:.2f}x"))
    return rows


def build_report(strategy_rows=None) -> str:
    if strategy_rows is None:
        strategy_rows = run_strategy_ablation()
    strategy = format_table(
        ("(r,s)", "materialized s", "reenum s", "csr s",
         "materialized ints", "reenum ints", "csr ints"),
        strategy_rows,
        title="Ablation A: materialized (dict) vs re-enumerated vs CSR "
              "s-clique incidence (dblp)")
    cap = format_table(
        ("round cap", "peel rounds", "promotions", "median err", "max err"),
        run_round_cap_ablation(),
        title="Ablation B: Algorithm 2 per-bucket round cap (dblp, (2,3), "
              "delta=0.5)")
    buckets = format_table(
        ("(r,s)", "julienne s", "heap s", "julienne ints (~max degree)",
         "heap ints (3 n_r)"),
        run_bucketing_ablation(),
        title="Ablation C: Julienne buckets vs addressable heap "
              "(Section 6, footnote 2)")
    return (banner("Ablations") + "\n" + strategy + "\n\n" + cap
            + "\n\n" + buckets)


def test_ablation_strategy_tradeoff():
    rows = run_strategy_ablation(kernel_graph("dblp"), rs_values=((2, 3),))
    print(rows)
    for label, t_mat, t_ree, t_csr, mem_mat, mem_ree, mem_csr in rows:
        assert mem_mat > mem_ree   # the space tradeoff is real
        assert mem_csr == mem_mat  # csr is the same data, flat layout


def test_ablation_round_cap_monotone():
    rows = run_round_cap_ablation(kernel_graph("dblp"))
    print(rows)
    rounds = [r for _, r, *_ in rows]
    promos = [p for _, _, p, *_ in rows]
    # a stingier cap can only lower rounds and raise promotions
    assert rounds[0] <= rounds[-1] + 1
    assert promos[0] >= promos[-1]


def test_benchmark_reenum_kernel(benchmark):
    graph = kernel_graph("dblp")
    prepared = prepare(graph, 2, 3, strategy="reenum")
    benchmark(lambda: peel_exact(prepared.incidence))




def run_bucketing_ablation(graph=None, rs_values=((2, 3), (1, 2))):
    """Julienne array buckets vs the footnote-2 addressable heap."""
    from repro.ds.bucketing import BucketQueue
    from repro.ds.heap_bucketing import HeapBucketQueue
    graph = graph if graph is not None else bench_graph("dblp")
    rows = []
    for r, s in rs_values:
        prepared = prepare(graph, r, s)
        degrees = prepared.incidence.initial_degrees()
        julienne = timed(lambda: peel_exact(prepared.incidence,
                                            bucketing="julienne"))
        heap = timed(lambda: peel_exact(prepared.incidence,
                                        bucketing="heap"))
        assert julienne.payload.core == heap.payload.core
        julienne_mem = len(degrees) + max(degrees, default=0) + 1
        rows.append((f"({r},{s})", julienne.seconds, heap.seconds,
                     julienne_mem,
                     HeapBucketQueue(degrees).memory_units()))
    return rows


def test_ablation_bucketing_equivalence():
    rows = run_bucketing_ablation(kernel_graph("dblp"))
    print(rows)
    assert rows  # cores already asserted equal inside the runner


def main(argv=None) -> int:
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", action="store_true",
                        help="also write BENCH_ablation.json at the repo "
                             "root (strategy ablation rows)")
    args = parser.parse_args(argv)
    strategy_rows = run_strategy_ablation()
    print(build_report(strategy_rows))
    if args.json:
        path = emit_json("ablation", strategy_json_rows("dblp",
                                                        strategy_rows))
        print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
