"""Vectorized exact peeling over a CSR incidence.

The scalar engine (:func:`repro.core.nucleus.peel_exact`) walks Python
postings lists and member tuples per peeled r-clique. This kernel runs
the identical peeling process on the flat arrays of a
:class:`~repro.cliques.csr.CSRIncidence`, replacing every inner loop with
array operations:

* the per-round batch's incident s-cliques are gathered with one fancy
  index over the postings CSR;
* liveness of an s-clique ("is this the first member to die?") is one
  comparison of *peel order* stamps -- ``order[member] < order[rid]``
  reproduces the scalar engine's sequential ``alive`` bookkeeping exactly,
  including within-batch deaths;
* the degree-decrement scatter is one ``np.bincount`` over the dying
  s-cliques' still-live members, applied to the array-backed
  :class:`~repro.ds.array_bucketing.ArrayBucketQueue` in a single batched
  update.

Observable behaviour is pinned to the scalar engine: byte-identical
coreness arrays, identical peeling-round counts (``rho``), identical
work/span meters (the same ``round_work``/span formulas, round for
round), identical ``bucket_updates``/``link_calls`` statistics, and
hierarchy partition chains equal to the dict path's. The one internal
difference is within-bucket extraction order (batched id-order appends
versus elementary-decrement-order appends), which none of those
quantities depend on (see ``tests/test_link_order_independence.py``).

``link`` callbacks fire in deterministic (batch position, posting index,
member index) order -- the scalar engine's order for the same batch
sequence -- and observe final core numbers through ``core_out`` exactly
as Algorithm 3's interleaving requires.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..ds.array_bucketing import ArrayBucketQueue
from ..errors import ParameterError
from ..parallel.counters import (NullCounter, WorkSpanCounter, log2_ceil)

#: Peel-order stamp meaning "not yet peeled".
_NOT_PEELED = np.iinfo(np.int64).max


def _concat_ranges(starts: np.ndarray, counts: np.ndarray,
                   total: int) -> np.ndarray:
    """Concatenate ``arange(starts[i], starts[i] + counts[i])`` ranges."""
    offsets = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) + np.repeat(starts - offsets,
                                                        counts)


def _unique_ids(values: np.ndarray) -> np.ndarray:
    """Ascending unique values; sorts ``values`` in place.

    Equivalent to ``np.unique(values)`` for a throwaway int array, minus
    the wrapper overhead that dominates at per-round batch sizes.
    """
    values.sort()
    if values.size <= 1:
        return values
    keep = np.empty(values.size, dtype=bool)
    keep[0] = True
    np.not_equal(values[1:], values[:-1], out=keep[1:])
    return values[keep]


def _unique_with_counts(values: np.ndarray):
    """``np.unique(values, return_counts=True)``; sorts in place."""
    values.sort()
    if values.size <= 1:
        return values, np.ones(values.size, dtype=np.int64)
    keep = np.empty(values.size, dtype=bool)
    keep[0] = True
    np.not_equal(values[1:], values[:-1], out=keep[1:])
    starts = np.flatnonzero(keep)
    counts = np.empty(starts.size, dtype=np.int64)
    np.subtract(starts[1:], starts[:-1], out=counts[:-1])
    counts[-1] = values.size - starts[-1]
    return values[starts], counts


def peel_exact_csr(incidence, counter: Optional[WorkSpanCounter] = None,
                   link=None,
                   core_out: Optional[List[float]] = None):
    """Exact peeling of a :class:`~repro.cliques.csr.CSRIncidence`.

    Drop-in replacement for the scalar engine on CSR incidences (julienne
    bucketing): same results, same meters, same statistics. See the
    module docstring for the equivalence contract.
    """
    from .nucleus import CorenessResult
    counter = counter if counter is not None else NullCounter()
    members = incidence.member_array
    indptr = incidence.posting_indptr
    indices = incidence.posting_indices
    n_r = incidence.n_r
    queue = ArrayBucketQueue(incidence.degree_array)
    if core_out is not None and len(core_out) != n_r:
        raise ParameterError(
            f"core_out has length {len(core_out)}, expected {n_r}")
    if core_out is not None:
        for i in range(n_r):
            core_out[i] = 0.0
    core = np.zeros(n_r, dtype=np.float64)
    alive_r = queue.alive_mask()                       # live view
    if link is not None:
        order = np.full(n_r, _NOT_PEELED, dtype=np.int64)
        next_order = 0
    else:
        # Coreness-only runs need no per-member death ordering: one flag
        # per s-clique ("has any member died yet?") suffices, which keeps
        # the per-round working set at O(batch postings) instead of a
        # (postings x s_choose_r) comparison matrix.
        s_alive = np.ones(incidence.n_s, dtype=bool)
    k_cur = 0
    link_calls = 0
    n_log = log2_ceil(max(n_r, 1))
    k = incidence.s_choose_r
    while not queue.empty:
        value, batch = queue.next_bucket()
        k_cur = max(k_cur, int(value))
        core[batch] = float(k_cur)
        if core_out is not None:
            # LINK implementations read final core numbers through this
            # list as cliques are peeled (Algorithm 3's interleaving).
            for rid in batch.tolist():
                core_out[rid] = float(k_cur)
        starts = indptr[batch]
        counts = indptr[batch + 1] - starts
        total = int(counts.sum())
        round_work = int(batch.size) + k * total
        if total and link is None:
            sids = indices[_concat_ranges(starts, counts, total)]
            candidates = sids[s_alive[sids]]
            if candidates.size:
                # An s-clique with no dead member yet is *present*: it
                # dies with this batch, and its still-unpeeled members
                # each lose one s-clique.
                dying_sids = _unique_ids(candidates)
                s_alive[dying_sids] = False
                flat = members[dying_sids].ravel()
                targets = flat[alive_r[flat]]
                if targets.size:
                    # unique-with-counts over the O(batch) targets beats a
                    # bincount + flatnonzero pass over all n_r counters
                    ids, deltas = _unique_with_counts(targets)
                    queue.apply_decrements(ids, deltas)
        elif total:
            order[batch] = np.arange(next_order, next_order + batch.size)
            next_order += int(batch.size)
            sids = indices[_concat_ranges(starts, counts, total)]
            pair_rids = np.repeat(batch, counts)
            rows = members[sids]                       # (total, k)
            dead = order[rows] < order[pair_rids][:, None]
            any_dead = dead.any(axis=1)
            # An s-clique none of whose members died before this batch
            # member is *present*: it dies here, and its still-unpeeled
            # members each lose one s-clique.
            dying = rows[~any_dead].ravel()
            if dying.size:
                targets = dying[order[dying] == _NOT_PEELED]
                if targets.size:
                    ids, deltas = np.unique(targets, return_counts=True)
                    queue.apply_decrements(ids, deltas)
            if any_dead.any():
                # The s-clique died earlier; its dead members are the
                # already-peeled neighbors to connect in the hierarchy.
                where_pair, where_member = np.nonzero(dead)
                earlier = rows[where_pair, where_member].tolist()
                later = pair_rids[where_pair].tolist()
                for r_early, r_late in zip(earlier, later):
                    link(r_early, r_late)
                link_calls += len(earlier)
        # One peeling round: the work above, O(log n) span for the bucket
        # extraction and parallel hash-table updates.
        counter.add_parallel(round_work, 1 + n_log)
    core_list = core.tolist()
    if core_out is not None:
        core_list = core_out
    return CorenessResult(
        core=core_list,
        rho=queue.rounds,
        k_max=max(core_list, default=0.0),
        n_r=n_r,
        n_s=incidence.n_s,
        work_span=counter.snapshot(),
        stats={
            "bucket_updates": float(queue.updates),
            "link_calls": float(link_calls),
        },
    )
