"""Ablations on design choices called out in DESIGN.md.

Not a paper figure -- these isolate two choices the paper discusses in
prose:

1. **Incidence strategy** (Section 7.4 / Theorem 5.1 footnote): storing
   the s-clique incidence (space ~ n_s) vs re-enumerating s-cliques on
   demand (space ~ n_r). Reports time and memory for both.
2. **Round cap in Algorithm 2** (lines 17-19): the per-bucket round budget
   trades peeling rounds (span) against promotion-induced over-estimates.
   Sweeps the cap and reports rounds + error.
"""

from __future__ import annotations

from typing import List

from repro.analysis.errors import summarize_errors
from repro.analysis.reporting import banner, format_table
from repro.core.approx import peel_approx
from repro.core.nucleus import peel_exact, prepare

from bench_common import bench_graph, kernel_graph, timed

RS = ((2, 3), (2, 4), (3, 4))


def run_strategy_ablation(graph=None, rs_values=RS):
    graph = graph if graph is not None else bench_graph("dblp")
    rows = []
    for r, s in rs_values:
        mat_prep = timed(lambda: prepare(graph, r, s,
                                         strategy="materialized"))
        mat_peel = timed(lambda: peel_exact(mat_prep.payload.incidence))
        ree_prep = timed(lambda: prepare(graph, r, s, strategy="reenum"))
        ree_peel = timed(lambda: peel_exact(ree_prep.payload.incidence))
        assert mat_peel.payload.core == ree_peel.payload.core
        rows.append((f"({r},{s})",
                     mat_prep.seconds + mat_peel.seconds,
                     ree_prep.seconds + ree_peel.seconds,
                     mat_prep.payload.incidence.memory_units(),
                     ree_prep.payload.incidence.memory_units()))
    return rows


def run_round_cap_ablation(graph=None, r: int = 2, s: int = 3,
                           caps=(1, 2, 4, 16, None)):
    graph = graph if graph is not None else bench_graph("dblp")
    prepared = prepare(graph, r, s)
    exact = peel_exact(prepared.incidence)
    rows = []
    for cap in caps:
        approx = peel_approx(prepared.incidence, 0.5, round_cap=cap)
        summary = summarize_errors(exact.core, approx.core)
        rows.append(("default" if cap is None else cap,
                     approx.rho,
                     int(approx.stats["bucket_promotions"]),
                     f"{summary.median_error:.2f}x",
                     f"{summary.max_error:.2f}x"))
    return rows


def build_report() -> str:
    strategy = format_table(
        ("(r,s)", "materialized s", "reenum s", "materialized ints",
         "reenum ints"),
        run_strategy_ablation(),
        title="Ablation A: materialized vs re-enumerated s-clique incidence "
              "(dblp)")
    cap = format_table(
        ("round cap", "peel rounds", "promotions", "median err", "max err"),
        run_round_cap_ablation(),
        title="Ablation B: Algorithm 2 per-bucket round cap (dblp, (2,3), "
              "delta=0.5)")
    buckets = format_table(
        ("(r,s)", "julienne s", "heap s", "julienne ints (~max degree)",
         "heap ints (3 n_r)"),
        run_bucketing_ablation(),
        title="Ablation C: Julienne buckets vs addressable heap "
              "(Section 6, footnote 2)")
    return (banner("Ablations") + "\n" + strategy + "\n\n" + cap
            + "\n\n" + buckets)


def test_ablation_strategy_tradeoff():
    rows = run_strategy_ablation(kernel_graph("dblp"), rs_values=((2, 3),))
    print(rows)
    for label, t_mat, t_ree, mem_mat, mem_ree in rows:
        assert mem_mat > mem_ree  # the space tradeoff is real


def test_ablation_round_cap_monotone():
    rows = run_round_cap_ablation(kernel_graph("dblp"))
    print(rows)
    rounds = [r for _, r, *_ in rows]
    promos = [p for _, _, p, *_ in rows]
    # a stingier cap can only lower rounds and raise promotions
    assert rounds[0] <= rounds[-1] + 1
    assert promos[0] >= promos[-1]


def test_benchmark_reenum_kernel(benchmark):
    graph = kernel_graph("dblp")
    prepared = prepare(graph, 2, 3, strategy="reenum")
    benchmark(lambda: peel_exact(prepared.incidence))




def run_bucketing_ablation(graph=None, rs_values=((2, 3), (1, 2))):
    """Julienne array buckets vs the footnote-2 addressable heap."""
    from repro.ds.bucketing import BucketQueue
    from repro.ds.heap_bucketing import HeapBucketQueue
    graph = graph if graph is not None else bench_graph("dblp")
    rows = []
    for r, s in rs_values:
        prepared = prepare(graph, r, s)
        degrees = prepared.incidence.initial_degrees()
        julienne = timed(lambda: peel_exact(prepared.incidence,
                                            bucketing="julienne"))
        heap = timed(lambda: peel_exact(prepared.incidence,
                                        bucketing="heap"))
        assert julienne.payload.core == heap.payload.core
        julienne_mem = len(degrees) + max(degrees, default=0) + 1
        rows.append((f"({r},{s})", julienne.seconds, heap.seconds,
                     julienne_mem,
                     HeapBucketQueue(degrees).memory_units()))
    return rows


def test_ablation_bucketing_equivalence():
    rows = run_bucketing_ablation(kernel_graph("dblp"))
    print(rows)
    assert rows  # cores already asserted equal inside the runner


if __name__ == "__main__":
    print(build_report())
