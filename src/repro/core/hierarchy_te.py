"""``ARB-NUCLEUS-HIERARCHY`` (Algorithm 1) -- the two-phase ANH-TE.

Phase one computes core numbers with ``ARB-NUCLEUS``; phase two builds the
hierarchy bottom-up, one level per round. Two variants are provided:

* :func:`hierarchy_te_theoretical` -- the faithful Algorithm 1: per-level
  hash tables ``L_i`` of concatenable linked lists, pointer-jumping list
  ranking to materialize the level graph ``H``, hook-and-contract
  linear-work connectivity, and O(1) list concatenation to push
  connectivity information down to lower levels. This is the
  work-efficient construction of Theorem 5.1.

  One presentational difference from the pseudocode: line 19's
  concatenation is performed *eagerly*, re-keying each merged clique's
  lists to the component representative immediately, which makes line 13's
  ``ID_i`` relabeling a no-op -- the two bookkeeping schemes are
  equivalent (the paper's own worked example describes the lazy-relabeling
  alternative). Eager re-keying preserves the crucial invariant that every
  linked list is traversed once and concatenated at most once, enforced at
  runtime by :class:`~repro.ds.linked_list.CatList`'s tombstones.

* :func:`hierarchy_te_practical` -- the Section 7.4 production variant the
  paper benchmarks as ANH-TE: no materialized linked lists; instead the
  r-cliques are sorted by core number and a *single* union-find accumulates
  connectivity level by level, uniting each level's cliques with their
  s-clique-adjacent neighbors of core at least that level.

Both produce trees with identical partition chains (tested).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

from ..ds.linked_list import CatList
from ..ds.union_find import ConcurrentUnionFind
from ..parallel.hashtable import ParallelHashTable
from ..graphs.connectivity import connected_components_edges
from ..graphs.graph import Graph
from ..parallel.counters import WorkSpanCounter, log2_ceil
from ..parallel.primitives import par_sort
from ..errors import ParameterError
from .framework import InterleavedResult
from .hierarchy_kernel import build_tree_arrays, supports_array_tree
from .nucleus import (CorenessResult, NucleusInput, peel_exact, prepare,
                      split_kernel)
from .tree import HierarchyTree, HierarchyTreeBuilder


def _pairs_by_level(incidence, core: List[float]):
    """Yield (level, key, element) for every s-clique-adjacent pair.

    ``key`` is the higher-core clique, ``element`` the lower-core one, and
    ``level`` the element's core number (Algorithm 1, lines 6-8). Pairs
    whose minimum core is zero carry no hierarchy information and are
    dropped (the main loop only visits levels ``k .. 1``).
    """
    for members in incidence.iter_s_cliques():
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                if core[a] <= core[b]:
                    element, key = a, b
                else:
                    element, key = b, a
                if core[element] > 0:
                    yield core[element], key, element


def hierarchy_te_theoretical(graph: Graph, r: int, s: int,
                             strategy: str = "materialized",
                             counter: Optional[WorkSpanCounter] = None,
                             prepared: Optional[NucleusInput] = None,
                             coreness: Optional[CorenessResult] = None,
                             relabel: str = "eager") -> InterleavedResult:
    """Faithful Algorithm 1 (see module docstring).

    ``relabel`` selects the equivalent bookkeeping scheme for pushing
    component information to lower levels:

    * ``"eager"`` (default) -- perform line 19's concatenation
      immediately, re-keying merged cliques' lists to the component
      representative (``ID_i`` relabeling becomes a no-op);
    * ``"lazy"`` -- keep lists under their original keys and resolve each
      key through an ``ID`` map (line 13's relabeling) when its level is
      processed; this is the scheme the paper's worked example narrates.

    Both produce identical trees (cross-tested).
    """
    if relabel == "lazy":
        return _hierarchy_algorithm1_lazy(graph, r, s, strategy=strategy,
                                          counter=counter, prepared=prepared,
                                          coreness=coreness)
    if relabel != "eager":
        raise ValueError(f"relabel must be 'eager' or 'lazy', got {relabel!r}")
    counter = counter if counter is not None else WorkSpanCounter()
    if prepared is None:
        prepared = prepare(graph, r, s, strategy=strategy, counter=counter)
    t0 = time.perf_counter()
    if coreness is None:
        coreness = peel_exact(prepared.incidence, counter=counter)   # line 3
    core = coreness.core
    t1 = time.perf_counter()

    # Lines 5-8: per-level tables of linked lists. L[level][key] holds the
    # elements (core == level) adjacent to key (core >= level). The inner
    # tables are genuine parallel hash tables (CAS-claimed slots [25]).
    tables: Dict[float, ParallelHashTable] = {}
    n_pairs = 0
    for level, key, element in _pairs_by_level(prepared.incidence, core):
        table = tables.get(level)
        if table is None:
            table = ParallelHashTable(counter=counter)
            tables[level] = table
        lst = table.get(key)
        if lst is None:
            lst = table.setdefault(key, CatList())
        lst.append(element)
        n_pairs += 1
    counter.add_parallel(n_pairs + 1, 1 + log2_ceil(max(n_pairs, 1)))

    # key_levels[rid]: levels (below its core) where rid currently keys a
    # list -- drives the eager concatenation without scanning all j < i.
    key_levels: Dict[int, Set[float]] = {}
    for level, table in tables.items():
        for key in table:
            key_levels.setdefault(key, set()).add(level)

    builder = HierarchyTreeBuilder(core)                            # line 9
    list_ranking_conversions = 0
    concat_ops = 0
    for level in sorted(tables, reverse=True):                      # line 12
        table = tables[level]
        # Lines 13-14: materialize each list as an array via list ranking;
        # the level graph H has one edge per (key, element) pair.
        edges: List[Tuple[int, int]] = []
        for key, lst in table.items():
            for element in lst.to_array_via_ranking(counter):
                edges.append((key, element))
            list_ranking_conversions += 1
        if not edges:
            continue
        # Densify H's vertex ids for the connectivity routine.
        vertex_ids = sorted({v for edge in edges for v in edge})
        dense = {v: i for i, v in enumerate(vertex_ids)}
        labels = connected_components_edges(
            len(vertex_ids), [(dense[u], dense[v]) for u, v in edges],
            counter)                                                # line 15
        groups: Dict[int, List[int]] = {}
        for v, rid in enumerate(vertex_ids):
            groups.setdefault(labels[v], []).append(rid)
        for members in groups.values():                             # line 16
            if len(members) < 2:
                continue
            representative = min(members)
            builder.merge(members, level, rep=representative)       # line 17
            # Lines 18-20: push connectivity to lower levels by re-keying
            # every member's lists to the representative (O(1) concats).
            rep_levels = key_levels.setdefault(representative, set())
            for rid in members:
                if rid == representative:
                    continue
                for j in [lv for lv in key_levels.get(rid, ())if lv < level]:
                    source = tables[j].pop(rid)
                    target = tables[j].get(representative)
                    if target is None:
                        tables[j].set(representative, source)
                    else:
                        target.concat(source)                       # line 19
                    rep_levels.add(j)
                    concat_ops += 1
                key_levels.pop(rid, None)
        del tables[level]
    tree = builder.build()                                          # line 21
    t2 = time.perf_counter()
    stats = dict(coreness.stats)
    stats.update({
        "pairs_inserted": float(n_pairs),
        "list_ranking_conversions": float(list_ranking_conversions),
        "concat_ops": float(concat_ops),
        "memory_units": float(2 * n_pairs + 2 * prepared.n_r),
        "seconds_coreness": t1 - t0,
        "seconds_tree": t2 - t1,
    })
    return InterleavedResult(coreness, tree, stats)


def _hierarchy_algorithm1_lazy(graph: Graph, r: int, s: int,
                               strategy: str = "materialized",
                               counter: Optional[WorkSpanCounter] = None,
                               prepared: Optional[NucleusInput] = None,
                               coreness: Optional[CorenessResult] = None
                               ) -> InterleavedResult:
    """Algorithm 1 with lazy ``ID`` relabeling (no list concatenation).

    Lists stay under their original keys; at round ``i`` every key is
    resolved through the component-representative map (the union of the
    paper's ``ID_j`` tables, with path compression). Because rounds run
    in descending level order, the single map always reflects exactly the
    merges performed at levels above the one being processed, which is
    what ``ID_i`` captures. Multiple keys of one component then simply
    contribute their edges to the same resolved vertex -- connectivity is
    unaffected, and each list is still traversed exactly once.
    """
    counter = counter if counter is not None else WorkSpanCounter()
    if prepared is None:
        prepared = prepare(graph, r, s, strategy=strategy, counter=counter)
    t0 = time.perf_counter()
    if coreness is None:
        coreness = peel_exact(prepared.incidence, counter=counter)
    core = coreness.core
    t1 = time.perf_counter()

    tables: Dict[float, ParallelHashTable] = {}
    n_pairs = 0
    for level, key, element in _pairs_by_level(prepared.incidence, core):
        table = tables.get(level)
        if table is None:
            table = ParallelHashTable(counter=counter)
            tables[level] = table
        lst = table.get(key)
        if lst is None:
            lst = table.setdefault(key, CatList())
        lst.append(element)
        n_pairs += 1
    counter.add_parallel(n_pairs + 1, 1 + log2_ceil(max(n_pairs, 1)))

    representative: Dict[int, int] = {}

    def resolve(rid: int) -> int:
        root = rid
        while representative.get(root, root) != root:
            root = representative[root]
        while representative.get(rid, rid) != root:
            representative[rid], rid = root, representative[rid]
        return root

    builder = HierarchyTreeBuilder(core)
    relabel_resolutions = 0
    for level in sorted(tables, reverse=True):                  # line 12
        table = tables[level]
        edges: List[Tuple[int, int]] = []
        for key, lst in table.items():
            resolved_key = resolve(key)                         # line 13
            relabel_resolutions += 1
            for element in lst.to_array_via_ranking(counter):   # line 14
                edges.append((resolved_key, element))
        if not edges:
            continue
        vertex_ids = sorted({v for edge in edges for v in edge})
        dense = {v: i for i, v in enumerate(vertex_ids)}
        labels = connected_components_edges(
            len(vertex_ids), [(dense[u], dense[v]) for u, v in edges],
            counter)                                            # line 15
        groups: Dict[int, List[int]] = {}
        for v, rid in enumerate(vertex_ids):
            groups.setdefault(labels[v], []).append(rid)
        for members in groups.values():                         # line 16
            if len(members) < 2:
                continue
            rep = min(members)
            builder.merge(members, level, rep=rep)              # line 17
            for rid in members:                                 # line 20
                if rid != rep:
                    representative[rid] = rep
        del tables[level]
    tree = builder.build()                                      # line 21
    t2 = time.perf_counter()
    stats = dict(coreness.stats)
    stats.update({
        "pairs_inserted": float(n_pairs),
        "relabel_resolutions": float(relabel_resolutions),
        "memory_units": float(2 * n_pairs + 2 * prepared.n_r),
        "seconds_coreness": t1 - t0,
        "seconds_tree": t2 - t1,
    })
    return InterleavedResult(coreness, tree, stats)


def hierarchy_te_practical(graph: Graph, r: int, s: int,
                           strategy: str = "materialized",
                           counter: Optional[WorkSpanCounter] = None,
                           prepared: Optional[NucleusInput] = None,
                           coreness: Optional[CorenessResult] = None,
                           seed: int = 0,
                           backend=None,
                           kernel: str = "auto") -> InterleavedResult:
    """Section 7.4 ANH-TE: single union-find over core-sorted r-cliques.

    After the coreness pass, r-cliques are processed in descending core
    order; at level ``c`` every clique of core ``c`` is united with its
    s-clique-adjacent neighbors of core ``>= c``, and the union-find's
    components among active cliques are this level's nuclei. The same
    union-find carries over to lower levels.

    The tree half of the unified ``kernel`` flag dispatches here: on
    ``"auto"`` the construction runs through the array-native
    :func:`~repro.core.hierarchy_kernel.build_tree_arrays` whenever the
    incidence is CSR (``"array"`` forces it, ``"loop"`` forces the
    scalar path below). Both paths emit element-identical trees, stats,
    and meters.
    """
    counter = counter if counter is not None else WorkSpanCounter()
    enum_kernel, peel_kernel, tree_kernel = split_kernel(kernel)
    if prepared is None:
        prepared = prepare(graph, r, s, strategy=strategy, counter=counter,
                           backend=backend, kernel=enum_kernel)
    t0 = time.perf_counter()
    if coreness is None:
        coreness = peel_exact(prepared.incidence, counter=counter,
                              backend=backend, kernel=peel_kernel)
    core = coreness.core
    t1 = time.perf_counter()
    n_r = prepared.n_r
    incidence = prepared.incidence
    if tree_kernel == "array" and not supports_array_tree(incidence):
        raise ParameterError(
            "kernel='array' hierarchy construction requires "
            "strategy='csr' (flat member arrays)")
    if tree_kernel == "array" or (tree_kernel == "auto"
                                  and supports_array_tree(incidence)):
        tree, kernel_stats = build_tree_arrays(incidence, core,
                                               counter=counter)
        t2 = time.perf_counter()
        stats = dict(coreness.stats)
        stats.update(kernel_stats)
        stats.update({
            "seconds_coreness": t1 - t0,
            "seconds_tree": t2 - t1,
        })
        return InterleavedResult(coreness, tree, stats)
    # "We perform a parallel sort on the r-cliques based on their core
    # numbers" -- the small extra memory the paper attributes to ANH-TE.
    order = par_sort(range(n_r), counter, key=lambda x: core[x], reverse=True)
    by_level: Dict[float, List[int]] = {}
    for rid in order:
        if core[rid] > 0:
            by_level.setdefault(core[rid], []).append(rid)

    uf = ConcurrentUnionFind(n_r, seed=seed)
    builder = HierarchyTreeBuilder(core)
    active: List[int] = []
    unite_calls = 0
    link_calls = 0
    for level in sorted(by_level, reverse=True):
        fresh = by_level[level]
        active.extend(fresh)
        merges_before = uf.stats.effective_unites
        for rid in fresh:
            for members in incidence.s_cliques_containing(rid):
                for other in members:
                    if other != rid and core[other] >= level:
                        link_calls += 1
                        uf.unite(rid, other)
                        unite_calls += 1
        counter.add_parallel(len(fresh) + unite_calls + 1,
                             1 + log2_ceil(max(n_r, 1)))
        if uf.stats.effective_unites == merges_before and not fresh:
            continue
        groups: Dict[int, List[int]] = {}
        for rid in active:
            groups.setdefault(uf.find(rid), []).append(rid)
        counter.add_parallel(len(active) + 1, 1 + log2_ceil(max(n_r, 1)))
        for members in groups.values():
            if len(members) >= 2:
                builder.merge(members, level)
    tree = builder.build()
    t2 = time.perf_counter()
    stats = dict(coreness.stats)
    stats.update({
        "link_calls": float(link_calls),
        "unite_calls": float(unite_calls),
        "effective_unites": float(uf.stats.effective_unites),
        # uf parents + L-equivalent top tracking + the core-sorted order.
        "memory_units": float(3 * n_r),
        "seconds_coreness": t1 - t0,
        "seconds_tree": t2 - t1,
    })
    return InterleavedResult(coreness, tree, stats)
