"""Unit + property tests for the Graph structure (repro.graphs.graph)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GraphFormatError
from repro.graphs.graph import Graph, overlay, union_disjoint


class TestConstruction:
    def test_basic(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert g.n == 3 and g.m == 2
        assert g.neighbors(1) == (0, 2)

    def test_duplicate_and_reversed_edges_merge(self):
        g = Graph(2, [(0, 1), (1, 0), (0, 1)])
        assert g.m == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphFormatError):
            Graph(2, [(0, 0)])

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphFormatError):
            Graph(2, [(0, 2)])
        with pytest.raises(GraphFormatError):
            Graph(2, [(-1, 0)])

    def test_negative_n_rejected(self):
        with pytest.raises(GraphFormatError):
            Graph(-1, [])

    def test_from_edges_infers_n(self):
        g = Graph.from_edges([(0, 5), (2, 3)])
        assert g.n == 6 and g.m == 2

    def test_empty_and_complete(self):
        assert Graph.empty(4).m == 0
        k5 = Graph.complete(5)
        assert k5.m == 10
        assert all(k5.degree(v) == 4 for v in range(5))

    def test_isolated_vertices_kept(self):
        g = Graph(10, [(0, 1)])
        assert g.n == 10
        assert g.degree(9) == 0


class TestQueries:
    def test_neighbors_sorted(self):
        g = Graph(4, [(2, 0), (2, 3), (2, 1)])
        assert g.neighbors(2) == (0, 1, 3)

    def test_has_edge(self):
        g = Graph(3, [(0, 1)])
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)
        assert not g.has_edge(0, 99)  # out of range is just False

    def test_edges_canonical_order(self):
        g = Graph(4, [(3, 1), (0, 2), (1, 0)])
        assert list(g.edges()) == [(0, 1), (0, 2), (1, 3)]

    def test_degrees_and_max(self):
        g = Graph(3, [(0, 1), (0, 2)])
        assert g.degrees() == [2, 1, 1]
        assert g.max_degree() == 2

    def test_is_clique(self):
        g = Graph.complete(4)
        assert g.is_clique([0, 1, 2, 3])
        g2 = Graph(3, [(0, 1)])
        assert g2.is_clique([0, 1])
        assert not g2.is_clique([0, 1, 2])

    def test_density(self):
        assert Graph.complete(4).density() == pytest.approx(1.0)
        assert Graph(4, [(0, 1)]).density() == pytest.approx(1 / 6)
        assert Graph.empty(1).density() == 0.0

    def test_equality_and_hash(self):
        a = Graph(3, [(0, 1)])
        b = Graph(3, [(1, 0)])
        c = Graph(3, [(0, 2)])
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestDerived:
    def test_induced_subgraph(self):
        g = Graph.complete(5)
        sub, remap = g.induced_subgraph([1, 3, 4])
        assert sub.n == 3 and sub.m == 3
        assert remap == {1: 0, 3: 1, 4: 2}

    def test_induced_subgraph_drops_external_edges(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        sub, _ = g.induced_subgraph([0, 2])
        assert sub.m == 0

    def test_relabeled(self):
        g = Graph(3, [(0, 1)])
        h = g.relabeled([2, 1, 0])
        assert h.has_edge(2, 1)
        assert not h.has_edge(0, 1)

    def test_relabeled_rejects_non_permutation(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(GraphFormatError):
            g.relabeled([0, 0, 1])

    def test_union_disjoint(self):
        g = union_disjoint([Graph.complete(3), Graph.complete(2)])
        assert g.n == 5 and g.m == 4
        assert g.has_edge(3, 4)
        assert not g.has_edge(2, 3)

    def test_overlay(self):
        g = overlay(4, [(0, 1)], [(0, 1), (2, 3)])
        assert g.m == 2


@given(st.sets(st.tuples(st.integers(0, 14), st.integers(0, 14)), max_size=40))
def test_handshake_lemma(pairs):
    edges = [(u, v) for u, v in pairs if u != v]
    g = Graph(15, edges)
    assert sum(g.degrees()) == 2 * g.m
    # neighbor symmetry
    for u in range(g.n):
        for v in g.neighbors(u):
            assert u in g.neighbor_set(v)
