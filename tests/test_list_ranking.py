"""Unit + property tests for pointer-jumping list ranking."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DataStructureError
from repro.parallel.counters import WorkSpanCounter
from repro.parallel.list_ranking import (list_rank, lists_to_arrays,
                                         rank_and_order, validate_successors)


def naive_ranks(successor):
    """Reference: follow each chain to its tail."""
    out = []
    for i in range(len(successor)):
        d, cur = 0, i
        while successor[cur] != -1:
            cur = successor[cur]
            d += 1
        out.append(d)
    return out


@st.composite
def disjoint_lists(draw):
    """Random successor arrays encoding disjoint simple lists."""
    n = draw(st.integers(0, 40))
    elements = list(range(n))
    rng = draw(st.randoms(use_true_random=False))
    rng.shuffle(elements)
    successor = [-1] * n
    i = 0
    while i < len(elements):
        length = draw(st.integers(1, 8))
        chain = elements[i:i + length]
        for a, b in zip(chain, chain[1:]):
            successor[a] = b
        i += length
    return successor


class TestValidate:
    def test_accepts_valid(self):
        validate_successors([1, 2, -1, -1])

    def test_rejects_out_of_range(self):
        with pytest.raises(DataStructureError):
            validate_successors([5])

    def test_rejects_self_loop(self):
        with pytest.raises(DataStructureError):
            validate_successors([0])

    def test_rejects_shared_successor(self):
        with pytest.raises(DataStructureError):
            validate_successors([2, 2, -1])

    def test_rejects_cycle(self):
        with pytest.raises(DataStructureError):
            validate_successors([1, 0])


class TestListRank:
    def test_empty(self):
        assert list_rank([], WorkSpanCounter()) == []

    def test_single_chain(self):
        assert list_rank([1, 2, 3, -1], WorkSpanCounter()) == [3, 2, 1, 0]

    def test_multiple_chains(self):
        #  0 -> 2 -> 4;  1 -> 3
        successor = [2, 3, 4, -1, -1]
        assert list_rank(successor, WorkSpanCounter()) == [2, 1, 1, 0, 0]

    def test_span_is_logarithmic(self):
        n = 256
        successor = list(range(1, n)) + [-1]
        c = WorkSpanCounter()
        list_rank(successor, c)
        # pointer jumping: at most ceil(log2 n)+1 rounds of n work
        assert c.span <= 10
        assert c.work <= n * 10

    @given(disjoint_lists())
    def test_matches_naive(self, successor):
        validate_successors(successor)
        got = list_rank(successor, WorkSpanCounter())
        assert got == naive_ranks(successor)


class TestListsToArrays:
    def test_materializes_in_order(self):
        successor = [1, 4, -1, -1, 3]  # 0 -> 1 -> 4 -> 3; 2 alone
        arrays = lists_to_arrays([0, 2, -1], successor, WorkSpanCounter())
        assert arrays == [[0, 1, 4, 3], [2], []]

    @given(disjoint_lists())
    def test_arrays_partition_elements(self, successor):
        n = len(successor)
        heads = sorted(set(range(n)) - {s for s in successor if s != -1})
        arrays = lists_to_arrays(heads, successor, WorkSpanCounter())
        flat = [x for arr in arrays for x in arr]
        assert sorted(flat) == list(range(n))
        for arr in arrays:
            for a, b in zip(arr, arr[1:]):
                assert successor[a] == b  # consecutive in list order


class TestRankAndOrder:
    def test_order_concatenates_lists(self):
        successor = [1, -1, 3, -1]
        ranks, order = rank_and_order(successor, WorkSpanCounter())
        assert ranks == [1, 0, 1, 0]
        assert order == [0, 1, 2, 3]
