"""The nucleus hierarchy tree.

The output of hierarchy construction (Algorithms 1, 4, 5 of the paper) is a
forest whose leaves are r-cliques and whose internal nodes are nuclei:

* every leaf carries its r-clique's (r, s)-clique core number as its level;
* an internal node at level ``c`` is a ``c``-(r, s) nucleus -- the set of
  leaves below it is one connected component of the level-``c`` graph (see
  DESIGN.md Section 1 for the exact semantics);
* levels strictly decrease from children to parents for internal nodes (a
  component formed at level ``c`` can only merge into something at a lower
  level), and a leaf's parent level never exceeds the leaf's core number.

Levels are arbitrary comparable numbers so the same machinery serves exact
decompositions (integer core numbers) and approximate ones (float coreness
estimates from Algorithm 2).

Different algorithms may differ in *single-child chains* (the paper notes
these are equivalent, Section 7.3); :meth:`HierarchyTree.partition_chain`
is the canonical form the tests compare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence

from ..errors import HierarchyError

Level = float  # exact trees use ints; approximate trees use floats

#: Parent value for roots.
NO_PARENT = -1


class HierarchyTree:
    """An immutable nucleus hierarchy forest.

    Node ids ``0 .. n_leaves-1`` are leaves (id = r-clique id); higher ids
    are internal nodes in creation order.
    """

    __slots__ = ("n_leaves", "parent", "level", "rep", "_children", "_roots")

    def __init__(self, n_leaves: int, parent: Sequence[int],
                 level: Sequence[Level], rep: Sequence[int]) -> None:
        if not (len(parent) == len(level) == len(rep)):
            raise HierarchyError("parent/level/rep arrays must align")
        if len(parent) < n_leaves:
            raise HierarchyError(
                f"{len(parent)} nodes cannot contain {n_leaves} leaves")
        self.n_leaves = n_leaves
        self.parent = list(parent)
        self.level = list(level)
        self.rep = list(rep)
        self._children: List[List[int]] = [[] for _ in self.parent]
        self._roots: List[int] = []
        for node, par in enumerate(self.parent):
            if par == NO_PARENT:
                self._roots.append(node)
            else:
                if not 0 <= par < len(self.parent):
                    raise HierarchyError(
                        f"node {node} has out-of-range parent {par}")
                self._children[par].append(node)
        self.validate()

    # -- structure ---------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self.parent)

    @property
    def n_internal(self) -> int:
        return self.n_nodes - self.n_leaves

    def is_leaf(self, node: int) -> bool:
        return node < self.n_leaves

    def children(self, node: int) -> List[int]:
        return list(self._children[node])

    def roots(self) -> List[int]:
        return list(self._roots)

    def core_numbers(self) -> List[Level]:
        """Core number of every leaf (= leaf level)."""
        return self.level[:self.n_leaves]

    def leaves_under(self, node: int) -> List[int]:
        """Sorted leaf ids in the subtree of ``node``."""
        out: List[int] = []
        stack = [node]
        while stack:
            cur = stack.pop()
            if cur < self.n_leaves:
                out.append(cur)
            stack.extend(self._children[cur])
        return sorted(out)

    def depth(self, node: int) -> int:
        """Number of edges from ``node`` to its root."""
        d = 0
        while self.parent[node] != NO_PARENT:
            node = self.parent[node]
            d += 1
        return d

    def height(self) -> int:
        """Longest root-to-leaf path over the forest."""
        return max((self.depth(leaf) for leaf in range(self.n_leaves)),
                   default=0)

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Check all structural invariants; raise :class:`HierarchyError`."""
        # Acyclicity / reachability: walk up from every node with a step cap.
        n = self.n_nodes
        for node in range(n):
            cur, steps = node, 0
            while self.parent[cur] != NO_PARENT:
                cur = self.parent[cur]
                steps += 1
                if steps > n:
                    raise HierarchyError(f"cycle reachable from node {node}")
        for node in range(self.n_leaves, n):
            if not self._children[node]:
                raise HierarchyError(f"internal node {node} has no children")
        for node, par in enumerate(self.parent):
            if par == NO_PARENT:
                continue
            if par < self.n_leaves:
                raise HierarchyError(
                    f"leaf {par} cannot be a parent (of node {node})")
            if node < self.n_leaves:
                if self.level[par] > self.level[node]:
                    raise HierarchyError(
                        f"parent {par} level {self.level[par]} exceeds "
                        f"leaf {node} core {self.level[node]}")
            elif self.level[par] >= self.level[node]:
                raise HierarchyError(
                    f"internal parent {par} level {self.level[par]} must be "
                    f"below child {node} level {self.level[node]}")
        for node in range(self.n_leaves, n):
            if not 0 <= self.rep[node] < self.n_leaves:
                raise HierarchyError(
                    f"internal node {node} representative {self.rep[node]} "
                    f"is not a leaf id")

    # -- nuclei ------------------------------------------------------------

    def nuclei_at(self, c: Level) -> List[List[int]]:
        """All ``c``-(r, s) nuclei as sorted lists of r-clique (leaf) ids.

        This is the Figure 10 "cutting the hierarchy" operation: a nucleus
        at level ``c`` is the leaf set of a maximal node whose level is at
        least ``c``. It costs O(tree size), versus running connectivity
        over the whole level graph (the no-hierarchy baseline).
        """
        out: List[List[int]] = []
        for node in range(self.n_nodes):
            if self.level[node] < c:
                continue
            par = self.parent[node]
            if par != NO_PARENT and self.level[par] >= c:
                continue
            out.append(self.leaves_under(node))
        return out

    def nucleus_of(self, leaf: int, c: Level) -> Optional[List[int]]:
        """The ``c``-nucleus containing ``leaf``, or ``None``.

        Walks up from the leaf to the highest ancestor with level >= c.
        """
        if not 0 <= leaf < self.n_leaves:
            raise HierarchyError(f"{leaf} is not a leaf id")
        if self.level[leaf] < c:
            return None
        node = leaf
        while (self.parent[node] != NO_PARENT
               and self.level[self.parent[node]] >= c):
            node = self.parent[node]
        return self.leaves_under(node)

    def distinct_levels(self) -> List[Level]:
        """Distinct positive levels present, descending."""
        return sorted({lv for lv in self.level if lv > 0}, reverse=True)

    def partition_chain(self) -> Dict[Level, FrozenSet[FrozenSet[int]]]:
        """Canonical form: level -> set of nuclei (as leaf-id frozensets).

        Two hierarchy trees over the same decomposition are equivalent iff
        their partition chains are equal; this is insensitive to
        single-child chains and to node creation order.
        """
        return {c: frozenset(frozenset(nucleus) for nucleus in self.nuclei_at(c))
                for c in self.distinct_levels()}

    def canonical_form(self) -> Dict[str, object]:
        """Node-id-insensitive, JSON-ready serialization of the forest.

        Internal nodes are relabeled in the canonical order ``(level
        descending, minimum leaf id under the node ascending)`` -- a
        strict total order, because same-level nuclei are disjoint
        components and internal levels strictly decrease along chains.
        Two trees produce equal canonical forms iff they are identical up
        to internal-node id permutation (unlike
        :meth:`partition_chain`, single-child chains are preserved).
        This is the hierarchy schema stored in golden snapshots.
        """
        n = self.n_nodes
        min_under: List[int] = list(range(self.n_leaves)) + \
            [self.n_leaves] * self.n_internal
        # Internal children have strictly higher levels and a leaf's
        # parent never exceeds the leaf's level, so sweeping by
        # descending level (leaves first on ties) propagates subtree
        # minima in one pass.
        for node in sorted(range(n),
                           key=lambda x: (-self.level[x],
                                          0 if x < self.n_leaves else 1)):
            par = self.parent[node]
            if par != NO_PARENT:
                min_under[par] = min(min_under[par], min_under[node])
        order = sorted(range(self.n_leaves, n),
                       key=lambda x: (-self.level[x], min_under[x]))
        pos = {node: i for i, node in enumerate(order)}

        def canon_parent(node: int) -> int:
            par = self.parent[node]
            return -1 if par == NO_PARENT else pos[par]

        return {
            "leaf_level": [float(lv) for lv in self.level[:self.n_leaves]],
            "leaf_parent": [canon_parent(x) for x in range(self.n_leaves)],
            "internal": [[float(self.level[x]), canon_parent(x),
                          int(min_under[x])] for x in order],
        }

    def __repr__(self) -> str:
        return (f"HierarchyTree(leaves={self.n_leaves}, "
                f"internal={self.n_internal}, roots={len(self._roots)})")

    def render(self, labels: Optional[Mapping[int, str]] = None,
               max_nodes: int = 200) -> str:
        """ASCII rendering (small trees only; used by examples)."""
        lines: List[str] = []
        count = 0

        def describe(node: int) -> str:
            if labels is not None and node in labels:
                return labels[node]
            kind = "leaf" if node < self.n_leaves else "nucleus"
            return f"{kind}#{node}"

        def walk(node: int, indent: int) -> None:
            nonlocal count
            if count >= max_nodes:
                return
            count += 1
            lines.append("  " * indent
                         + f"{describe(node)} (level {self.level[node]:g})")
            for child in sorted(self._children[node],
                                key=lambda x: (self.level[x], x), reverse=True):
                walk(child, indent + 1)

        for root in sorted(self._roots, key=lambda x: (self.level[x], x)):
            walk(root, 0)
        if count >= max_nodes:
            lines.append(f"... ({self.n_nodes - max_nodes} more nodes)")
        return "\n".join(lines)


class HierarchyTreeBuilder:
    """Incremental builder used by every hierarchy construction algorithm.

    The common pattern in all of the paper's constructions is: start with
    one (implicit) node per leaf, then repeatedly merge the *current top
    nodes* of groups of leaves under a new parent at some level. The
    builder tracks each group's current top node so callers work directly
    with r-clique ids.
    """

    def __init__(self, core: Sequence[Level]) -> None:
        self.n_leaves = len(core)
        self._parent: List[int] = [NO_PARENT] * self.n_leaves
        self._level: List[Level] = list(core)
        self._rep: List[int] = list(range(self.n_leaves))
        # Current top node for each *top representative*; resolved lazily
        # through a small union-ish "top" pointer per node.
        self._top_of_node: List[int] = list(range(self.n_leaves))

    def _top(self, node: int) -> int:
        # Path-compressed walk to the node's current top ancestor.
        root = node
        while self._top_of_node[root] != root:
            root = self._top_of_node[root]
        while self._top_of_node[node] != root:
            self._top_of_node[node], node = root, self._top_of_node[node]
        return root

    def top_of_leaf(self, leaf: int) -> int:
        """Current top node above ``leaf`` (the node a merge would grab)."""
        return self._top(leaf)

    def merge(self, leaves: Iterable[int], level: Level,
              rep: Optional[int] = None) -> Optional[int]:
        """Merge the current tops of ``leaves`` under a new node at ``level``.

        Returns the new internal node id, or ``None`` when the tops already
        coincide (nothing to merge). ``rep`` is the representative r-clique
        recorded on the new node (defaults to the smallest leaf).
        """
        leaf_list = list(leaves)
        tops = sorted({self._top(leaf) for leaf in leaf_list})
        if len(tops) <= 1:
            return None
        node = len(self._parent)
        self._parent.append(NO_PARENT)
        self._level.append(level)
        self._rep.append(min(leaf_list) if rep is None else rep)
        self._top_of_node.append(node)
        for top in tops:
            if self._level[top] < level or (
                    top >= self.n_leaves and self._level[top] <= level):
                raise HierarchyError(
                    f"cannot merge node at level {self._level[top]} under "
                    f"new level {level} (levels must decrease upward)")
            self._parent[top] = node
            self._top_of_node[top] = node
        return node

    def build(self) -> HierarchyTree:
        """Finalize into an immutable :class:`HierarchyTree`."""
        return HierarchyTree(self.n_leaves, self._parent, self._level,
                             self._rep)


def tree_from_partition_chain(core: Sequence[Level],
                              partitions: Mapping[Level, Iterable[Iterable[int]]]
                              ) -> HierarchyTree:
    """Build a tree from explicit per-level partitions (oracle path).

    ``partitions[c]`` must be the connected components (leaf-id groups) of
    the level-``c`` graph. Levels are processed in descending order; used
    by the naive baseline and by tests constructing known-good trees.
    """
    builder = HierarchyTreeBuilder(core)
    for c in sorted(partitions, reverse=True):
        for group in partitions[c]:
            builder.merge(group, c)
    return builder.build()
