"""Unit + property tests for the s/r incidence structures."""

from math import comb

import pytest
from hypothesis import given, settings, strategies as st

from repro.cliques.incidence import (MaterializedIncidence, ReEnumIncidence,
                                     build_incidence, validate_rs)
from repro.errors import ParameterError
from repro.graphs.generators import erdos_renyi
from repro.graphs.graph import Graph


class TestValidateRs:
    def test_valid(self):
        validate_rs(1, 2)
        validate_rs(3, 7)

    @pytest.mark.parametrize("r,s", [(0, 2), (2, 2), (3, 2), (-1, 1)])
    def test_invalid(self, r, s):
        with pytest.raises(ParameterError):
            validate_rs(r, s)


class TestMaterialized:
    def test_complete_graph_counts(self):
        g = Graph.complete(5)
        _, index, inc = build_incidence(g, 2, 3)
        assert inc.n_r == 10
        assert inc.n_s == 10
        # every edge of K5 is in 3 triangles
        assert inc.initial_degrees() == [3] * 10

    def test_members_are_all_r_subsets(self):
        g = Graph.complete(4)
        _, index, inc = build_incidence(g, 2, 4)
        assert inc.n_s == 1
        members = inc.members(0)
        assert len(members) == comb(4, 2)
        assert sorted(members) == list(range(6))

    def test_postings_align_with_members(self):
        g = erdos_renyi(20, 0.4, seed=5)
        _, index, inc = build_incidence(g, 2, 3)
        for rid in range(inc.n_r):
            for sid in inc.s_clique_ids_of(rid):
                assert rid in inc.members(sid)

    def test_s_choose_r(self):
        g = Graph.complete(5)
        _, _, inc = build_incidence(g, 2, 4)
        assert inc.s_choose_r == 6

    def test_memory_units_scale_with_n_s(self):
        g = Graph.complete(6)
        _, _, mat = build_incidence(g, 2, 3)
        _, _, ree = build_incidence(g, 2, 3, strategy="reenum")
        assert mat.memory_units() > ree.memory_units()


class TestStrategy:
    def test_unknown_strategy(self):
        with pytest.raises(ParameterError):
            build_incidence(Graph.complete(3), 1, 2, strategy="bogus")

    def test_invalid_rs_through_builder(self):
        with pytest.raises(ParameterError):
            build_incidence(Graph.complete(3), 2, 2)

    @settings(deadline=None, max_examples=25)
    @given(st.sets(st.tuples(st.integers(0, 9), st.integers(0, 9)),
                   max_size=30),
           st.sampled_from([(1, 2), (1, 3), (2, 3), (2, 4), (3, 4)]))
    def test_strategies_are_equivalent(self, pairs, rs):
        """Materialized and re-enumerating incidence expose identical data."""
        r, s = rs
        g = Graph(10, [(u, v) for u, v in pairs if u != v])
        _, index_a, mat = build_incidence(g, r, s)
        _, index_b, ree = build_incidence(g, r, s, strategy="reenum")
        assert list(index_a) == list(index_b)
        assert mat.n_r == ree.n_r and mat.n_s == ree.n_s
        assert mat.initial_degrees() == ree.initial_degrees()
        for rid in range(mat.n_r):
            a = sorted(tuple(sorted(m)) for m in mat.s_cliques_containing(rid))
            b = sorted(tuple(sorted(m)) for m in ree.s_cliques_containing(rid))
            assert a == b
        assert (sorted(map(tuple, mat.iter_s_cliques()))
                == sorted(map(tuple, ree.iter_s_cliques())))


class TestDegreeSemantics:
    def test_degree_counts_containing_s_cliques(self):
        # Two triangles sharing an edge: the shared edge has degree 2.
        g = Graph(4, [(0, 1), (0, 2), (1, 2), (0, 3), (1, 3)])
        _, index, inc = build_incidence(g, 2, 3)
        degrees = inc.initial_degrees()
        assert degrees[index.id_of((0, 1))] == 2
        assert degrees[index.id_of((0, 2))] == 1
        assert degrees[index.id_of((2, 3))] if (2, 3) in index else True

    def test_k_core_case_degrees_are_vertex_degrees(self):
        g = erdos_renyi(15, 0.3, seed=2)
        _, index, inc = build_incidence(g, 1, 2)
        for rid in range(inc.n_r):
            (v,) = index.clique_of(rid)
            assert inc.initial_degrees()[rid] == g.degree(v)

    def test_sum_of_degrees_is_cs_r_times_n_s(self):
        g = erdos_renyi(14, 0.5, seed=4)
        for r, s in [(1, 3), (2, 3), (2, 4)]:
            _, _, inc = build_incidence(g, r, s)
            assert sum(inc.initial_degrees()) == comb(s, r) * inc.n_s
