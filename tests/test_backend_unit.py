"""Unit tests for the execution-backend layer itself.

Chunking boundaries, worker clamping, context broadcast, exception
propagation out of worker processes, graceful degradation, and the
work-counter merge contract -- everything
``tests/test_backend_equivalence.py`` builds on.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import ParameterError
from repro.cliques.enumeration import enumerate_cliques, enumerate_cliques_via
from repro.graphs.generators import erdos_renyi
from repro.graphs.orientation import arb_orient
from repro.parallel.backend import (BACKEND_NAMES, MAX_WORKERS,
                                    ExecutionBackend, ProcessBackend,
                                    SerialBackend, chunked, clamp_workers,
                                    default_chunk_size, get_default_backend,
                                    make_backend)
from repro.parallel.counters import WorkSpanCounter


# -- module-level chunk functions (must be picklable for process tests) ----

def _echo_chunk(context, chunk):
    return list(chunk)


def _square_chunk(context, chunk):
    return [x * x for x in chunk]


def _add_context_chunk(context, chunk):
    return [context + x for x in chunk]


def _pid_chunk(context, chunk):
    return os.getpid()


def _boom_chunk(context, chunk):
    raise ValueError("boom from worker")


def _exit_unless_parent_chunk(context, chunk):
    # Simulates a worker hard-crashing (OOM kill): dies in any process
    # other than the one whose pid was broadcast as context.
    if os.getpid() != context:
        os._exit(1)
    return list(chunk)


class TestChunked:
    def test_empty_input_gives_no_chunks(self):
        assert chunked([], 4) == []

    def test_chunk_size_one(self):
        assert chunked([5, 6, 7], 1) == [[5], [6], [7]]

    def test_chunk_larger_than_input(self):
        assert chunked([1, 2], 100) == [[1, 2]]

    def test_exact_division(self):
        assert chunked(list(range(6)), 3) == [[0, 1, 2], [3, 4, 5]]

    def test_remainder_chunk(self):
        assert chunked(list(range(5)), 2) == [[0, 1], [2, 3], [4]]

    def test_concatenation_identity(self):
        items = list(range(17))
        for size in (1, 2, 3, 5, 16, 17, 100):
            flat = [x for chunk in chunked(items, size) for x in chunk]
            assert flat == items

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ParameterError):
            chunked([1], 0)


class TestClampWorkers:
    def test_none_uses_cpu_count(self):
        assert clamp_workers(None) == max(1, min(os.cpu_count() or 1,
                                                 MAX_WORKERS))

    def test_low_values_clamp_to_one(self):
        assert clamp_workers(0) == 1
        assert clamp_workers(-8) == 1
        assert clamp_workers(1) == 1

    def test_high_values_clamp_to_cap(self):
        assert clamp_workers(10 ** 6) == MAX_WORKERS

    def test_in_range_passes_through(self):
        assert clamp_workers(3) == 3


class TestDefaultChunkSize:
    def test_single_worker_gets_one_chunk(self):
        assert default_chunk_size(100, 1) == 100

    def test_multi_worker_splits(self):
        size = default_chunk_size(100, 4)
        assert 1 <= size < 100
        # every item covered, about 4 chunks per worker
        assert -(-100 // size) >= 4

    def test_zero_items(self):
        assert default_chunk_size(0, 4) >= 1


class TestSerialBackend:
    def test_is_not_parallel(self):
        assert not SerialBackend().is_parallel()
        assert SerialBackend().workers == 1

    def test_map_preserves_order(self):
        backend = SerialBackend()
        out = backend.map_chunks(_square_chunk, range(10), chunk_size=3)
        assert [x for c in out for x in c] == [i * i for i in range(10)]

    def test_chunk_partition_respected(self):
        backend = SerialBackend()
        out = backend.map_chunks(_echo_chunk, range(5), chunk_size=2)
        assert out == [[0, 1], [2, 3], [4]]

    def test_broadcast_context_reaches_fn(self):
        backend = SerialBackend()
        token = backend.broadcast(100)
        out = backend.map_chunks(_add_context_chunk, [1, 2, 3], token=token)
        assert [x for c in out for x in c] == [101, 102, 103]

    def test_broadcast_same_object_reuses_token(self):
        backend = SerialBackend()
        obj = object()
        assert backend.broadcast(obj) == backend.broadcast(obj)

    def test_exceptions_propagate(self):
        with pytest.raises(ValueError, match="boom"):
            SerialBackend().map_chunks(_boom_chunk, [1, 2])


class TestProcessBackendFallback:
    def test_single_worker_never_pools(self):
        backend = ProcessBackend(workers=1)
        assert not backend.is_parallel()
        assert backend.fallback_reason == "workers <= 1"
        assert backend.map_chunks(_pid_chunk, range(4)) == [os.getpid()]

    def test_unavailable_start_method_degrades(self):
        backend = ProcessBackend(workers=2, start_method="not-a-method")
        assert not backend.is_parallel()
        assert "not-a-method" in backend.fallback_reason
        # still fully functional, context included
        token = backend.broadcast(7)
        out = backend.map_chunks(_add_context_chunk, [1, 2], token=token)
        assert [x for c in out for x in c] == [8, 9]

    def test_small_inputs_stay_in_process(self):
        with ProcessBackend(workers=2, min_dispatch=100) as backend:
            pids = backend.map_chunks(_pid_chunk, range(5), chunk_size=1)
        assert set(pids) == {os.getpid()}

    def test_broken_pool_degrades_to_serial(self):
        with ProcessBackend(workers=2, min_dispatch=1) as backend:
            token = backend.broadcast(os.getpid())
            out = backend.map_chunks(_exit_unless_parent_chunk, [1, 2, 3, 4],
                                     token=token, chunk_size=1)
        assert [x for c in out for x in c] == [1, 2, 3, 4]
        assert not backend.is_parallel()
        assert "broke" in backend.fallback_reason


class TestProcessBackendPool:
    @pytest.fixture()
    def backend(self):
        with ProcessBackend(workers=2, min_dispatch=1) as backend:
            yield backend

    def test_results_arrive_in_chunk_order(self, backend):
        out = backend.map_chunks(_square_chunk, range(20), chunk_size=3)
        assert [x for c in out for x in c] == [i * i for i in range(20)]

    def test_chunk_partition_respected(self, backend):
        out = backend.map_chunks(_echo_chunk, range(7), chunk_size=3)
        assert out == [[0, 1, 2], [3, 4, 5], [6]]

    def test_runs_outside_parent_process(self, backend):
        if not backend.is_parallel():
            pytest.skip(f"no pool available: {backend.fallback_reason}")
        pids = backend.map_chunks(_pid_chunk, range(8), chunk_size=1)
        assert any(pid != os.getpid() for pid in pids)

    def test_broadcast_context_reaches_workers(self, backend):
        token = backend.broadcast(1000)
        out = backend.map_chunks(_add_context_chunk, [1, 2, 3, 4],
                                 token=token, chunk_size=2)
        assert [x for c in out for x in c] == [1001, 1002, 1003, 1004]

    def test_worker_exception_propagates(self, backend):
        with pytest.raises(ValueError, match="boom from worker"):
            backend.map_chunks(_boom_chunk, range(6), chunk_size=2)

    def test_empty_input(self, backend):
        assert backend.map_chunks(_square_chunk, []) == []

    def test_close_is_idempotent(self):
        backend = ProcessBackend(workers=2)
        backend.map_chunks(_square_chunk, range(4))
        backend.close()
        backend.close()
        # a closed backend can still serve maps (pool is rebuilt lazily)
        out = backend.map_chunks(_square_chunk, range(4), chunk_size=4)
        assert out == [[0, 1, 4, 9]]
        backend.close()


class TestWorkCounterMerge:
    """Per-chunk work merged through the backend equals the serial meter."""

    def test_enumeration_counters_match_serial(self):
        graph = erdos_renyi(30, 0.3, seed=5)
        orientation = arb_orient(graph)
        for k in (2, 3):
            reference = WorkSpanCounter()
            expected = list(enumerate_cliques(orientation, k, reference))
            for backend in (SerialBackend(), ProcessBackend(workers=2),
                            ProcessBackend(workers=1)):
                for chunk_size in (None, 1, 7, 1000):
                    counter = WorkSpanCounter()
                    with backend:
                        got = enumerate_cliques_via(backend, orientation, k,
                                                    counter,
                                                    chunk_size=chunk_size)
                    assert got == expected
                    assert (counter.work, counter.span) == \
                        (reference.work, reference.span)


class TestMakeBackend:
    def test_none_is_shared_serial(self):
        assert make_backend(None) is get_default_backend()

    def test_none_with_workers_builds_process(self):
        backend = make_backend(None, workers=2)
        assert isinstance(backend, ProcessBackend)
        assert backend.workers == 2
        backend.close()

    def test_none_with_one_worker_stays_serial(self):
        assert make_backend(None, workers=1) is get_default_backend()

    def test_names_resolve(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        backend = make_backend("process", workers=2)
        assert isinstance(backend, ProcessBackend)
        backend.close()
        assert set(BACKEND_NAMES) == {"serial", "process"}

    def test_instance_passes_through(self):
        backend = SerialBackend()
        assert make_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ParameterError):
            make_backend("gpu")

    def test_backends_are_context_managers(self):
        with make_backend("serial") as backend:
            assert isinstance(backend, ExecutionBackend)
