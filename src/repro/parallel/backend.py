"""Pluggable process-parallel execution backends.

The rest of :mod:`repro.parallel` *meters* parallelism: algorithms run on
one thread while a :class:`~repro.parallel.counters.WorkSpanCounter`
records the work and span a genuinely parallel execution would incur.
This module adds the *execution* half: an :class:`ExecutionBackend`
abstraction that the embarrassingly-parallel hot paths (k-clique listing,
s-clique degree computation, per-bucket batch gathering in peeling)
dispatch through, with two implementations:

* :class:`SerialBackend` -- runs every chunk in-process. This is the
  default and preserves the seed behaviour exactly: deterministic
  execution plus work--span metering.
* :class:`ProcessBackend` -- a ``concurrent.futures`` process pool that
  side-steps the GIL, mirroring how the paper layers ParlayLib under its
  algorithms. Task closures must be picklable module-level functions;
  large read-only inputs (the orientation, the incidence) are shipped to
  workers once per pool via :meth:`ExecutionBackend.broadcast` rather
  than once per task.

Broadcast objects implementing the :class:`ShareableContext` protocol
(``__shm_export__`` / ``__shm_import__`` -- e.g.
:class:`~repro.cliques.csr.CSRIncidence`) additionally ship their numpy
buffers through ``multiprocessing.shared_memory``: the parent copies each
array into a named segment once per pool, workers reattach zero-copy, and
any attach failure degrades gracefully back to pickling the original
object (correctness never depends on shared memory being available).

Both backends expose the same chunked-map primitive and produce
**identical results in identical order** -- chunking only partitions a
deterministic item sequence, and chunk results are concatenated in
submission order. Worker functions return ``(payload, work)`` pairs where
the call site needs work accounting; the per-chunk work integers are
summed and merged back into the caller's ``WorkSpanCounter`` with the
same span formula the serial path charges, so the metered quantities do
not depend on the backend either. ``tests/test_backend_equivalence.py``
is the differential harness that pins this contract.

``ProcessBackend`` degrades gracefully to serial execution when
``workers <= 1``, when the platform offers no usable start method, or
when the pool breaks mid-flight (e.g. a worker is killed): the same
chunk functions then run in-process, so a degraded backend is always
still correct.
"""

from __future__ import annotations

import os
from typing import Any, Callable, List, Optional, Sequence, TypeVar

from ..errors import ParameterError

T = TypeVar("T")

#: Hard cap on pool size; above this the per-worker fork/IPC overhead
#: dwarfs any conceivable benefit for this library's task shapes.
MAX_WORKERS = 64

#: Registry of backend names accepted by :func:`make_backend` (and the
#: CLI's ``--backend`` flag).
BACKEND_NAMES = ("serial", "process")

#: A chunk task: ``fn(context, chunk)`` where ``context`` is the object
#: broadcast for the accompanying token (``None`` when no token is given)
#: and ``chunk`` is a contiguous slice of the item sequence.
ChunkFn = Callable[[Any, List[T]], Any]


def clamp_workers(workers: Optional[int]) -> int:
    """Resolve a requested worker count to a usable pool size.

    ``None`` means "one per available CPU". Requests below 1 clamp to 1
    (a 0- or negative-worker pool is a configuration error we absorb, not
    raise on, so sweeps can pass computed counts); requests above
    :data:`MAX_WORKERS` clamp down to it.
    """
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, min(int(workers), MAX_WORKERS))


def chunked(items: Sequence[T], chunk_size: int) -> List[List[T]]:
    """Split ``items`` into contiguous chunks of at most ``chunk_size``.

    The concatenation of the chunks is exactly ``list(items)``; an empty
    input produces no chunks (not one empty chunk).
    """
    if chunk_size < 1:
        raise ParameterError(f"chunk_size must be >= 1, got {chunk_size}")
    items = list(items)
    return [items[i:i + chunk_size] for i in range(0, len(items), chunk_size)]


def default_chunk_size(n_items: int, workers: int) -> int:
    """Chunk size giving each worker ~4 chunks (load balancing vs IPC).

    Four-ish chunks per worker is the standard compromise: big enough to
    amortize pickling, small enough that one slow chunk does not leave
    the other workers idle at the tail.
    """
    if workers <= 1:
        return max(1, n_items)
    return max(1, -(-n_items // (workers * 4)))


class ShareableContext:
    """Protocol for broadcast contexts that ship as shared-memory buffers.

    A context object may opt into zero-copy process broadcast by
    implementing two hooks (duck-typed; subclassing this class is
    documentation, not a requirement):

    ``__shm_export__() -> (meta, arrays)``
        ``meta`` is a small picklable object (scalar parameters);
        ``arrays`` is a sequence of numpy arrays holding the bulk data.
    ``__shm_import__(meta, arrays) -> object`` (classmethod)
        Rebuild a worker-side equivalent from ``meta`` and the reattached
        arrays. The arrays are read-only views over shared segments; the
        reconstruction must not assume write access or object identity
        with the parent's instance.

    The reconstructed object only needs to support what the worker tasks
    call on it -- it may be a reduced view of the original.
    """

    def __shm_export__(self):
        raise NotImplementedError

    @classmethod
    def __shm_import__(cls, meta, arrays):
        raise NotImplementedError


def is_shareable(obj: Any) -> bool:
    """Whether ``obj`` implements the :class:`ShareableContext` protocol."""
    return hasattr(obj, "__shm_export__") and hasattr(obj, "__shm_import__")


class SharedMemoryAttachError(Exception):
    """A worker could not attach a broadcast shared-memory segment.

    Raised inside worker processes and pickled back to the parent, which
    responds by disabling shared memory for the backend and retrying the
    map with plain pickled contexts.
    """


class _ShmDescriptor:
    """Picklable recipe for reattaching a shared-memory broadcast object.

    ``segments`` holds ``(name, shape, dtype_str)`` per exported array;
    the segment lifetime is owned by the parent backend (workers must
    not unlink).
    """

    __slots__ = ("cls", "meta", "segments")

    def __init__(self, cls: type, meta: Any, segments: List[tuple]) -> None:
        self.cls = cls
        self.meta = meta
        self.segments = segments

    def __reduce__(self):
        return (_ShmDescriptor, (self.cls, self.meta, self.segments))


def _export_to_shm(obj: Any):
    """Copy ``obj``'s arrays into fresh segments; returns (descriptor, blocks).

    Raises whatever ``SharedMemory`` creation raises (e.g. ``OSError``
    when ``/dev/shm`` is unavailable); callers fall back to pickling.
    """
    import numpy as np
    from multiprocessing import shared_memory
    meta, arrays = obj.__shm_export__()
    blocks = []
    segments = []
    try:
        for array in arrays:
            array = np.ascontiguousarray(array)
            # Zero-size segments are rejected by the OS; one spare byte
            # keeps empty arrays (e.g. an edgeless graph's postings)
            # shippable through the same path.
            block = shared_memory.SharedMemory(
                create=True, size=max(1, array.nbytes))
            block.buf[:array.nbytes] = array.tobytes()
            blocks.append(block)
            segments.append((block.name, array.shape, array.dtype.str))
    except Exception:
        for block in blocks:
            block.close()
            block.unlink()
        raise
    return _ShmDescriptor(type(obj), meta, segments), blocks


def _attach_segment(name: str):
    """Attach an existing segment without tracker registration.

    The parent backend owns segment lifetime; if attaching workers also
    registered the name with the (fork-shared) resource tracker, their
    deregistration would race the parent's own bookkeeping and unlink
    segments still in use. Python 3.13 exposes ``track=False`` for this;
    older versions need the registration suppressed around the attach.
    """
    from multiprocessing import shared_memory
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        from multiprocessing import resource_tracker
        original = resource_tracker.register

        def register(res_name, rtype):
            if rtype != "shared_memory":
                original(res_name, rtype)

        resource_tracker.register = register
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _attach_shm(descriptor: "_ShmDescriptor"):
    """Worker-side reattach: rebuild the object over shared buffers.

    Returns ``(obj, blocks)``; the caller must keep ``blocks`` referenced
    for as long as the object's arrays are in use.
    """
    import numpy as np
    blocks = []
    arrays = []
    for name, shape, dtype in descriptor.segments:
        block = _attach_segment(name)
        blocks.append(block)
        array = np.ndarray(shape, dtype=np.dtype(dtype), buffer=block.buf)
        array.flags.writeable = False
        arrays.append(array)
    return descriptor.cls.__shm_import__(descriptor.meta, arrays), blocks


class ExecutionBackend:
    """Protocol for chunked parallel-for execution.

    Implementations provide :meth:`map_chunks`; everything else has
    working defaults. The contract every implementation must honour:

    * chunk results are returned in chunk order (deterministic);
    * ``fn`` may run in another process, so it must be a picklable
      module-level callable (or :func:`functools.partial` of one);
    * exceptions raised by ``fn`` propagate to the caller.
    """

    name = "abstract"

    @property
    def workers(self) -> int:
        return 1

    def is_parallel(self) -> bool:
        """Whether maps may actually run outside the calling process."""
        return False

    def broadcast(self, obj: Any) -> int:
        """Register a read-only context object shared with every worker.

        Returns a token to pass as ``map_chunks(..., token=...)``; the
        object reaches worker processes once per pool rather than once
        per task. Broadcasting the same object again returns the
        existing token.
        """
        raise NotImplementedError

    def map_chunks(self, fn: ChunkFn, items: Sequence[T], *,
                   token: Optional[int] = None,
                   chunk_size: Optional[int] = None) -> List[Any]:
        """Apply ``fn(context, chunk)`` over chunks of ``items``, in order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release pool resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """In-process execution: the instrumented work--span metering path."""

    name = "serial"

    def __init__(self) -> None:
        self._contexts: dict = {}
        self._tokens: dict = {}

    def broadcast(self, obj: Any) -> int:
        key = id(obj)
        if key in self._tokens:
            return self._tokens[key]
        token = len(self._contexts)
        self._contexts[token] = obj
        self._tokens[key] = token
        return token

    def map_chunks(self, fn: ChunkFn, items: Sequence[T], *,
                   token: Optional[int] = None,
                   chunk_size: Optional[int] = None) -> List[Any]:
        context = self._contexts[token] if token is not None else None
        size = chunk_size if chunk_size is not None else max(1, len(items))
        return [fn(context, chunk) for chunk in chunked(items, size)]


# -- worker-process plumbing (module level: must be picklable) -------------

_WORKER_CONTEXTS: dict = {}
#: token -> (reconstructed object, shared-memory blocks kept referenced)
_WORKER_SHM_CACHE: dict = {}


def _worker_init(contexts: dict) -> None:
    """Pool initializer: install the broadcast contexts in this worker."""
    global _WORKER_CONTEXTS, _WORKER_SHM_CACHE
    _WORKER_CONTEXTS = contexts
    _WORKER_SHM_CACHE = {}


def _worker_context(token: int) -> Any:
    """Resolve a broadcast token, attaching shared memory lazily."""
    context = _WORKER_CONTEXTS.get(token)
    if not isinstance(context, _ShmDescriptor):
        return context
    cached = _WORKER_SHM_CACHE.get(token)
    if cached is not None:
        return cached[0]
    try:
        obj, blocks = _attach_shm(context)
    except Exception as exc:
        raise SharedMemoryAttachError(
            f"worker could not attach shared-memory broadcast: {exc!r}")
    _WORKER_SHM_CACHE[token] = (obj, blocks)
    return obj


def _call_chunk(fn: ChunkFn, token: Optional[int], chunk: List[Any]) -> Any:
    """Task trampoline executed inside a worker process."""
    context = _worker_context(token) if token is not None else None
    return fn(context, chunk)


class ProcessBackend(ExecutionBackend):
    """Chunked task dispatch over a ``multiprocessing`` pool.

    Parameters
    ----------
    workers:
        Pool size; ``None`` uses one worker per CPU. Values are clamped
        to ``[1, MAX_WORKERS]``; ``workers == 1`` never creates a pool
        (pure serial fallback).
    chunk_size:
        Default chunk size for :meth:`map_chunks` calls that do not pass
        their own; ``None`` derives one from the item count.
    start_method:
        ``multiprocessing`` start method (``"fork"`` preferred where
        available: broadcast contexts then travel by copy-on-write
        inheritance rather than re-pickling). An unavailable method
        triggers the serial fallback instead of an error.
    min_dispatch:
        Item count below which maps run in-process: a two-item round
        trip costs more IPC than it saves.
    use_shared_memory:
        Ship :class:`ShareableContext` broadcasts through
        ``multiprocessing.shared_memory`` (zero-copy, once per pool)
        instead of pickling them. Disabled automatically -- with the
        reason recorded in :attr:`shm_fallback_reason` -- when segment
        creation or worker attach fails; results are identical either
        way.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None,
                 chunk_size: Optional[int] = None,
                 start_method: Optional[str] = None,
                 min_dispatch: int = 2,
                 use_shared_memory: bool = True) -> None:
        self._workers = clamp_workers(workers)
        self._chunk_size = chunk_size
        self._min_dispatch = max(1, min_dispatch)
        self._contexts: dict = {}
        self._local: dict = {}
        self._tokens: dict = {}
        self._shm_blocks: list = []
        self._use_shared_memory = bool(use_shared_memory)
        self._shm_fallback_reason: Optional[str] = None
        self._pool = None
        self._pool_stale = True
        self._fallback_reason: Optional[str] = None
        self._mp_context = None
        if self._workers <= 1:
            self._fallback_reason = "workers <= 1"
        else:
            self._mp_context = self._resolve_context(start_method)

    def _resolve_context(self, start_method: Optional[str]):
        import multiprocessing as mp
        available = mp.get_all_start_methods()
        if start_method is None:
            # fork shares broadcast contexts copy-on-write; spawn/forkserver
            # re-import and re-pickle but are the only options on some OSes.
            for method in ("fork", "spawn", "forkserver"):
                if method in available:
                    return mp.get_context(method)
            self._fallback_reason = "no multiprocessing start method"
            return None
        if start_method not in available:
            self._fallback_reason = (
                f"start method {start_method!r} unavailable "
                f"(have {available})")
            return None
        return mp.get_context(start_method)

    # -- state -----------------------------------------------------------

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def fallback_reason(self) -> Optional[str]:
        """Why this backend runs serially, or ``None`` if it is pooled."""
        return self._fallback_reason

    def is_parallel(self) -> bool:
        return self._fallback_reason is None

    @property
    def shm_fallback_reason(self) -> Optional[str]:
        """Why shared-memory broadcast is off, or ``None`` if available."""
        if not self._use_shared_memory and self._shm_fallback_reason is None:
            return "disabled by configuration"
        return self._shm_fallback_reason

    def shm_segments(self) -> int:
        """Number of live shared-memory segments owned by this backend."""
        return len(self._shm_blocks)

    def broadcast(self, obj: Any) -> int:
        key = id(obj)
        if key in self._tokens:
            return self._tokens[key]
        token = len(self._contexts)
        shipped = obj
        if (self._use_shared_memory and self.is_parallel()
                and is_shareable(obj)):
            try:
                shipped, blocks = _export_to_shm(obj)
            except Exception as exc:
                self._shm_fallback_reason = f"segment creation failed: {exc}"
                shipped = obj
            else:
                self._shm_blocks.extend(blocks)
        self._contexts[token] = shipped
        self._local[token] = obj
        self._tokens[key] = token
        self._pool_stale = True  # workers must be (re)seeded with it
        return token

    def _disable_shared_memory(self, reason: str) -> None:
        """Fall back to pickled broadcasts: swap descriptors for originals."""
        self._shm_fallback_reason = reason
        self._use_shared_memory = False
        for token, shipped in list(self._contexts.items()):
            if isinstance(shipped, _ShmDescriptor):
                self._contexts[token] = self._local[token]
        self._release_shm()
        self._pool_stale = True

    def _release_shm(self) -> None:
        for block in self._shm_blocks:
            try:
                block.close()
                block.unlink()
            except Exception:
                pass
        self._shm_blocks = []

    # -- execution -------------------------------------------------------

    def _ensure_pool(self):
        from concurrent.futures import ProcessPoolExecutor
        if self._pool is not None and not self._pool_stale:
            return self._pool
        self._shutdown_pool()
        try:
            self._pool = ProcessPoolExecutor(
                max_workers=self._workers,
                mp_context=self._mp_context,
                initializer=_worker_init,
                initargs=(self._contexts,))
        except (OSError, ValueError) as exc:
            self._fallback_reason = f"pool creation failed: {exc}"
            self._pool = None
        self._pool_stale = False
        return self._pool

    def _run_serial(self, fn: ChunkFn, items: Sequence[T],
                    token: Optional[int], size: int) -> List[Any]:
        # Serial paths use the original object, never an shm descriptor.
        context = self._local[token] if token is not None else None
        return [fn(context, chunk) for chunk in chunked(items, size)]

    def map_chunks(self, fn: ChunkFn, items: Sequence[T], *,
                   token: Optional[int] = None,
                   chunk_size: Optional[int] = None) -> List[Any]:
        items = list(items)
        size = chunk_size or self._chunk_size or \
            default_chunk_size(len(items), self._workers)
        if (self._fallback_reason is not None
                or len(items) < self._min_dispatch):
            return self._run_serial(fn, items, token, size)
        pool = self._ensure_pool()
        if pool is None:  # creation failed just now: degraded
            return self._run_serial(fn, items, token, size)
        from concurrent.futures.process import BrokenProcessPool
        try:
            futures = [pool.submit(_call_chunk, fn, token, chunk)
                       for chunk in chunked(items, size)]
            return [f.result() for f in futures]
        except BrokenProcessPool:
            # A worker died (OOM kill, unpicklable surprise at spawn...).
            # Degrade to serial for the rest of this backend's life --
            # correctness over speed. Task-level exceptions are NOT
            # caught here: they re-raise to the caller unchanged.
            self._fallback_reason = "process pool broke mid-flight"
            self.close()
            return self._run_serial(fn, items, token, size)
        except SharedMemoryAttachError as exc:
            # A worker could not map a broadcast segment (e.g. /dev/shm
            # restrictions). Re-broadcast everything pickled and retry
            # the whole map -- shared memory is an optimization, never a
            # correctness dependency.
            self._disable_shared_memory(str(exc))
            return self.map_chunks(fn, items, token=token,
                                   chunk_size=chunk_size)

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
            self._pool_stale = True

    def close(self) -> None:
        self._shutdown_pool()
        self._release_shm()


#: Process-wide default backend: the seed behaviour.
_DEFAULT_BACKEND = SerialBackend()


def get_default_backend() -> SerialBackend:
    """The shared serial backend used when callers pass ``backend=None``."""
    return _DEFAULT_BACKEND


def make_backend(spec: Any = None, workers: Optional[int] = None,
                 **kwargs: Any) -> ExecutionBackend:
    """Resolve a backend from a name, an instance, or ``None``.

    ``None`` returns the shared :class:`SerialBackend` unless ``workers``
    asks for more than one, in which case a :class:`ProcessBackend` is
    built (so ``nucleus_decomposition(..., workers=4)`` alone is enough
    to opt in). A string must be one of :data:`BACKEND_NAMES`; an
    :class:`ExecutionBackend` instance passes through unchanged.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec is None:
        if workers is not None and clamp_workers(workers) > 1:
            return ProcessBackend(workers=workers, **kwargs)
        return get_default_backend()
    if spec == "serial":
        return get_default_backend() if not kwargs else SerialBackend()
    if spec == "process":
        return ProcessBackend(workers=workers, **kwargs)
    raise ParameterError(
        f"unknown backend {spec!r}; expected one of {BACKEND_NAMES} "
        f"or an ExecutionBackend instance")
