"""Baseline algorithms the paper compares against (and test oracles)."""

from .kcore import core_numbers, degeneracy, k_core_subgraph
from .local import LocalResult, h_index, local_nucleus
from .ktruss import max_truss, truss_core_numbers
from .naive_hierarchy import (coreness_histogram, level_graph_components,
                              naive_hierarchy, nuclei_without_hierarchy,
                              sequential_coreness)
from .nh import NHResult, nh
from .phcd import PHCDResult, kcore_peel, phcd

__all__ = [
    "core_numbers", "degeneracy", "k_core_subgraph", "LocalResult",
    "h_index", "local_nucleus", "max_truss",
    "truss_core_numbers", "coreness_histogram", "level_graph_components",
    "naive_hierarchy", "nuclei_without_hierarchy", "sequential_coreness",
    "NHResult", "nh", "PHCDResult", "kcore_peel", "phcd",
]
