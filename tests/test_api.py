"""Unit tests for the public façade (repro.core.api)."""

import pytest

from conftest import oracle_chain
from repro import nucleus_decomposition
from repro.core.api import EXACT_METHODS, choose_method, k_core, k_truss
from repro.errors import ParameterError
from repro.graphs.generators import powerlaw_cluster
from repro.graphs.graph import Graph


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster(100, 4, 0.8, seed=13)


class TestChooseMethod:
    def test_kcore_prefers_te(self):
        assert choose_method(1, 2) == "anh-te"

    def test_small_gap_prefers_el(self):
        assert choose_method(2, 3) == "anh-el"
        assert choose_method(2, 4) == "anh-el"
        assert choose_method(3, 4) == "anh-el"

    def test_large_gap_prefers_te(self):
        assert choose_method(1, 4) == "anh-te"
        assert choose_method(2, 5) == "anh-te"


class TestMethods:
    @pytest.mark.parametrize("method", EXACT_METHODS)
    def test_all_methods_agree(self, graph, method):
        prep, res, oracle = oracle_chain(graph, 2, 3)
        out = nucleus_decomposition(graph, 2, 3, method=method)
        assert out.core == res.core
        assert out.tree.partition_chain() == oracle
        assert out.method == method

    def test_auto_resolves(self, graph):
        out = nucleus_decomposition(graph, 2, 3, method="auto")
        assert out.method == "anh-el"

    def test_unknown_method(self, graph):
        with pytest.raises(ParameterError):
            nucleus_decomposition(graph, 2, 3, method="quantum")

    def test_invalid_rs(self, graph):
        with pytest.raises(ParameterError):
            nucleus_decomposition(graph, 3, 3)

    def test_coreness_only(self, graph):
        out = nucleus_decomposition(graph, 2, 3, hierarchy=False)
        assert out.tree is None
        with pytest.raises(ParameterError):
            out.nuclei_at(1)

    def test_reenum_strategy(self, graph):
        a = nucleus_decomposition(graph, 2, 3, strategy="materialized")
        b = nucleus_decomposition(graph, 2, 3, strategy="reenum")
        assert a.core == b.core


class TestApprox:
    def test_approx_decomposition(self, graph):
        exact = nucleus_decomposition(graph, 2, 3)
        approx = nucleus_decomposition(graph, 2, 3, approx=True, delta=0.5)
        assert approx.is_approximate
        assert approx.approx_delta == 0.5
        assert all(a >= e for a, e in zip(approx.core, exact.core))

    def test_approx_methods(self, graph):
        for method in ("anh-el", "anh-bl", "anh-te", "anh-te-theory"):
            out = nucleus_decomposition(graph, 2, 3, method=method,
                                        approx=True, delta=1.0)
            assert out.tree is not None

    def test_approx_without_variant_rejected(self, graph):
        with pytest.raises(ParameterError):
            nucleus_decomposition(graph, 2, 3, method="nh", approx=True)

    def test_invalid_delta(self, graph):
        with pytest.raises(ParameterError):
            nucleus_decomposition(graph, 2, 3, approx=True, delta=0)

    def test_approx_coreness_only(self, graph):
        out = nucleus_decomposition(graph, 2, 3, hierarchy=False,
                                    approx=True, delta=0.5)
        assert out.tree is None and out.is_approximate


class TestShortcuts:
    def test_k_core_is_12(self, graph):
        out = k_core(graph)
        assert (out.r, out.s) == (1, 2)
        from repro.baselines.kcore import core_numbers
        classic = core_numbers(graph)
        for rid in range(out.n_r):
            (v,) = out.index.clique_of(rid)
            assert out.core[rid] == classic[v]

    def test_k_truss_is_23(self, graph):
        out = k_truss(graph)
        assert (out.r, out.s) == (2, 3)

    def test_timings_recorded(self, graph):
        out = nucleus_decomposition(graph, 2, 3)
        assert out.seconds_total > 0
        assert 0 <= out.seconds_prepare <= out.seconds_total
