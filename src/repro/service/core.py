"""The in-process decomposition query service.

:class:`DecompositionService` serves community-search queries over a set
of registered ``.nda`` artifacts (see :mod:`repro.store`): the compute
layer answers each request against a mmap-loaded
:class:`~repro.store.artifact.DecompositionArtifact`, held in an LRU
cache with a byte budget, with per-endpoint latency and cache hit-rate
counters. The HTTP front end (:mod:`repro.service.http`) is a thin
transport over this class; embedding callers can use it directly.

Concurrency model: artifacts are immutable read-only mappings, so query
execution needs no locking -- only the cache bookkeeping and the
counters take a lock, and those critical sections are O(1). A
``ThreadingHTTPServer`` front end therefore scales reads across threads
(the GIL is released during page faults on the mapped columns).

Batching: :meth:`batch` accepts N queries in one call and resolves each
artifact exactly once for the whole batch, answering all member queries
off that one index -- the per-request overhead (cache lookup, counter
bookkeeping) is paid once per batch, not once per query. The batch is
metered into the endpoint's work--span counter as one parallel round
over its queries (:meth:`~repro.parallel.counters.WorkSpanCounter.
add_parallel_for`), consistent with the library's simulated-parallelism
conventions.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.queries import Community
from ..errors import ArtifactError, ParameterError, ReproError, ServiceError
from ..parallel.counters import WorkSpanCounter
from ..store.artifact import DecompositionArtifact, load_artifact

#: Default artifact-cache budget (bytes of mapped files kept hot).
DEFAULT_CACHE_BYTES = 1 << 28  # 256 MiB

#: The query operations the service answers (plus "batch" on top).
ENDPOINTS = ("community", "membership", "strongest_community",
             "top_k_densest", "coreness")


def community_to_dict(community: Community) -> Dict[str, Any]:
    """JSON shape of one community result."""
    return {
        "node": community.node,
        "level": float(community.level),
        "vertices": list(community.vertices),
        "n_r_cliques": community.n_r_cliques,
        "density": community.density,
    }


@dataclass
class EndpointCounters:
    """Latency + volume counters for one endpoint.

    ``work_span`` reuses the library's :class:`~repro.parallel.counters.
    WorkSpanCounter`: each served query charges one unit of work, and a
    batch charges one parallel round over its members, so the snapshot's
    ``parallelism`` reads as the average batch width.
    """

    requests: int = 0
    errors: int = 0
    seconds_total: float = 0.0
    seconds_max: float = 0.0
    work_span: WorkSpanCounter = field(default_factory=WorkSpanCounter)

    def record(self, seconds: float, n_queries: int = 1,
               error: bool = False) -> None:
        self.requests += n_queries
        if error:
            self.errors += 1
        self.seconds_total += seconds
        self.seconds_max = max(self.seconds_max, seconds)
        self.work_span.add_parallel_for(n_queries)

    def snapshot(self) -> Dict[str, float]:
        mean = self.seconds_total / self.requests if self.requests else 0.0
        ws = self.work_span.snapshot()
        return {
            "requests": self.requests,
            "errors": self.errors,
            "seconds_total": self.seconds_total,
            "seconds_mean": mean,
            "seconds_max": self.seconds_max,
            "work": ws.work,
            "span": ws.span,
        }


class ArtifactCache:
    """LRU cache of loaded artifacts under a byte budget.

    Eviction drops the cache's reference; an artifact still in use by an
    in-flight query stays mapped until that query finishes (the OS unmaps
    when the last reference dies), so eviction is always safe under
    concurrency. ``budget_bytes <= 0`` disables caching (every ``get``
    loads fresh).
    """

    def __init__(self, budget_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        self.budget_bytes = budget_bytes
        self._entries: "OrderedDict[str, DecompositionArtifact]" = \
            OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, path: str) -> DecompositionArtifact:
        with self._lock:
            cached = self._entries.get(path)
            if cached is not None:
                self._entries.move_to_end(path)
                self.hits += 1
                return cached
            self.misses += 1
        # Load outside the lock: concurrent misses may load the same
        # artifact twice, but never block each other on disk I/O.
        artifact = load_artifact(path)
        with self._lock:
            existing = self._entries.get(path)
            if existing is not None:
                return existing
            if self.budget_bytes > 0:
                self._entries[path] = artifact
                self._shrink()
        return artifact

    def _shrink(self) -> None:
        total = sum(a.nbytes for a in self._entries.values())
        while total > self.budget_bytes and len(self._entries) > 1:
            _, evicted = self._entries.popitem(last=False)
            total -= evicted.nbytes
            self.evictions += 1

    def resident_bytes(self) -> int:
        with self._lock:
            return sum(a.nbytes for a in self._entries.values())

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hits / total if total else 0.0,
                "resident": len(self._entries),
                "resident_bytes": sum(a.nbytes
                                      for a in self._entries.values()),
                "budget_bytes": self.budget_bytes,
            }


class DecompositionService:
    """Concurrent query service over registered decomposition artifacts."""

    def __init__(self, artifacts: Optional[Dict[str, str]] = None,
                 cache_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        self._paths: Dict[str, str] = {}
        self._cache = ArtifactCache(cache_bytes)
        self._counters: Dict[str, EndpointCounters] = {
            name: EndpointCounters() for name in ENDPOINTS + ("batch",)}
        self._lock = threading.Lock()
        self.started = time.time()
        for name, path in (artifacts or {}).items():
            self.register(path, name=name)

    # -- registration ------------------------------------------------------

    def register(self, path: str, name: Optional[str] = None) -> str:
        """Register an artifact path under ``name`` (default: file stem).

        The header is validated eagerly so a bad path fails at
        registration, not at first query.
        """
        if name is None:
            name = os.path.splitext(os.path.basename(path))[0]
        load_artifact(path).close()  # header validation only
        with self._lock:
            self._paths[name] = path
        return name

    def artifact_names(self) -> List[str]:
        with self._lock:
            return sorted(self._paths)

    def _resolve(self, name: Optional[str]) -> DecompositionArtifact:
        with self._lock:
            if name is None:
                if len(self._paths) != 1:
                    raise ServiceError(
                        f"request must name an artifact (registered: "
                        f"{sorted(self._paths)})", status=400)
                path = next(iter(self._paths.values()))
            else:
                path = self._paths.get(str(name))
                if path is None:
                    raise ServiceError(
                        f"unknown artifact {name!r} (registered: "
                        f"{sorted(self._paths)})", status=404)
        return self._cache.get(path)

    # -- query dispatch ----------------------------------------------------

    def query(self, op: str, params: Dict[str, Any]) -> Dict[str, Any]:
        """Answer one query; records latency + counters for ``op``.

        Raises :class:`ServiceError` for malformed requests; the payload
        of a successful answer is always JSON-serializable.
        """
        if op not in ENDPOINTS:
            raise ServiceError(
                f"unknown operation {op!r} (have {ENDPOINTS})", status=404)
        counter = self._counters[op]
        start = time.perf_counter()
        try:
            artifact = self._resolve(params.get("artifact"))
            result = self._dispatch(artifact, op, params)
        except ReproError:
            with self._lock:
                counter.record(time.perf_counter() - start, error=True)
            raise
        with self._lock:
            counter.record(time.perf_counter() - start)
        return result

    def batch(self, queries: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Answer N queries in one call, resolving each artifact once.

        Queries are grouped by artifact; each group is answered off a
        single resolved index. Per-query failures are reported in place
        as ``{"error": {...}}`` entries -- one bad query never poisons
        the rest of the batch.
        """
        if not isinstance(queries, (list, tuple)):
            raise ServiceError("batch expects a list of query objects")
        start = time.perf_counter()
        results: List[Optional[Dict[str, Any]]] = [None] * len(queries)
        groups: "OrderedDict[Any, List[int]]" = OrderedDict()
        for i, q in enumerate(queries):
            if not isinstance(q, dict):
                results[i] = _error_payload(
                    ServiceError("each batch entry must be an object"))
                continue
            groups.setdefault(q.get("artifact"), []).append(i)
        for artifact_name, members in groups.items():
            try:
                artifact = self._resolve(artifact_name)
            except ReproError as exc:
                for i in members:
                    results[i] = _error_payload(exc)
                continue
            for i in members:
                q = queries[i]
                op = q.get("op")
                try:
                    if op not in ENDPOINTS:
                        raise ServiceError(
                            f"unknown operation {op!r} (have {ENDPOINTS})",
                            status=404)
                    results[i] = self._dispatch(artifact, op, q)
                except ReproError as exc:
                    results[i] = _error_payload(exc)
        with self._lock:
            self._counters["batch"].record(time.perf_counter() - start,
                                           n_queries=max(1, len(queries)))
        return [r if r is not None else
                _error_payload(ServiceError("unprocessed batch entry"))
                for r in results]

    def _dispatch(self, artifact: DecompositionArtifact, op: str,
                  params: Dict[str, Any]) -> Dict[str, Any]:
        try:
            if op == "community":
                vertices = _require(params, "vertices", list)
                community = artifact.community(
                    vertices,
                    min_level=float(params.get("min_level", 1.0)))
                return _maybe_community(community)
            if op == "membership":
                vertex = _require(params, "vertex", int)
                chain = artifact.membership(vertex)
                return {"found": bool(chain),
                        "communities": [community_to_dict(c) for c in chain]}
            if op == "strongest_community":
                vertex = _require(params, "vertex", int)
                community = artifact.strongest_community(
                    vertex, min_vertices=int(params.get("min_vertices", 2)))
                return _maybe_community(community)
            if op == "top_k_densest":
                top = artifact.top_k_densest(
                    int(params.get("k", 10)),
                    min_vertices=int(params.get("min_vertices", 3)))
                return {"found": bool(top),
                        "communities": [community_to_dict(c) for c in top]}
            # op == "coreness"
            clique = _require(params, "clique", list)
            return {"clique": sorted(int(v) for v in clique),
                    "core": artifact.core_of(clique)}
        except (ParameterError, ArtifactError) as exc:
            raise ServiceError(str(exc), status=400)

    # -- introspection -----------------------------------------------------

    def artifact_info(self) -> List[Dict[str, Any]]:
        """Name, path, and stats of every registered artifact."""
        out = []
        for name in self.artifact_names():
            with self._lock:
                path = self._paths[name]
            artifact = self._cache.get(path)
            out.append({"name": name, "path": path,
                        "meta": {k: v for k, v in artifact.meta.items()
                                 if k != "columns"},
                        "stats": artifact.stats()})
        return out

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot: per-endpoint latency + cache hit rates."""
        with self._lock:
            endpoints = {name: counter.snapshot()
                         for name, counter in self._counters.items()}
        return {
            "uptime_seconds": time.time() - self.started,
            "artifacts": self.artifact_names(),
            "cache": self._cache.snapshot(),
            "endpoints": endpoints,
        }


def _require(params: Dict[str, Any], key: str, kind: type) -> Any:
    value = params.get(key)
    if value is None:
        raise ServiceError(f"missing required parameter {key!r}")
    if kind is int:
        try:
            return int(value)
        except (TypeError, ValueError):
            raise ServiceError(f"parameter {key!r} must be an integer, "
                               f"got {value!r}")
    if kind is list and not isinstance(value, (list, tuple)):
        raise ServiceError(f"parameter {key!r} must be a list, got "
                           f"{type(value).__name__}")
    return value


def _maybe_community(community: Optional[Community]) -> Dict[str, Any]:
    if community is None:
        return {"found": False, "community": None}
    return {"found": True, "community": community_to_dict(community)}


def _error_payload(exc: Exception) -> Dict[str, Any]:
    status = getattr(exc, "status", 400)
    return {"error": {"type": type(exc).__name__, "message": str(exc),
                      "status": status}}
