"""Independent validation of decomposition results.

``verify_decomposition`` re-derives, from the graph alone, everything a
:class:`~repro.core.decomposition.NucleusDecomposition` claims:

1. **coreness soundness** -- every r-clique ``R`` is contained in at least
   ``core[R]`` s-cliques whose other member r-cliques all have core at
   least ``core[R]`` (the defining property of a ``core[R]``-nucleus
   member);
2. **coreness maximality** -- re-running an independent peeling
   (the one-at-a-time textbook algorithm) reproduces the exact values
   (skipped for approximate results, where the approximation bound is
   checked instead);
3. **hierarchy consistency** -- the tree's nuclei at every level equal
   the connected components of the level graph computed directly from
   the definition;
4. **tree structure** -- the structural invariants of
   :meth:`~repro.core.tree.HierarchyTree.validate`.

This is the library's self-check: expensive (it redoes the work), meant
for tests, audits, and the CLI's ``verify`` subcommand, not hot paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import comb
from typing import List, Optional

from ..errors import HierarchyError
from .decomposition import NucleusDecomposition
from .nucleus import prepare


@dataclass
class ValidationReport:
    """Outcome of one verification run."""

    ok: bool
    checks: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    def record(self, name: str, passed: bool, detail: str = "") -> None:
        if passed:
            self.checks.append(name)
        else:
            self.ok = False
            self.failures.append(f"{name}: {detail}" if detail else name)

    def __str__(self) -> str:
        lines = [f"validation {'PASSED' if self.ok else 'FAILED'} "
                 f"({len(self.checks)} checks)"]
        lines.extend(f"  ok: {name}" for name in self.checks)
        lines.extend(f"  FAIL: {name}" for name in self.failures)
        return "\n".join(lines)


def verify_decomposition(result: NucleusDecomposition,
                         max_levels: Optional[int] = None
                         ) -> ValidationReport:
    """Re-derive and check every claim of ``result`` (see module docs).

    ``max_levels`` caps how many hierarchy levels are cross-checked
    against the definition (deepest first); ``None`` checks all.
    """
    report = ValidationReport(ok=True)
    prepared = prepare(result.graph, result.r, result.s)
    core = result.core

    # -- index agreement -------------------------------------------------
    same_index = (len(prepared.index) == result.n_r and all(
        prepared.index.clique_of(rid) == result.index.clique_of(rid)
        for rid in range(result.n_r)))
    report.record("r-clique index matches a fresh enumeration", same_index)
    if not same_index:
        return report

    # -- coreness soundness ------------------------------------------------
    # Only exact core numbers satisfy the supporting-s-clique property;
    # approximate estimates over-estimate by design (their own check is
    # the approximation bound below).
    sound = True
    detail = ""
    for rid in range(result.n_r if not result.is_approximate else 0):
        needed = core[rid]
        if needed <= 0:
            continue
        supporting = 0
        for members in prepared.incidence.s_cliques_containing(rid):
            if all(core[other] >= needed for other in members):
                supporting += 1
                if supporting >= needed:
                    break
        if supporting < needed:
            sound = False
            detail = (f"r-clique {result.index.clique_of(rid)} claims core "
                      f"{needed:g} but only {supporting} supporting "
                      f"s-cliques exist")
            break
    if not result.is_approximate:
        report.record("coreness soundness (enough supporting s-cliques)",
                      sound, detail)

    # -- coreness exactness / approximation bound -------------------------
    from ..baselines.naive_hierarchy import sequential_coreness
    exact = sequential_coreness(prepared.incidence)
    if result.is_approximate:
        bound = ((comb(result.s, result.r) + result.approx_delta)
                 * (1.0 + result.approx_delta))
        ok = all(
            (e == 0 and a == 0) or (e <= a <= bound * e + 1e-9)
            for e, a in zip(exact, core))
        report.record(
            f"approximate estimates within the proven {bound:.2f}x bound",
            ok)
    else:
        ok = core == exact
        report.record("coreness matches the independent sequential peeling",
                      ok,
                      "" if ok else "value mismatch against the oracle")

    # -- hierarchy ---------------------------------------------------------
    if result.tree is not None:
        try:
            result.tree.validate()
            report.record("tree structural invariants", True)
        except HierarchyError as exc:
            report.record("tree structural invariants", False, str(exc))
        from ..baselines.naive_hierarchy import level_graph_components
        levels = result.tree.distinct_levels()
        if max_levels is not None:
            levels = levels[:max_levels]
        consistent = True
        detail = ""
        for c in levels:
            from_tree = sorted(map(tuple, result.tree.nuclei_at(c)))
            from_def = sorted(map(tuple, level_graph_components(
                prepared.incidence, core, c)))
            if from_tree != from_def:
                consistent = False
                detail = f"nuclei at level {c:g} disagree with the definition"
                break
        report.record(
            f"hierarchy nuclei match the definition at {len(levels)} levels",
            consistent, detail)
        leaves_ok = result.tree.n_leaves == result.n_r
        report.record("one leaf per r-clique", leaves_ok)
    return report
