"""``LINK-BASIC`` and ``CONSTRUCT-TREE-BASIC`` (Algorithm 4) -- ANH-BL.

The straightforward interleaved hierarchy: keep one union-find *per level*
and, for every linked pair, unite in every level up to the pair's minimum
core number. Simple, correct, and deliberately wasteful -- up to ``k``
unite operations per pair and ``O(k * n_r)`` extra space -- which is why
the paper's Figure 6 shows ANH-BL trailing (and frequently running out of
memory). It is retained both as the paper's baseline and as a strong
differential-testing partner for the efficient version and for the
array-native hierarchy kernel (:mod:`repro.core.hierarchy_kernel`),
whose level-batched merges must reproduce the same partition chain this
builder derives one unite at a time.

Levels: for exact decompositions the union-finds span every integer level
``1..k`` exactly as the pseudocode says; for approximate decompositions
(float coreness estimates) one union-find per *distinct* estimate value is
the natural generalization.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..ds.union_find import ConcurrentUnionFind
from ..errors import ParameterError
from .tree import HierarchyTree, HierarchyTreeBuilder, Level


def integer_levels(core: Sequence[Level]) -> Optional[List[Level]]:
    """``[1..k]`` when all core values are integral, else ``None``."""
    if all(float(v).is_integer() for v in core):
        k = int(max(core, default=0))
        return [float(i) for i in range(1, k + 1)]
    return None


class LinkBasic:
    """Per-level union-find linking (Algorithm 4)."""

    name = "link-basic"

    def __init__(self, core: Sequence[Level],
                 levels: Optional[Sequence[Level]] = None,
                 seed: int = 0) -> None:
        # Hold the list by reference: the interleaved framework fills core
        # numbers in place while linking (Algorithm 3's call discipline).
        self.core = core if isinstance(core, list) else list(core)
        n_r = len(self.core)
        if levels is None:
            levels = integer_levels(self.core)
            if levels is None:
                levels = sorted({v for v in self.core if v > 0})
        self.levels: List[Level] = sorted(levels)
        if any(lv <= 0 for lv in self.levels):
            raise ParameterError("hierarchy levels must be positive")
        self.ufs: Dict[Level, ConcurrentUnionFind] = {
            lv: ConcurrentUnionFind(n_r, seed=seed) for lv in self.levels
        }
        self.link_calls = 0
        self.unite_calls = 0

    def link(self, r_early: int, r_late: int) -> None:
        """Unite the pair in every union-find up to ``min`` core (lines 3-4)."""
        self.link_calls += 1
        bound = min(self.core[r_early], self.core[r_late])
        for lv in self.levels:
            if lv > bound:
                break
            self.ufs[lv].unite(r_early, r_late)
            self.unite_calls += 1

    def construct_tree(self) -> HierarchyTree:
        """Bottom-up tree from the per-level union-finds (lines 5-9)."""
        builder = HierarchyTreeBuilder(self.core)
        n_r = len(self.core)
        for lv in reversed(self.levels):
            uf = self.ufs[lv]
            groups: Dict[int, List[int]] = {}
            for rid in range(n_r):
                if self.core[rid] >= lv:
                    groups.setdefault(uf.find(rid), []).append(rid)
            for members in groups.values():
                if len(members) >= 2:
                    builder.merge(members, lv)
        return builder.build()

    def memory_units(self) -> int:
        """Extra integers held: one parent array per level (Section 8.1)."""
        return len(self.levels) * len(self.core)

    def stats(self) -> Dict[str, float]:
        return {
            "link_calls": float(self.link_calls),
            "unite_calls": float(self.unite_calls),
            "effective_unites": float(sum(
                uf.stats.effective_unites for uf in self.ufs.values())),
            "memory_units": float(self.memory_units()),
        }
