"""Unit + property tests for both union-find variants."""

import pytest
from hypothesis import given, strategies as st

from repro.ds.union_find import (ConcurrentUnionFind, SequentialUnionFind,
                                 partition_refines)
from repro.errors import DataStructureError
from repro.parallel.atomics import FlakyAtomicCell


@pytest.fixture(params=[ConcurrentUnionFind, SequentialUnionFind])
def uf_cls(request):
    return request.param


class TestBasics:
    def test_initially_singletons(self, uf_cls):
        uf = uf_cls(5)
        assert uf.n_components() == 5
        assert all(uf.find(i) == i for i in range(5))

    def test_unite_merges(self, uf_cls):
        uf = uf_cls(4)
        uf.unite(0, 1)
        assert uf.same_set(0, 1)
        assert not uf.same_set(0, 2)
        assert uf.n_components() == 3

    def test_unite_is_idempotent(self, uf_cls):
        uf = uf_cls(3)
        uf.unite(0, 1)
        root = uf.find(0)
        assert uf.unite(0, 1) == root
        assert uf.n_components() == 2

    def test_transitivity(self, uf_cls):
        uf = uf_cls(6)
        uf.unite(0, 1)
        uf.unite(2, 3)
        uf.unite(1, 2)
        assert uf.same_set(0, 3)

    def test_components_grouping(self, uf_cls):
        uf = uf_cls(5)
        uf.unite(0, 4)
        comps = uf.components()
        groups = sorted(sorted(v) for v in comps.values())
        assert groups == [[0, 4], [1], [2], [3]]

    def test_out_of_range(self, uf_cls):
        uf = uf_cls(3)
        with pytest.raises(DataStructureError):
            uf.find(3)
        with pytest.raises(DataStructureError):
            uf.find(-1)

    def test_zero_size(self, uf_cls):
        uf = uf_cls(0)
        assert uf.n_components() == 0

    def test_negative_size_rejected(self, uf_cls):
        with pytest.raises(DataStructureError):
            uf_cls(-1)

    def test_stats_counted(self, uf_cls):
        uf = uf_cls(4)
        uf.unite(0, 1)
        uf.unite(0, 1)
        assert uf.stats.unites == 2
        assert uf.stats.effective_unites == 1
        assert uf.stats.finds >= 2


@given(st.integers(1, 30),
       st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)),
                max_size=60))
def test_both_variants_agree_with_reference(n, pairs):
    """Both implementations induce the same partition as a naive reference."""
    pairs = [(a % n, b % n) for a, b in pairs]
    concurrent = ConcurrentUnionFind(n, seed=3)
    sequential = SequentialUnionFind(n)
    reference = list(range(n))  # label propagation reference

    def ref_unite(a, b):
        la, lb = reference[a], reference[b]
        if la != lb:
            for i in range(n):
                if reference[i] == lb:
                    reference[i] = la

    for a, b in pairs:
        concurrent.unite(a, b)
        sequential.unite(a, b)
        ref_unite(a, b)
    for a in range(n):
        for b in range(a + 1, n):
            expected = reference[a] == reference[b]
            assert concurrent.same_set(a, b) == expected
            assert sequential.same_set(a, b) == expected


class TestConcurrentSpecifics:
    def test_roots_are_members(self):
        uf = ConcurrentUnionFind(10, seed=1)
        for a, b in [(0, 1), (1, 2), (5, 6)]:
            uf.unite(a, b)
        for root, members in uf.components().items():
            assert root in members

    def test_survives_cas_contention_on_unite(self):
        """A failing CAS whose interference links the root concurrently."""
        uf = ConcurrentUnionFind(4, seed=0)
        # Find which root unite(0, 1) would write to, then make that cell
        # flaky: the failure simulates another thread linking it to 2 first.
        lower = uf.find(0) if uf._priority[uf.find(0)] < uf._priority[uf.find(1)] \
            else uf.find(1)

        def interference(cell):
            uf.set_parent_cell(lower, original)  # restore real cell
            uf.unite(lower, 2)  # the competing thread's unite wins

        original = uf.parent_cell(lower)
        uf.set_parent_cell(
            lower, FlakyAtomicCell(original.load(), iter([True]),
                                   interference=interference))
        uf.unite(0, 1)
        # After retry, 0 and 1 are united, and the contending unite holds.
        assert uf.same_set(0, 1)
        assert uf.same_set(lower, 2)

    def test_seed_changes_priorities_not_partitions(self):
        a = ConcurrentUnionFind(8, seed=1)
        b = ConcurrentUnionFind(8, seed=99)
        for x, y in [(0, 1), (2, 3), (1, 2)]:
            a.unite(x, y)
            b.unite(x, y)
        assert sorted(map(sorted, a.components().values())) == \
            sorted(map(sorted, b.components().values()))


class TestPartitionRefines:
    def test_refinement_holds(self):
        fine = {0: [0], 1: [1, 2]}
        coarse = {0: [0, 1, 2]}
        assert partition_refines(fine, coarse)

    def test_refinement_fails_on_split(self):
        fine = {0: [0, 1]}
        coarse = {0: [0], 1: [1]}
        assert not partition_refines(fine, coarse)

    def test_missing_element_fails(self):
        assert not partition_refines({0: [0, 5]}, {0: [0]})
