"""Edge-density analysis of nuclei (Figure 10, left).

The paper evaluates nucleus quality by *edge density*: for a vertex set
``S``, the number of induced edges divided by ``C(|S|, 2)``. The hierarchy
makes sweeping this metric cheap -- every internal node is a nucleus, and
its vertex set is the union of its leaf r-cliques' vertices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set

from ..cliques.index import CliqueIndex
from ..core.tree import HierarchyTree
from ..graphs.graph import Graph


def nucleus_vertices(index: CliqueIndex, leaf_ids: Iterable[int]) -> Set[int]:
    """Union of the vertices of the given r-cliques."""
    out: Set[int] = set()
    for rid in leaf_ids:
        out.update(index.clique_of(rid))
    return out


def edge_density(graph: Graph, vertices: Sequence[int]) -> float:
    """Induced edge count over ``C(|S|, 2)`` (0.0 for fewer than 2 vertices)."""
    vs = set(vertices)
    k = len(vs)
    if k < 2:
        return 0.0
    edges = 0
    for u in vs:
        for v in graph.neighbor_set(u):
            if v > u and v in vs:
                edges += 1
    return edges / (k * (k - 1) / 2)


@dataclass(frozen=True)
class NucleusProfile:
    """One row of the Figure 10 (left) scatter: a nucleus's size/density."""

    level: float
    n_vertices: int
    n_r_cliques: int
    density: float


def density_profile(graph: Graph, index: CliqueIndex, tree: HierarchyTree,
                    min_vertices: int = 2) -> List[NucleusProfile]:
    """Size vs density for every internal node (nucleus) of the tree.

    Sorted by level descending then size; nuclei smaller than
    ``min_vertices`` are dropped (their density is degenerate).
    """
    rows: List[NucleusProfile] = []
    for node in range(tree.n_leaves, tree.n_nodes):
        leaves = tree.leaves_under(node)
        vertices = nucleus_vertices(index, leaves)
        if len(vertices) < min_vertices:
            continue
        rows.append(NucleusProfile(
            level=tree.level[node],
            n_vertices=len(vertices),
            n_r_cliques=len(leaves),
            density=edge_density(graph, sorted(vertices)),
        ))
    rows.sort(key=lambda p: (-p.level, p.n_vertices))
    return rows


def densest_nucleus(graph: Graph, index: CliqueIndex, tree: HierarchyTree,
                    min_vertices: int = 3) -> NucleusProfile:
    """The densest nucleus with at least ``min_vertices`` vertices.

    Returns a degenerate all-zero profile when the tree has no qualifying
    nucleus (e.g. a triangle-free graph under (2, 3)).
    """
    rows = density_profile(graph, index, tree, min_vertices=min_vertices)
    if not rows:
        return NucleusProfile(level=0.0, n_vertices=0, n_r_cliques=0,
                              density=0.0)
    return max(rows, key=lambda p: (p.density, p.n_vertices))
