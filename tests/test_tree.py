"""Unit tests for the hierarchy tree structure and builder."""

import pytest

from repro.core.tree import (NO_PARENT, HierarchyTree, HierarchyTreeBuilder,
                             tree_from_partition_chain)
from repro.errors import HierarchyError


def two_level_tree():
    """Leaves 0,1 (core 3), 2 (core 2); node 3 = {0,1}@3, node 4 = all@2."""
    return HierarchyTree(
        n_leaves=3,
        parent=[3, 3, 4, 4, NO_PARENT],
        level=[3, 3, 2, 3, 2],
        rep=[0, 1, 2, 0, 0],
    )


class TestStructure:
    def test_counts(self):
        t = two_level_tree()
        assert t.n_nodes == 5
        assert t.n_internal == 2
        assert t.roots() == [4]

    def test_children_and_leaves_under(self):
        t = two_level_tree()
        assert sorted(t.children(4)) == [2, 3]
        assert t.leaves_under(4) == [0, 1, 2]
        assert t.leaves_under(3) == [0, 1]
        assert t.leaves_under(0) == [0]

    def test_depth_and_height(self):
        t = two_level_tree()
        assert t.depth(0) == 2
        assert t.depth(2) == 1
        assert t.height() == 2

    def test_core_numbers(self):
        assert two_level_tree().core_numbers() == [3, 3, 2]


class TestValidation:
    def test_cycle_detected(self):
        with pytest.raises(HierarchyError):
            HierarchyTree(1, parent=[1, 2, 1], level=[1, 1, 1], rep=[0, 0, 0])

    def test_leaf_parent_rejected(self):
        with pytest.raises(HierarchyError):
            HierarchyTree(2, parent=[1, NO_PARENT], level=[1, 1], rep=[0, 1])

    def test_childless_internal_rejected(self):
        with pytest.raises(HierarchyError):
            HierarchyTree(1, parent=[NO_PARENT, NO_PARENT], level=[1, 1],
                          rep=[0, 0])

    def test_level_inversion_rejected(self):
        # internal parent at level >= child's internal level
        with pytest.raises(HierarchyError):
            HierarchyTree(2, parent=[2, 2, 3, NO_PARENT],
                          level=[5, 5, 3, 3], rep=[0, 1, 0, 0])

    def test_parent_above_leaf_core_rejected(self):
        with pytest.raises(HierarchyError):
            HierarchyTree(2, parent=[2, 2, NO_PARENT],
                          level=[1, 5, 4], rep=[0, 1, 1])

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(HierarchyError):
            HierarchyTree(1, parent=[NO_PARENT], level=[1, 2], rep=[0])

    def test_non_leaf_representative_rejected(self):
        with pytest.raises(HierarchyError):
            HierarchyTree(2, parent=[2, 2, NO_PARENT],
                          level=[3, 3, 1], rep=[0, 1, 2])


class TestNuclei:
    def test_nuclei_at_levels(self):
        t = two_level_tree()
        assert t.nuclei_at(3) == [[0, 1]]
        assert t.nuclei_at(2) == [[0, 1, 2]]
        # above the max level: nothing qualifies
        assert t.nuclei_at(4) == []

    def test_nuclei_at_includes_singleton_leaves(self):
        # leaf 2 has core 2 but only joins at level 2; at level 2.5 nothing;
        # a lone high-core leaf is its own nucleus.
        t = HierarchyTree(2, parent=[2, 2, NO_PARENT], level=[5, 2, 2],
                          rep=[0, 1, 0])
        assert t.nuclei_at(5) == [[0]]
        assert t.nuclei_at(2) == [[0, 1]]

    def test_nucleus_of_walks_to_highest_qualifying(self):
        t = two_level_tree()
        assert t.nucleus_of(0, 3) == [0, 1]
        assert t.nucleus_of(0, 2) == [0, 1, 2]
        assert t.nucleus_of(2, 3) is None  # core 2 < 3
        with pytest.raises(HierarchyError):
            t.nucleus_of(10, 1)

    def test_distinct_levels_descending(self):
        assert two_level_tree().distinct_levels() == [3, 2]

    def test_partition_chain(self):
        chain = two_level_tree().partition_chain()
        assert chain[3] == frozenset({frozenset({0, 1})})
        assert chain[2] == frozenset({frozenset({0, 1, 2})})

    def test_partition_chain_ignores_single_child_chains(self):
        # Same semantics with an extra single-child node in the middle.
        chained = HierarchyTree(
            n_leaves=3,
            parent=[3, 3, 5, 4, 5, NO_PARENT],
            level=[3, 3, 2, 3, 2.5, 2],
            rep=[0, 1, 2, 0, 0, 0],
        )
        assert (chained.partition_chain()[3]
                == two_level_tree().partition_chain()[3])
        assert (chained.partition_chain()[2]
                == two_level_tree().partition_chain()[2])


class TestBuilder:
    def test_merge_creates_parent(self):
        b = HierarchyTreeBuilder([2, 2, 1])
        node = b.merge([0, 1], 2)
        assert node == 3
        t = b.build()
        assert t.leaves_under(node) == [0, 1]
        assert t.level[node] == 2

    def test_merge_singleton_is_noop(self):
        b = HierarchyTreeBuilder([2, 2])
        assert b.merge([0], 2) is None
        assert b.merge([0, 0], 2) is None

    def test_merge_same_component_twice_is_noop(self):
        b = HierarchyTreeBuilder([2, 2])
        assert b.merge([0, 1], 2) is not None
        assert b.merge([0, 1], 1) is None

    def test_nested_merges_track_tops(self):
        b = HierarchyTreeBuilder([3, 3, 2])
        inner = b.merge([0, 1], 3)
        outer = b.merge([0, 2], 2)
        t = b.build()
        assert t.parent[inner] == outer
        assert t.parent[2] == outer
        assert t.leaves_under(outer) == [0, 1, 2]

    def test_level_violation_raises(self):
        b = HierarchyTreeBuilder([3, 3, 1])
        b.merge([0, 1], 3)
        with pytest.raises(HierarchyError):
            b.merge([0, 2], 2)  # leaf 2 has core 1 < merge level 2

    def test_top_of_leaf(self):
        b = HierarchyTreeBuilder([1, 1])
        assert b.top_of_leaf(0) == 0
        node = b.merge([0, 1], 1)
        assert b.top_of_leaf(0) == node


class TestPartitionChainConstruction:
    def test_round_trip(self):
        core = [3, 3, 2, 0]
        partitions = {3: [[0, 1]], 2: [[0, 1, 2]]}
        t = tree_from_partition_chain(core, partitions)
        assert t.nuclei_at(3) == [[0, 1]]
        assert t.nuclei_at(2) == [[0, 1, 2]]
        assert t.nuclei_at(1) == [[0, 1, 2]]

    def test_forest_output(self):
        core = [1, 1, 1, 1]
        partitions = {1: [[0, 1], [2, 3]]}
        t = tree_from_partition_chain(core, partitions)
        assert len(t.roots()) == 2
        assert sorted(map(tuple, t.nuclei_at(1))) == [(0, 1), (2, 3)]


class TestRender:
    def test_render_contains_nodes(self):
        out = two_level_tree().render()
        assert "nucleus#4" in out and "leaf#0" in out

    def test_render_with_labels_and_cap(self):
        t = two_level_tree()
        out = t.render(labels={0: "edge{0,1}"}, max_nodes=2)
        assert "edge{0,1}" in out or "more nodes" in out
