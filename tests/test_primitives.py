"""Unit tests for instrumented parallel primitives (repro.parallel.primitives)."""

from hypothesis import given, strategies as st

from repro.parallel.counters import WorkSpanCounter, log2_ceil
from repro.parallel.primitives import (par_count, par_filter, par_flatten,
                                       par_hash_build, par_map, par_max,
                                       par_reduce, par_scan, par_semisort,
                                       par_sort)


def fresh():
    return WorkSpanCounter()


class TestSemantics:
    def test_par_map(self):
        c = fresh()
        assert par_map([1, 2, 3], lambda x: x * 2, c) == [2, 4, 6]
        assert c.work == 3

    def test_par_filter(self):
        c = fresh()
        assert par_filter(range(10), lambda x: x % 2 == 0, c) == [0, 2, 4, 6, 8]

    def test_par_reduce(self):
        c = fresh()
        assert par_reduce([1, 2, 3, 4], lambda a, b: a + b, c, 0) == 10

    def test_par_reduce_empty(self):
        assert par_reduce([], lambda a, b: a + b, fresh(), 99) == 99

    def test_par_scan_exclusive(self):
        prefixes, total = par_scan([3, 1, 4], fresh())
        assert prefixes == [0, 3, 4]
        assert total == 8

    def test_par_scan_empty(self):
        prefixes, total = par_scan([], fresh())
        assert prefixes == [] and total == 0

    def test_par_count(self):
        assert par_count(range(10), lambda x: x > 6, fresh()) == 3

    def test_par_sort_with_key_and_reverse(self):
        out = par_sort([3, 1, 2], fresh(), key=lambda x: -x)
        assert out == [3, 2, 1]
        out = par_sort(["bb", "a"], fresh(), key=len, reverse=True)
        assert out == ["bb", "a"]

    def test_par_semisort_groups(self):
        groups = par_semisort([("a", 1), ("b", 2), ("a", 3)], fresh())
        assert groups == {"a": [1, 3], "b": [2]}

    def test_par_hash_build_last_wins(self):
        table = par_hash_build([("k", 1), ("k", 2)], fresh())
        assert table == {"k": 2}

    def test_par_flatten(self):
        assert par_flatten([[1, 2], [], [3]], fresh()) == [1, 2, 3]

    def test_par_max(self):
        assert par_max([4, 9, 2], fresh()) == 9
        assert par_max([], fresh(), default=-1) == -1


class TestAccounting:
    def test_map_span_is_logarithmic(self):
        c = fresh()
        par_map(list(range(1024)), lambda x: x, c)
        assert c.work == 1024
        assert c.span == 1 + log2_ceil(1024)

    def test_sort_work_superlinear(self):
        c_small, c_big = fresh(), fresh()
        par_sort(list(range(16)), c_small)
        par_sort(list(range(1024)), c_big)
        assert c_big.work / 1024 > c_small.work / 16  # n log n growth

    def test_reduce_span_smaller_than_serial(self):
        c = fresh()
        par_reduce(list(range(1000)), lambda a, b: a + b, c, 0)
        assert c.span < 1000  # tree, not chain

    @given(st.lists(st.integers(0, 100), max_size=200))
    def test_scan_matches_cumulative_sum(self, xs):
        prefixes, total = par_scan(xs, fresh())
        run = 0
        for x, p in zip(xs, prefixes):
            assert p == run
            run += x
        assert total == sum(xs)

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers()), max_size=100))
    def test_semisort_partitions_all_values(self, pairs):
        groups = par_semisort(pairs, fresh())
        flattened = sorted(v for vs in groups.values() for v in vs)
        assert flattened == sorted(v for _, v in pairs)
        for k, vs in groups.items():
            assert vs == [v for kk, v in pairs if kk == k]  # order preserved
