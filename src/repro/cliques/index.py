"""Dense integer indexing of r-cliques.

Every algorithm in the library works on r-cliques through small integer
ids: the peeling buckets, union-find structures, and hierarchy trees are
all arrays indexed by r-clique id. :class:`CliqueIndex` provides the
bijection id <-> canonical vertex tuple.

The paper stores r-clique data in a multi-level parallel hash table keyed
by vertex tuples (Shi et al. [55]); a Python dict over canonical tuples is
the idiomatic equivalent and preserves the expected O(1) access the bounds
assume.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from ..errors import DataStructureError, ParameterError
from ..parallel.counters import NullCounter, WorkSpanCounter
from ..graphs.orientation import Orientation
from .enumeration import Clique, enumerate_cliques


class CliqueIndex:
    """Bijection between canonical r-clique tuples and ids ``0..n_r-1``.

    Ids follow the sorted order of the canonical tuples so the mapping is
    deterministic across runs and platforms.
    """

    __slots__ = ("r", "_cliques", "_ids")

    def __init__(self, cliques: Iterable[Clique], r: Optional[int] = None) -> None:
        self._cliques: List[Clique] = sorted(
            {tuple(sorted(c)) for c in cliques})
        if self._cliques:
            sizes = {len(c) for c in self._cliques}
            if len(sizes) != 1:
                raise DataStructureError(
                    f"cliques have inconsistent sizes: {sorted(sizes)}")
            self.r = next(iter(sizes))
            if r is not None and r != self.r:
                raise DataStructureError(
                    f"declared r={r} but cliques have size {self.r}")
        else:
            if r is None:
                raise ParameterError(
                    "r must be given explicitly for an empty index")
            self.r = r
        self._ids: Dict[Clique, int] = {
            c: i for i, c in enumerate(self._cliques)}

    @classmethod
    def from_orientation(cls, orientation: Orientation, r: int,
                         counter: Optional[WorkSpanCounter] = None,
                         backend=None,
                         chunk_size: Optional[int] = None) -> "CliqueIndex":
        """Enumerate and index all r-cliques of the graph.

        A parallel execution ``backend`` (see
        :mod:`repro.parallel.backend`) dispatches the per-vertex listing
        to worker processes; ids are unaffected because the index sorts
        canonically either way.
        """
        counter = counter if counter is not None else NullCounter()
        if backend is not None and backend.is_parallel():
            from .enumeration import enumerate_cliques_via
            return cls(enumerate_cliques_via(backend, orientation, r, counter,
                                             chunk_size=chunk_size), r=r)
        return cls(enumerate_cliques(orientation, r, counter), r=r)

    def __len__(self) -> int:
        return len(self._cliques)

    def __contains__(self, clique: Clique) -> bool:
        return tuple(sorted(clique)) in self._ids

    def __iter__(self) -> Iterator[Clique]:
        return iter(self._cliques)

    def id_of(self, clique: Sequence[int]) -> int:
        """Id of the clique with the given vertices (any order)."""
        key = tuple(sorted(clique))
        if key not in self._ids:
            raise DataStructureError(f"clique {key} is not in the index")
        return self._ids[key]

    def get(self, clique: Sequence[int]) -> Optional[int]:
        """Id of the clique, or ``None`` if absent."""
        return self._ids.get(tuple(sorted(clique)))

    def clique_of(self, ident: int) -> Clique:
        """Canonical vertex tuple of the clique with id ``ident``."""
        if not 0 <= ident < len(self._cliques):
            raise DataStructureError(
                f"clique id {ident} out of range [0, {len(self._cliques)})")
        return self._cliques[ident]

    def ids(self) -> range:
        return range(len(self._cliques))

    def label(self, ident: int) -> str:
        """Human-readable label, e.g. ``'{0,3,7}'`` (used in reports)."""
        return "{" + ",".join(map(str, self.clique_of(ident))) + "}"
