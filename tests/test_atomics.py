"""Unit tests for the CAS model (repro.parallel.atomics)."""

import itertools

from repro.parallel.atomics import (AtomicCell, AtomicStats, FlakyAtomicCell,
                                    fetch_and_add, write_min)


class TestAtomicCell:
    def test_load_store(self):
        c = AtomicCell(5)
        assert c.load() == 5
        c.store(9)
        assert c.load() == 9

    def test_cas_success_and_failure(self):
        c = AtomicCell(1)
        assert c.compare_and_swap(1, 2)
        assert c.load() == 2
        assert not c.compare_and_swap(1, 3)
        assert c.load() == 2

    def test_stats_recorded(self):
        stats = AtomicStats()
        c = AtomicCell(0, stats)
        c.load()
        c.store(1)
        c.compare_and_swap(1, 2)
        c.compare_and_swap(99, 3)
        assert stats.loads == 1
        assert stats.stores == 1
        assert stats.cas_attempts == 2
        assert stats.cas_failures == 1

    def test_stats_reset(self):
        stats = AtomicStats()
        c = AtomicCell(0, stats)
        c.load()
        stats.reset()
        assert stats.loads == 0


class TestFlakyAtomicCell:
    def test_scheduled_failures(self):
        c = FlakyAtomicCell(0, iter([True, False]))
        assert not c.compare_and_swap(0, 1)  # forced failure
        assert c.load() == 0
        assert c.compare_and_swap(0, 1)  # now succeeds
        assert c.load() == 1

    def test_interference_mutates_before_failure(self):
        c = FlakyAtomicCell(0, iter([True]),
                            interference=lambda cell: cell.store(42))
        assert not c.compare_and_swap(0, 1)
        assert c.load() == 42
        # Retry with fresh expectation now works (the CAS-loop pattern).
        assert c.compare_and_swap(42, 1)

    def test_exhausted_schedule_behaves_normally(self):
        c = FlakyAtomicCell(0, iter([]))
        assert c.compare_and_swap(0, 7)

    def test_failure_counted_in_stats(self):
        stats = AtomicStats()
        c = FlakyAtomicCell(0, iter([True]), stats=stats)
        c.compare_and_swap(0, 1)
        assert stats.cas_failures == 1


class TestDerivedPrimitives:
    def test_write_min_lowers(self):
        c = AtomicCell(10)
        assert write_min(c, 3)
        assert c.load() == 3

    def test_write_min_ignores_higher(self):
        c = AtomicCell(3)
        assert not write_min(c, 10)
        assert c.load() == 3

    def test_write_min_retries_through_contention(self):
        # First CAS fails with interference lowering the value to 5; the
        # retry then lowers 5 -> 2.
        c = FlakyAtomicCell(10, iter([True]),
                            interference=lambda cell: cell.store(5))
        assert write_min(c, 2)
        assert c.load() == 2

    def test_write_min_contention_beats_us(self):
        # Interference lowers below our candidate; we must NOT overwrite.
        c = FlakyAtomicCell(10, iter([True]),
                            interference=lambda cell: cell.store(1))
        assert not write_min(c, 2)
        assert c.load() == 1

    def test_fetch_and_add(self):
        c = AtomicCell(10)
        assert fetch_and_add(c, 5) == 10
        assert c.load() == 15

    def test_fetch_and_add_under_contention(self):
        c = FlakyAtomicCell(0, iter([True]),
                            interference=lambda cell: cell.store(100))
        assert fetch_and_add(c, 1) == 100
        assert c.load() == 101
