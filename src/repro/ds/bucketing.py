"""Julienne-style parallel bucketing structure (Dhulipala et al. [16]).

The peeling algorithms group r-cliques into buckets keyed by their current
s-clique degree and repeatedly extract the minimum bucket; peeling the
extracted cliques lowers other cliques' degrees, which re-buckets them.

Semantics chosen to match the exact peeling paradigm (Sariyüce et al. [52],
Shi et al. [55]):

* ``next_bucket()`` returns every live identifier whose *current* value is
  minimal, together with that value;
* values only decrease (a :class:`DataStructureError` guards against
  accidental increases, which would break peeling monotonicity);
* each extraction counts as one peeling round, so ``rounds`` after the loop
  equals the peeling complexity ``rho_(r,s)(G)`` of the paper's bounds.

Implementation: a lazy bucket table. Each id carries its authoritative
current value in an array; bucket lists may hold stale entries, which are
skipped at extraction time. This is the standard lazy variant of Julienne
and gives O(1) amortized updates.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import DataStructureError


class BucketQueue:
    """Minimum-bucket extraction over integer-valued identifiers."""

    __slots__ = ("_value", "_alive", "_buckets", "_cursor", "_remaining",
                 "rounds", "updates")

    def __init__(self, values: Sequence[int]) -> None:
        self._value: List[int] = list(values)
        for i, v in enumerate(self._value):
            if v < 0:
                raise DataStructureError(
                    f"bucket value must be >= 0, got {v} for id {i}")
        self._alive: List[bool] = [True] * len(self._value)
        max_v = max(self._value, default=0)
        self._buckets: List[List[int]] = [[] for _ in range(max_v + 1)]
        for i, v in enumerate(self._value):
            self._buckets[v].append(i)
        self._cursor = 0
        self._remaining = len(self._value)
        #: number of ``next_bucket`` extractions performed (= peeling rounds)
        self.rounds = 0
        #: number of value updates applied
        self.updates = 0

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return self._remaining

    @property
    def empty(self) -> bool:
        return self._remaining == 0

    def value(self, ident: int) -> int:
        """Current value of ``ident`` (valid also after extraction)."""
        return self._value[ident]

    def alive(self, ident: int) -> bool:
        """Whether ``ident`` has not yet been extracted."""
        return self._alive[ident]

    # -- updates ---------------------------------------------------------

    def update(self, ident: int, new_value: int) -> None:
        """Lower the value of a live identifier, re-bucketing it."""
        if not self._alive[ident]:
            raise DataStructureError(
                f"cannot update extracted identifier {ident}")
        old = self._value[ident]
        if new_value > old:
            raise DataStructureError(
                f"bucket values may only decrease: id {ident} {old} -> {new_value}")
        if new_value == old:
            return
        if new_value < 0:
            raise DataStructureError(
                f"bucket value must be >= 0, got {new_value} for id {ident}")
        self.updates += 1
        self._value[ident] = new_value
        self._buckets[new_value].append(ident)
        # Values can drop below the cursor; rewind so extraction sees them.
        if new_value < self._cursor:
            self._cursor = new_value

    def decrement(self, ident: int, amount: int = 1) -> None:
        """Lower ``ident`` by ``amount`` (clamped at zero)."""
        self.update(ident, max(0, self._value[ident] - amount))

    # -- extraction ------------------------------------------------------

    def peek_min(self) -> Optional[int]:
        """The minimum current value among live identifiers, or ``None``."""
        if self._remaining == 0:
            return None
        cursor = self._cursor
        while cursor < len(self._buckets):
            if any(self._alive[i] and self._value[i] == cursor
                   for i in self._buckets[cursor]):
                return cursor
            cursor += 1
        return None

    def next_bucket(self) -> Tuple[int, List[int]]:
        """Extract all live identifiers in the minimum bucket.

        Returns ``(value, ids)`` with ``ids`` in insertion order (stale and
        dead entries skipped). Raises if the structure is empty.
        """
        if self._remaining == 0:
            raise DataStructureError("next_bucket() on empty BucketQueue")
        while self._cursor < len(self._buckets):
            bucket = self._buckets[self._cursor]
            extracted: List[int] = []
            seen = set()
            for i in bucket:
                if (self._alive[i] and self._value[i] == self._cursor
                        and i not in seen):
                    extracted.append(i)
                    seen.add(i)
            bucket.clear()
            if extracted:
                for i in extracted:
                    self._alive[i] = False
                self._remaining -= len(extracted)
                self.rounds += 1
                return self._cursor, extracted
            self._cursor += 1
        raise DataStructureError(
            "BucketQueue invariant violated: remaining > 0 but no live entries")

    def drain(self) -> Iterable[Tuple[int, List[int]]]:
        """Iterate ``next_bucket()`` until empty (convenience for tests)."""
        while not self.empty:
            yield self.next_bucket()
