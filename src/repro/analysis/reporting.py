"""Fixed-width text reporting used by every benchmark harness.

The benchmarks print the paper's tables and figure data as plain text so
results can be diffed and archived (EXPERIMENTS.md records them). These
helpers keep formatting consistent across all harnesses.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render a left-aligned fixed-width table; floats get 4 significant digits."""

    def cell(value: object) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000 or abs(value) < 0.001:
                return f"{value:.3e}"
            return f"{value:.4g}"
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    all_rows = [list(headers)] + text_rows
    widths = [max(len(r[i]) for r in all_rows) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), 8))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_slowdowns(labels: Sequence[str], seconds: Sequence[float],
                     title: str = "") -> str:
    """Render multiplicative slowdowns over the fastest entry (Figure 6/9 style).

    Entries with non-finite timing are shown as ``OOM/timeout`` like the
    paper's omitted bars.
    """
    finite = [t for t in seconds if t == t and t != float("inf")]
    fastest = min(finite) if finite else float("nan")
    rows = []
    for label, t in zip(labels, seconds):
        if t != t or t == float("inf"):
            rows.append((label, "OOM/timeout", ""))
        else:
            rows.append((label, f"{t:.4f}s",
                         f"{t / fastest:.2f}x" if fastest else ""))
    out = format_table(("implementation", "time", "slowdown"), rows,
                       title=title)
    if finite:
        out += f"\n(fastest: {fastest:.4f}s)"
    return out


def format_series(x_label: str, xs: Sequence[object], series: dict,
                  title: str = "") -> str:
    """Render one or more named series against a shared x-axis (Figure 8 style)."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        row: List[object] = [x]
        for name in series:
            row.append(series[name][i])
        rows.append(row)
    return format_table(headers, rows, title=title)


def banner(text: str) -> str:
    """A visually distinct section banner for benchmark output."""
    bar = "#" * (len(text) + 8)
    return f"\n{bar}\n### {text} ###\n{bar}"
