"""Dense integer indexing of r-cliques.

Every algorithm in the library works on r-cliques through small integer
ids: the peeling buckets, union-find structures, and hierarchy trees are
all arrays indexed by r-clique id. :class:`CliqueIndex` provides the
bijection id <-> canonical vertex tuple.

The paper stores r-clique data in a multi-level parallel hash table keyed
by vertex tuples (Shi et al. [55]); a Python dict over canonical tuples is
the idiomatic equivalent and preserves the expected O(1) access the bounds
assume.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from ..errors import DataStructureError, ParameterError
from ..parallel.counters import NullCounter, WorkSpanCounter
from ..graphs.orientation import Orientation
from .enumeration import Clique, enumerate_cliques


def _is_sorted_unique(cliques: List[Clique]) -> bool:
    """O(n) check that ``cliques`` is strictly increasing canonical tuples.

    Canonical means every tuple is itself sorted; strict tuple ordering
    then implies both sortedness and uniqueness of the whole list, which
    is exactly what the constructor's ``sorted(set(...))`` would produce.
    """
    prev: Optional[Clique] = None
    for c in cliques:
        if any(c[i] > c[i + 1] for i in range(len(c) - 1)):
            return False
        if prev is not None and c <= prev:
            return False
        prev = c
    return True


class CliqueIndex:
    """Bijection between canonical r-clique tuples and ids ``0..n_r-1``.

    Ids follow the sorted order of the canonical tuples so the mapping is
    deterministic across runs and platforms.

    Construction verifies sortedness in O(n) first and only falls back to
    the O(n log n) canonicalizing sort when the input is not already a
    strictly increasing sequence of canonical tuples -- chunked
    enumeration pipelines that pre-sort their output (``list_cliques``)
    therefore skip the redundant re-sort entirely.

    The tuple -> id dict behind :meth:`id_of` is built lazily on first
    scalar lookup: array-native pipelines resolve ids exclusively through
    the vectorized :meth:`ids_of` (a ``searchsorted`` over the encoded
    key table) and never pay for hashing every clique tuple.
    """

    __slots__ = ("r", "_cliques", "_ids", "_encoded")

    def __init__(self, cliques: Iterable[Clique], r: Optional[int] = None) -> None:
        as_tuples = [tuple(c) for c in cliques]
        if _is_sorted_unique(as_tuples):
            self._cliques: List[Clique] = as_tuples
        else:
            self._cliques = sorted({tuple(sorted(c)) for c in as_tuples})
        self._encoded = None  # lazy int64 key table for bulk lookups
        self._ids: Optional[Dict[Clique, int]] = None  # lazy scalar map
        if self._cliques:
            sizes = {len(c) for c in self._cliques}
            if len(sizes) != 1:
                raise DataStructureError(
                    f"cliques have inconsistent sizes: {sorted(sizes)}")
            self.r = next(iter(sizes))
            if r is not None and r != self.r:
                raise DataStructureError(
                    f"declared r={r} but cliques have size {self.r}")
        else:
            if r is None:
                raise ParameterError(
                    "r must be given explicitly for an empty index")
            self.r = r

    @classmethod
    def from_matrix(cls, matrix, r: int) -> "CliqueIndex":
        """Index the r-cliques given as an ``(m, r)`` int64 matrix.

        The array-native constructor: rows are canonicalized (sorted
        along axis 1), lexicographically sorted, and deduplicated with
        numpy before the tuple list is materialized in one
        ``tolist()`` -- no per-row hashing or Python-level sort. Ids are
        identical to the streaming constructor's (canonical sorted
        order).
        """
        import numpy as np
        if r < 1:
            raise ParameterError(f"r must be >= 1, got {r}")
        arr = np.asarray(matrix, dtype=np.int64)
        if arr.size == 0:
            arr = arr.reshape(0, r)
        if arr.ndim != 2 or arr.shape[1] != r:
            raise ParameterError(
                f"from_matrix expects an (m, {r}) array, got shape "
                f"{arr.shape}")
        if arr.shape[0]:
            arr = np.sort(arr, axis=1)
            # lexsort keys run minor-to-major, so reversed columns sort
            # rows exactly like Python tuple comparison would.
            arr = arr[np.lexsort(arr.T[::-1])]
            keep = np.empty(arr.shape[0], dtype=bool)
            keep[0] = True
            np.any(arr[1:] != arr[:-1], axis=1, out=keep[1:])
            arr = arr[keep]
        self = cls.__new__(cls)
        self.r = r
        self._cliques = [tuple(row) for row in arr.tolist()]
        self._ids = None
        self._encoded = None
        return self

    @classmethod
    def from_orientation(cls, orientation: Orientation, r: int,
                         counter: Optional[WorkSpanCounter] = None,
                         backend=None,
                         chunk_size: Optional[int] = None,
                         kernel: str = "auto") -> "CliqueIndex":
        """Enumerate and index all r-cliques of the graph.

        ``kernel`` selects the enumeration engine (see
        :mod:`repro.cliques.list_kernel`): the array kernel feeds
        :meth:`from_matrix` directly, the recursive ``"loop"`` oracle
        streams tuples into the plain constructor. A parallel execution
        ``backend`` (see :mod:`repro.parallel.backend`) dispatches the
        per-vertex listing to worker processes; ids are unaffected by
        any of these choices because the index sorts canonically either
        way.
        """
        counter = counter if counter is not None else NullCounter()
        from .list_kernel import (clique_matrix, clique_matrix_via,
                                  use_array_kernel)
        pooled = backend is not None and backend.is_parallel()
        if use_array_kernel(kernel):
            if pooled:
                matrix = clique_matrix_via(backend, orientation, r, counter,
                                           chunk_size=chunk_size)
            else:
                matrix = clique_matrix(orientation, r, counter)
            return cls.from_matrix(matrix, r=r)
        if pooled:
            from .enumeration import enumerate_cliques_via
            return cls(enumerate_cliques_via(backend, orientation, r, counter,
                                             chunk_size=chunk_size), r=r)
        return cls(enumerate_cliques(orientation, r, counter), r=r)

    def __len__(self) -> int:
        return len(self._cliques)

    def __contains__(self, clique: Clique) -> bool:
        return tuple(sorted(clique)) in self._id_map()

    def __iter__(self) -> Iterator[Clique]:
        return iter(self._cliques)

    def _id_map(self) -> Dict[Clique, int]:
        """The tuple -> id dict, built on first scalar lookup."""
        if self._ids is None:
            self._ids = {c: i for i, c in enumerate(self._cliques)}
        return self._ids

    def id_of(self, clique: Sequence[int]) -> int:
        """Id of the clique with the given vertices (any order)."""
        key = tuple(sorted(clique))
        ids = self._id_map()
        if key not in ids:
            raise DataStructureError(f"clique {key} is not in the index")
        return ids[key]

    # -- bulk (vectorized) lookup -----------------------------------------

    def _encoding(self):
        """Lazily built ``(sorted int64 key array, stride)`` or ``None``.

        Each canonical tuple is encoded as a base-``stride`` integer;
        because all tuples have length ``r`` and digits below ``stride``,
        numeric order equals lexicographic tuple order, so the key array
        is sorted and ``searchsorted`` positions *are* clique ids. When
        ``stride ** r`` would overflow int64 the table is unusable and
        ``ids_of`` falls back to per-row dict lookups.
        """
        if self._encoded is None:
            import numpy as np
            if not self._cliques:
                self._encoded = (None, 0)
            else:
                stride = max(v for c in self._cliques for v in c) + 1
                if self.r * max(stride - 1, 1).bit_length() >= 63:
                    self._encoded = (None, 0)
                else:
                    arr = np.asarray(self._cliques, dtype=np.int64)
                    keys = arr[:, 0].copy()
                    for col in range(1, self.r):
                        keys *= stride
                        keys += arr[:, col]
                    self._encoded = (keys, stride)
        return self._encoded

    def ids_of(self, cliques) -> "object":
        """Vectorized :meth:`id_of`: an (m, r) array of rows -> id array.

        Rows are canonicalized (sorted along axis 1) before lookup, so
        any vertex order is accepted, exactly like :meth:`id_of`. Raises
        :class:`DataStructureError` naming the first missing row.
        """
        import numpy as np
        arr = np.asarray(cliques, dtype=np.int64)
        if arr.ndim != 2 or (arr.size and arr.shape[1] != self.r):
            raise ParameterError(
                f"ids_of expects an (m, {self.r}) array, got shape "
                f"{arr.shape}")
        if arr.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        arr = np.sort(arr, axis=1)
        keys, stride = self._encoding()
        if keys is None:
            return np.fromiter((self.id_of(row) for row in arr.tolist()),
                               dtype=np.int64, count=arr.shape[0])
        if arr.min() < 0 or arr.max() >= stride:
            bad = arr[((arr < 0) | (arr >= stride)).any(axis=1)][0]
            raise DataStructureError(
                f"clique {tuple(bad.tolist())} is not in the index")
        query = arr[:, 0].copy()
        for col in range(1, self.r):
            query *= stride
            query += arr[:, col]
        pos = np.searchsorted(keys, query)
        pos = np.minimum(pos, len(keys) - 1)
        misses = keys[pos] != query
        if misses.any():
            bad = arr[misses][0]
            raise DataStructureError(
                f"clique {tuple(bad.tolist())} is not in the index")
        return pos

    def get(self, clique: Sequence[int]) -> Optional[int]:
        """Id of the clique, or ``None`` if absent."""
        return self._id_map().get(tuple(sorted(clique)))

    def clique_of(self, ident: int) -> Clique:
        """Canonical vertex tuple of the clique with id ``ident``."""
        if not 0 <= ident < len(self._cliques):
            raise DataStructureError(
                f"clique id {ident} out of range [0, {len(self._cliques)})")
        return self._cliques[ident]

    def ids(self) -> range:
        return range(len(self._cliques))

    def label(self, ident: int) -> str:
        """Human-readable label, e.g. ``'{0,3,7}'`` (used in reports)."""
        return "{" + ",".join(map(str, self.clique_of(ident))) + "}"
