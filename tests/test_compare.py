"""Unit tests for hierarchy comparison (analysis.compare)."""

import pytest

from repro import nucleus_decomposition
from repro.analysis.compare import (confusion_summary, hierarchy_similarity,
                                    partition_agreement, rand_index)
from repro.core.tree import tree_from_partition_chain
from repro.errors import ParameterError
from repro.graphs.generators import planted_nuclei, powerlaw_cluster


class TestRandIndex:
    def test_identical_partitions(self):
        p = [[0, 1], [2, 3]]
        assert rand_index(p, p, 4) == 1.0

    def test_completely_different(self):
        a = [[0, 1, 2, 3]]
        b = [[0], [1], [2], [3]]
        assert rand_index(a, b, 4) == 0.0

    def test_partial_overlap(self):
        a = [[0, 1], [2, 3]]
        b = [[0, 1, 2, 3]]
        # pairs: (0,1),(2,3) agree-same in both? in b all same: agreements
        # = pairs same in both (2) + pairs split in both (0) = 2 of 6
        assert rand_index(a, b, 4) == pytest.approx(2 / 6)

    def test_missing_elements_are_singletons(self):
        a = [[0, 1]]
        b = [[0, 1]]
        assert rand_index(a, b, 5) == 1.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ParameterError):
            rand_index([[9]], [[9]], 3)

    def test_empty_universe(self):
        assert rand_index([], [], 0) == 1.0


class TestPartitionAgreement:
    def test_verbatim_fraction(self):
        a = [[0, 1], [2]]
        b = [[0, 1], [2, 3]]
        assert partition_agreement(a, b) == 0.5

    def test_empty(self):
        assert partition_agreement([], [[0]]) == 1.0


class TestHierarchySimilarity:
    def test_identical_trees(self):
        core = [3, 3, 2, 2]
        chain = {3: [[0, 1]], 2: [[0, 1, 2, 3]]}
        a = tree_from_partition_chain(core, chain)
        b = tree_from_partition_chain(core, chain)
        sims = hierarchy_similarity(a, b)
        assert all(s.rand == 1.0 for s in sims)
        summary = confusion_summary(sims)
        assert summary["preserved"] == 1.0
        assert summary["split"] == 0.0

    def test_merged_nuclei_detected(self):
        core = [2, 2, 2, 2]
        fine = tree_from_partition_chain(core, {2: [[0, 1], [2, 3]]})
        coarse = tree_from_partition_chain(core, {2: [[0, 1, 2, 3]]})
        sims = hierarchy_similarity(fine, coarse)
        assert sims[0].merged == 2
        assert sims[0].preserved == 0

    def test_split_nuclei_detected(self):
        core = [2, 2, 2, 2]
        coarse = tree_from_partition_chain(core, {2: [[0, 1, 2, 3]]})
        fine = tree_from_partition_chain(core, {2: [[0, 1], [2, 3]]})
        sims = hierarchy_similarity(coarse, fine)
        assert sims[0].split == 1

    def test_leaf_count_mismatch_rejected(self):
        a = tree_from_partition_chain([1, 1], {1: [[0, 1]]})
        b = tree_from_partition_chain([1, 1, 1], {1: [[0, 1, 2]]})
        with pytest.raises(ParameterError):
            hierarchy_similarity(a, b)

    def test_empty_summary(self):
        assert confusion_summary([])["mean_rand"] == 1.0


class TestApproxVsExactTrees:
    def test_approx_tree_never_splits_exact_nuclei(self):
        """Estimates only grow, so approx nuclei can merge but not split
        exact ones -- measured structurally."""
        g = powerlaw_cluster(150, 4, 0.7, seed=11)
        exact = nucleus_decomposition(g, 2, 3)
        approx = nucleus_decomposition(g, 2, 3, approx=True, delta=0.5)
        sims = hierarchy_similarity(exact.tree, approx.tree)
        summary = confusion_summary(sims)
        assert summary["split"] == 0.0
        assert summary["preserved"] + summary["merged"] == pytest.approx(1.0)

    def test_planted_blocks_fully_preserved(self):
        g = planted_nuclei([6, 5, 4], bridge=True)
        exact = nucleus_decomposition(g, 2, 3)
        approx = nucleus_decomposition(g, 2, 3, approx=True, delta=0.1)
        sims = hierarchy_similarity(exact.tree, approx.tree)
        # the planted blocks are isolated nuclei: the approximation keeps
        # them intact at every exact level
        assert confusion_summary(sims)["split"] == 0.0
