"""Shared machinery for the benchmark harnesses.

Every benchmark module in this directory reproduces one table or figure of
the paper (see DESIGN.md's per-experiment index). They share:

* a **scale knob** -- ``REPRO_BENCH_SCALE`` (default 1.0) multiplies every
  stand-in graph's vertex count, so the whole suite can be dialed up or
  down without editing code;
* a **budget guard** -- the paper terminates experiments after 4 hours;
  we terminate *predictively*: a cheap upper bound on the s-clique count
  decides whether a configuration would exceed ``REPRO_BENCH_BUDGET``
  units, and skipped configurations are reported like the paper's omitted
  bars ("OOM/timeout");
* ``timed(...)`` / ``run_config(...)`` helpers producing uniform rows.

Each module doubles as a script (``python benchmarks/bench_figX....py``)
and a pytest-benchmark target (kernels named ``test_benchmark_*``).
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass
from math import comb
from typing import Callable, Dict, List, Optional, Tuple

from repro.cliques.incidence import build_incidence
from repro.core.nucleus import NucleusInput, prepare
from repro.graphs.datasets import load_dataset
from repro.graphs.graph import Graph
from repro.graphs.orientation import arb_orient

#: Scale factor for all benchmark graphs.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Work-budget cap (estimated clique-extension steps) per configuration.
BENCH_BUDGET = int(float(os.environ.get("REPRO_BENCH_BUDGET", "3e6")))

#: Tiny scale used by the pytest-benchmark micro-kernels so the
#: ``--benchmark-only`` run finishes fast while still timing real code.
KERNEL_SCALE = float(os.environ.get("REPRO_BENCH_KERNEL_SCALE", "0.15"))

SKIPPED = float("inf")  # sentinel timing for budget-skipped configurations


def bench_graph(name: str, scale: Optional[float] = None) -> Graph:
    """Load a stand-in dataset at benchmark scale."""
    return load_dataset(name, scale=BENCH_SCALE if scale is None else scale)


def kernel_graph(name: str) -> Graph:
    """Load a stand-in dataset at micro-kernel scale."""
    return load_dataset(name, scale=KERNEL_SCALE)


def estimated_cost(graph: Graph, r: int, s: int) -> int:
    """Upper bound on s-clique extension steps (the budget-guard metric)."""
    orientation = arb_orient(graph)
    return sum(comb(orientation.out_degree(v), max(s - 1, 0)) * comb(s, r)
               for v in range(graph.n))


def within_budget(graph: Graph, r: int, s: int,
                  budget: int = BENCH_BUDGET) -> bool:
    return estimated_cost(graph, r, s) <= budget


@dataclass
class TimedRun:
    """One timed configuration: seconds (or SKIPPED) + payload."""

    seconds: float
    payload: object = None

    @property
    def skipped(self) -> bool:
        return self.seconds == SKIPPED


def timed(fn: Callable[[], object]) -> TimedRun:
    """Run ``fn`` once and wall-clock it."""
    start = time.perf_counter()
    payload = fn()
    return TimedRun(time.perf_counter() - start, payload)


def guarded(graph: Graph, r: int, s: int,
            fn: Callable[[], object],
            budget: int = BENCH_BUDGET) -> TimedRun:
    """Run ``fn`` unless the configuration blows the work budget."""
    if not within_budget(graph, r, s, budget):
        return TimedRun(SKIPPED)
    return timed(fn)


def rs_grid(max_s: int) -> List[Tuple[int, int]]:
    """All (r, s) with ``r < s <= max_s`` in the paper's ordering."""
    return [(r, s) for s in range(2, max_s + 1) for r in range(1, s)]


def prepare_cached(cache: Dict, graph: Graph, r: int, s: int,
                   strategy: str = "materialized") -> NucleusInput:
    """Memoize the (orientation + index + incidence) preamble per config."""
    key = (id(graph), r, s, strategy)
    if key not in cache:
        cache[key] = prepare(graph, r, s, strategy=strategy)
    return cache[key]


# -- machine-readable result emission ---------------------------------------

def repo_root() -> str:
    """The repository root (parent of this benchmarks/ directory)."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def bench_row(graph: str, r: int, s: int, seconds: Optional[float],
              **extra) -> Dict:
    """One uniform result row for :func:`emit_json`.

    ``seconds`` of :data:`SKIPPED` (or ``None``) marks a budget-skipped
    configuration; common optional fields by convention: ``work``,
    ``rho``, ``strategy``, ``kernel``, ``backend``, ``workers``,
    ``stage``, ``method``, ``speedup``.
    """
    skipped = seconds is None or seconds == SKIPPED
    row = {"graph": graph, "r": r, "s": s,
           "seconds": None if skipped else float(seconds),
           "skipped": skipped}
    row.update(extra)
    return row


def _json_safe(value):
    """Strict-JSON scrub: non-finite floats become ``None``."""
    if isinstance(value, float) and (value != value or value in
                                     (float("inf"), float("-inf"))):
        return None
    return value


def emit_json(name: str, rows: List[Dict],
              path: Optional[str] = None, **config) -> str:
    """Write ``BENCH_<name>.json`` at the repo root; returns the path.

    The payload records the run configuration (scale/budget knobs,
    platform) next to the uniform rows so results from different
    machines or scales are never silently compared. Non-finite timings
    are nulled (strict JSON has no ``Infinity``).
    """
    payload = {
        "benchmark": name,
        "config": {
            "scale": BENCH_SCALE,
            "budget": BENCH_BUDGET,
            "python": platform.python_version(),
            "machine": platform.machine(),
            **config,
        },
        "rows": [{k: _json_safe(v) for k, v in row.items()}
                 for row in rows],
    }
    path = path if path is not None else os.path.join(
        repo_root(), f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True,
                  allow_nan=False)
        handle.write("\n")
    return path
