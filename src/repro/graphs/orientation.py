"""Low out-degree (arboricity) orientations -- ``ARB-ORIENT``.

The clique enumeration and peeling algorithms (Shi et al. [54, 55]) first
direct the graph so every vertex has out-degree ``O(alpha)`` (``alpha`` =
arboricity). Edges point from lower to higher rank in a total vertex order;
a *degeneracy order* gives out-degree at most the degeneracy ``<= 2*alpha-1``.

We provide:

* :func:`degeneracy_order` -- the classic Matula-Beck smallest-last order
  (repeatedly remove a minimum-degree vertex), with the degeneracy value;
* :func:`parallel_orientation_order` -- the peeling-by-rounds variant used
  by the parallel algorithms (Besta et al. [4] / Goodrich-Pszona style):
  each round removes *all* vertices of degree at most ``(2+eps) * avg``,
  giving an ``O(alpha)`` bound on out-degree in ``O(log n)`` rounds, which
  is the work/span profile quoted in Section 3 (O(m) work, O(log^2 n) span);
* :class:`Orientation` -- the directed adjacency view used downstream.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import GraphFormatError
from ..parallel.counters import NullCounter, WorkSpanCounter, log2_ceil
from .graph import Graph


class Orientation:
    """A graph directed by a total vertex order (rank).

    ``out_neighbors(v)`` are the neighbors of ``v`` with higher rank,
    sorted by rank -- the candidate set shape ``REC-LIST-CLIQUES`` needs.
    """

    __slots__ = ("graph", "rank", "order", "_out", "_out_sets",
                 "max_out_degree", "_csr")

    def __init__(self, graph: Graph, order: Sequence[int]) -> None:
        if sorted(order) != list(range(graph.n)):
            raise GraphFormatError(
                "orientation order must be a permutation of the vertices")
        self.graph = graph
        self.order = list(order)
        self.rank = [0] * graph.n
        for position, v in enumerate(order):
            self.rank[v] = position
        self._out: List[Tuple[int, ...]] = []
        for v in range(graph.n):
            outs = [u for u in graph.neighbors(v) if self.rank[u] > self.rank[v]]
            outs.sort(key=lambda u: self.rank[u])
            self._out.append(tuple(outs))
        self._out_sets = [frozenset(o) for o in self._out]
        self.max_out_degree = max((len(o) for o in self._out), default=0)
        self._csr: Optional["CSROrientation"] = None

    def out_neighbors(self, v: int) -> Tuple[int, ...]:
        return self._out[v]

    def out_neighbor_set(self, v: int):
        return self._out_sets[v]

    def out_degree(self, v: int) -> int:
        return len(self._out[v])

    def csr(self) -> "CSROrientation":
        """The flat-array view of this orientation (built once, cached)."""
        if self._csr is None:
            self._csr = CSROrientation.from_orientation(self)
        return self._csr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Orientation(n={self.graph.n}, "
                f"max_out_degree={self.max_out_degree})")


class CSROrientation:
    """Flat-array view of an :class:`Orientation`: rank-space int64 CSR.

    The array-native clique kernel (:mod:`repro.cliques.list_kernel`)
    works entirely in *rank space*: the out-neighbors of the vertex with
    rank ``p`` are ``nbrs[indptr[p]:indptr[p + 1]]``, stored as ranks in
    ascending order (all greater than ``p``). Every ``REC-LIST-CLIQUES``
    candidate set is then an ascending int64 array, so neighborhood
    intersections become vectorized ``searchsorted`` merges. ``order``
    (rank -> vertex id) and ``rank`` (vertex id -> rank) translate
    between the two spaces.

    The class implements the
    :class:`~repro.parallel.backend.ShareableContext` protocol, so a
    :class:`~repro.parallel.backend.ProcessBackend` broadcast ships the
    four arrays through ``multiprocessing.shared_memory`` (zero-copy,
    once per pool) instead of pickling the tuple-based orientation.
    """

    __slots__ = ("n", "indptr", "nbrs", "order", "rank", "_keys")

    def __init__(self, n: int, indptr, nbrs, order, rank) -> None:
        self.n = n
        self.indptr = indptr
        self.nbrs = nbrs
        self.order = order
        self.rank = rank
        self._keys = None

    @classmethod
    def from_orientation(cls, orientation: "Orientation") -> "CSROrientation":
        import numpy as np
        n = orientation.graph.n
        rank = np.asarray(orientation.rank, dtype=np.int64)
        order = np.asarray(orientation.order, dtype=np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        flat: List[int] = []
        # Row p holds the out-neighborhood of the vertex ranked p; the
        # per-vertex tuples are already sorted by rank, so mapping them
        # through ``rank`` yields ascending rows without a sort.
        for p, v in enumerate(orientation.order):
            outs = orientation.out_neighbors(v)
            indptr[p + 1] = indptr[p] + len(outs)
            flat.extend(outs)
        nbrs = rank[np.asarray(flat, dtype=np.int64)] if flat \
            else np.empty(0, dtype=np.int64)
        return cls(n, indptr, nbrs, order, rank)

    def out_degrees(self):
        """Out-degree per rank position (int64 array)."""
        import numpy as np
        return np.diff(self.indptr)

    def edge_keys(self):
        """Sorted int64 keys ``source_rank * n + target_rank``, one per edge.

        Encodes the whole directed edge set as one ascending array (rows
        are ascending and row order follows rank), so edge-existence
        tests over arbitrarily many pairs collapse to one
        ``searchsorted``. Built lazily, cached per instance (worker-side
        imports rebuild their own copy).
        """
        if self._keys is None:
            import numpy as np
            sources = np.repeat(np.arange(self.n, dtype=np.int64),
                                np.diff(self.indptr))
            self._keys = sources * self.n + self.nbrs
        return self._keys

    # -- ShareableContext protocol ----------------------------------------

    def __shm_export__(self):
        return {"n": self.n}, (self.indptr, self.nbrs, self.order, self.rank)

    @classmethod
    def __shm_import__(cls, meta, arrays) -> "CSROrientation":
        return cls(meta["n"], *arrays)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSROrientation(n={self.n}, m={self.nbrs.shape[0]})"


def degeneracy_order(graph: Graph) -> Tuple[List[int], int]:
    """Smallest-last vertex order and the graph's degeneracy.

    Bucket-queue implementation, O(n + m) time. The returned order lists
    vertices in removal order; orienting edges along it bounds out-degree
    by the degeneracy.
    """
    n = graph.n
    degree = graph.degrees()
    max_deg = max(degree, default=0)
    buckets: List[List[int]] = [[] for _ in range(max_deg + 1)]
    for v in range(n):
        buckets[degree[v]].append(v)
    removed = [False] * n
    order: List[int] = []
    degeneracy = 0
    cursor = 0
    for _ in range(n):
        while cursor < len(buckets) and not buckets[cursor]:
            cursor += 1
        # degrees decrease when neighbors are removed, so rewind is needed
        while cursor > 0 and buckets[cursor - 1]:
            cursor -= 1
        v = None
        while cursor < len(buckets):
            while buckets[cursor]:
                cand = buckets[cursor].pop()
                if not removed[cand] and degree[cand] == cursor:
                    v = cand
                    break
            if v is not None:
                break
            cursor += 1
        assert v is not None, "bucket queue exhausted early"
        removed[v] = True
        order.append(v)
        degeneracy = max(degeneracy, degree[v])
        for u in graph.neighbors(v):
            if not removed[u]:
                degree[u] -= 1
                buckets[degree[u]].append(u)
    return order, degeneracy


def parallel_orientation_order(graph: Graph, eps: float = 0.5,
                               counter: Optional[WorkSpanCounter] = None
                               ) -> Tuple[List[int], int]:
    """Round-based peeling order with ``O(alpha)`` out-degree guarantee.

    Each round removes every vertex whose remaining degree is at most
    ``(2 + eps)`` times the remaining average degree. At least an
    ``eps/(2+eps)`` fraction of vertices goes per round, so there are
    ``O(log n)`` rounds; vertices removed in the same round are ordered by
    id. Out-degree is bounded by ``(2+eps) * 2 * alpha`` because the average
    degree of any subgraph is at most ``2 * alpha``.

    Returns ``(order, rounds)``.
    """
    if eps <= 0:
        raise GraphFormatError(f"eps must be > 0, got {eps}")
    counter = counter if counter is not None else NullCounter()
    n = graph.n
    degree = graph.degrees()
    alive = [True] * n
    remaining = n
    remaining_edges = graph.m
    order: List[int] = []
    rounds = 0
    while remaining > 0:
        rounds += 1
        avg = (2.0 * remaining_edges / remaining) if remaining else 0.0
        threshold = (2.0 + eps) * avg
        batch = [v for v in range(n) if alive[v] and degree[v] <= threshold]
        if not batch:
            # Cannot happen mathematically (Markov), but guard float edge cases.
            batch = [min((v for v in range(n) if alive[v]),
                         key=lambda v: degree[v])]
        counter.add_parallel(remaining, 1 + log2_ceil(max(remaining, 1)))
        batch_set = set(batch)
        for v in batch:
            alive[v] = False
        for v in batch:
            order.append(v)
            for u in graph.neighbors(v):
                if alive[u]:
                    degree[u] -= 1
                    remaining_edges -= 1
                elif u in batch_set and u > v:
                    # Edge inside the batch: remove it exactly once.
                    remaining_edges -= 1
        remaining -= len(batch)
    return order, rounds


def arb_orient(graph: Graph, method: str = "degeneracy",
               counter: Optional[WorkSpanCounter] = None) -> Orientation:
    """Compute an ``O(alpha)``-orientation (``ARB-ORIENT`` of the paper).

    ``method`` selects the order: ``"degeneracy"`` (default; exact
    smallest-last) or ``"parallel"`` (round-based, the parallel algorithm's
    profile). Both satisfy the out-degree bound the enumeration needs.
    """
    counter = counter if counter is not None else NullCounter()
    if method == "degeneracy":
        order, _ = degeneracy_order(graph)
        counter.add_parallel(2 * (graph.n + graph.m),
                             log2_ceil(max(graph.n, 1)) ** 2 + 1)
    elif method == "parallel":
        order, _ = parallel_orientation_order(graph, counter=counter)
    else:
        raise GraphFormatError(f"unknown orientation method {method!r}")
    return Orientation(graph, order)


def arboricity_upper_bound(graph: Graph) -> int:
    """Degeneracy-based upper bound on arboricity (``<= 2*alpha - 1``)."""
    _, degeneracy = degeneracy_order(graph)
    return max(1, degeneracy)
