"""Section 8.3: approximate nucleus decomposition quality and speed.

Reproduces the paper's approximate-algorithm evaluation:

* **speedup** of APPROX-ARB-NUCLEUS over ARB-NUCLEUS (coreness only), per
  delta in {0.1, 0.5, 1.0} -- the paper reports up to 16.16x / 8.35x /
  10.88x; in the simulated runtime the speedup comes from the collapse in
  peeling rounds (the span term), so both wall-clock and round counts are
  reported;
* **accuracy**: per-clique multiplicative error of the coreness estimates
  (paper: mean 1-2.92x, median ~1.33x for delta=0.1) and the error of the
  maximum core number;
* the **approximate hierarchy** end-to-end vs the exact one.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.errors import summarize_errors
from repro.analysis.reporting import banner, format_table
from repro.core.approx import approx_anh_el, peel_approx
from repro.core.framework import anh_el
from repro.core.nucleus import peel_exact
from repro.parallel.counters import WorkSpanCounter
from repro.parallel.runtime import simulated_time

from bench_common import (bench_graph, kernel_graph, prepare_cached,
                          timed, within_budget)

GRAPHS = ("amazon", "dblp", "youtube", "livejournal", "orkut")
RS = ((2, 3), (3, 4), (2, 4), (1, 2), (1, 3), (2, 5), (3, 5), (4, 5))
DELTAS = (0.1, 0.5, 1.0)


def run_accuracy(graph_names=GRAPHS, rs_values=RS, deltas=DELTAS):
    """Rows: (graph, r, s, delta, rounds_exact, rounds_approx, summary)."""
    cache: Dict = {}
    rows = []
    for name in graph_names:
        graph = bench_graph(name)
        for r, s in rs_values:
            if not within_budget(graph, r, s):
                continue
            prepared = prepare_cached(cache, graph, r, s)
            exact = peel_exact(prepared.incidence)
            for delta in deltas:
                approx = peel_approx(prepared.incidence, delta)
                summary = summarize_errors(exact.core, approx.core)
                rows.append((name, r, s, delta, exact.rho, approx.rho,
                             summary))
    return rows


def run_speed(graph_names=GRAPHS, rs_values=RS, deltas=(0.1,)):
    """Coreness-only wall-clock + simulated 30-core: exact vs approx."""
    cache: Dict = {}
    rows = []
    for name in graph_names:
        graph = bench_graph(name)
        for r, s in rs_values:
            if not within_budget(graph, r, s):
                continue
            prepared = prepare_cached(cache, graph, r, s)
            c_exact = WorkSpanCounter()
            t_exact = timed(lambda: peel_exact(prepared.incidence,
                                               counter=c_exact))
            sim_exact = simulated_time(c_exact.snapshot(), 30,
                                       t_exact.seconds)
            for delta in deltas:
                c_approx = WorkSpanCounter()
                t_approx = timed(lambda: peel_approx(
                    prepared.incidence, delta, counter=c_approx))
                sim_approx = simulated_time(c_approx.snapshot(), 30,
                                            t_approx.seconds)
                span_ratio = (c_exact.span / c_approx.span
                              if c_approx.span else 1.0)
                rows.append((name, r, s, delta, t_exact.seconds,
                             t_approx.seconds, sim_exact, sim_approx,
                             span_ratio))
    return rows


def build_report() -> str:
    acc = run_accuracy()
    acc_rows = [(name, f"({r},{s})", delta, rho_e, rho_a,
                 f"{summary.mean_error:.2f}x", f"{summary.median_error:.2f}x",
                 f"{summary.max_error:.2f}x",
                 f"{summary.max_core_error:.2f}x")
                for name, r, s, delta, rho_e, rho_a, summary in acc]
    acc_table = format_table(
        ("graph", "(r,s)", "delta", "rounds exact", "rounds approx",
         "mean err", "median err", "max err", "max-core err"),
        acc_rows, title="Section 8.3: approximate coreness accuracy")
    medians = sorted(s.median_error for *_, s in acc)
    overall = (f"\noverall median multiplicative error: "
               f"{medians[len(medians) // 2]:.2f}x (paper: ~1.33x)")

    speed = run_speed()
    speed_rows = [(name, f"({r},{s})", delta,
                   f"{t_e:.4f}s", f"{t_a:.4f}s",
                   f"{s_e:.4f}s", f"{s_a:.4f}s",
                   f"{s_e / max(s_a, 1e-9):.2f}x", f"{ratio:.1f}x")
                  for name, r, s, delta, t_e, t_a, s_e, s_a, ratio in speed]
    speed_table = format_table(
        ("graph", "(r,s)", "delta", "exact 1t", "approx 1t",
         "exact 30c", "approx 30c", "30c speedup", "span ratio"),
        speed_rows,
        title="Section 8.3: APPROX-ARB-NUCLEUS vs ARB-NUCLEUS (coreness); "
              "the span ratio is the asymptotic parallel advantage")
    return (banner("Section 8.3") + "\n" + acc_table + overall
            + "\n\n" + speed_table)


def test_sec83_accuracy():
    rows = run_accuracy(graph_names=("dblp", "youtube"),
                        rs_values=((2, 3),), deltas=(0.1, 0.5, 1.0))
    assert rows
    for name, r, s, delta, rho_e, rho_a, summary in rows:
        print(f"{name} ({r},{s}) d={delta}: rounds {rho_e}->{rho_a}, "
              f"median err {summary.median_error:.2f}x")
        # every estimate >= exact was already enforced by summarize_errors;
        # the aggregate error stays in the paper's observed band.
        assert summary.median_error < 3.5
        assert rho_a <= rho_e

    # the approximation collapses the round count (the span win)
    assert any(rho_a < rho_e / 2 for *_, rho_e, rho_a, _ in
               [(None, None, None, None, e, a, s) for _, _, _, _, e, a, s in rows])


def test_sec83_simulated_speedup():
    rows = run_speed(graph_names=("dblp",), rs_values=((2, 3),),
                     deltas=(0.1,))
    assert rows
    for name, r, s, delta, t_e, t_a, s_e, s_a, ratio in rows:
        print(f"{name} ({r},{s}) d={delta}: simulated 30c "
              f"{s_e:.4f}s -> {s_a:.4f}s, span ratio {ratio:.1f}x")
        # fewer rounds => strictly better simulated parallel time and a
        # real span (critical path) collapse
        assert s_a <= s_e * 1.2
        assert ratio > 1.5


def test_sec83_approx_hierarchy_end_to_end():
    from repro.analysis.compare import confusion_summary, hierarchy_similarity
    graph = bench_graph("dblp")
    exact = timed(lambda: anh_el(graph, 2, 3))
    approx = timed(lambda: approx_anh_el(graph, 2, 3, delta=0.5))
    print(f"hierarchy: exact {exact.seconds:.3f}s, "
          f"approx {approx.seconds:.3f}s")
    # approximate hierarchy has (weakly) fewer distinct levels
    assert (len(approx.payload.tree.distinct_levels())
            <= max(len(exact.payload.tree.distinct_levels()), 1) * 2)
    # structural closeness: the approximate tree merges but never splits
    # exact nuclei, and agrees strongly overall (Rand index per level)
    sims = hierarchy_similarity(exact.payload.tree, approx.payload.tree)
    summary = confusion_summary(sims)
    print(f"tree similarity: preserved {summary['preserved']:.1%}, "
          f"merged {summary['merged']:.1%}, split {summary['split']:.1%}, "
          f"mean Rand {summary['mean_rand']:.3f}")
    assert summary["split"] == 0.0
    assert summary["mean_rand"] > 0.5


def test_benchmark_approx_kernel(benchmark):
    graph = kernel_graph("dblp")
    from repro.core.nucleus import prepare
    prepared = prepare(graph, 2, 3)
    benchmark(lambda: peel_approx(prepared.incidence, 0.5))


def test_benchmark_exact_kernel(benchmark):
    graph = kernel_graph("dblp")
    from repro.core.nucleus import prepare
    prepared = prepare(graph, 2, 3)
    benchmark(lambda: peel_exact(prepared.incidence))


if __name__ == "__main__":
    print(build_report())
