"""Empirical verification of the paper's complexity bounds.

The instrumented runtime meters exactly the quantities Theorems 5.1 and
6.3 bound, so the bounds themselves are testable: on every instance the
measured work/span must lie below the theoretical expression times a
fixed constant (generous, but *fixed across all instances and sizes* --
a real asymptotic violation shows up as growth, not as a constant).

Notation: the work bound O(m * alpha^(s-2)) is, for the materialized
engine, proportional to the total s-clique incidence size
``n_s * comb(s, r)`` plus the r-clique and graph sizes; the span bounds
are ``O(rho log n)`` (exact peeling), ``O(k log n + rho log n + log^2 n)``
(Algorithm 1), and ``O(log^3 n)``-style polylog round counts
(Algorithm 2).
"""

from math import comb, log2

import pytest

from repro.core.approx import peel_approx
from repro.core.hierarchy_te import hierarchy_te_theoretical
from repro.core.nucleus import peel_exact, prepare
from repro.ds.approx_bucketing import bucket_of_degree, default_round_cap
from repro.graphs.datasets import load_dataset
from repro.graphs.generators import erdos_renyi, powerlaw_cluster
from repro.parallel.counters import WorkSpanCounter

INSTANCES = [
    ("er-small", lambda: erdos_renyi(40, 0.2, seed=1)),
    ("er-large", lambda: erdos_renyi(120, 0.08, seed=2)),
    ("plc-small", lambda: powerlaw_cluster(120, 3, 0.7, seed=3)),
    ("plc-large", lambda: powerlaw_cluster(400, 3, 0.7, seed=4)),
    ("dblp-mini", lambda: load_dataset("dblp", scale=0.25)),
]

RS = [(1, 2), (2, 3), (2, 4), (3, 4)]

#: Fixed constants for all instances; a genuine asymptotic violation
#: would exceed them on the larger instances.
WORK_CONSTANT = 40
SPAN_CONSTANT = 30


def log_n(prep) -> float:
    return max(1.0, log2(max(prep.n_r, 2)))


@pytest.mark.parametrize("name,build", INSTANCES)
@pytest.mark.parametrize("rs", RS)
class TestPeelingBounds:
    def test_work_linear_in_incidence_size(self, name, build, rs):
        r, s = rs
        graph = build()
        prep = prepare(graph, r, s)
        if prep.n_r == 0:
            return
        counter = WorkSpanCounter()
        peel_exact(prep.incidence, counter=counter)
        budget = (prep.n_s * comb(s, r) ** 2 + prep.n_r + graph.m + 10)
        assert counter.work <= WORK_CONSTANT * budget, (name, rs)

    def test_span_linear_in_rho_log_n(self, name, build, rs):
        r, s = rs
        graph = build()
        prep = prepare(graph, r, s)
        if prep.n_r == 0:
            return
        counter = WorkSpanCounter()
        result = peel_exact(prep.incidence, counter=counter)
        budget = result.rho * log_n(prep) + log_n(prep) ** 2 + 10
        assert counter.span <= SPAN_CONSTANT * budget, (name, rs)


@pytest.mark.parametrize("name,build", INSTANCES)
class TestHierarchyBounds:
    def test_algorithm1_work_and_span(self, name, build):
        graph = build()
        for r, s in [(2, 3), (1, 3)]:
            prep = prepare(graph, r, s)
            if prep.n_r == 0:
                continue
            counter = WorkSpanCounter()
            out = hierarchy_te_theoretical(graph, r, s, prepared=prep,
                                           counter=counter)
            k = out.coreness.k_max
            rho = out.coreness.rho
            work_budget = (prep.n_s * comb(s, r) ** 2 + prep.n_r
                           + graph.m + 10)
            span_budget = ((k + rho) * log_n(prep) + log_n(prep) ** 2 + 10)
            assert counter.work <= WORK_CONSTANT * work_budget, (name, r, s)
            assert counter.span <= SPAN_CONSTANT * span_budget, (name, r, s)


@pytest.mark.parametrize("name,build", INSTANCES)
class TestApproxBounds:
    def test_round_count_polylogarithmic(self, name, build):
        """Algorithm 2's rounds <= round_cap * number of buckets."""
        graph = build()
        for r, s in [(2, 3), (1, 2)]:
            prep = prepare(graph, r, s)
            if prep.n_r == 0:
                continue
            for delta in (0.25, 1.0):
                result = peel_approx(prep.incidence, delta)
                cap = default_round_cap(prep.n_r, comb(s, r), delta)
                max_degree = max(prep.incidence.initial_degrees(),
                                 default=0)
                n_buckets = 2 + bucket_of_degree(
                    max(max_degree, 1), comb(s, r) + delta, 1 + delta)
                assert result.rho <= cap * n_buckets, (name, r, s, delta)

    def test_approx_work_no_worse_than_exact_order(self, name, build):
        """Theorem 6.3: the approximation does not change the work bound."""
        graph = build()
        prep = prepare(graph, 2, 3)
        if prep.n_r == 0:
            return
        exact_counter, approx_counter = WorkSpanCounter(), WorkSpanCounter()
        peel_exact(prep.incidence, counter=exact_counter)
        peel_approx(prep.incidence, 0.5, counter=approx_counter)
        assert approx_counter.work <= 4 * exact_counter.work + 100


class TestScaling:
    def test_peeling_work_scales_with_incidence_not_worse(self):
        """Doubling the graph scales work roughly with the s-clique count.

        Checks the *growth rate*: work per unit of incidence stays flat
        as the instance grows (a super-linear implementation would show
        an increasing ratio).
        """
        ratios = []
        for scale in (0.25, 0.5, 1.0):
            graph = load_dataset("dblp", scale=scale)
            prep = prepare(graph, 2, 3)
            counter = WorkSpanCounter()
            peel_exact(prep.incidence, counter=counter)
            denom = prep.n_s * 3 + prep.n_r + 1
            ratios.append(counter.work / denom)
        assert max(ratios) <= 3 * min(ratios)

    def test_span_tracks_rho_not_n(self):
        """Span grows with rho * log n, far below n on large graphs."""
        graph = load_dataset("dblp", scale=1.0)
        prep = prepare(graph, 2, 3)
        counter = WorkSpanCounter()
        result = peel_exact(prep.incidence, counter=counter)
        assert counter.span < prep.n_r  # genuinely sublinear
        assert counter.span <= SPAN_CONSTANT * (
            result.rho * log2(prep.n_r) + 10)
