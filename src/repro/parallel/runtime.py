"""Brent's-bound runtime model for simulated multiprocessor execution.

The paper's experiments run on a 30-core machine with two-way hyper-threading
("30h" / "60 hyper-threads"). In pure Python we cannot obtain real
shared-memory speedups (GIL), so the scalability results (Figure 8) are
reproduced by combining:

1. the *measured single-thread wall-clock time* of the real algorithm run,
2. the *measured work and span* from :class:`~repro.parallel.counters.WorkSpanCounter`,
3. the work-stealing scheduling theorem ``T_P = W/P + c*S`` the paper itself
   uses for its theoretical analysis (Section 3).

The model is calibrated so that ``T_1`` equals the measured wall-clock time;
``T_P`` then scales the measurement by ``(W/P + c*S) / (W + c*S)``. The
predicted self-relative speedups therefore saturate exactly where the
algorithm's measured parallelism runs out, which is the quantity Figure 8
demonstrates. Hyper-threading is modelled as fractional extra throughput on
the work term (a hyper-thread is not a full core).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from .counters import WorkSpanSnapshot

#: Default scheduler constant ``c`` in ``T_P = W/P + c*S``. Work-stealing
#: schedulers pay a small constant per steal/sync; 2 is a conventional choice
#: and the experiments are insensitive to it (it only shifts the saturation
#: point slightly).
DEFAULT_SPAN_CONSTANT: float = 2.0

#: Relative throughput of the second hyper-thread on a core. The paper's
#: machine gains roughly 20-30% from two-way SMT, consistent with Intel's
#: guidance; we use 0.25 extra core-equivalents per hyper-thread.
HYPERTHREAD_FRACTION: float = 0.25


@dataclass(frozen=True)
class MachineModel:
    """A simulated shared-memory machine.

    Parameters
    ----------
    cores:
        Number of physical cores.
    hyperthreads_per_core:
        SMT ways per core (1 = no SMT).
    span_constant:
        The ``c`` in ``T_P = W/P + c*S``.
    """

    cores: int = 30
    hyperthreads_per_core: int = 2
    span_constant: float = DEFAULT_SPAN_CONSTANT

    def effective_processors(self, threads: int) -> float:
        """Map a thread count to effective core-equivalents.

        The first ``cores`` threads each contribute a full core; threads
        beyond that are hyper-threads contributing
        :data:`HYPERTHREAD_FRACTION` of a core each.
        """
        if threads <= 0:
            raise ValueError(f"threads must be positive, got {threads}")
        full = min(threads, self.cores)
        extra = max(0, threads - self.cores)
        max_extra = self.cores * (self.hyperthreads_per_core - 1)
        extra = min(extra, max_extra)
        return full + extra * HYPERTHREAD_FRACTION


#: The machine used throughout the paper's evaluation.
PAPER_MACHINE = MachineModel(cores=30, hyperthreads_per_core=2)


def brent_time(work: float, span: float, processors: float,
               span_constant: float = DEFAULT_SPAN_CONSTANT) -> float:
    """Expected running time ``W/P + c*S`` in abstract operation units."""
    if processors <= 0:
        raise ValueError(f"processors must be positive, got {processors}")
    return work / processors + span_constant * span


def simulated_time(snapshot: WorkSpanSnapshot, threads: int,
                   wall_seconds: float,
                   machine: MachineModel = PAPER_MACHINE) -> float:
    """Predicted wall-clock seconds on ``threads`` threads.

    Calibrated so that one thread reproduces the measured ``wall_seconds``.
    """
    p = machine.effective_processors(threads)
    t1 = brent_time(snapshot.work, snapshot.span, 1.0, machine.span_constant)
    tp = brent_time(snapshot.work, snapshot.span, p, machine.span_constant)
    if t1 == 0:
        return 0.0
    return wall_seconds * (tp / t1)


def self_relative_speedup(snapshot: WorkSpanSnapshot, threads: int,
                          machine: MachineModel = PAPER_MACHINE) -> float:
    """Predicted ``T_1 / T_threads`` (wall-clock cancels out)."""
    t1 = brent_time(snapshot.work, snapshot.span, 1.0, machine.span_constant)
    tp = brent_time(
        snapshot.work, snapshot.span,
        machine.effective_processors(threads), machine.span_constant)
    if tp == 0:
        return 1.0
    return t1 / tp


def speedup_curve(snapshot: WorkSpanSnapshot,
                  thread_counts: Iterable[int] = (1, 2, 4, 8, 16, 30, 60),
                  machine: MachineModel = PAPER_MACHINE) -> List[float]:
    """Self-relative speedups for a sequence of thread counts.

    The default grid matches Figure 8's x-axis (1 ... 30 cores, then "30h"
    = 60 hyper-threads).
    """
    return [self_relative_speedup(snapshot, t, machine) for t in thread_counts]


def max_useful_threads(snapshot: WorkSpanSnapshot,
                       machine: MachineModel = PAPER_MACHINE,
                       efficiency_floor: float = 0.5) -> int:
    """Largest thread count with parallel efficiency above ``efficiency_floor``.

    A convenience for the benchmark reports: it summarises where a speedup
    curve bends, mirroring the paper's observation that larger (r, s) values
    and larger graphs scale further.
    """
    best = 1
    threads = 1
    limit = machine.cores * machine.hyperthreads_per_core
    while threads <= limit:
        s = self_relative_speedup(snapshot, threads, machine)
        if s / threads >= efficiency_floor:
            best = threads
        threads *= 2
    return best


def amdahl_fraction(snapshot: WorkSpanSnapshot) -> float:
    """The serial fraction implied by the work/span measurement.

    ``span / work`` is the fraction of the computation that lies on the
    critical path; it plays the role of the serial fraction in Amdahl-style
    back-of-envelope reasoning and is reported by the scalability bench.
    """
    if snapshot.work == 0:
        return 1.0
    return min(1.0, snapshot.span / snapshot.work)


def format_speedup_table(labels: Sequence[str],
                         snapshots: Sequence[WorkSpanSnapshot],
                         thread_counts: Sequence[int] = (1, 2, 4, 8, 16, 30, 60),
                         machine: MachineModel = PAPER_MACHINE) -> str:
    """Render speedup curves as a fixed-width text table (Figure 8 style)."""
    header = ["config"] + [
        f"{t}t" if t <= machine.cores else f"{machine.cores}h"
        for t in thread_counts
    ]
    rows = [header]
    for label, snap in zip(labels, snapshots):
        curve = speedup_curve(snap, thread_counts, machine)
        rows.append([label] + [f"{s:.2f}x" for s in curve])
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = [
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        for row in rows
    ]
    return "\n".join(lines)
