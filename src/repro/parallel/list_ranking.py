"""Parallel list ranking by pointer jumping (Section 3 primitive).

Algorithm 1 (line 14) converts the linked lists stored in each ``L_i`` hash
table into arrays with list ranking so their elements can be written out in
parallel. For a linked list of ``n`` elements, pointer jumping solves list
ranking in ``O(n log n)`` work and ``O(log n)`` span; the work-optimal
``O(n)`` variant exists but the paper's bound only needs the span, and the
library charges the work-optimal cost (matching the proof of Theorem 5.1,
which charges work linear in list length) while executing pointer jumping.

Lists are represented positionally: ``successor[i]`` is the index of the
element after ``i``, or ``-1`` at a list tail. One successor array may hold
many disjoint lists; every element is ranked relative to its own tail.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import DataStructureError
from .counters import WorkSpanCounter, log2_ceil


def validate_successors(successor: Sequence[int]) -> None:
    """Check that ``successor`` encodes disjoint simple lists (no cycles).

    Raises :class:`DataStructureError` on an out-of-range pointer, a node
    with two predecessors, or a cycle.
    """
    n = len(successor)
    indegree = [0] * n
    for i, nxt in enumerate(successor):
        if nxt == -1:
            continue
        if not 0 <= nxt < n:
            raise DataStructureError(
                f"successor[{i}] = {nxt} is out of range for {n} elements")
        if nxt == i:
            raise DataStructureError(f"element {i} points to itself")
        indegree[nxt] += 1
        if indegree[nxt] > 1:
            raise DataStructureError(
                f"element {nxt} has multiple predecessors")
    # A cycle now can only be a rho-free pure cycle: every node on it has
    # indegree 1 and it is never reached from an indegree-0 head.
    visited = [False] * n
    for head in range(n):
        if indegree[head] != 0:
            continue
        i = head
        while i != -1 and not visited[i]:
            visited[i] = True
            i = successor[i]
    if not all(visited[i] or successor[i] == -1 for i in range(n)):
        unvisited = [i for i in range(n)
                     if not visited[i] and successor[i] != -1]
        raise DataStructureError(f"cycle detected involving {unvisited[:5]}")


def list_rank(successor: Sequence[int],
              counter: WorkSpanCounter) -> List[int]:
    """Distance of each element to the end of its list (tail rank 0).

    Pointer jumping: every round, each element adds its successor's
    accumulated distance and jumps its pointer two hops ahead; after
    ``ceil(log2 n)`` rounds all pointers reach the tails.
    """
    n = len(successor)
    if n == 0:
        return []
    nxt = list(successor)
    dist = [0 if p == -1 else 1 for p in nxt]
    rounds = log2_ceil(n)
    for _ in range(max(rounds, 1)):
        counter.add_parallel(n, 1)
        changed = False
        new_nxt = list(nxt)
        new_dist = list(dist)
        for i in range(n):
            j = nxt[i]
            if j != -1:
                new_dist[i] = dist[i] + dist[j]
                new_nxt[i] = nxt[j]
                changed = True
        nxt, dist = new_nxt, new_dist
        if not changed:
            break
    return dist


def lists_to_arrays(heads: Sequence[int], successor: Sequence[int],
                    counter: WorkSpanCounter) -> List[List[int]]:
    """Materialize each list (given by its head) as an array, in parallel.

    This is exactly the Algorithm 1 (line 14) operation: rank every element,
    allocate one output array per list, and write each element to slot
    ``len - 1 - rank`` -- all slots are written independently, hence the
    parallel charge. Returns the arrays in ``heads`` order.
    """
    n = len(successor)
    ranks = list_rank(successor, counter)
    # Identify, for each element, which list (head) it belongs to, by
    # walking from each head; the walk cost is the total list length, which
    # is the same O(sum len) work the parallel write incurs.
    out: List[List[int]] = []
    counter.add_parallel(n, 1 + log2_ceil(max(n, 1)))
    for head in heads:
        if head == -1:
            out.append([])
            continue
        length = ranks[head] + 1
        arr = [-1] * length
        i = head
        while i != -1:
            arr[length - 1 - ranks[i]] = i
            i = successor[i]
        out.append(arr)
    return out


def rank_and_order(successor: Sequence[int],
                   counter: WorkSpanCounter) -> Tuple[List[int], List[int]]:
    """Return ``(ranks, order)`` where ``order`` lists elements tail-last.

    ``order`` is a stable flattening of all lists: elements of each list
    appear consecutively head-to-tail. Convenience wrapper used by tests.
    """
    n = len(successor)
    ranks = list_rank(successor, counter)
    heads = set(range(n)) - {s for s in successor if s != -1}
    order: List[int] = []
    for head in sorted(heads):
        i = head
        while i != -1:
            order.append(i)
            i = successor[i]
    return ranks, order
