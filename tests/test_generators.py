"""Unit tests for the synthetic graph generators."""

import pytest

from repro.errors import ParameterError
from repro.graphs import generators as gen
from repro.graphs.connectivity import connected_components, n_components


class TestDeterminism:
    @pytest.mark.parametrize("build", [
        lambda seed: gen.erdos_renyi(50, 0.2, seed=seed),
        lambda seed: gen.barabasi_albert(50, 3, seed=seed),
        lambda seed: gen.powerlaw_cluster(50, 3, 0.6, seed=seed),
        lambda seed: gen.watts_strogatz(50, 2, 0.2, seed=seed),
        lambda seed: gen.rmat(6, 3, seed=seed),
        lambda seed: gen.tree_graph(50, seed=seed),
        lambda seed: gen.random_bipartite_like(20, 20, 0.2, seed=seed),
    ])
    def test_same_seed_same_graph(self, build):
        assert build(7) == build(7)

    def test_different_seeds_differ(self):
        assert gen.erdos_renyi(50, 0.3, seed=1) != gen.erdos_renyi(50, 0.3, seed=2)


class TestErdosRenyi:
    def test_extreme_probabilities(self):
        assert gen.erdos_renyi(10, 0.0).m == 0
        assert gen.erdos_renyi(10, 1.0).m == 45

    def test_invalid_p(self):
        with pytest.raises(ParameterError):
            gen.erdos_renyi(10, 1.5)


class TestBarabasiAlbert:
    def test_edge_count(self):
        g = gen.barabasi_albert(100, 3, seed=1)
        # m_attach distinct edges per vertex beyond the edgeless seed set
        assert g.m == (100 - 3) * 3

    def test_small_n_gives_clique(self):
        assert gen.barabasi_albert(3, 5).m == 3

    def test_invalid_m(self):
        with pytest.raises(ParameterError):
            gen.barabasi_albert(10, 0)

    def test_heavy_tail(self):
        g = gen.barabasi_albert(400, 2, seed=5)
        assert g.max_degree() > 4 * (2 * g.m / g.n)  # hubs exist


class TestPowerlawCluster:
    def test_triangle_rich(self):
        from repro.cliques import triangle_count
        clustered = gen.powerlaw_cluster(200, 3, 0.9, seed=1)
        unclustered = gen.powerlaw_cluster(200, 3, 0.0, seed=1)
        assert triangle_count(clustered) > triangle_count(unclustered)

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            gen.powerlaw_cluster(10, 0, 0.5)
        with pytest.raises(ParameterError):
            gen.powerlaw_cluster(10, 2, 1.5)


class TestLatticeFamilies:
    def test_ring_lattice_degrees(self):
        g = gen.ring_lattice(20, 2)
        assert all(g.degree(v) == 4 for v in range(20))

    def test_ring_lattice_trivial(self):
        assert gen.ring_lattice(5, 0).m == 0

    def test_watts_strogatz_keeps_edge_budget(self):
        base = gen.ring_lattice(60, 3)
        ws = gen.watts_strogatz(60, 3, 0.3, seed=2)
        assert ws.m <= base.m  # rewiring can only collide, never add
        assert ws.m >= base.m - 20

    def test_invalid_rewire(self):
        with pytest.raises(ParameterError):
            gen.watts_strogatz(10, 2, -0.1)


class TestPlantedNuclei:
    def test_block_structure(self):
        g = gen.planted_nuclei([4, 3], bridge=False)
        assert g.n == 7
        assert g.m == 6 + 3
        assert n_components(connected_components(g)) == 2

    def test_bridges_connect(self):
        g = gen.planted_nuclei([4, 3, 2], bridge=True)
        assert n_components(connected_components(g)) == 1

    def test_blocks_are_cliques(self):
        g = gen.planted_nuclei([5, 4], bridge=True)
        assert g.is_clique(range(5))
        assert g.is_clique(range(5, 9))

    def test_invalid_block(self):
        with pytest.raises(ParameterError):
            gen.planted_nuclei([3, 0])


class TestRmat:
    def test_size_and_skew(self):
        g = gen.rmat(7, 4, seed=3)
        assert g.n == 128
        assert g.m > 0
        avg = 2 * g.m / g.n
        assert g.max_degree() > 3 * avg  # heavy skew

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            gen.rmat(0, 4)
        with pytest.raises(ParameterError):
            gen.rmat(4, 0)
        with pytest.raises(ParameterError):
            gen.rmat(4, 4, a=0.5, b=0.3, c=0.3)


class TestDegenerateFamilies:
    def test_bipartite_is_triangle_free(self):
        from repro.cliques import triangle_count
        g = gen.random_bipartite_like(15, 15, 0.4, seed=1)
        assert triangle_count(g) == 0

    def test_tree_is_acyclic(self):
        g = gen.tree_graph(40, seed=2)
        assert g.m == g.n - 1
        assert n_components(connected_components(g)) == 1
