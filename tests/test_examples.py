"""Integration: every example script runs successfully end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py"))


def test_examples_directory_is_populated():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3  # the deliverable floor


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script, tmp_path):
    argv = [sys.executable, os.path.join(EXAMPLES_DIR, script)]
    env = dict(os.environ)
    if script == "reproduce_paper.py":
        # sandbox the full-reproduction driver: tiny scale, scratch output
        # directory (never the repo's archived results/)
        argv.append(str(tmp_path))
        env["REPRO_BENCH_SCALE"] = "0.1"
    proc = subprocess.run(argv, capture_output=True, text=True,
                          timeout=300, env=env)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), f"{script} produced no output"


def test_quickstart_mentions_key_outputs():
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "quickstart.py")],
        capture_output=True, text=True, timeout=300)
    assert "nucleus decomposition" in proc.stdout
    assert "densest nucleus" in proc.stdout
    assert "speedup" in proc.stdout
