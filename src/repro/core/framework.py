"""Interleaved hierarchy framework (Algorithm 3) -- ANH-EL / ANH-BL.

``ARB-NUCLEUS-DECOMP-HIERARCHY-FRAMEWORK`` computes core numbers and the
hierarchy in a *single* peeling pass: while peeling r-clique ``R``, the
loop over its s-cliques already visits every s-clique-adjacent ``R'``; if
``R'`` was peeled no later than ``R`` their core numbers are final and the
pair goes to ``LINK``, otherwise ``R'`` loses an s-clique (lines 12-16).

The peeling engine (:func:`repro.core.nucleus.peel_exact`) provides exactly
that call discipline; this module plugs in the two LINK strategies and runs
``CONSTRUCT-TREE`` afterwards.
"""

from __future__ import annotations

import time
from functools import partial
from typing import Callable, Dict, Optional

from ..parallel.backend import ExecutionBackend
from ..parallel.counters import WorkSpanCounter
from ..graphs.graph import Graph
from .link_basic import LinkBasic
from .link_efficient import LinkEfficient
from .nucleus import (CorenessResult, NucleusInput, peel_exact, prepare,
                      split_kernel)
from .tree import HierarchyTree


class InterleavedResult:
    """Coreness + hierarchy + statistics from one interleaved run."""

    def __init__(self, coreness: CorenessResult, tree: HierarchyTree,
                 stats: Dict[str, float]) -> None:
        self.coreness = coreness
        self.tree = tree
        self.stats = stats


def run_interleaved(prepared: NucleusInput, make_link: Callable,
                    counter: Optional[WorkSpanCounter],
                    peel: Callable = peel_exact) -> InterleavedResult:
    """Drive one interleaved decomposition: peel with LINK, then build."""
    counter = counter if counter is not None else WorkSpanCounter()
    n_r = prepared.n_r
    # The LINK structures need the (final) core number of any peeled clique;
    # the peeling fills this array in place as cliques are peeled, and the
    # framework's call discipline guarantees LINK only reads final entries.
    core_live = [0.0] * n_r
    link_impl = make_link(core_live)

    def on_link(r_early: int, r_late: int) -> None:
        link_impl.link(r_early, r_late)

    t0 = time.perf_counter()
    result = peel(prepared.incidence, counter=counter, link=on_link,
                  core_out=core_live)
    t1 = time.perf_counter()
    tree = link_impl.construct_tree()
    t2 = time.perf_counter()
    stats = dict(result.stats)
    stats.update(link_impl.stats())
    stats["seconds_coreness"] = t1 - t0
    stats["seconds_tree"] = t2 - t1
    return InterleavedResult(result, tree, stats)


def anh_el(graph: Graph, r: int, s: int,
           strategy: str = "materialized",
           counter: Optional[WorkSpanCounter] = None,
           prepared: Optional[NucleusInput] = None,
           seed: int = 0,
           backend: Optional[ExecutionBackend] = None,
           kernel: str = "auto") -> InterleavedResult:
    """ANH-EL: interleaved framework with ``LINK-EFFICIENT`` (Algorithm 5)."""
    counter = counter if counter is not None else WorkSpanCounter()
    enum_kernel, peel_kernel, _ = split_kernel(kernel)
    if prepared is None:
        prepared = prepare(graph, r, s, strategy=strategy, counter=counter,
                           backend=backend, kernel=enum_kernel)
    return run_interleaved(prepared,
                           lambda core: LinkEfficient(core, seed=seed),
                           counter, peel=partial(peel_exact, backend=backend,
                                                 kernel=peel_kernel))


def anh_bl(graph: Graph, r: int, s: int,
           strategy: str = "materialized",
           counter: Optional[WorkSpanCounter] = None,
           prepared: Optional[NucleusInput] = None,
           seed: int = 0,
           backend: Optional[ExecutionBackend] = None,
           kernel: str = "auto") -> InterleavedResult:
    """ANH-BL: interleaved framework with ``LINK-BASIC`` (Algorithm 4).

    The per-level union-finds need the level universe up front; for the
    exact decomposition the levels are the integers ``1..k`` where ``k``
    is bounded by the maximum initial s-clique degree, so the structure is
    sized from the degrees (over-allocation mirrors the paper's memory
    complaint about ANH-BL).
    """
    counter = counter if counter is not None else WorkSpanCounter()
    enum_kernel, peel_kernel, _ = split_kernel(kernel)
    if prepared is None:
        prepared = prepare(graph, r, s, strategy=strategy, counter=counter,
                           backend=backend, kernel=enum_kernel)
    max_possible = max(prepared.incidence.initial_degrees(), default=0)
    levels = [float(i) for i in range(1, int(max_possible) + 1)]

    def make(core):
        return LinkBasic(core, levels=levels, seed=seed)

    return run_interleaved(prepared, make, counter,
                           peel=partial(peel_exact, backend=backend,
                                        kernel=peel_kernel))
