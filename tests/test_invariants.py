"""Deeper property tests on decomposition invariants.

These encode structural facts about nucleus decompositions that any
correct implementation must satisfy, beyond agreement with the oracle:

* **edge monotonicity** -- adding edges never decreases any surviving
  r-clique's core number;
* **isomorphism invariance** -- relabeling vertices permutes but never
  changes the multiset of core numbers or the hierarchy shape;
* **disjoint-union locality** -- the decomposition of a disjoint union is
  the disjoint union of the decompositions;
* **closed forms** -- complete graphs and planted cliques have known core
  numbers for every (r, s);
* **sum bound** -- the sum of core numbers is at most comb(s, r) * n_s
  (used in the proof of Theorem 5.1);
* **eager/lazy Algorithm 1 equivalence** (the two bookkeeping schemes).
"""

import random
from math import comb

import pytest
from hypothesis import given, settings, strategies as st

from repro import nucleus_decomposition
from repro.core.hierarchy_te import hierarchy_te_theoretical
from repro.core.nucleus import peel_exact, prepare
from repro.graphs.generators import erdos_renyi, planted_nuclei
from repro.graphs.graph import Graph, union_disjoint

RS = [(1, 2), (1, 3), (2, 3), (2, 4), (3, 4)]


def edge_sets(n=11, max_size=35):
    return st.sets(st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                   max_size=max_size).map(
        lambda pairs: frozenset((min(u, v), max(u, v))
                                for u, v in pairs if u != v))


class TestEdgeMonotonicity:
    @settings(deadline=None, max_examples=15)
    @given(edges=edge_sets(), extra=edge_sets(max_size=6),
           rs=st.sampled_from(RS))
    def test_adding_edges_never_lowers_cores(self, edges, extra, rs):
        r, s = rs
        small = Graph(11, sorted(edges))
        big = Graph(11, sorted(edges | extra))
        prep_small = prepare(small, r, s)
        prep_big = prepare(big, r, s)
        if prep_small.n_r == 0:
            return
        core_small = peel_exact(prep_small.incidence).core
        core_big = peel_exact(prep_big.incidence).core
        for rid in range(prep_small.n_r):
            clique = prep_small.index.clique_of(rid)
            big_rid = prep_big.index.get(clique)
            assert big_rid is not None  # supergraph keeps every r-clique
            assert core_big[big_rid] >= core_small[rid]


class TestIsomorphismInvariance:
    @settings(deadline=None, max_examples=10)
    @given(edges=edge_sets(), seed=st.integers(0, 10 ** 6),
           rs=st.sampled_from(RS))
    def test_relabeling_preserves_decomposition(self, edges, seed, rs):
        r, s = rs
        g = Graph(11, sorted(edges))
        perm = list(range(11))
        random.Random(seed).shuffle(perm)
        h = g.relabeled(perm)
        dg = nucleus_decomposition(g, r, s)
        dh = nucleus_decomposition(h, r, s)
        # core numbers transported along the permutation
        for clique, value in dg.coreness_by_clique().items():
            image = tuple(sorted(perm[v] for v in clique))
            assert dh.coreness_by_clique()[image] == value
        # hierarchy shape identical: per-level nucleus size multisets
        for level in dg.hierarchy_levels():
            sizes_g = sorted(len(x) for x in dg.nuclei_at(level))
            sizes_h = sorted(len(x) for x in dh.nuclei_at(level))
            assert sizes_g == sizes_h


class TestDisjointUnion:
    @settings(deadline=None, max_examples=10)
    @given(e1=edge_sets(n=8, max_size=20), e2=edge_sets(n=8, max_size=20),
           rs=st.sampled_from([(1, 2), (2, 3), (2, 4)]))
    def test_union_is_componentwise(self, e1, e2, rs):
        r, s = rs
        a = Graph(8, sorted(e1))
        b = Graph(8, sorted(e2))
        ab = union_disjoint([a, b])
        da = nucleus_decomposition(a, r, s)
        db = nucleus_decomposition(b, r, s)
        dab = nucleus_decomposition(ab, r, s)
        # cores agree componentwise (b's vertices shifted by 8)
        table = dab.coreness_by_clique()
        for clique, value in da.coreness_by_clique().items():
            assert table[clique] == value
        for clique, value in db.coreness_by_clique().items():
            shifted = tuple(v + 8 for v in clique)
            assert table[shifted] == value
        # nuclei never span the two halves
        for level in dab.hierarchy_levels():
            for nucleus in dab.nuclei_at(level):
                assert (max(nucleus) < 8) or (min(nucleus) >= 8)


class TestClosedForms:
    @pytest.mark.parametrize("n", [4, 5, 6])
    @pytest.mark.parametrize("rs", RS)
    def test_complete_graph(self, n, rs):
        r, s = rs
        if s > n:
            return
        result = nucleus_decomposition(Graph.complete(n), r, s,
                                       hierarchy=False)
        # every r-clique of K_n is in comb(n-r, s-r) s-cliques and the
        # whole graph is one nucleus
        expected = comb(n - r, s - r)
        assert set(result.core) == {float(expected)}

    def test_planted_cliques_any_rs(self):
        g = planted_nuclei([7, 5], bridge=True)
        for r, s in [(2, 3), (2, 4), (3, 4), (3, 5)]:
            result = nucleus_decomposition(g, r, s, hierarchy=False)
            table = result.coreness_by_clique()
            k7_clique = tuple(range(r))      # inside the K7 block
            k5_clique = tuple(range(7, 7 + r))
            assert table[k7_clique] == comb(7 - r, s - r)
            assert table[k5_clique] == comb(5 - r, s - r)


class TestSumBound:
    @settings(deadline=None, max_examples=15)
    @given(edges=edge_sets(), rs=st.sampled_from(RS))
    def test_core_sum_bounded_by_s_clique_budget(self, edges, rs):
        """sum of core numbers <= comb(s,r) * n_s (Theorem 5.1's charge)."""
        r, s = rs
        g = Graph(11, sorted(edges))
        prep = prepare(g, r, s)
        if prep.n_r == 0:
            return
        result = peel_exact(prep.incidence)
        assert sum(result.core) <= comb(s, r) * result.n_s


class TestAlgorithm1Bookkeeping:
    @settings(deadline=None, max_examples=10)
    @given(edges=edge_sets(), rs=st.sampled_from(RS))
    def test_eager_and_lazy_relabeling_agree(self, edges, rs):
        r, s = rs
        g = Graph(11, sorted(edges))
        prep = prepare(g, r, s)
        if prep.n_r == 0:
            return
        eager = hierarchy_te_theoretical(g, r, s, prepared=prep,
                                         relabel="eager")
        lazy = hierarchy_te_theoretical(g, r, s, prepared=prep,
                                        relabel="lazy")
        assert eager.tree.partition_chain() == lazy.tree.partition_chain()

    def test_unknown_relabel_rejected(self):
        with pytest.raises(ValueError):
            hierarchy_te_theoretical(Graph.complete(3), 2, 3,
                                     relabel="bogus")
