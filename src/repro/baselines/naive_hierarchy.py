"""Naive reference algorithms: the oracle and the "no hierarchy" baseline.

Two roles:

1. **Oracle for tests.** :func:`sequential_coreness` peels one minimum
   r-clique at a time (the textbook Sariyüce et al. [52] algorithm) and
   :func:`naive_hierarchy` builds the tree directly from the definition --
   connected components of every level graph. Every optimized algorithm in
   :mod:`repro.core` is checked against these.

2. **Paper baselines.** The "vanilla extension" the paper compares against
   in Section 5 (connectivity per level, ``O(rho * m * alpha^(s-2))`` work)
   is exactly :func:`naive_hierarchy`; and Figure 10's "without the
   hierarchy" measurement is :func:`nuclei_without_hierarchy` -- finding
   the ``c``-nuclei for one ``c`` by running connectivity over the level
   graph instead of cutting the tree.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.tree import HierarchyTree, tree_from_partition_chain
from ..ds.union_find import SequentialUnionFind
from ..parallel.counters import NullCounter, WorkSpanCounter


def sequential_coreness(incidence) -> List[float]:
    """Textbook peeling: remove one minimum-degree r-clique per step.

    O(n_r^2)-ish with a linear scan for the minimum -- deliberately simple;
    it is the specification, not a contender.
    """
    n_r = incidence.n_r
    degree = incidence.initial_degrees()
    alive = [True] * n_r
    core = [0.0] * n_r
    k_cur = 0
    for _ in range(n_r):
        rid = min((x for x in range(n_r) if alive[x]), key=lambda x: degree[x])
        k_cur = max(k_cur, degree[rid])
        core[rid] = float(k_cur)
        for members in incidence.s_cliques_containing(rid):
            others = [x for x in members if x != rid]
            if all(alive[o] for o in others):
                for other in others:
                    degree[other] -= 1
        alive[rid] = False
    return core


def level_graph_components(incidence, core: Sequence[float],
                           c: float) -> List[List[int]]:
    """Connected components of the level-``c`` graph, from the definition.

    Vertices: r-cliques with ``core >= c``. Edges: pairs sharing any
    s-clique of the original graph, both endpoints with ``core >= c``.
    """
    n_r = incidence.n_r
    uf = SequentialUnionFind(n_r)
    active = [core[x] >= c for x in range(n_r)]
    for members in incidence.iter_s_cliques():
        eligible = [x for x in members if active[x]]
        for a, b in zip(eligible, eligible[1:]):
            uf.unite(a, b)
    groups: Dict[int, List[int]] = {}
    for x in range(n_r):
        if active[x]:
            groups.setdefault(uf.find(x), []).append(x)
    return [sorted(g) for g in groups.values()]


def naive_hierarchy(incidence, core: Sequence[float],
                    counter: Optional[WorkSpanCounter] = None
                    ) -> HierarchyTree:
    """Hierarchy from the definition: components at every distinct level.

    This is the Section 5 "vanilla extension": one full connectivity pass
    per level, ``O(rho)`` times more work than ARB-NUCLEUS-HIERARCHY.
    """
    counter = counter if counter is not None else NullCounter()
    levels = sorted({v for v in core if v > 0}, reverse=True)
    partitions = {}
    for c in levels:
        components = level_graph_components(incidence, core, c)
        counter.add_serial(incidence.n_s + incidence.n_r)
        partitions[c] = components
    return tree_from_partition_chain(list(core), partitions)


def nuclei_without_hierarchy(incidence, core: Sequence[float],
                             c: float) -> List[List[int]]:
    """All ``c``-(r, s) nuclei *without* a hierarchy (Figure 10 baseline).

    One connectivity run over the level-``c`` graph -- the expensive
    alternative to :meth:`HierarchyTree.nuclei_at`.
    """
    return [g for g in level_graph_components(incidence, core, c) if g]


def coreness_histogram(core: Sequence[float]) -> Dict[float, int]:
    """Count of r-cliques per core value (reporting helper)."""
    out: Dict[float, int] = {}
    for value in core:
        out[value] = out.get(value, 0) + 1
    return out
