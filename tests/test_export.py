"""Unit tests for result serialization (repro.export)."""

import io
import json

import pytest

from repro import nucleus_decomposition
from repro.errors import ParameterError
from repro.export import (SCHEMA_VERSION, decomposition_from_dict,
                          decomposition_from_json, decomposition_to_dict,
                          decomposition_to_json, load_coreness,
                          nuclei_to_rows, tree_to_dot)
from repro.graphs.generators import planted_nuclei
from repro.graphs.graph import Graph


@pytest.fixture(scope="module")
def result():
    return nucleus_decomposition(planted_nuclei([5, 4], bridge=True), 2, 3)


class TestJson:
    def test_document_shape(self, result):
        doc = decomposition_to_dict(result)
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["r"] == 2 and doc["s"] == 3
        assert len(doc["coreness"]) == result.n_r
        assert doc["hierarchy"]["n_leaves"] == result.n_r
        assert doc["max_core"] == result.max_core

    def test_json_is_valid_and_stable(self, result):
        text_a = decomposition_to_json(result)
        text_b = decomposition_to_json(result)
        assert text_a == text_b  # deterministic (sorted keys)
        json.loads(text_a)

    def test_round_trip_coreness(self, result):
        buffer = io.StringIO(decomposition_to_json(result))
        table = load_coreness(buffer)
        assert table == result.coreness_by_clique()

    def test_round_trip_via_file(self, result, tmp_path):
        path = tmp_path / "decomp.json"
        decomposition_to_json(result, target=str(path))
        assert load_coreness(str(path)) == result.coreness_by_clique()

    def test_schema_version_checked(self):
        bad = io.StringIO(json.dumps({"schema_version": 99, "coreness": []}))
        with pytest.raises(ParameterError):
            load_coreness(bad)

    def test_tree_optional(self, result):
        doc = decomposition_to_dict(result, include_tree=False)
        assert "hierarchy" not in doc

    def test_coreness_only_result(self):
        r = nucleus_decomposition(Graph.complete(4), 2, 3, hierarchy=False)
        doc = decomposition_to_dict(r)
        assert "hierarchy" not in doc
        assert len(doc["coreness"]) == 6


class TestFromDict:
    def test_full_round_trip(self, result):
        doc = decomposition_to_dict(result)
        rebuilt = decomposition_from_dict(doc, result.graph)
        assert rebuilt.r == result.r and rebuilt.s == result.s
        assert rebuilt.method == result.method
        assert rebuilt.max_core == result.max_core
        assert rebuilt.coreness_by_clique() == result.coreness_by_clique()
        assert list(rebuilt.tree.parent) == list(result.tree.parent)
        assert list(rebuilt.tree.level) == list(result.tree.level)
        assert rebuilt.tree.n_leaves == result.tree.n_leaves

    def test_rebuilt_tree_answers_queries(self, result):
        from repro.core.queries import HierarchyQueryIndex
        doc = decomposition_to_dict(result)
        rebuilt = decomposition_from_dict(doc, result.graph)
        original = HierarchyQueryIndex(result)
        restored = HierarchyQueryIndex(rebuilt)
        assert original.top_k_densest(3) == restored.top_k_densest(3)
        for v in range(result.graph.n):
            assert original.membership(v) == restored.membership(v)

    def test_json_round_trip_via_file(self, result, tmp_path):
        path = tmp_path / "decomp.json"
        decomposition_to_json(result, target=str(path))
        rebuilt = decomposition_from_json(str(path), result.graph)
        assert rebuilt.coreness_by_clique() == result.coreness_by_clique()

    def test_schema_version_checked(self, result):
        doc = decomposition_to_dict(result)
        doc["schema_version"] = 99
        with pytest.raises(ParameterError):
            decomposition_from_dict(doc, result.graph)

    def test_graph_mismatch_rejected(self, result):
        doc = decomposition_to_dict(result)
        wrong = Graph.complete(4)
        with pytest.raises(ParameterError, match="graph mismatch"):
            decomposition_from_dict(doc, wrong)

    def test_coreness_only_document(self):
        r = nucleus_decomposition(Graph.complete(4), 2, 3, hierarchy=False)
        doc = decomposition_to_dict(r)
        rebuilt = decomposition_from_dict(doc, r.graph)
        assert rebuilt.tree is None
        assert rebuilt.coreness_by_clique() == r.coreness_by_clique()


class TestDot:
    def test_valid_dot_structure(self, result):
        dot = tree_to_dot(result)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        # one box per internal node
        assert dot.count("shape=box") == result.tree.n_internal
        # leaves included at this size
        assert "shape=ellipse" in dot

    def test_leaf_suppression(self, result):
        dot = tree_to_dot(result, include_leaves=False)
        assert "shape=ellipse" not in dot
        dot_small = tree_to_dot(result, max_leaves=1)
        assert "shape=ellipse" not in dot_small

    def test_requires_tree(self):
        r = nucleus_decomposition(Graph.complete(4), 2, 3, hierarchy=False)
        with pytest.raises(ParameterError):
            tree_to_dot(r)

    def test_quotes_in_leaf_labels_escaped(self, result):
        labels = {0: 'say "hello"', 1: "back\\slash"}
        dot = tree_to_dot(result, leaf_labels=labels)
        assert '\\"hello\\"' in dot
        assert "back\\\\slash" in dot
        # Balanced quoting: every label is a closed quoted string, so the
        # total count of unescaped quotes is even.
        unescaped = dot.replace('\\"', "")
        assert unescaped.count('"') % 2 == 0


class TestRows:
    def test_rows_sorted_and_complete(self, result):
        rows = nuclei_to_rows(result)
        assert len(rows) == result.tree.n_internal
        keys = [(-row["level"], -row["n_vertices"]) for row in rows]
        assert keys == sorted(keys)
        for row in rows:
            assert 0 <= row["density"] <= 1
            assert row["n_vertices"] == len(row["vertices"])

    def test_min_vertices_filter(self, result):
        assert nuclei_to_rows(result, min_vertices=5) != []
        assert all(row["n_vertices"] >= 5
                   for row in nuclei_to_rows(result, min_vertices=5))

    def test_requires_tree(self):
        r = nucleus_decomposition(Graph.complete(4), 2, 3, hierarchy=False)
        with pytest.raises(ParameterError):
            nuclei_to_rows(r)
