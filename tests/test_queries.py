"""Unit tests for the hierarchy query layer (repro.core.queries)."""

import numpy as np
import pytest

from repro import nucleus_decomposition
from repro.core.queries import (Community, HierarchyQueryIndex,
                                hierarchy_statistics)
from repro.errors import ParameterError
from repro.graphs.generators import planted_nuclei
from repro.graphs.graph import Graph


@pytest.fixture(scope="module")
def planted_index():
    # K6 (0-5), K5 (6-10), K4 (11-14), chained by bridges.
    graph = planted_nuclei([6, 5, 4], bridge=True)
    decomposition = nucleus_decomposition(graph, 2, 3)
    return HierarchyQueryIndex(decomposition)


class TestConstruction:
    def test_requires_hierarchy(self):
        g = Graph.complete(4)
        coreness_only = nucleus_decomposition(g, 2, 3, hierarchy=False)
        with pytest.raises(ParameterError):
            HierarchyQueryIndex(coreness_only)


class TestCommunitySearch:
    def test_pair_in_one_block(self, planted_index):
        community = planted_index.community([0, 5])
        assert community is not None
        assert community.vertices == (0, 1, 2, 3, 4, 5)
        assert community.level == 4  # the K6 nucleus
        assert community.density == pytest.approx(1.0)

    def test_cross_block_query_climbs(self, planted_index):
        # Vertices from the K6 and the K5 only share the level-1 nucleus
        # containing both blocks... if the blocks are triangle-connected.
        community = planted_index.community([0, 6], min_level=1)
        # bridges are single edges (no shared triangles), so no common
        # nucleus exists at level >= 1
        assert community is None

    def test_min_level_filters(self, planted_index):
        assert planted_index.community([11, 14], min_level=2) is not None
        assert planted_index.community([11, 14], min_level=3) is None

    def test_single_vertex_query(self, planted_index):
        community = planted_index.community([7])
        assert community is not None
        assert 7 in community.vertices

    def test_validation(self, planted_index):
        with pytest.raises(ParameterError):
            planted_index.community([])
        with pytest.raises(ParameterError):
            planted_index.community([999])

    def test_smallest_covering_nucleus_preferred(self):
        # Nested structure: K5 inside a looser shell; querying two K5
        # members must return the K5, not the shell.
        g = planted_nuclei([5], bridge=False, backbone_p=0.0)
        edges = list(g.edges()) + [(0, 5), (1, 5), (5, 6), (0, 6)]
        graph = Graph(7, edges)
        index = HierarchyQueryIndex(nucleus_decomposition(graph, 2, 3))
        community = index.community([0, 1])
        assert community.vertices == (0, 1, 2, 3, 4)


class TestVertexQueries:
    def test_strongest_community(self, planted_index):
        strongest = planted_index.strongest_community(0)
        assert strongest.level == 4
        assert strongest.vertices == (0, 1, 2, 3, 4, 5)
        strongest = planted_index.strongest_community(12)
        assert strongest.level == 2

    def test_strongest_for_isolated_vertex(self):
        g = Graph(5, [(0, 1), (1, 2), (0, 2), (3, 4)])
        index = HierarchyQueryIndex(nucleus_decomposition(g, 2, 3))
        assert index.strongest_community(3) is None

    def test_membership_chain_is_descending(self, planted_index):
        chain = planted_index.membership(0)
        assert chain
        levels = [c.level for c in chain]
        assert levels == sorted(levels, reverse=True)
        for community in chain:
            assert 0 in community.vertices

    def test_membership_of_unknown_vertex(self):
        g = Graph(3, [(0, 1)])
        index = HierarchyQueryIndex(nucleus_decomposition(g, 2, 3))
        assert index.membership(2) == []

    def test_vertex_in_multiple_subtrees(self):
        # Vertex 2 sits in two triangles that are NOT triangle-connected:
        # two distinct level-1 nuclei both contain it.
        g = Graph(5, [(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)])
        index = HierarchyQueryIndex(nucleus_decomposition(g, 2, 3))
        chain = index.membership(2)
        assert len(chain) == 2
        assert all(2 in c.vertices for c in chain)
        # and community search spanning both triangles finds nothing
        assert index.community([0, 3]) is None


class TestRankings:
    def test_top_k_densest(self, planted_index):
        top = planted_index.top_k_densest(2, min_vertices=4)
        assert len(top) == 2
        assert top[0].density >= top[1].density
        assert top[0].vertices == (0, 1, 2, 3, 4, 5)  # K6 densest+deepest

    def test_top_k_deepest(self, planted_index):
        top = planted_index.top_k_deepest(3)
        levels = [c.level for c in top]
        assert levels == sorted(levels, reverse=True)
        assert levels[0] == 4

    def test_k_validation(self, planted_index):
        with pytest.raises(ParameterError):
            planted_index.top_k_densest(0)
        with pytest.raises(ParameterError):
            planted_index.top_k_deepest(-1)

    def test_min_vertices_filter(self, planted_index):
        top = planted_index.top_k_densest(10, min_vertices=6)
        assert all(len(c) >= 6 for c in top)


class TestArraySurface:
    """The CSR/array surface shared with the on-disk store layout."""

    def test_len_counts_nuclei(self, planted_index):
        assert len(planted_index) == planted_index.tree.n_internal

    def test_node_vertex_csr_is_sorted_and_consistent(self, planted_index):
        indptr, data = planted_index.node_vertex_csr()
        tree = planted_index.tree
        assert indptr.dtype == data.dtype == np.int64
        assert len(indptr) == tree.n_nodes + 1
        assert indptr[-1] == len(data)
        for node in range(tree.n_nodes):
            mine = data[indptr[node]:indptr[node + 1]]
            assert list(mine) == sorted(set(mine))
            assert planted_index.n_vertices_of(node) == len(mine)
            assert np.array_equal(planted_index.vertices_of(node), mine)

    def test_vertex_leaf_csr_covers_every_clique(self, planted_index):
        indptr, data = planted_index.vertex_leaf_csr()
        graph = planted_index.graph
        assert len(indptr) == graph.n + 1
        index = planted_index.decomposition.index
        for v in range(graph.n):
            leaves = planted_index.leaves_of_vertex(v)
            assert np.array_equal(
                leaves, data[indptr[v]:indptr[v + 1]])
            for leaf in leaves:
                assert v in index.clique_of(int(leaf))

    def test_out_of_range_vertex_has_no_leaves(self, planted_index):
        assert planted_index.leaves_of_vertex(-1).size == 0
        assert planted_index.leaves_of_vertex(10_000).size == 0

    def test_n_leaves_under_roots_cover_forest(self, planted_index):
        under = planted_index.n_leaves_under()
        tree = planted_index.tree
        assert under[list(tree.roots())].sum() == tree.n_leaves
        for leaf in range(tree.n_leaves):
            assert under[leaf] == 1

    def test_node_density_matches_community(self, planted_index):
        tree = planted_index.tree
        for node in range(tree.n_leaves, tree.n_nodes):
            assert planted_index.node_density(node) == pytest.approx(
                planted_index._community_at(node).density)

    def test_stats_shape(self, planted_index):
        stats = planted_index.stats()
        assert stats["n_leaves"] == planted_index.tree.n_leaves
        assert stats["n_nuclei"] == len(planted_index)
        assert stats["n_nodes"] \
            == stats["n_leaves"] + stats["n_nuclei"]
        assert stats["max_level"] == 4.0
        assert stats["n_vertices"] == planted_index.graph.n
        assert stats["index_bytes"] > 0


class TestStatistics:
    def test_planted_statistics(self, planted_index):
        stats = hierarchy_statistics(planted_index.tree)
        assert stats.n_leaves == planted_index.decomposition.n_r
        assert stats.n_nuclei == 3  # K6, K5, K4 nuclei
        assert stats.max_level == 4
        assert stats.largest_nucleus == 15  # K6's edges
        assert stats.mean_branching > 1

    def test_empty_tree_statistics(self):
        g = Graph(4, [(0, 1), (2, 3)])
        d = nucleus_decomposition(g, 2, 3)
        stats = hierarchy_statistics(d.tree)
        assert stats.n_nuclei == 0
        assert stats.max_level == 0
        assert stats.mean_branching == 0.0
