"""The exact-vs-approximate tradeoff (Algorithm 2, Section 8.3).

APPROX-ARB-NUCLEUS trades a bounded amount of coreness accuracy for a
collapse in peeling rounds -- the critical path of the parallel
computation. This example sweeps delta and shows, for each setting:

* peeling rounds (exact vs approximate),
* the estimate error distribution against the proven bound,
* the predicted 30-core running times from the measured work/span.

Run:  python examples/approx_tradeoff.py
"""

from math import comb

from repro import nucleus_decomposition
from repro.analysis.errors import summarize_errors
from repro.analysis.reporting import format_table
from repro.core.approx import approximation_bound
from repro.graphs.generators import powerlaw_cluster, with_planted_communities

R, S = 2, 3


def main():
    base = powerlaw_cluster(800, 3, 0.5, seed=21)
    graph = with_planted_communities(base, sizes=[30, 22, 16, 12],
                                     p_in=0.6, seed=22, name="sweep")
    exact = nucleus_decomposition(graph, R, S, hierarchy=False)
    print(f"graph: n={graph.n}, m={graph.m}; "
          f"exact ({R},{S}): max core {exact.max_core:g}, "
          f"rho = {exact.rho} peeling rounds\n")

    rows = []
    for delta in (0.05, 0.1, 0.25, 0.5, 1.0, 2.0):
        approx = nucleus_decomposition(graph, R, S, hierarchy=False,
                                       approx=True, delta=delta)
        errors = summarize_errors(exact.core, approx.core)
        bound = approximation_bound(comb(S, R), delta)
        rows.append((
            delta,
            f"{approx.rho} (vs {exact.rho})",
            f"{errors.median_error:.2f}x",
            f"{errors.max_error:.2f}x",
            f"{bound:.1f}x",
            f"{approx.simulated_seconds(30) * 1e3:.1f}ms "
            f"(vs {exact.simulated_seconds(30) * 1e3:.1f}ms)",
        ))
    print(format_table(
        ("delta", "peel rounds", "median err", "max err",
         "proven bound", "simulated 30-core"),
        rows,
        title="delta sweep: rounds collapse, error stays far inside the bound"))

    print("\nTakeaways (matching the paper's Section 8.3):")
    print(" * rounds drop by an order of magnitude even for small delta;")
    print(" * observed errors sit well below the worst-case "
          "(C(s,r)+delta)(1+delta) factor;")
    print(" * the hierarchy works identically on the estimates "
          "(approx=True with hierarchy=True).")


if __name__ == "__main__":
    main()
