"""Pytest configuration for the benchmark directory.

Makes the benchmark modules importable as scripts and registers nothing
else; all tuning lives in environment variables (see bench_common.py).
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
