"""Unit tests for the peeling-complexity analytics (analysis.peeling)."""

import pytest

from repro.analysis.peeling import (PeelingProfile, profile_approx_peeling,
                                    profile_exact_peeling, round_histogram)
from repro.core.nucleus import peel_exact, prepare
from repro.errors import ParameterError
from repro.graphs.generators import planted_nuclei, powerlaw_cluster
from repro.graphs.graph import Graph


@pytest.fixture(scope="module")
def prep():
    return prepare(powerlaw_cluster(150, 4, 0.7, seed=8), 2, 3)


class TestExactProfile:
    def test_matches_peel_exact(self, prep):
        profile = profile_exact_peeling(prep.incidence)
        result = peel_exact(prep.incidence)
        assert profile.rounds == result.rho
        assert profile.k_max == result.k_max
        assert profile.n_peeled == prep.n_r

    def test_round_values_monotone(self, prep):
        profile = profile_exact_peeling(prep.incidence)
        assert list(profile.round_values) == sorted(profile.round_values)

    def test_complete_graph_single_round(self):
        prep = prepare(Graph.complete(6), 2, 3)
        profile = profile_exact_peeling(prep.incidence)
        assert profile.rounds == 1
        assert profile.batch_sizes == (15,)
        assert profile.sequentiality == pytest.approx(1 / 15)

    def test_derived_metrics(self):
        profile = PeelingProfile(rounds=2, k_max=3.0,
                                 batch_sizes=(4, 6), round_values=(1.0, 3.0))
        assert profile.n_peeled == 10
        assert profile.mean_batch == 5.0
        assert profile.max_batch == 6
        assert profile.sequentiality == 0.2

    def test_empty_profile(self):
        profile = PeelingProfile(rounds=0, k_max=0.0, batch_sizes=(),
                                 round_values=())
        assert profile.mean_batch == 0.0
        assert profile.sequentiality == 0.0


class TestApproxProfile:
    def test_fewer_rounds_bigger_batches(self, prep):
        exact = profile_exact_peeling(prep.incidence)
        approx = profile_approx_peeling(prep.incidence, 0.5)
        assert approx.rounds <= exact.rounds
        assert approx.n_peeled == exact.n_peeled
        assert approx.mean_batch >= exact.mean_batch

    def test_deep_graph_round_collapse(self):
        prep = prepare(planted_nuclei([9, 8, 7, 6], backbone_p=0.05, seed=2),
                       2, 3)
        exact = profile_exact_peeling(prep.incidence)
        approx = profile_approx_peeling(prep.incidence, 1.0)
        assert approx.rounds < exact.rounds

    def test_invalid_delta(self, prep):
        with pytest.raises(ParameterError):
            profile_approx_peeling(prep.incidence, 0)


class TestHistogram:
    def test_covers_all_rounds(self, prep):
        profile = profile_exact_peeling(prep.incidence)
        hist = round_histogram(profile)
        assert sum(count for _, count in hist) == profile.rounds

    def test_empty(self):
        profile = PeelingProfile(0, 0.0, (), ())
        assert round_histogram(profile) == []
