"""Parallel k-clique listing over a low out-degree orientation.

``REC-LIST-CLIQUES`` (Shi et al. [54]) enumerates k-cliques by recursively
intersecting directed neighborhoods: a k-clique is a vertex ``v`` plus a
(k-1)-clique inside ``v``'s out-neighborhood. With an ``O(alpha)``
orientation the total work is ``O(m * alpha^(k-2))`` and the span is
``O(log^2 n)`` w.h.p. -- the bound quoted throughout the paper.

Cliques are reported as tuples sorted by vertex id (the canonical r-clique
representation used across the library). The top-level loop over vertices
and each recursive branch are parallel in the real algorithm; the metered
span is the recursion depth times a log factor.
"""

from __future__ import annotations

from functools import partial
from typing import Iterator, List, Optional, Sequence, Tuple

from ..errors import ParameterError
from ..parallel.backend import ExecutionBackend
from ..parallel.counters import NullCounter, WorkSpanCounter, log2_ceil
from ..graphs.graph import Graph
from ..graphs.orientation import Orientation

Clique = Tuple[int, ...]


def enumerate_cliques(orientation: Orientation, k: int,
                      counter: Optional[WorkSpanCounter] = None
                      ) -> Iterator[Clique]:
    """Yield every k-clique of the oriented graph exactly once.

    Each clique appears once because its vertices are discovered in
    increasing rank order; the emitted tuple is re-sorted by vertex id.
    """
    if k < 1:
        raise ParameterError(f"clique size must be >= 1, got {k}")
    counter = counter if counter is not None else NullCounter()
    n = orientation.graph.n
    work = 0

    def extend(prefix: List[int], candidates: Sequence[int],
               remaining: int) -> Iterator[Clique]:
        nonlocal work
        if remaining == 0:
            yield tuple(sorted(prefix))
            return
        if remaining == 1:
            work += len(candidates)
            for u in candidates:
                yield tuple(sorted(prefix + [u]))
            return
        for u in candidates:
            out_u = orientation.out_neighbor_set(u)
            next_candidates = [w for w in candidates if w in out_u]
            work += len(candidates)
            prefix.append(u)
            yield from extend(prefix, next_candidates, remaining - 1)
            prefix.pop()

    if k == 1:
        work += n
        for v in range(n):
            yield (v,)
    else:
        for v in range(n):
            work += 1
            yield from extend([v], orientation.out_neighbors(v), k - 1)
    counter.add_parallel(max(work, 1), k + log2_ceil(max(n, 1)))


def cliques_of_vertices(orientation: Orientation, vertices: Sequence[int],
                        k: int) -> Tuple[List[Clique], int]:
    """k-cliques rooted at each of ``vertices``, plus the extension work.

    The per-vertex unit of the parallel top-level loop: the returned
    cliques are exactly the ones :func:`enumerate_cliques` emits while
    processing these vertices, in the same order, and the returned work
    integer is exactly what the generator would have accumulated for
    them. Module-level and driven by plain data so it can run in a
    worker process (see :mod:`repro.parallel.backend`).
    """
    if k == 1:
        return [(v,) for v in vertices], len(vertices)
    cliques: List[Clique] = []
    work = 0

    def extend(prefix: List[int], candidates: Sequence[int],
               remaining: int) -> None:
        nonlocal work
        if remaining == 1:
            work += len(candidates)
            for u in candidates:
                cliques.append(tuple(sorted(prefix + [u])))
            return
        for u in candidates:
            out_u = orientation.out_neighbor_set(u)
            next_candidates = [w for w in candidates if w in out_u]
            work += len(candidates)
            prefix.append(u)
            extend(prefix, next_candidates, remaining - 1)
            prefix.pop()

    for v in vertices:
        work += 1
        extend([v], orientation.out_neighbors(v), k - 1)
    return cliques, work


def _cliques_chunk(orientation: Orientation, vertices: List[int],
                   k: int) -> Tuple[List[Clique], int]:
    """Backend chunk task wrapping :func:`cliques_of_vertices`."""
    return cliques_of_vertices(orientation, vertices, k)


def enumerate_cliques_via(backend: ExecutionBackend, orientation: Orientation,
                          k: int, counter: Optional[WorkSpanCounter] = None,
                          chunk_size: Optional[int] = None) -> List[Clique]:
    """All k-cliques in enumeration (vertex-major) order, via ``backend``.

    The backend-dispatched form of :func:`enumerate_cliques`: the
    top-level vertex loop is split into chunks that may run in worker
    processes, and per-chunk work counts are merged back into
    ``counter`` with the same span charge as the serial generator -- so
    both the emitted cliques and the metered work/span are identical for
    every backend, worker count, and chunk size.
    """
    if k < 1:
        raise ParameterError(f"clique size must be >= 1, got {k}")
    counter = counter if counter is not None else NullCounter()
    n = orientation.graph.n
    token = backend.broadcast(orientation)
    results = backend.map_chunks(partial(_cliques_chunk, k=k), range(n),
                                 token=token, chunk_size=chunk_size)
    cliques: List[Clique] = []
    work = 0
    for chunk_cliques, chunk_work in results:
        cliques.extend(chunk_cliques)
        work += chunk_work
    counter.add_parallel(max(work, 1), k + log2_ceil(max(n, 1)))
    return cliques


def count_cliques(orientation: Orientation, k: int,
                  counter: Optional[WorkSpanCounter] = None,
                  kernel: str = "auto") -> int:
    """Number of k-cliques; same count and meters for every ``kernel``.

    ``"auto"``/``"array"`` run the flat-array kernel's count-only mode
    (:func:`repro.cliques.list_kernel.count_cliques_array`), which never
    materializes a clique tuple; ``"loop"`` drains the recursive
    generator (the differential oracle).
    """
    from .list_kernel import count_cliques_array, use_array_kernel
    if use_array_kernel(kernel):
        return count_cliques_array(orientation, k, counter)
    return sum(1 for _ in enumerate_cliques(orientation, k, counter))


def list_cliques(orientation: Orientation, k: int,
                 counter: Optional[WorkSpanCounter] = None) -> List[Clique]:
    """All k-cliques as a sorted list of canonical tuples."""
    return sorted(enumerate_cliques(orientation, k, counter))


def cliques_containing(graph: Graph, base: Clique, extra: int) -> Iterator[Clique]:
    """Yield the cliques of size ``len(base) + extra`` that contain ``base``.

    Used by the re-enumeration incidence strategy (and by ``ARB-NUCLEUS``'s
    update step in the paper): the candidates are the common neighbors of
    ``base``, and each ``extra``-clique among them extends ``base``. The
    emitted tuples are canonical (sorted, including the base vertices).
    """
    if extra < 0:
        raise ParameterError(f"extra must be >= 0, got {extra}")
    if not base:
        raise ParameterError("base clique must be non-empty")
    if extra == 0:
        yield tuple(sorted(base))
        return
    common: Optional[set] = None
    for v in base:
        nbrs = graph.neighbor_set(v)
        common = set(nbrs) if common is None else common & nbrs
    candidates = sorted(common - set(base)) if common else []

    def extend(prefix: List[int], cands: Sequence[int],
               remaining: int) -> Iterator[Clique]:
        if remaining == 0:
            yield tuple(sorted(list(base) + prefix))
            return
        for i, u in enumerate(cands):
            nbrs_u = graph.neighbor_set(u)
            next_cands = [w for w in cands[i + 1:] if w in nbrs_u]
            prefix.append(u)
            yield from extend(prefix, next_cands, remaining - 1)
            prefix.pop()

    yield from extend([], candidates, extra)


def triangle_count(graph: Graph) -> int:
    """Total triangles, counted over a low out-degree orientation.

    Orients the graph and runs the count-only array kernel at ``k=3`` --
    ``O(m * alpha)`` work instead of the per-edge neighborhood
    intersections of the undirected formulation.
    """
    from ..graphs.orientation import arb_orient
    from .list_kernel import count_cliques_array
    return count_cliques_array(arb_orient(graph), 3)


def clique_degeneracy_guard(orientation: Orientation, k: int,
                            limit: int = 50_000_000) -> None:
    """Fail fast if k-clique enumeration would clearly exceed ``limit`` work.

    A coarse upper bound ``sum_v C(outdeg(v), k-1)`` protects interactive
    callers from accidentally requesting an enumeration that would run for
    hours (mirrors the paper's 4-hour timeout discipline).
    """
    from math import comb
    import numpy as np
    degrees = orientation.csr().out_degrees()
    if degrees.size:
        # One comb() per distinct out-degree instead of one per vertex.
        histogram = np.bincount(degrees)
        bound = sum(int(multiplicity) * comb(d, max(k - 1, 0))
                    for d, multiplicity in enumerate(histogram.tolist())
                    if multiplicity)
    else:
        bound = 0
    if bound > limit:
        raise ParameterError(
            f"estimated {bound} clique-extension steps exceeds limit {limit}; "
            f"use a smaller graph or raise the limit explicitly")
