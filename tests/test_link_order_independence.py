"""Order-independence of LINK-EFFICIENT: the thread-safety property.

In the parallel framework, LINK calls from one peeling round arrive in an
arbitrary interleaving. The paper's claim that ``LINK-EFFICIENT`` is
thread-safe means the final (uf, L) state must induce the same hierarchy
regardless of that order. These tests collect the actual link sequence
from a peeling run and replay it in many permutations, checking that the
constructed tree is always equivalent.

Only permutations consistent with the peeling rounds are legal (a link
can only fire once both endpoints are peeled), so shuffling happens
within rounds -- exactly the freedom real threads have.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.link_basic import LinkBasic
from repro.core.link_efficient import LinkEfficient
from repro.core.nucleus import peel_exact, prepare
from repro.graphs.generators import erdos_renyi, planted_nuclei
from repro.graphs.graph import Graph


def collect_round_links(incidence):
    """Peel once, grouping the emitted link calls by peeling round.

    Returns (core, rounds) where rounds is a list of per-round link lists.
    """
    rounds = []
    current = []
    last_seen = {"n": 0}

    # peel_exact has no round callback; exploit that links of one round
    # arrive consecutively by instrumenting through bucket rounds: we
    # re-run peeling manually here with the same engine semantics.
    from repro.ds.bucketing import BucketQueue
    n_r = incidence.n_r
    queue = BucketQueue(incidence.initial_degrees())
    core = [0.0] * n_r
    alive = [True] * n_r
    k_cur = 0
    while not queue.empty:
        value, batch = queue.next_bucket()
        k_cur = max(k_cur, value)
        for rid in batch:
            core[rid] = float(k_cur)
        round_links = []
        for rid in batch:
            for members in incidence.s_cliques_containing(rid):
                others = [x for x in members if x != rid]
                if all(alive[o] for o in others):
                    for other in others:
                        if queue.alive(other):
                            queue.decrement(other)
                else:
                    for other in others:
                        if not alive[other]:
                            round_links.append((other, rid))
            alive[rid] = False
        if round_links:
            rounds.append(round_links)
    return core, rounds


def replay(core, rounds, seed, impl_cls=LinkEfficient):
    impl = impl_cls(list(core), seed=seed % 7)
    rng = random.Random(seed)
    for round_links in rounds:
        shuffled = list(round_links)
        rng.shuffle(shuffled)
        for early, late in shuffled:
            impl.link(early, late)
    return impl.construct_tree().partition_chain()


@pytest.fixture(scope="module")
def workload():
    g = planted_nuclei([6, 5, 4], backbone_p=0.06, bridge=True, seed=9)
    prep = prepare(g, 2, 3)
    core, rounds = collect_round_links(prep.incidence)
    # sanity: the collected core values match the engine
    assert core == peel_exact(prep.incidence).core
    reference = replay(core, rounds, seed=0)
    return core, rounds, reference


class TestLinkEfficientOrderIndependence:
    @pytest.mark.parametrize("seed", range(12))
    def test_shuffled_rounds_same_tree(self, workload, seed):
        core, rounds, reference = workload
        assert replay(core, rounds, seed=seed) == reference

    def test_reversed_rounds_within(self, workload):
        core, rounds, reference = workload
        impl = LinkEfficient(list(core))
        for round_links in rounds:
            for early, late in reversed(round_links):
                impl.link(early, late)
        assert impl.construct_tree().partition_chain() == reference

    def test_duplicated_links_are_idempotent(self, workload):
        core, rounds, reference = workload
        impl = LinkEfficient(list(core))
        for round_links in rounds:
            for early, late in round_links:
                impl.link(early, late)
                impl.link(early, late)  # every link delivered twice
        assert impl.construct_tree().partition_chain() == reference


class TestLinkBasicOrderIndependence:
    def test_shuffles_agree_with_link_efficient(self, workload):
        core, rounds, reference = workload
        for seed in (1, 5):
            chain = replay(core, rounds, seed=seed, impl_cls=LinkBasic)
            assert chain == reference


@settings(deadline=None, max_examples=10)
@given(pairs=st.sets(st.tuples(st.integers(0, 11), st.integers(0, 11)),
                     max_size=40),
       seed=st.integers(0, 1000),
       rs=st.sampled_from([(1, 2), (2, 3), (2, 4)]))
def test_random_graph_order_independence(pairs, seed, rs):
    r, s = rs
    g = Graph(12, [(u, v) for u, v in pairs if u != v])
    prep = prepare(g, r, s)
    if prep.n_r == 0:
        return
    core, rounds = collect_round_links(prep.incidence)
    assert replay(core, rounds, 0) == replay(core, rounds, seed)
