"""Unit + property tests for the heap-based bucketing (footnote 2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.nucleus import peel_exact, prepare
from repro.ds.bucketing import BucketQueue
from repro.ds.heap_bucketing import HeapBucketQueue
from repro.errors import DataStructureError, ParameterError
from repro.graphs.generators import erdos_renyi


class TestBasics:
    def test_extracts_minimum_batch(self):
        q = HeapBucketQueue([3, 1, 2, 1])
        value, ids = q.next_bucket()
        assert value == 1
        assert sorted(ids) == [1, 3]

    def test_decrement_and_extract(self):
        q = HeapBucketQueue([5, 3])
        q.decrement(0, 4)
        value, ids = q.next_bucket()
        assert (value, ids) == (1, [0])

    def test_value_increase_rejected(self):
        q = HeapBucketQueue([2])
        with pytest.raises(DataStructureError):
            q.update(0, 5)

    def test_update_dead_rejected(self):
        q = HeapBucketQueue([1, 2])
        q.next_bucket()
        with pytest.raises(DataStructureError):
            q.decrement(0)

    def test_negative_rejected(self):
        with pytest.raises(DataStructureError):
            HeapBucketQueue([-1])

    def test_empty_extraction_raises(self):
        q = HeapBucketQueue([])
        with pytest.raises(DataStructureError):
            q.next_bucket()

    def test_peek_min(self):
        q = HeapBucketQueue([4, 2])
        assert q.peek_min() == 2
        list(q.drain())
        assert q.peek_min() is None

    def test_memory_is_three_arrays(self):
        assert HeapBucketQueue([1] * 100).memory_units() == 300
        # unlike the Julienne structure, huge values cost nothing extra
        assert HeapBucketQueue([10 ** 6]).memory_units() == 3


@given(st.lists(st.integers(0, 25), min_size=1, max_size=40),
       st.lists(st.tuples(st.integers(0, 39), st.integers(1, 4)),
                max_size=40))
def test_differential_against_julienne(values, decrements):
    """Both structures drain identically under interleaved decrements."""
    julienne = BucketQueue(values)
    heap = HeapBucketQueue(values)
    decrements = list(decrements)
    while not julienne.empty:
        vj, idsj = julienne.next_bucket()
        vh, idsh = heap.next_bucket()
        assert vj == vh
        assert sorted(idsj) == sorted(idsh)
        while decrements:
            ident, amount = decrements.pop()
            ident %= len(values)
            if julienne.alive(ident):
                julienne.decrement(ident, amount)
                heap.decrement(ident, amount)
                break
    assert heap.empty


class TestPeelingIntegration:
    def test_peel_results_identical(self):
        g = erdos_renyi(30, 0.3, seed=4)
        for r, s in [(1, 2), (2, 3), (2, 4)]:
            prep = prepare(g, r, s)
            a = peel_exact(prep.incidence, bucketing="julienne")
            b = peel_exact(prep.incidence, bucketing="heap")
            assert a.core == b.core
            assert a.rho == b.rho

    def test_unknown_bucketing_rejected(self):
        prep = prepare(erdos_renyi(10, 0.3, seed=1), 1, 2)
        with pytest.raises(ParameterError):
            peel_exact(prep.incidence, bucketing="fibonacci")
