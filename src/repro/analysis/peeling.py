"""Peeling-complexity analytics.

The paper's bounds are parameterized by the *(r, s) peeling complexity*
``rho_(r,s)(G)`` -- the number of rounds needed when every round removes
all minimum-degree r-cliques -- and by the maximum core number ``k``
(``k <= rho <= O(m alpha^(r-2))``). These helpers profile the peeling
process itself: rounds, batch sizes, and how the approximate algorithm
compresses the round structure. The scalability discussion in
EXPERIMENTS.md and the Figure 8 bench use them to explain where span goes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..ds.bucketing import BucketQueue
from ..errors import ParameterError


@dataclass(frozen=True)
class PeelingProfile:
    """Round-by-round trace of one peeling run."""

    rounds: int                      # rho
    k_max: float                     # maximum core value
    batch_sizes: Tuple[int, ...]     # r-cliques peeled per round
    round_values: Tuple[float, ...]  # bucket value per round

    @property
    def n_peeled(self) -> int:
        return sum(self.batch_sizes)

    @property
    def mean_batch(self) -> float:
        return self.n_peeled / self.rounds if self.rounds else 0.0

    @property
    def max_batch(self) -> int:
        return max(self.batch_sizes, default=0)

    @property
    def sequentiality(self) -> float:
        """rho / n_r: 1.0 = fully sequential peeling, ~0 = one round.

        The paper's span bound scales with rho; this ratio is the
        intuition for why the approximate algorithm helps.
        """
        return self.rounds / self.n_peeled if self.n_peeled else 0.0


def profile_exact_peeling(incidence) -> PeelingProfile:
    """Trace the exact peeling rounds of an incidence (no hierarchy)."""
    queue = BucketQueue(incidence.initial_degrees())
    alive = [True] * incidence.n_r
    batches: List[int] = []
    values: List[float] = []
    k_cur = 0
    while not queue.empty:
        value, batch = queue.next_bucket()
        k_cur = max(k_cur, value)
        batches.append(len(batch))
        values.append(float(k_cur))
        for rid in batch:
            for members in incidence.s_cliques_containing(rid):
                others = [x for x in members if x != rid]
                if all(alive[o] for o in others):
                    for other in others:
                        if queue.alive(other):
                            queue.decrement(other)
            alive[rid] = False
    return PeelingProfile(rounds=len(batches), k_max=float(k_cur),
                          batch_sizes=tuple(batches),
                          round_values=tuple(values))


def profile_approx_peeling(incidence, delta: float,
                           round_cap: Optional[int] = None) -> PeelingProfile:
    """Trace the approximate peeling rounds (Algorithm 2)."""
    from ..ds.approx_bucketing import GeometricBucketQueue
    if delta <= 0:
        raise ParameterError(f"delta must be > 0, got {delta}")
    queue = GeometricBucketQueue(incidence.initial_degrees(),
                                 incidence.s_choose_r, delta,
                                 round_cap=round_cap)
    alive = [True] * incidence.n_r
    batches: List[int] = []
    values: List[float] = []
    while not queue.empty:
        upper, batch = queue.next_round()
        batches.append(len(batch))
        values.append(upper)
        for rid in batch:
            for members in incidence.s_cliques_containing(rid):
                others = [x for x in members if x != rid]
                if all(alive[o] for o in others):
                    for other in others:
                        if queue.alive(other):
                            queue.decrement(other)
            alive[rid] = False
    return PeelingProfile(rounds=len(batches),
                          k_max=max(values, default=0.0),
                          batch_sizes=tuple(batches),
                          round_values=tuple(values))


def round_histogram(profile: PeelingProfile,
                    n_bins: int = 10) -> List[Tuple[str, int]]:
    """Histogram of batch sizes (for text reports)."""
    if not profile.batch_sizes:
        return []
    top = max(profile.batch_sizes)
    width = max(1, (top + n_bins - 1) // n_bins)
    bins = [0] * ((top // width) + 1)
    for size in profile.batch_sizes:
        bins[size // width] += 1
    return [(f"{i * width}-{(i + 1) * width - 1}", count)
            for i, count in enumerate(bins) if count]
