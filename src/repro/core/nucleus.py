"""Exact parallel nucleus decomposition -- ``ARB-NUCLEUS`` (Shi et al. [55]).

The peeling engine at the heart of both the coreness-only computation and
the interleaved hierarchy framework (Algorithm 3): repeatedly extract the
bucket of r-cliques with minimum current s-clique degree, assign them the
running maximum ``k_cur`` as their core number, and decrement the degrees
of r-cliques sharing a still-present s-clique.

Peeling semantics (DESIGN.md Section 5): an s-clique is *present* iff none
of its member r-cliques has been peeled. The batch of a round is processed
in deterministic id order, marking each r-clique dead as it is processed;
an s-clique is therefore decremented exactly once -- when its first member
dies -- and every s-clique-adjacent pair ``(R', R)`` is reported to the
``link`` callback exactly when the *later* clique ``R`` is peeled, at which
point both core numbers are final. That single guarantee is what makes the
interleaved hierarchy construction of Section 7 sound.

The parallel round structure is metered: each round costs ``O(log n)`` span
(bucket extraction + hash-table updates), so the final span charge is
``O(rho * log n)`` with ``rho`` the peeling complexity -- the bound of the
paper's Theorem 5.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..ds.bucketing import BucketQueue
from ..errors import ParameterError
from ..parallel.backend import ExecutionBackend
from ..parallel.counters import (NullCounter, WorkSpanCounter,
                                 WorkSpanSnapshot, log2_ceil)
from ..graphs.graph import Graph
from ..cliques.incidence import build_incidence, validate_rs
from ..cliques.index import CliqueIndex

#: link callback signature: link(earlier_peeled_rid, later_peeled_rid)
LinkFn = Callable[[int, int], None]


@dataclass
class CorenessResult:
    """Output of a (possibly approximate) coreness computation.

    Attributes
    ----------
    core:
        Core number (or estimate) per r-clique id.
    rho:
        Number of peeling rounds (the paper's peeling complexity proxy).
    k_max:
        Maximum core value.
    n_r / n_s:
        Number of r-cliques and s-cliques.
    work_span:
        Metered work/span of the computation.
    stats:
        Free-form counters (bucket updates, link calls, ...).
    """

    core: List[float]
    rho: int
    k_max: float
    n_r: int
    n_s: int
    work_span: WorkSpanSnapshot
    stats: Dict[str, float] = field(default_factory=dict)


def _gather_chunk(incidence, rids: List[int]) -> List[List[Tuple[int, ...]]]:
    """Backend task: the s-clique member tuples of each r-clique in a chunk.

    The read-only half of a peeling round -- enumerating what each
    batch member touches -- extracted so it can run in worker processes
    against the broadcast incidence. The mutating half (liveness checks,
    decrements, link calls) stays in the parent, in batch order.
    """
    return [list(incidence.s_cliques_containing(rid)) for rid in rids]


#: Peeling kernel selectors accepted by :func:`peel_exact`.
KERNEL_NAMES = ("auto", "vectorized", "loop")

#: Unified kernel selectors accepted by the end-to-end entry points
#: (:func:`arb_nucleus`, ``core.api``, the CLI ``--kernel`` flag). The
#: flag drives three engines at once -- the enumeration kernel
#: (:mod:`repro.cliques.list_kernel`), the peeling kernel
#: (:mod:`repro.core.peel_csr`), and the hierarchy construction kernel
#: (:mod:`repro.core.hierarchy_kernel`); :func:`split_kernel` maps one
#: user choice to the (enumeration, peeling, tree) triple.
KERNEL_CHOICES = ("auto", "array", "vectorized", "loop")


def split_kernel(kernel: str) -> Tuple[str, str, str]:
    """Split a unified choice into ``(enum_kernel, peel_kernel, tree_kernel)``.

    ``"auto"`` lets every stage pick its array path (the tree stage goes
    array-native whenever the CSR incidence ran); ``"loop"`` forces the
    scalar oracle everywhere. The stage-specific names pin their stages
    and leave the rest on ``"auto"``: ``"array"`` forces the flat-array
    engines (enumeration + hierarchy construction; the latter requires a
    CSR incidence), ``"vectorized"`` forces the array peeling kernel
    (which requires a CSR incidence, as before). Every combination
    produces identical cliques, coreness, hierarchies, and meters.
    """
    if kernel not in KERNEL_CHOICES:
        raise ParameterError(
            f"unknown kernel {kernel!r}; expected one of {KERNEL_CHOICES}")
    if kernel == "array":
        return "array", "auto", "array"
    if kernel == "vectorized":
        return "auto", "vectorized", "auto"
    return kernel, kernel, kernel


def peel_exact(incidence, counter: Optional[WorkSpanCounter] = None,
               link: Optional[LinkFn] = None,
               core_out: Optional[List[float]] = None,
               bucketing: str = "julienne",
               backend: Optional[ExecutionBackend] = None,
               chunk_size: Optional[int] = None,
               kernel: str = "auto") -> CorenessResult:
    """Run the exact peeling process over a prebuilt incidence.

    ``link(R', R)`` is invoked for every s-clique-adjacent pair at the
    moment the later clique ``R`` is peeled (``core[R'] <= core[R]``
    guaranteed); pass ``None`` for a coreness-only run.

    ``core_out``, when given, is filled in place (length ``n_r``) so a LINK
    implementation holding the same list observes final core numbers as
    they are assigned -- the interleaving of Algorithm 3.

    ``bucketing`` selects the priority structure: ``"julienne"`` (the
    default array-of-buckets structure [16]) or ``"heap"`` (the
    space-restricted addressable heap of the paper's Section 6 footnote;
    space ``3 * n_r`` regardless of degree range).

    ``backend`` (see :mod:`repro.parallel.backend`) parallelizes the
    read-only half of each round -- gathering the s-cliques containing
    every batch member -- across worker processes; the mutating updates
    are then applied in the parent in the same deterministic id order as
    the serial path, so the results are identical for every backend.

    ``kernel`` selects the peeling engine: ``"auto"`` (the default) uses
    the vectorized array kernel (:mod:`repro.core.peel_csr`) whenever the
    incidence is a :class:`~repro.cliques.csr.CSRIncidence` and julienne
    bucketing is in effect, and the scalar loop otherwise;
    ``"vectorized"`` requires the array path; ``"loop"`` forces the
    scalar engine even on a CSR incidence. All combinations produce
    identical coreness, ``rho``, meters, and hierarchy partitions.
    """
    counter = counter if counter is not None else NullCounter()
    if kernel not in KERNEL_NAMES:
        raise ParameterError(
            f"unknown kernel {kernel!r}; expected one of {KERNEL_NAMES}")
    is_csr = getattr(incidence, "strategy", None) == "csr" and \
        hasattr(incidence, "member_array")
    if kernel == "vectorized" and not is_csr:
        raise ParameterError(
            "kernel='vectorized' requires a CSR incidence "
            "(build_incidence(strategy='csr'))")
    if kernel == "vectorized" and bucketing != "julienne":
        raise ParameterError(
            "kernel='vectorized' requires julienne bucketing")
    if is_csr and bucketing == "julienne" and kernel != "loop":
        from .peel_csr import peel_exact_csr
        return peel_exact_csr(incidence, counter=counter, link=link,
                              core_out=core_out)
    n_r = incidence.n_r
    degrees = incidence.initial_degrees()
    if bucketing == "julienne":
        queue = BucketQueue(degrees)
    elif bucketing == "heap":
        from ..ds.heap_bucketing import HeapBucketQueue
        queue = HeapBucketQueue(degrees)
    else:
        raise ParameterError(
            f"unknown bucketing {bucketing!r}; "
            f"expected 'julienne' or 'heap'")
    if core_out is None:
        core: List[float] = [0.0] * n_r
    else:
        if len(core_out) != n_r:
            raise ParameterError(
                f"core_out has length {len(core_out)}, expected {n_r}")
        core = core_out
        for i in range(n_r):
            core[i] = 0.0
    alive = [True] * n_r
    k_cur = 0
    link_calls = 0
    n_log = log2_ceil(max(n_r, 1))
    use_pool = backend is not None and backend.is_parallel()
    gather_token = backend.broadcast(incidence) if use_pool else None
    while not queue.empty:
        value, batch = queue.next_bucket()
        k_cur = max(k_cur, value)
        round_work = len(batch)
        for rid in batch:
            core[rid] = float(k_cur)
        if use_pool and len(batch) > 1:
            gathered = backend.map_chunks(_gather_chunk, batch,
                                          token=gather_token,
                                          chunk_size=chunk_size)
            memberships = [m for chunk in gathered for m in chunk]
        else:
            memberships = None
        for position, rid in enumerate(batch):
            membership = (memberships[position] if memberships is not None
                          else incidence.s_cliques_containing(rid))
            for members in membership:
                round_work += len(members)
                others = [x for x in members if x != rid]
                if all(alive[o] for o in others):
                    # The s-clique is still present: it dies with rid, and
                    # every other live member loses one s-clique.
                    for other in others:
                        if queue.alive(other):
                            queue.decrement(other)
                else:
                    # The s-clique died earlier; the dead members are the
                    # already-peeled neighbors to connect in the hierarchy.
                    if link is not None:
                        for other in others:
                            if not alive[other]:
                                link(other, rid)
                                link_calls += 1
            alive[rid] = False
        # One peeling round: the work above, O(log n) span for the bucket
        # extraction and parallel hash-table updates.
        counter.add_parallel(round_work, 1 + n_log)
    return CorenessResult(
        core=core,
        rho=queue.rounds,
        k_max=max(core, default=0.0),
        n_r=n_r,
        n_s=incidence.n_s,
        work_span=counter.snapshot(),
        stats={
            "bucket_updates": float(queue.updates),
            "link_calls": float(link_calls),
        },
    )


@dataclass
class NucleusInput:
    """A graph prepared for (r, s) decomposition: orientation + incidence."""

    graph: Graph
    r: int
    s: int
    orientation: object
    index: CliqueIndex
    incidence: object

    @property
    def n_r(self) -> int:
        return self.incidence.n_r

    @property
    def n_s(self) -> int:
        return self.incidence.n_s


def prepare(graph: Graph, r: int, s: int, strategy: str = "materialized",
            counter: Optional[WorkSpanCounter] = None,
            backend: Optional[ExecutionBackend] = None,
            chunk_size: Optional[int] = None,
            kernel: str = "auto") -> NucleusInput:
    """Orient, index r-cliques, and build the s-clique incidence.

    The shared preamble (Algorithm 2/3, lines 3-5): ``ARB-ORIENT`` followed
    by ``REC-LIST-CLIQUES``-based counting. A parallel ``backend``
    dispatches the clique listing and incidence construction through
    worker processes (results are backend-independent). ``kernel`` is the
    *enumeration* kernel name passed to
    :func:`~repro.cliques.incidence.build_incidence` (callers holding a
    unified choice should pass ``split_kernel(kernel)[0]``).
    """
    validate_rs(r, s)
    orientation, index, incidence = build_incidence(
        graph, r, s, strategy=strategy, counter=counter, backend=backend,
        chunk_size=chunk_size, kernel=kernel)
    return NucleusInput(graph=graph, r=r, s=s, orientation=orientation,
                        index=index, incidence=incidence)


def arb_nucleus(graph: Graph, r: int, s: int,
                strategy: str = "materialized",
                counter: Optional[WorkSpanCounter] = None,
                prepared: Optional[NucleusInput] = None,
                bucketing: str = "julienne",
                backend: Optional[ExecutionBackend] = None,
                chunk_size: Optional[int] = None,
                kernel: str = "auto") -> CorenessResult:
    """Exact (r, s)-clique core numbers of every r-clique (``ARB-NUCLEUS``).

    Returns a :class:`CorenessResult`; r-clique ids follow the
    :class:`~repro.cliques.index.CliqueIndex` order (pass ``prepared`` to
    reuse an existing preparation and its index). ``bucketing`` selects
    the priority structure (see :func:`peel_exact`); ``kernel`` is the
    unified choice (:data:`KERNEL_CHOICES`) split across the enumeration
    and peeling stages.
    """
    counter = counter if counter is not None else WorkSpanCounter()
    enum_kernel, peel_kernel, _ = split_kernel(kernel)
    if prepared is None:
        prepared = prepare(graph, r, s, strategy=strategy, counter=counter,
                           backend=backend, chunk_size=chunk_size,
                           kernel=enum_kernel)
    return peel_exact(prepared.incidence, counter=counter, link=None,
                      bucketing=bucketing, backend=backend,
                      chunk_size=chunk_size, kernel=peel_kernel)
