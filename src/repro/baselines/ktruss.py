"""Classic sequential k-truss decomposition (Cohen [12]).

The (2, 3) nucleus decomposition's textbook algorithm: the *truss core*
(support-based core number) of an edge is the largest ``c`` such that the
edge belongs to a subgraph where every edge is in at least ``c`` triangles.
Used as an independent oracle: ``arb_nucleus(G, 2, 3)`` must produce these
numbers per edge (tested).

Convention note: some texts call this value ``k - 2`` of the "k-truss"; we
report the raw triangle-support core, matching the (2, 3) nucleus values.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..graphs.graph import Graph

Edge = Tuple[int, int]


def truss_core_numbers(graph: Graph) -> Dict[Edge, int]:
    """Triangle-support core number per edge ``(u, v)`` with ``u < v``."""
    edges = list(graph.edges())
    index = {e: i for i, e in enumerate(edges)}
    m = len(edges)

    def edge_id(a: int, b: int) -> int:
        return index[(a, b) if a < b else (b, a)]

    support = [0] * m
    triangles: List[List[int]] = [[] for _ in range(m)]  # edge -> co-edges
    for i, (u, v) in enumerate(edges):
        for w in graph.neighbor_set(u) & graph.neighbor_set(v):
            triangles[i].append(edge_id(u, w))
            triangles[i].append(edge_id(v, w))
    for i in range(m):
        support[i] = len(triangles[i]) // 2

    # Peel minimum-support edges; a triangle dies with its first dead edge.
    removed = [False] * m
    core = [0] * m
    max_sup = max(support, default=0)
    buckets: List[List[int]] = [[] for _ in range(max_sup + 1)]
    for i in range(m):
        buckets[support[i]].append(i)
    k = 0
    processed = 0
    cursor = 0
    while processed < m:
        while cursor > 0 and buckets[cursor - 1]:
            cursor -= 1
        while cursor <= max_sup and not buckets[cursor]:
            cursor += 1
        e = buckets[cursor].pop()
        if removed[e] or support[e] != cursor:
            continue
        removed[e] = True
        processed += 1
        k = max(k, support[e])
        core[e] = k
        pairs = triangles[e]
        for j in range(0, len(pairs), 2):
            e1, e2 = pairs[j], pairs[j + 1]
            if not removed[e1] and not removed[e2]:
                for other in (e1, e2):
                    support[other] -= 1
                    buckets[support[other]].append(other)
    return {edges[i]: core[i] for i in range(m)}


def max_truss(graph: Graph) -> int:
    """Maximum triangle-support core over all edges."""
    cores = truss_core_numbers(graph)
    return max(cores.values(), default=0)
