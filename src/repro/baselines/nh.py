"""``NH``: Sariyüce-Pinar sequential hierarchy construction [49].

The state-of-the-art *sequential* comparator of the paper's Figure 9. NH
interleaves hierarchy bookkeeping with a sequential peeling pass:

* a union-find over r-cliques records connectivity among cliques with
  **equal** core numbers, updated as pairs are discovered during peeling;
* every discovered adjacent pair with **different** core numbers is
  appended to a list (this is the ``comb(s,r)*n_s + n_r`` space overhead
  the paper contrasts with ANH-EL's ``2*n_r``);
* post-processing sorts the pair list by the pair's minimum core number
  (descending) and merges sub-nuclei level by level -- an inherently
  sequential sweep, which is the parallelization obstacle the paper's
  Section 7.3 discussion highlights.

This reimplementation follows that structure exactly (sequential peeling,
classic rank/compression union-find with its inverse-Ackermann factor,
materialized pair list, sort-based post-processing).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..core.nucleus import CorenessResult, NucleusInput, prepare
from ..core.tree import HierarchyTree, HierarchyTreeBuilder
from ..ds.bucketing import BucketQueue
from ..ds.union_find import SequentialUnionFind
from ..graphs.graph import Graph
from ..parallel.counters import NullCounter


class NHResult:
    """Coreness + hierarchy + statistics from a sequential NH run."""

    def __init__(self, coreness: CorenessResult, tree: HierarchyTree,
                 stats: Dict[str, float]) -> None:
        self.coreness = coreness
        self.tree = tree
        self.stats = stats


def nh(graph: Graph, r: int, s: int,
       strategy: str = "materialized",
       prepared: Optional[NucleusInput] = None) -> NHResult:
    """Run the sequential NH hierarchy algorithm.

    The paper's NH code is specialized to (1,2), (2,3), and (3,4); this
    reimplementation accepts any ``r < s`` (the restriction was an artifact
    of their implementation, not the algorithm).
    """
    if prepared is None:
        prepared = prepare(graph, r, s, strategy=strategy)
    incidence = prepared.incidence
    n_r = incidence.n_r
    t0 = time.perf_counter()

    # ---- sequential peeling with interleaved bookkeeping ----------------
    queue = BucketQueue(incidence.initial_degrees())
    core: List[float] = [0.0] * n_r
    alive = [True] * n_r
    same_core_uf = SequentialUnionFind(n_r)
    cross_pairs: List[Tuple[int, int]] = []
    k_cur = 0
    while not queue.empty:
        value, batch = queue.next_bucket()
        k_cur = max(k_cur, value)
        for rid in batch:
            core[rid] = float(k_cur)
        for rid in batch:
            for members in incidence.s_cliques_containing(rid):
                others = [x for x in members if x != rid]
                if all(alive[o] for o in others):
                    for other in others:
                        if queue.alive(other):
                            queue.decrement(other)
                else:
                    for other in others:
                        if alive[other]:
                            continue
                        if core[other] == core[rid]:
                            same_core_uf.unite(other, rid)
                        else:
                            # NH stores *all* cross-core adjacent pairs.
                            cross_pairs.append((other, rid))
            alive[rid] = False
    t1 = time.perf_counter()

    # ---- post-processing: sort pairs, merge level by level --------------
    # Pairs are grouped by their minimum core number, descending; at each
    # level the same-core components of that level enter as units and the
    # pairs stitch sub-nuclei together.
    cross_pairs.sort(key=lambda ab: min(core[ab[0]], core[ab[1]]),
                     reverse=True)
    by_level: Dict[float, List[Tuple[int, int]]] = {}
    for a, b in cross_pairs:
        lvl = min(core[a], core[b])
        if lvl > 0:
            by_level.setdefault(lvl, []).append((a, b))
    same_core_groups: Dict[float, List[List[int]]] = {}
    grouped: Dict[int, List[int]] = {}
    for rid in range(n_r):
        if core[rid] > 0:
            grouped.setdefault(same_core_uf.find(rid), []).append(rid)
    for members in grouped.values():
        same_core_groups.setdefault(core[members[0]], []).append(members)

    builder = HierarchyTreeBuilder(core)
    merge_uf = SequentialUnionFind(n_r)
    levels = sorted(set(by_level) | set(same_core_groups), reverse=True)
    for lvl in levels:
        touched: List[int] = []
        for members in same_core_groups.get(lvl, ()):
            for a, b in zip(members, members[1:]):
                merge_uf.unite(a, b)
            touched.extend(members)
        for a, b in by_level.get(lvl, ()):
            merge_uf.unite(a, b)
            touched.append(a)
            touched.append(b)
        groups: Dict[int, List[int]] = {}
        for rid in set(touched):
            groups.setdefault(merge_uf.find(rid), []).append(rid)
        for members in groups.values():
            builder.merge(members, lvl)
    tree = builder.build()
    t2 = time.perf_counter()

    coreness = CorenessResult(
        core=core, rho=queue.rounds, k_max=max(core, default=0.0),
        n_r=n_r, n_s=incidence.n_s,
        work_span=NullCounter().snapshot(),
        stats={"bucket_updates": float(queue.updates)},
    )
    stats = {
        "cross_pairs_stored": float(len(cross_pairs)),
        "memory_units": float(len(cross_pairs) * 2 + n_r),
        "unite_calls": float(same_core_uf.stats.unites
                             + merge_uf.stats.unites),
        "seconds_coreness": t1 - t0,
        "seconds_tree": t2 - t1,
    }
    return NHResult(coreness, tree, stats)
