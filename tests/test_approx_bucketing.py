"""Unit + property tests for the geometric range bucketing (Algorithm 2)."""

import pytest
from hypothesis import given, strategies as st

from repro.ds.approx_bucketing import (GeometricBucketQueue, bucket_of_degree,
                                       bucket_upper_bound, default_round_cap)
from repro.errors import DataStructureError, ParameterError


class TestBucketMath:
    def test_bucket_zero_covers_small_degrees(self):
        base, growth = 3.5, 1.5
        assert bucket_of_degree(0, base, growth) == 0
        assert bucket_of_degree(3, base, growth) == 0

    @given(st.floats(0, 10 ** 6, allow_nan=False),
           st.floats(1.01, 20), st.floats(1.001, 3))
    def test_degree_within_bucket_range(self, degree, base, growth):
        i = bucket_of_degree(degree, base, growth)
        assert degree < bucket_upper_bound(i, base, growth)
        if i > 0:
            assert degree >= bucket_upper_bound(i - 1, base, growth)

    def test_upper_bounds_grow_geometrically(self):
        base, growth = 3.1, 1.1
        uppers = [bucket_upper_bound(i, base, growth) for i in range(10)]
        for a, b in zip(uppers, uppers[1:]):
            assert b == pytest.approx(a * growth)

    def test_default_round_cap_grows_with_n(self):
        assert default_round_cap(1, 3, 0.5) == 1
        small = default_round_cap(100, 3, 0.5)
        large = default_round_cap(10 ** 6, 3, 0.5)
        assert large > small

    def test_default_round_cap_shrinks_with_delta(self):
        loose = default_round_cap(1000, 3, 1.0)
        tight = default_round_cap(1000, 3, 0.1)
        assert tight > loose


class TestQueueBasics:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            GeometricBucketQueue([1], 3, 0.0)
        with pytest.raises(ParameterError):
            GeometricBucketQueue([1], 0, 0.5)
        with pytest.raises(ParameterError):
            GeometricBucketQueue([1], 3, 0.5, round_cap=0)
        with pytest.raises(DataStructureError):
            GeometricBucketQueue([-1], 3, 0.5)

    def test_round_peels_current_bucket(self):
        q = GeometricBucketQueue([1, 2, 100], s_choose_r=3, delta=0.5)
        upper, ids = q.next_round()
        assert sorted(ids) == [0, 1]  # both in bucket 0
        assert upper == q._base * q._growth  # bucket 0 upper bound

    def test_estimate_upper_bound_is_bucket_boundary(self):
        q = GeometricBucketQueue([50], s_choose_r=3, delta=0.5)
        upper, ids = q.next_round()
        assert upper > 50  # the bucket's upper boundary exceeds the degree
        assert ids == [0]

    def test_empty_extraction_raises(self):
        q = GeometricBucketQueue([], 3, 0.5)
        with pytest.raises(DataStructureError):
            q.next_round()

    def test_decrement_dead_rejected(self):
        q = GeometricBucketQueue([1], 3, 0.5)
        q.next_round()
        with pytest.raises(DataStructureError):
            q.decrement(0)


class TestAggregationRule:
    def test_degree_falling_below_range_joins_current_bucket(self):
        # id 1 starts high; after decrement its geometric bucket would be
        # below the current one -- it must be peeled with the current
        # bucket, not a lower one.
        q = GeometricBucketQueue([1, 40], s_choose_r=3, delta=0.5)
        q.next_round()  # peels id 0 from bucket 0
        # advance into id 1's bucket by decrementing below bucket 0's range
        q.decrement(1, 39)  # degree 1 -> would be bucket 0, now aggregated
        upper, ids = q.next_round()
        assert ids == [1]
        assert q.current_bucket >= 0

    def test_round_cap_promotes_survivors(self):
        # cap of 1 round per bucket: feeding the current bucket repeatedly
        # forces promotions.
        q = GeometricBucketQueue([1, 1, 50, 50], s_choose_r=3, delta=0.5,
                                 round_cap=1)
        upper0, ids0 = q.next_round()
        assert sorted(ids0) == [0, 1]
        # drop both high ids into bucket 0's range; only one round is
        # allowed there, so after peeling them... they arrive together.
        q.decrement(2, 49)
        q.decrement(3, 49)
        upper1, ids1 = q.next_round()
        assert sorted(ids1) == [2, 3]

    def test_promotion_counted(self):
        q = GeometricBucketQueue([1, 1], 3, 0.5, round_cap=1)
        # Peel id 0's bucket; then make id 1 re-enter bucket 0 via a stale
        # path: simplest is two ids in the same bucket with cap 1 --
        # both are peeled in one round, so force a second round by
        # decrementing after the first round is exhausted.
        q.next_round()
        assert q.empty
        # Direct scenario: three ids, cap 1, all in bucket 0.
        q2 = GeometricBucketQueue([0, 1, 2], 3, 0.5, round_cap=1)
        upper, ids = q2.next_round()
        assert len(ids) == 3  # single round suffices; no promotion
        assert q2.bucket_promotions == 0


@given(st.lists(st.integers(0, 60), min_size=1, max_size=40),
       st.floats(0.1, 1.5), st.integers(1, 6))
def test_every_id_peeled_exactly_once(degrees, delta, c):
    q = GeometricBucketQueue(degrees, s_choose_r=c, delta=delta)
    seen = []
    while not q.empty:
        upper, ids = q.next_round()
        # every peeled id's current degree is below the bucket's upper bound
        for i in ids:
            assert q.degree(i) < upper or q.degree(i) == pytest.approx(upper)
        seen.extend(ids)
    assert sorted(seen) == list(range(len(degrees)))


@given(st.lists(st.integers(0, 60), min_size=1, max_size=40))
def test_upper_bounds_nondecreasing_across_rounds(degrees):
    q = GeometricBucketQueue(degrees, s_choose_r=3, delta=0.5)
    uppers = []
    while not q.empty:
        uppers.append(q.next_round()[0])
    assert uppers == sorted(uppers)
