"""Figure 7: best hierarchy construction time per (r, s), r < s <= 7.

For every stand-in graph and every (r, s) with ``r < s <= 7``, runs the
method the paper's selection rule picks (the fastest of ANH-TE/ANH-EL in
practice -- Section 8.1) and reports each configuration's slowdown over
the per-graph fastest, exactly like Figure 7's bars. Configurations whose
estimated work exceeds the budget are reported as OOM/timeout, mirroring
the paper's omitted bars (its friendster and large-(r,s) cases).

``--json`` additionally writes ``BENCH_fig7.json`` at the repo root: the
grid rows plus a dict-vs-CSR peeling comparison (the flat-array layout +
vectorized kernel against the Python dict/list path, same coreness
asserted) in the uniform :func:`bench_common.bench_row` schema.
"""

from __future__ import annotations

import argparse
from typing import Dict

from repro import nucleus_decomposition
from repro.analysis.reporting import banner, format_table
from repro.core.api import choose_method
from repro.core.nucleus import peel_exact, prepare
from repro.parallel.counters import WorkSpanCounter

from bench_common import (SKIPPED, bench_graph, bench_row, emit_json,
                          guarded, kernel_graph, rs_grid, timed,
                          within_budget)

GRAPHS = ("amazon", "dblp", "youtube", "skitter", "livejournal", "orkut",
          "friendster")

#: (graph, r, s) configurations for the dict-vs-CSR peel comparison --
#: the Figure 7 graphs with clique-rich structure at stand-in scale.
PEEL_COMPARISON = (("amazon", 2, 3), ("dblp", 2, 3), ("dblp", 2, 4),
                   ("youtube", 2, 3), ("orkut", 3, 4))


def run_grid(graph_names=GRAPHS, max_s: int = 7):
    rows = []
    for name in graph_names:
        graph = bench_graph(name)
        for r, s in rs_grid(max_s):
            run = guarded(graph, r, s,
                          lambda: nucleus_decomposition(graph, r, s))
            rows.append((name, r, s, run.seconds))
    return rows


def build_report(rows=None) -> str:
    if rows is None:
        rows = run_grid()
    by_graph: Dict[str, float] = {}
    for name, r, s, seconds in rows:
        if seconds != SKIPPED:
            by_graph[name] = min(by_graph.get(name, float("inf")), seconds)
    out_rows = []
    for name, r, s, seconds in rows:
        if seconds == SKIPPED:
            out_rows.append((name, f"({r},{s})", "OOM/timeout", "",
                             choose_method(r, s)))
        else:
            fastest = by_graph[name]
            out_rows.append((name, f"({r},{s})", f"{seconds:.4f}s",
                             f"{seconds / fastest:.2f}x",
                             choose_method(r, s)))
    table = format_table(
        ("graph", "(r,s)", "time", "slowdown vs graph-best", "method"),
        out_rows,
        title="Figure 7: hierarchy time per (r,s) configuration, r < s <= 7")
    fastest_lines = "\n".join(
        f"  {name}: fastest {seconds:.4f}s"
        for name, seconds in sorted(by_graph.items()))
    return banner("Figure 7") + "\n" + table + "\n" + fastest_lines


def run_peel_comparison(configs=PEEL_COMPARISON, repeats: int = 3):
    """Dict/list peeling vs CSR + vectorized kernel, same coreness.

    Returns uniform json rows: one per (config, strategy) with the best
    of ``repeats`` peel wall-clocks, metered work, and rho, plus the
    measured speedup on the CSR rows.
    """
    rows = []
    for name, r, s in configs:
        graph = bench_graph(name)
        if not within_budget(graph, r, s):
            rows.append(bench_row(name, r, s, None, stage="peel"))
            continue
        timings = {}
        results = {}
        for strategy in ("materialized", "csr"):
            prepared = prepare(graph, r, s, strategy=strategy)
            best = None
            for _ in range(repeats):
                counter = WorkSpanCounter()
                run = timed(lambda: peel_exact(prepared.incidence,
                                               counter=counter))
                if best is None or run.seconds < best.seconds:
                    best = run
            timings[strategy] = best
            results[strategy] = best.payload
        assert results["csr"].core == results["materialized"].core, \
            (name, r, s)
        assert results["csr"].rho == results["materialized"].rho
        dict_seconds = timings["materialized"].seconds
        for strategy in ("materialized", "csr"):
            result = results[strategy]
            rows.append(bench_row(
                name, r, s, timings[strategy].seconds,
                stage="peel", strategy=strategy,
                kernel="vectorized" if strategy == "csr" else "loop",
                backend="serial", workers=1,
                work=result.work_span.work, rho=result.rho,
                speedup=round(dict_seconds / timings[strategy].seconds, 2)))
    return rows


def grid_json_rows(rows):
    """The Figure 7 grid in the uniform json row schema."""
    return [bench_row(name, r, s, seconds, stage="total",
                      strategy="materialized", backend="serial", workers=1,
                      method=choose_method(r, s))
            for name, r, s, seconds in rows]


def test_fig7_report():
    rows = run_grid(graph_names=("amazon", "dblp"), max_s=5)
    print(build_report(rows))
    finished = [row for row in rows if row[3] != SKIPPED]
    assert finished, "budget guard skipped everything"
    # Larger (r, s) generally cost more -- check the trend on dblp where
    # the clique counts grow with s (amazon's shrink, like the paper notes).
    dblp = {(r, s): t for name, r, s, t in finished if name == "dblp"}
    if (2, 3) in dblp and (2, 4) in dblp:
        assert dblp[(2, 4)] > dblp[(2, 3)] * 0.3  # same order or larger


def test_benchmark_auto_method_kernel(benchmark):
    graph = kernel_graph("dblp")
    benchmark(lambda: nucleus_decomposition(graph, 2, 4))


def test_peel_comparison_rows():
    rows = run_peel_comparison(configs=(("dblp", 2, 3),), repeats=1)
    finished = [row for row in rows if not row["skipped"]]
    assert finished, "budget guard skipped the comparison"
    by_strategy = {row["strategy"]: row for row in finished}
    assert by_strategy["csr"]["work"] == by_strategy["materialized"]["work"]
    assert by_strategy["csr"]["rho"] == by_strategy["materialized"]["rho"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", action="store_true",
                        help="also write BENCH_fig7.json at the repo root")
    args = parser.parse_args(argv)
    rows = run_grid()
    print(build_report(rows))
    if args.json:
        comparison = run_peel_comparison()
        path = emit_json("fig7", grid_json_rows(rows) + comparison)
        print(f"\nwrote {path}")
        finished = [row for row in comparison
                    if not row["skipped"] and row["strategy"] == "csr"]
        for row in finished:
            print(f"  peel {row['graph']} ({row['r']},{row['s']}): "
                  f"csr {row['seconds']:.4f}s, {row['speedup']}x vs dict")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
