"""Unit tests for the command-line interface (repro.cli)."""

import io
import json

import pytest

from repro.cli import build_parser, main
from repro.export import SCHEMA_VERSION
from repro.graphs.generators import planted_nuclei
from repro.graphs.io import write_edge_list


@pytest.fixture()
def graph_file(tmp_path):
    path = tmp_path / "graph.txt"
    write_edge_list(planted_nuclei([6, 5, 4], bridge=True), str(path))
    return str(path)


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestDecompose:
    def test_from_file(self, graph_file):
        code, text = run(["decompose", graph_file, "--r", "2", "--s", "3"])
        assert code == 0
        assert "max core 4" in text
        assert "hierarchy" in text

    def test_from_dataset(self):
        code, text = run(["decompose", "--dataset", "dblp",
                          "--scale", "0.08", "--r", "1", "--s", "2"])
        assert code == 0
        assert "(1,2) nucleus decomposition" in text

    def test_approx_flag(self, graph_file):
        code, text = run(["decompose", graph_file, "--approx",
                          "--delta", "0.5"])
        assert code == 0
        assert "approximate" in text

    def test_method_selection(self, graph_file):
        code, text = run(["decompose", graph_file, "--method", "anh-te"])
        assert code == 0
        assert "anh-te" in text

    def test_requires_exactly_one_input(self, graph_file):
        code, _ = run(["decompose"])
        assert code == 2
        code, _ = run(["decompose", graph_file, "--dataset", "dblp"])
        assert code == 2

    def test_missing_file(self):
        code, _ = run(["decompose", "/nonexistent/graph.txt"])
        assert code == 2


class TestNuclei:
    def test_cut_at_level(self, graph_file):
        code, text = run(["nuclei", graph_file, "--level", "4"])
        assert code == 0
        assert "nuclei at level 4" in text
        assert "[6 vertices]" in text  # the K6

    def test_densest_listing(self, graph_file):
        code, text = run(["nuclei", graph_file, "--top", "2"])
        assert code == 0
        assert "densest nuclei" in text
        assert "1.000" in text  # planted cliques have density 1


class TestExport:
    def test_json_to_stdout(self, graph_file):
        code, text = run(["export", graph_file, "--format", "json"])
        assert code == 0
        doc = json.loads(text)
        assert doc["schema_version"] == SCHEMA_VERSION

    def test_dot_to_file(self, graph_file, tmp_path):
        out_path = tmp_path / "tree.dot"
        code, text = run(["export", graph_file, "--format", "dot",
                          "-o", str(out_path)])
        assert code == 0
        assert "wrote dot" in text
        assert out_path.read_text().startswith("digraph")


class TestVerify:
    def test_verify_passes(self, graph_file):
        code, text = run(["verify", graph_file, "--r", "2", "--s", "3"])
        assert code == 0
        assert "PASSED" in text

    def test_verify_approx(self, graph_file):
        code, text = run(["verify", graph_file, "--approx", "--delta", "1"])
        assert code == 0
        assert "bound" in text


class TestDatasets:
    def test_listing(self):
        code, text = run(["datasets", "--scale", "0.05"])
        assert code == 0
        for name in ("amazon", "friendster"):
            assert name in text


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_module_entry_point(self, graph_file):
        import subprocess
        import sys
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "decompose", graph_file],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0
        assert "nucleus decomposition" in proc.stdout
