"""Related-work comparison: global peeling vs the local update model.

Sariyüce et al.'s local algorithm [51] (the other parallel approach the
paper's Related Work discusses) computes coreness without peeling:
every r-clique iterates an h-index update until convergence. This
harness compares the *round structure* of the three coreness engines --
the quantity that controls parallel span:

* exact peeling: ``rho`` rounds (the peeling complexity);
* approximate peeling (Algorithm 2): ``O(log^2 n)`` rounds, bounded
  error;
* local updates: data-dependent rounds to the *exact* fixpoint
  (typically far fewer than ``rho``, at the cost of touching every
  r-clique every round -- not work-efficient).

This contextualizes the paper's design choice: Algorithm 2 is the only
one with round count *and* work both bounded.
"""

from __future__ import annotations

from repro.analysis.reporting import banner, format_table
from repro.baselines.local import local_nucleus
from repro.core.approx import peel_approx
from repro.core.nucleus import peel_exact

from bench_common import (bench_graph, kernel_graph, prepare_cached, timed,
                          within_budget)

GRAPHS = ("dblp", "youtube", "orkut")
RS = ((2, 3), (3, 4), (1, 2))


def run_comparison(graph_names=GRAPHS, rs_values=RS):
    cache = {}
    rows = []
    for name in graph_names:
        graph = bench_graph(name)
        for r, s in rs_values:
            if not within_budget(graph, r, s):
                continue
            prepared = prepare_cached(cache, graph, r, s)
            exact = timed(lambda: peel_exact(prepared.incidence))
            approx = timed(lambda: peel_approx(prepared.incidence, 0.5))
            local = timed(lambda: local_nucleus(prepared.incidence))
            assert local.payload.core == exact.payload.core
            rows.append((name, r, s,
                         exact.payload.rho, exact.seconds,
                         approx.payload.rho, approx.seconds,
                         local.payload.rounds, local.seconds))
    return rows


def build_report(rows=None) -> str:
    if rows is None:
        rows = run_comparison()
    table_rows = [(name, f"({r},{s})", rho_e, f"{t_e:.4f}s",
                   rho_a, f"{t_a:.4f}s", rounds_l, f"{t_l:.4f}s")
                  for name, r, s, rho_e, t_e, rho_a, t_a, rounds_l, t_l
                  in rows]
    table = format_table(
        ("graph", "(r,s)", "peel rounds", "peel s", "approx rounds",
         "approx s", "local rounds", "local s"),
        table_rows,
        title="Round structure: exact peeling vs Algorithm 2 vs the local "
              "update model [51] (local converges to exact values)")
    return banner("Local convergence") + "\n" + table


def test_local_convergence_report():
    rows = run_comparison(graph_names=("dblp",), rs_values=((2, 3),))
    print(build_report(rows))
    for name, r, s, rho_e, _, rho_a, _, rounds_l, _ in rows:
        # both alternatives beat the peeling complexity on round count
        assert rho_a <= rho_e
        assert rounds_l <= rho_e


def test_benchmark_local_kernel(benchmark):
    from repro.core.nucleus import prepare
    graph = kernel_graph("dblp")
    prepared = prepare(graph, 2, 3)
    benchmark(lambda: local_nucleus(prepared.incidence))


if __name__ == "__main__":
    print(build_report())
