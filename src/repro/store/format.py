"""The ``.nda`` (nucleus decomposition artifact) binary format.

The paper's hierarchy is motivated as a *reusable* structure -- compute
the decomposition once, then explore it many times (Section 1, Figure
10). The JSON export (:mod:`repro.export`) is durable but row-per-clique:
loading it re-parses every clique tuple, and nothing is random-access.
This module defines a versioned, checksummed, mmap-friendly binary layout
so a decomposition of any size opens in milliseconds and is shared
read-only between processes through the page cache:

``[fixed header | JSON metadata | 64-byte-aligned numpy columns]``

* the fixed header carries magic bytes, the format version, the metadata
  length, the expected file size (truncation detection), and a CRC-32 of
  the metadata block;
* the metadata JSON records the decomposition parameters, the run stats,
  a column table (name, dtype, shape, offset relative to the payload
  start), and a CRC-32 over the concatenated column bytes (verified on
  demand via :meth:`~repro.store.artifact.DecompositionArtifact.verify`,
  not on open -- hashing gigabytes would defeat the millisecond open);
* each column is a flat, C-contiguous numpy array: coreness, clique
  tuples, tree parents/levels/representatives, and the two CSR pairs
  (per-node vertex sets, per-vertex leaf lists) memoized by
  :class:`~repro.core.queries.HierarchyQueryIndex` -- the on-disk layout
  *is* the in-memory query layout, so queries run directly over the
  mapped columns with no translation step.

Writes are atomic: the file is assembled in a temporary sibling and
``os.replace``-d into place, so readers never observe a half-written
artifact and a crashed build leaves the previous version intact.
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
import zlib
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.decomposition import NucleusDecomposition
from ..core.queries import HierarchyQueryIndex
from ..errors import ArtifactError, ParameterError

#: File extension by convention (not enforced).
EXTENSION = ".nda"

#: Magic bytes opening every artifact.
MAGIC = b"NDA\xf1"

#: Current format version; bump on any layout change.
FORMAT_VERSION = 1

#: Versions this reader can negotiate. A version-2 writer that only adds
#: columns should keep 1-readers working by listing both here.
SUPPORTED_VERSIONS = (1,)

#: Fixed header: magic, version, flags, metadata length, total file size,
#: metadata CRC-32, padded to 32 bytes.
_HEADER_STRUCT = struct.Struct("<4sHHQQI4x")
HEADER_SIZE = _HEADER_STRUCT.size

#: Column alignment: every column starts on a 64-byte boundary so mapped
#: arrays are cache-line- (and SIMD-) aligned.
ALIGN = 64

#: The column names of format version 1, in file order.
COLUMN_ORDER = (
    "core",             # float64[n_r]       core number per r-clique id
    "cliques",          # int64[n_r, r]      canonical vertex tuples
    "parent",           # int64[n_nodes]     hierarchy parents (NO_PARENT=-1)
    "level",            # float64[n_nodes]   node levels (leaf = coreness)
    "rep",              # int64[n_nodes]     representative leaf per node
    "n_leaves_under",   # int64[n_nodes]     leaf count per node
    "node_indptr",      # int64[n_nodes+1]   CSR: per-node vertex sets
    "node_vertices",    # int64[nnz]         ... sorted vertex ids
    "vertex_indptr",    # int64[graph_n+1]   CSR: per-vertex leaf lists
    "vertex_leaves",    # int64[nnz]         ... leaf (r-clique) ids
    "density",          # float64[n_nodes]   edge density (0.0 for leaves)
)


def _align(offset: int) -> int:
    return (offset + ALIGN - 1) // ALIGN * ALIGN


def _column_arrays(result: NucleusDecomposition,
                   query_index: Optional[HierarchyQueryIndex] = None,
                   ) -> Tuple[Dict[str, np.ndarray], HierarchyQueryIndex]:
    """Assemble the version-1 columns from a decomposition."""
    if result.tree is None:
        raise ParameterError(
            "artifacts store the full hierarchy; run with hierarchy=True")
    qi = query_index if query_index is not None \
        else HierarchyQueryIndex(result)
    tree = result.tree
    node_indptr, node_vertices = qi.node_vertex_csr()
    vertex_indptr, vertex_leaves = qi.vertex_leaf_csr()
    density = np.zeros(tree.n_nodes, dtype=np.float64)
    for node in range(tree.n_leaves, tree.n_nodes):
        density[node] = qi.node_density(node)
    cliques = np.asarray(
        [result.index.clique_of(rid) for rid in range(result.n_r)],
        dtype=np.int64).reshape(result.n_r, result.r)
    columns = {
        "core": np.asarray(result.core, dtype=np.float64),
        "cliques": cliques,
        "parent": np.asarray(tree.parent, dtype=np.int64),
        "level": np.asarray(tree.level, dtype=np.float64),
        "rep": np.asarray(tree.rep, dtype=np.int64),
        "n_leaves_under": np.asarray(qi.n_leaves_under(), dtype=np.int64),
        "node_indptr": np.asarray(node_indptr, dtype=np.int64),
        "node_vertices": np.asarray(node_vertices, dtype=np.int64),
        "vertex_indptr": np.asarray(vertex_indptr, dtype=np.int64),
        "vertex_leaves": np.asarray(vertex_leaves, dtype=np.int64),
        "density": density,
    }
    return columns, qi


def build_metadata(result: NucleusDecomposition) -> Dict:
    """The non-column metadata recorded in an artifact."""
    from .. import __version__  # deferred: repro/__init__ imports this pkg
    return {
        "format_version": FORMAT_VERSION,
        "created_by": f"repro {__version__}",
        "graph": {"name": result.graph.name, "n": result.graph.n,
                  "m": result.graph.m},
        "r": result.r,
        "s": result.s,
        "method": result.method,
        "approx_delta": result.approx_delta,
        "n_r_cliques": result.n_r,
        "n_s_cliques": result.n_s,
        "max_core": float(result.max_core),
        "peeling_rounds": result.rho,
        "stats": {k: float(v) for k, v in result.stats.items()},
        "seconds_total": result.seconds_total,
    }


def write_artifact(result: NucleusDecomposition, path: str,
                   query_index: Optional[HierarchyQueryIndex] = None) -> str:
    """Serialize a decomposition to ``path`` atomically; returns ``path``.

    ``query_index`` may pass an already-built
    :class:`~repro.core.queries.HierarchyQueryIndex` over ``result`` so
    its CSR arrays are reused instead of recomputed.
    """
    columns, _ = _column_arrays(result, query_index)
    meta = build_metadata(result)
    # Column table with offsets relative to the payload start (the
    # payload start itself depends on the metadata length, so absolute
    # offsets would be self-referential).
    table: List[Dict] = []
    rel = 0
    payload_crc = 0
    ordered = []
    for name in COLUMN_ORDER:
        array = np.ascontiguousarray(columns[name])
        rel = _align(rel)
        table.append({"name": name, "dtype": array.dtype.str,
                      "shape": list(array.shape), "offset": rel,
                      "nbytes": array.nbytes})
        payload_crc = zlib.crc32(array.tobytes(), payload_crc)
        ordered.append(array)
        rel += array.nbytes
    meta["columns"] = table
    meta["payload_crc32"] = payload_crc
    meta_bytes = json.dumps(meta, sort_keys=True).encode("utf-8")
    payload_start = _align(HEADER_SIZE + len(meta_bytes))
    file_size = payload_start + rel
    header = _HEADER_STRUCT.pack(MAGIC, FORMAT_VERSION, 0, len(meta_bytes),
                                 file_size, zlib.crc32(meta_bytes))

    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(prefix=".nda-tmp-", dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(header)
            handle.write(meta_bytes)
            handle.write(b"\x00" * (payload_start - HEADER_SIZE
                                    - len(meta_bytes)))
            written = payload_start
            for entry, array in zip(table, ordered):
                handle.write(b"\x00" * (payload_start + entry["offset"]
                                        - written))
                handle.write(array.tobytes())
                written = payload_start + entry["offset"] + entry["nbytes"]
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path


def read_header(path: str) -> Tuple[int, Dict]:
    """Validate the fixed header + metadata; returns (payload_start, meta).

    Raises :class:`ArtifactError` on bad magic, an unsupported version,
    metadata corruption, or a truncated file. Does *not* hash the
    payload -- see ``DecompositionArtifact.verify``.
    """
    try:
        size = os.path.getsize(path)
        with open(path, "rb") as handle:
            raw = handle.read(HEADER_SIZE)
            if len(raw) < HEADER_SIZE:
                raise ArtifactError(
                    f"{path}: too short to be an artifact "
                    f"({len(raw)} bytes)")
            magic, version, _flags, meta_len, file_size, meta_crc = \
                _HEADER_STRUCT.unpack(raw)
            if magic != MAGIC:
                raise ArtifactError(
                    f"{path}: bad magic {magic!r} (not a .nda artifact)")
            if version not in SUPPORTED_VERSIONS:
                raise ArtifactError(
                    f"{path}: format version {version} not supported "
                    f"(reader handles {SUPPORTED_VERSIONS})")
            if size != file_size:
                raise ArtifactError(
                    f"{path}: truncated or padded (header records "
                    f"{file_size} bytes, file has {size})")
            meta_bytes = handle.read(meta_len)
        if len(meta_bytes) < meta_len:
            raise ArtifactError(f"{path}: metadata block truncated")
        if zlib.crc32(meta_bytes) != meta_crc:
            raise ArtifactError(f"{path}: metadata checksum mismatch")
        try:
            meta = json.loads(meta_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ArtifactError(f"{path}: metadata is not valid JSON: {exc}")
    except OSError as exc:
        raise ArtifactError(f"{path}: cannot read artifact: {exc}")
    payload_start = _align(HEADER_SIZE + meta_len)
    for entry in meta.get("columns", []):
        end = payload_start + entry["offset"] + entry["nbytes"]
        if end > size:
            raise ArtifactError(
                f"{path}: column {entry['name']!r} extends past the end "
                f"of the file")
    return payload_start, meta
