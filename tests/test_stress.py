"""Medium-scale randomized stress: every engine against the oracle.

The per-module tests use tiny graphs for speed; this file runs the full
cross-validation once at a scale where bucket rewinds, deep cascades,
hash-table growth, and multi-level concatenation all genuinely occur.
Kept to a few seconds total.
"""

import pytest

from conftest import oracle_chain
from repro import nucleus_decomposition
from repro.baselines.local import local_nucleus
from repro.baselines.nh import nh
from repro.core.api import EXACT_METHODS
from repro.core.approx import peel_approx
from repro.core.nucleus import peel_exact, prepare
from repro.core.validation import verify_decomposition
from repro.graphs.datasets import load_dataset
from repro.graphs.generators import (powerlaw_cluster,
                                     with_planted_communities)


@pytest.fixture(scope="module")
def big_graph():
    base = powerlaw_cluster(450, 4, 0.6, seed=99)
    return with_planted_communities(base, sizes=[22, 16, 12, 9], p_in=0.6,
                                    seed=100, name="stress")


@pytest.fixture(scope="module")
def big_oracle(big_graph):
    return oracle_chain(big_graph, 2, 3)


@pytest.mark.parametrize("method", EXACT_METHODS)
def test_all_methods_at_scale(big_graph, big_oracle, method):
    prep, exact, chain = big_oracle
    out = nucleus_decomposition(big_graph, 2, 3, method=method)
    assert out.core == exact.core
    assert out.tree.partition_chain() == chain


def test_deep_cascades_on_community_graph(big_graph, big_oracle):
    """The planted communities force multi-level LINK-EFFICIENT cascades."""
    prep, exact, chain = big_oracle
    out = nucleus_decomposition(big_graph, 2, 3, method="anh-el")
    assert out.stats["cascade_calls"] > 0
    assert out.max_core >= 5  # communities create depth
    assert len(out.hierarchy_levels()) >= 5


def test_approx_at_scale(big_graph, big_oracle):
    prep, exact, chain = big_oracle
    for delta in (0.1, 1.0):
        approx = peel_approx(prep.incidence, delta)
        assert all(a >= e for a, e in zip(approx.core, exact.core))
        assert approx.rho < exact.rho


def test_local_at_scale(big_graph, big_oracle):
    prep, exact, chain = big_oracle
    result = local_nucleus(prep.incidence)
    assert result.core == exact.core


def test_self_validation_at_scale(big_graph):
    result = nucleus_decomposition(big_graph, 2, 3)
    report = verify_decomposition(result, max_levels=3)
    assert report.ok, str(report)


def test_dataset_grid_quick_consistency():
    """One (2,4) run per dataset stand-in: EL vs NH end to end."""
    for name in ("amazon", "dblp", "orkut"):
        graph = load_dataset(name, scale=0.2)
        el = nucleus_decomposition(graph, 2, 4, method="anh-el")
        baseline = nh(graph, 2, 4)
        assert el.core == baseline.coreness.core, name
        assert (el.tree.partition_chain()
                == baseline.tree.partition_chain()), name
