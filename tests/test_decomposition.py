"""Unit tests for the NucleusDecomposition result object."""

import pytest

from repro import nucleus_decomposition
from repro.errors import ParameterError
from repro.graphs.generators import planted_nuclei
from repro.graphs.graph import Graph


@pytest.fixture(scope="module")
def decomp():
    g = planted_nuclei([5, 4], bridge=True)
    return nucleus_decomposition(g, 2, 3)


class TestAccessors:
    def test_shape(self, decomp):
        assert decomp.n_r == decomp.graph.m  # r=2: one id per edge
        assert decomp.max_core == 3  # K5's truss core
        assert decomp.rho >= 1

    def test_core_of_vertex_tuple(self, decomp):
        assert decomp.core_of((0, 1)) == 3       # inside K5
        assert decomp.core_of((5, 6)) == 2       # inside K4
        assert decomp.core_of((0, 5)) == 0       # the bridge

    def test_core_of_wrong_arity(self, decomp):
        with pytest.raises(ParameterError):
            decomp.core_of((0, 1, 2))

    def test_coreness_by_clique_complete(self, decomp):
        table = decomp.coreness_by_clique()
        assert len(table) == decomp.n_r
        assert table[(0, 1)] == 3


class TestHierarchyQueries:
    def test_nuclei_at_as_vertices(self, decomp):
        deep = decomp.nuclei_at(3)
        assert deep == [[0, 1, 2, 3, 4]]  # the K5
        level2 = decomp.nuclei_at(2)
        assert sorted(map(tuple, level2)) == [(0, 1, 2, 3, 4),
                                              (5, 6, 7, 8)]

    def test_nuclei_at_as_clique_ids(self, decomp):
        deep = decomp.nuclei_at(3, as_vertices=False)
        assert len(deep) == 1 and len(deep[0]) == 10  # K5 has 10 edges

    def test_nucleus_of(self, decomp):
        assert decomp.nucleus_of((0, 1), 3) == [0, 1, 2, 3, 4]
        assert decomp.nucleus_of((5, 6), 3) is None
        assert decomp.nucleus_of((5, 6), 2) == [5, 6, 7, 8]

    def test_hierarchy_levels(self, decomp):
        assert decomp.hierarchy_levels() == [3, 2]

    def test_density_helpers(self, decomp):
        best = decomp.densest_nucleus()
        assert best.density == pytest.approx(1.0)
        profile = decomp.density_profile()
        assert len(profile) >= 2


class TestSimulatedPerformance:
    def test_simulated_seconds_decrease_with_threads(self, decomp):
        t1 = decomp.simulated_seconds(1)
        t30 = decomp.simulated_seconds(30)
        assert t1 == pytest.approx(decomp.seconds_total)
        assert t30 <= t1

    def test_speedup_at_one_thread_is_one(self, decomp):
        assert decomp.speedup(1) == pytest.approx(1.0)


class TestSummary:
    def test_summary_mentions_key_facts(self, decomp):
        text = decomp.summary()
        assert "(2,3)" in text
        assert "max core 3" in text
        assert "hierarchy" in text

    def test_repr(self, decomp):
        assert "NucleusDecomposition" in repr(decomp)

    def test_coreness_only_summary(self):
        g = Graph.complete(4)
        out = nucleus_decomposition(g, 2, 3, hierarchy=False)
        assert "hierarchy" not in out.summary()
