"""Figure 9: comparison against PHCD and sequential NH.

For (1,2), (2,3), and (3,4) nucleus decomposition, runs ANH-TE, ANH-EL,
the specialized parallel k-core hierarchy PHCD (1,2 only), and the
sequential NH baseline, and reports multiplicative slowdowns over the
fastest per configuration -- the paper's Figure 9 presentation. These are
end-to-end times (orientation + counting + peeling + hierarchy), excluding
only graph loading, as in the paper.

Two columns are reported for the parallel algorithms:

* ``1t`` -- the measured single-thread wall-clock (what pure Python runs);
* ``30c`` -- the simulated 30-core time from the measured work/span
  (Brent's bound; the substitution of DESIGN.md Section 2). The paper's
  headline 3.76-58.84x advantage over NH comes from real cores; the
  simulated column reproduces its *shape*.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.reporting import banner, format_table
from repro.baselines.nh import nh
from repro.baselines.phcd import phcd
from repro.core.framework import anh_el
from repro.core.hierarchy_te import hierarchy_te_practical
from repro.parallel.counters import WorkSpanCounter
from repro.parallel.runtime import simulated_time

from bench_common import (SKIPPED, bench_graph, kernel_graph, timed,
                          within_budget)

GRAPHS = ("amazon", "dblp", "youtube", "livejournal", "orkut")
RS = ((1, 2), (2, 3), (3, 4))


def run_comparison(graph_names=GRAPHS, rs_values=RS):
    """Rows: (graph, (r,s), {impl: (wall_1t, simulated_30c or None)})."""
    rows = []
    for name in graph_names:
        graph = bench_graph(name)
        for r, s in rs_values:
            if not within_budget(graph, r, s):
                rows.append((name, (r, s), {}))
                continue
            timings: Dict[str, tuple] = {}
            for impl, fn, parallel in (
                    ("anh-te", hierarchy_te_practical, True),
                    ("anh-el", anh_el, True),
                    ("nh", nh, False)):
                counter = WorkSpanCounter()
                if parallel:
                    run = timed(lambda: fn(graph, r, s, counter=counter))
                    sim = simulated_time(counter.snapshot(), 30, run.seconds)
                else:
                    run = timed(lambda: fn(graph, r, s))
                    sim = None
                timings[impl] = (run.seconds, sim)
            if (r, s) == (1, 2):
                counter = WorkSpanCounter()
                run = timed(lambda: phcd(graph, counter=counter))
                timings["phcd"] = (
                    run.seconds,
                    simulated_time(counter.snapshot(), 30, run.seconds))
            rows.append((name, (r, s), timings))
    return rows


def build_report(rows=None) -> str:
    if rows is None:
        rows = run_comparison()
    out_rows = []
    for name, (r, s), timings in rows:
        if not timings:
            out_rows.append((name, f"({r},{s})", "OOM/timeout", "", "", ""))
            continue
        fastest_1t = min(t for t, _ in timings.values())
        for impl, (wall, sim) in timings.items():
            sim_text = f"{sim:.4f}s" if sim is not None else "(sequential)"
            speed_vs_nh = ""
            if impl != "nh" and "nh" in timings and sim is not None:
                speed_vs_nh = f"{timings['nh'][0] / sim:.2f}x vs NH"
            out_rows.append((name, f"({r},{s})", impl,
                             f"{wall:.4f}s ({wall / fastest_1t:.2f}x)",
                             sim_text, speed_vs_nh))
    table = format_table(
        ("graph", "(r,s)", "impl", "1-thread wall (slowdown)",
         "simulated 30-core", "parallel advantage"),
        out_rows,
        title="Figure 9: ANH-TE / ANH-EL vs PHCD and sequential NH")
    return banner("Figure 9") + "\n" + table


def test_fig9_report():
    rows = run_comparison(graph_names=("dblp", "youtube"),
                          rs_values=((1, 2), (2, 3)))
    print(build_report(rows))
    for name, (r, s), timings in rows:
        if not timings:
            continue
        # single-thread ANH is within a small factor of sequential NH
        # (the paper: between 2.02x faster and 4.2x slower).
        best_anh = min(timings["anh-te"][0], timings["anh-el"][0])
        assert best_anh < 25 * timings["nh"][0], (name, r, s)
        # simulated 30-core ANH beats sequential NH (the Figure 9 headline).
        best_sim = min(t[1] for impl, t in timings.items()
                       if t[1] is not None)
        assert best_sim < timings["nh"][0] * 1.5, (name, r, s)
        if (r, s) == (1, 2):
            assert "phcd" in timings


def test_benchmark_nh_kernel(benchmark):
    graph = kernel_graph("dblp")
    benchmark(lambda: nh(graph, 2, 3))


def test_benchmark_phcd_kernel(benchmark):
    graph = kernel_graph("dblp")
    benchmark(lambda: phcd(graph))


if __name__ == "__main__":
    print(build_report())
