"""Unit + property tests for the exact bucketing structure (Julienne-style)."""

import pytest
from hypothesis import given, strategies as st

from repro.ds.bucketing import BucketQueue
from repro.errors import DataStructureError


class TestBasics:
    def test_extracts_minimum_bucket(self):
        q = BucketQueue([3, 1, 2, 1])
        value, ids = q.next_bucket()
        assert value == 1
        assert sorted(ids) == [1, 3]

    def test_extraction_marks_dead(self):
        q = BucketQueue([1, 2])
        q.next_bucket()
        assert not q.alive(0)
        assert q.alive(1)

    def test_len_and_empty(self):
        q = BucketQueue([5, 5])
        assert len(q) == 2 and not q.empty
        q.next_bucket()
        assert len(q) == 0 and q.empty

    def test_empty_extraction_raises(self):
        q = BucketQueue([])
        with pytest.raises(DataStructureError):
            q.next_bucket()

    def test_negative_value_rejected(self):
        with pytest.raises(DataStructureError):
            BucketQueue([1, -1])


class TestUpdates:
    def test_decrement_rebuckets(self):
        q = BucketQueue([5, 3])
        q.decrement(0, 4)  # 0 now has value 1 < 3
        value, ids = q.next_bucket()
        assert (value, ids) == (1, [0])

    def test_update_below_cursor_is_seen(self):
        q = BucketQueue([0, 5])
        q.next_bucket()  # extracts id 0, cursor at 0
        q.update(1, 0)   # drops below nothing, but to the cursor's level
        value, ids = q.next_bucket()
        assert (value, ids) == (0, [1])

    def test_increase_rejected(self):
        q = BucketQueue([1, 2])
        with pytest.raises(DataStructureError):
            q.update(0, 5)

    def test_update_dead_rejected(self):
        q = BucketQueue([1, 2])
        q.next_bucket()
        with pytest.raises(DataStructureError):
            q.update(0, 0)

    def test_decrement_clamps_at_zero(self):
        q = BucketQueue([1, 5])
        q.decrement(0, 10)
        assert q.value(0) == 0

    def test_stale_entries_skipped(self):
        q = BucketQueue([4, 4])
        q.update(0, 2)
        q.update(0, 1)  # two stale entries for id 0 now exist
        value, ids = q.next_bucket()
        assert (value, ids) == (1, [0])
        value, ids = q.next_bucket()
        assert (value, ids) == (4, [1])

    def test_updates_counted(self):
        q = BucketQueue([4])
        q.update(0, 2)
        q.update(0, 2)  # no-op does not count
        assert q.updates == 1


class TestRounds:
    def test_rounds_counts_extractions(self):
        q = BucketQueue([1, 1, 2, 3])
        list(q.drain())
        assert q.rounds == 3  # buckets 1, 2, 3

    def test_drain_yields_everything_once(self):
        q = BucketQueue([2, 0, 2, 5])
        seen = [i for _, ids in q.drain() for i in ids]
        assert sorted(seen) == [0, 1, 2, 3]


@given(st.lists(st.integers(0, 20), min_size=1, max_size=50))
def test_static_drain_is_sorted_grouping(values):
    """With no updates, drain yields ids grouped by value, ascending."""
    q = BucketQueue(values)
    out = list(q.drain())
    yielded_values = [v for v, _ in out]
    assert yielded_values == sorted(set(values))
    for v, ids in out:
        assert sorted(ids) == [i for i, x in enumerate(values) if x == v]


@given(st.lists(st.integers(0, 15), min_size=2, max_size=30),
       st.lists(st.tuples(st.integers(0, 29), st.integers(1, 5)), max_size=30))
def test_peeling_discipline_invariants(values, decrements):
    """Interleave extraction and decrements like the peeling loop does."""
    q = BucketQueue(values)
    extracted = []
    decrements = list(decrements)
    while not q.empty:
        value, ids = q.next_bucket()
        assert value == min(q.value(i) for i in ids)
        extracted.extend(ids)
        # apply some decrements to still-live ids
        while decrements:
            ident, amount = decrements.pop()
            ident %= len(values)
            if q.alive(ident):
                q.decrement(ident, amount)
                break
    assert sorted(extracted) == list(range(len(values)))
