"""Unit tests for the interleaved framework driver (core.framework)."""

import pytest

from repro.core.framework import InterleavedResult, anh_bl, anh_el, run_interleaved
from repro.core.link_efficient import LinkEfficient
from repro.core.nucleus import arb_nucleus, peel_exact, prepare
from repro.graphs.generators import erdos_renyi, planted_nuclei
from repro.graphs.graph import Graph


class TestRunInterleaved:
    def test_custom_link_factory_receives_live_core(self):
        g = planted_nuclei([5, 4], bridge=True)
        prep = prepare(g, 2, 3)
        captured = {}

        def make_link(core_live):
            captured["core"] = core_live
            return LinkEfficient(core_live)

        out = run_interleaved(prep, make_link, counter=None)
        # the live array IS the final coreness array
        assert captured["core"] == out.coreness.core
        assert out.tree is not None

    def test_custom_peel_function(self):
        g = erdos_renyi(18, 0.4, seed=2)
        prep = prepare(g, 2, 3)
        calls = {}

        def peel(incidence, counter=None, link=None, core_out=None):
            calls["used"] = True
            return peel_exact(incidence, counter=counter, link=link,
                              core_out=core_out)

        out = run_interleaved(prep, lambda core: LinkEfficient(core),
                              counter=None, peel=peel)
        assert calls["used"]
        assert out.coreness.core == peel_exact(prep.incidence).core

    def test_timing_stats_present(self):
        g = erdos_renyi(18, 0.4, seed=3)
        out = anh_el(g, 2, 3)
        assert out.stats["seconds_coreness"] >= 0
        assert out.stats["seconds_tree"] >= 0

    def test_result_type(self):
        g = Graph.complete(5)
        out = anh_bl(g, 2, 3)
        assert isinstance(out, InterleavedResult)


class TestBucketingPassThrough:
    def test_arb_nucleus_heap_bucketing(self):
        g = erdos_renyi(25, 0.35, seed=6)
        a = arb_nucleus(g, 2, 3)
        b = arb_nucleus(g, 2, 3, bucketing="heap")
        assert a.core == b.core
        assert a.rho == b.rho


class TestSubgraphDrillDown:
    def test_extract_and_redecompose(self):
        from repro import nucleus_decomposition
        g = planted_nuclei([7, 4], bridge=True)
        outer = nucleus_decomposition(g, 2, 3)
        deepest = outer.nuclei_at(outer.max_core)[0]
        sub, remap = outer.extract_subgraph(deepest)
        assert sub.n == 7  # the K7 block
        inner = nucleus_decomposition(sub, 3, 4)
        # K7 under (3,4): every triangle in comb(4, 1) = 4 four-cliques
        assert set(inner.core) == {4.0}
