"""Unit tests for k-clique densest subgraph peeling (core.densest)."""

from math import comb

import pytest

from repro.core.densest import (DensestResult, exact_density,
                                k_clique_densest, k_clique_densest_parallel)
from repro.errors import ParameterError
from repro.graphs.generators import (barabasi_albert, planted_nuclei,
                                     random_bipartite_like)
from repro.graphs.graph import Graph
from repro.parallel.counters import WorkSpanCounter


class TestGreedy:
    def test_recovers_planted_clique(self):
        # K8 + K5 + sparse bridge: the K8 is the 3-clique-densest subgraph.
        g = planted_nuclei([8, 5], bridge=True)
        result = k_clique_densest(g, k=3)
        assert result.vertices == list(range(8))
        assert result.density == pytest.approx(comb(8, 3) / 8)

    def test_reported_density_is_exact(self):
        g = barabasi_albert(120, 3, seed=9)
        result = k_clique_densest(g, k=3)
        assert result.density == pytest.approx(
            exact_density(g, result.vertices, 3))

    def test_triangle_free_graph(self):
        g = random_bipartite_like(10, 10, 0.4, seed=1)
        result = k_clique_densest(g, k=3)
        assert result.density == 0.0

    def test_k4_density(self):
        g = planted_nuclei([7, 4], bridge=True)
        result = k_clique_densest(g, k=4)
        assert result.vertices == list(range(7))
        assert result.density == pytest.approx(comb(7, 4) / 7)

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            k_clique_densest(Graph.complete(3), k=1)

    def test_approximation_guarantee(self):
        # The greedy is a 1/k-approximation; on the planted instance the
        # optimum is known exactly.
        g = planted_nuclei([8, 5], backbone_p=0.03, seed=2)
        optimum = comb(8, 3) / 8
        result = k_clique_densest(g, k=3)
        assert result.density >= optimum / 3 - 1e-9


class TestParallelBatch:
    def test_logarithmic_rounds(self):
        g = barabasi_albert(300, 3, seed=7)
        greedy = k_clique_densest(g, k=3)
        batch = k_clique_densest_parallel(g, k=3, eps=0.5)
        assert batch.rounds < greedy.rounds
        assert batch.rounds <= 60  # O(log n) with a real constant

    def test_density_close_to_greedy(self):
        g = planted_nuclei([8, 5], backbone_p=0.03, seed=2)
        greedy = k_clique_densest(g, k=3)
        batch = k_clique_densest_parallel(g, k=3, eps=0.5)
        assert batch.density >= greedy.density / (1 + 0.5) - 1e-9
        assert batch.density == pytest.approx(
            exact_density(g, batch.vertices, 3))

    def test_recovers_planted_clique_small_eps(self):
        g = planted_nuclei([8, 5], bridge=True)
        result = k_clique_densest_parallel(g, k=3, eps=0.1)
        assert set(range(8)) <= set(result.vertices)

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            k_clique_densest_parallel(Graph.complete(3), k=3, eps=0)
        with pytest.raises(ParameterError):
            k_clique_densest_parallel(Graph.complete(3), k=0)

    def test_counter_charged(self):
        c = WorkSpanCounter()
        k_clique_densest_parallel(barabasi_albert(80, 3, seed=3), 3,
                                  counter=c)
        assert c.work > 0 and c.span > 0


class TestRelationToNucleus:
    def test_densest_lives_in_the_deepest_core(self):
        """The k-clique densest subgraph sits inside a deep (1,k) nucleus

        (its minimum k-clique degree is at least its density), tying the
        two dense-subgraph notions together as the paper's related-work
        section describes.
        """
        from repro import nucleus_decomposition
        g = planted_nuclei([8, 5], backbone_p=0.03, seed=2)
        densest = k_clique_densest(g, k=3)
        decomposition = nucleus_decomposition(g, 1, 3, hierarchy=False)
        table = decomposition.coreness_by_clique()
        min_core = min(table[(v,)] for v in densest.vertices)
        assert min_core >= densest.density - 1e-9
