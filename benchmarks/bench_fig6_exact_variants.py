"""Figure 6: ANH-TE vs ANH-EL vs ANH-BL, multiplicative slowdowns.

For each stand-in graph and each (r, s) with ``r < s <= 5``, runs the
three exact hierarchy implementations and reports each one's slowdown
over the fastest -- the same presentation as the paper's Figure 6. Also
prints the fastest absolute time per graph (the parenthesized labels).

As in the paper, the timings here exclude the shared preamble (orienting
the graph and computing the initial s-clique degrees): the preparation is
done once and reused by all three variants. The incidence uses the
``reenum`` strategy -- s-cliques containing a peeled r-clique are
re-discovered on demand -- because that is the cost regime the paper's
implementations operate in; under a fully materialized incidence both of
ANH-TE's passes degenerate to cheap scans and the EL/TE crossover the
paper observes disappears (see EXPERIMENTS.md).

Expected shape (Section 8.1): ANH-EL wins when ``s - r <= 2`` (except
(1, 2), where ANH-TE tends to win); ANH-TE wins for larger gaps; ANH-BL
trails and is the memory hog.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.reporting import banner, format_table
from repro.core.framework import anh_bl, anh_el
from repro.core.hierarchy_te import hierarchy_te_practical

from bench_common import (SKIPPED, bench_graph, guarded, kernel_graph,
                          prepare_cached, rs_grid, timed)

GRAPHS = ("amazon", "dblp", "youtube", "livejournal", "orkut")

VARIANTS = (
    ("anh-te", hierarchy_te_practical),
    ("anh-el", anh_el),
    ("anh-bl", anh_bl),
)


def run_grid(graph_names=GRAPHS, max_s: int = 5, strategy: str = "reenum"):
    """Rows of (graph, r, s, {variant: seconds})."""
    cache: Dict = {}
    rows = []
    for name in graph_names:
        graph = bench_graph(name)
        for r, s in rs_grid(max_s):
            timings = {}
            prepared = None
            for variant, fn in VARIANTS:
                run = guarded(graph, r, s, lambda: None)
                if run.skipped:
                    timings[variant] = SKIPPED
                    continue
                if prepared is None:
                    prepared = prepare_cached(cache, graph, r, s,
                                              strategy=strategy)
                run = timed(lambda: fn(graph, r, s, prepared=prepared))
                timings[variant] = run.seconds
            rows.append((name, r, s, timings))
    return rows


def win_counts(rows):
    wins = {variant: 0 for variant, _ in VARIANTS}
    for _, _, _, timings in rows:
        finite = {v: t for v, t in timings.items() if t != SKIPPED}
        if finite:
            wins[min(finite, key=finite.get)] += 1
    return wins


def build_report() -> str:
    rows = run_grid(strategy="reenum")
    out_rows = []
    wins = {v: 0 for v, _ in VARIANTS}
    for name, r, s, timings in rows:
        finite = {v: t for v, t in timings.items() if t != SKIPPED}
        fastest = min(finite.values()) if finite else float("nan")
        cells: List[object] = [name, f"({r},{s})"]
        for variant, _ in VARIANTS:
            t = timings[variant]
            if t == SKIPPED:
                cells.append("OOM/timeout")
            else:
                cells.append(f"{t / fastest:.2f}x")
        if finite:
            winner = min(finite, key=finite.get)
            wins[winner] += 1
            cells.append(f"{fastest:.4f}s ({winner})")
        else:
            cells.append("-")
        out_rows.append(tuple(cells))
    table = format_table(
        ("graph", "(r,s)", "anh-te", "anh-el", "anh-bl", "fastest"),
        out_rows,
        title="Figure 6: slowdowns over the fastest exact hierarchy variant")
    summary = "\nwins (reenum incidence): " + ", ".join(
        f"{v}={n}" for v, n in wins.items())
    # The strategy bracket (see EXPERIMENTS.md): under a materialized
    # incidence the ranking flips toward ANH-TE; report its win counts on
    # a subset so the crossover is visible without doubling the runtime.
    mat_rows = run_grid(graph_names=("dblp", "youtube"), max_s=5,
                        strategy="materialized")
    mat_wins = win_counts(mat_rows)
    summary += "\nwins (materialized incidence, dblp+youtube): " + ", ".join(
        f"{v}={n}" for v, n in mat_wins.items())
    return banner("Figure 6") + "\n" + table + summary


def test_fig6_report():
    rows = run_grid(graph_names=("dblp", "youtube"), max_s=4)
    print(build_report_from(rows))
    # Qualitative claims from Section 8.1 on the configs we ran:
    # ANH-BL never wins, and it is the most expensive variant overall.
    totals = {v: 0.0 for v, _ in VARIANTS}
    for _, _, _, timings in rows:
        finite = {v: t for v, t in timings.items() if t != SKIPPED}
        if len(finite) == len(VARIANTS):
            assert min(finite, key=finite.get) != "anh-bl" or \
                abs(finite["anh-bl"] - min(finite.values())) < 1e-3
            for v, t in finite.items():
                totals[v] += t
    assert totals["anh-bl"] >= totals["anh-el"] * 0.9


def build_report_from(rows) -> str:
    out = []
    for name, r, s, timings in rows:
        finite = {v: t for v, t in timings.items() if t != SKIPPED}
        fastest = min(finite.values()) if finite else float("nan")
        out.append(f"{name} ({r},{s}): " + "  ".join(
            f"{v}={'skip' if t == SKIPPED else f'{t / fastest:.2f}x'}"
            for v, t in timings.items()))
    return "\n".join(out)


def test_benchmark_anh_el_kernel(benchmark):
    graph = kernel_graph("dblp")
    benchmark(lambda: anh_el(graph, 2, 3))


def test_benchmark_anh_te_kernel(benchmark):
    graph = kernel_graph("dblp")
    benchmark(lambda: hierarchy_te_practical(graph, 2, 3))


def test_benchmark_anh_bl_kernel(benchmark):
    graph = kernel_graph("dblp")
    benchmark(lambda: anh_bl(graph, 2, 3))


if __name__ == "__main__":
    print(build_report())
