"""Unit tests for the Brent's-bound runtime model (repro.parallel.runtime)."""

import pytest
from hypothesis import given, strategies as st

from repro.parallel.counters import WorkSpanSnapshot
from repro.parallel.runtime import (PAPER_MACHINE, MachineModel,
                                    amdahl_fraction, brent_time,
                                    format_speedup_table, max_useful_threads,
                                    self_relative_speedup, simulated_time,
                                    speedup_curve)


class TestMachineModel:
    def test_paper_machine_shape(self):
        assert PAPER_MACHINE.cores == 30
        assert PAPER_MACHINE.hyperthreads_per_core == 2

    def test_effective_processors_physical_range(self):
        assert PAPER_MACHINE.effective_processors(1) == 1
        assert PAPER_MACHINE.effective_processors(30) == 30

    def test_hyperthreads_are_fractional(self):
        p60 = PAPER_MACHINE.effective_processors(60)
        assert 30 < p60 < 60

    def test_hyperthreads_cap(self):
        # Requesting more threads than 2-way SMT provides caps out.
        assert (PAPER_MACHINE.effective_processors(60)
                == PAPER_MACHINE.effective_processors(1000))

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            PAPER_MACHINE.effective_processors(0)


class TestBrentTime:
    def test_single_processor(self):
        assert brent_time(100, 10, 1, span_constant=2) == 100 + 20

    def test_work_term_divides(self):
        t1 = brent_time(1000, 1, 1)
        t10 = brent_time(1000, 1, 10)
        assert t10 < t1
        assert t10 >= 100  # never below W/P

    def test_invalid_processors(self):
        with pytest.raises(ValueError):
            brent_time(10, 1, 0)

    @given(st.integers(1, 10 ** 6), st.integers(0, 10 ** 4),
           st.integers(1, 128))
    def test_monotone_in_processors(self, work, span, p):
        snap_t = brent_time(work, span, p)
        assert brent_time(work, span, p + 1) <= snap_t


class TestSpeedups:
    def test_speedup_is_one_on_one_thread(self):
        snap = WorkSpanSnapshot(work=10_000, span=10)
        assert self_relative_speedup(snap, 1) == pytest.approx(1.0)

    def test_speedup_bounded_by_parallelism(self):
        snap = WorkSpanSnapshot(work=1000, span=100)
        # Parallelism is 10; speedup can never exceed W / (c*S) + ...
        s = self_relative_speedup(snap, 60)
        assert s < snap.parallelism + 1

    def test_high_parallelism_scales_nearly_linearly(self):
        snap = WorkSpanSnapshot(work=10 ** 9, span=100)
        s30 = self_relative_speedup(snap, 30)
        assert s30 > 28  # near-linear

    def test_serial_computation_does_not_speed_up(self):
        snap = WorkSpanSnapshot(work=100, span=100)
        assert self_relative_speedup(snap, 60) < 1.5

    def test_curve_monotone(self):
        snap = WorkSpanSnapshot(work=10 ** 6, span=1000)
        curve = speedup_curve(snap, (1, 2, 4, 8, 16, 30, 60))
        assert curve == sorted(curve)
        assert curve[0] == pytest.approx(1.0)

    def test_simulated_time_calibrates_to_wall_clock(self):
        snap = WorkSpanSnapshot(work=10 ** 6, span=1000)
        assert simulated_time(snap, 1, 2.5) == pytest.approx(2.5)
        assert simulated_time(snap, 30, 2.5) < 2.5

    def test_simulated_time_zero_work(self):
        assert simulated_time(WorkSpanSnapshot(0, 0), 4, 1.0) == 0.0


class TestSummaries:
    def test_amdahl_fraction(self):
        assert amdahl_fraction(WorkSpanSnapshot(100, 10)) == pytest.approx(0.1)
        assert amdahl_fraction(WorkSpanSnapshot(0, 0)) == 1.0
        assert amdahl_fraction(WorkSpanSnapshot(5, 50)) == 1.0  # clamped

    def test_max_useful_threads_orders_by_parallelism(self):
        lo = max_useful_threads(WorkSpanSnapshot(10 ** 3, 500))
        hi = max_useful_threads(WorkSpanSnapshot(10 ** 9, 500))
        assert hi > lo

    def test_format_speedup_table(self):
        snap = WorkSpanSnapshot(work=10 ** 6, span=100)
        out = format_speedup_table(["dblp (2,3)"], [snap], (1, 2, 60))
        assert "dblp (2,3)" in out
        assert "30h" in out  # hyper-thread column label
        lines = out.splitlines()
        assert len(lines) == 2
