"""Public façade: one call for any (r, s) nucleus decomposition.

``nucleus_decomposition(graph, r, s)`` runs the full pipeline -- orient,
enumerate, peel, build the hierarchy -- with the algorithm selected by
``method``:

=================  ====================================================
``"anh-el"``       interleaved peel + ``LINK-EFFICIENT`` (Algorithm 5);
                   the paper's recommendation when ``s - r <= 2``
                   (default)
``"anh-te"``       two-phase: coreness then the Section 7.4 practical
                   hierarchy; the paper's recommendation otherwise
``"anh-te-theory"``  the faithful Algorithm 1 construction
``"anh-bl"``       interleaved peel + ``LINK-BASIC`` (Algorithm 4)
``"nh"``           sequential Sariyüce-Pinar baseline
``"naive"``        per-level connectivity (the oracle / vanilla baseline)
=================  ====================================================

``approx=True`` swaps the exact peeling for ``APPROX-ARB-NUCLEUS``
(Algorithm 2) with parameter ``delta``, yielding
``(comb(s,r)+eps)``-approximate coreness estimates and an approximate
hierarchy (``ARB-APPROX-NUCLEUS-HIERARCHY``).

``auto`` picks between anh-el and anh-te using the paper's empirical rule
(Section 8.1): anh-el when ``s - r <= 2`` except for (1, 2), else anh-te.
"""

from __future__ import annotations

import time
from typing import Optional

from ..errors import ParameterError
from ..graphs.graph import Graph
from ..parallel.backend import (ExecutionBackend, get_default_backend,
                                make_backend)
from ..parallel.counters import WorkSpanCounter
from .approx import (approx_anh_bl, approx_anh_el, approx_anh_te, peel_approx)
from .decomposition import NucleusDecomposition
from .framework import InterleavedResult, anh_bl, anh_el
from .hierarchy_te import hierarchy_te_practical, hierarchy_te_theoretical
from .nucleus import peel_exact, prepare, split_kernel

EXACT_METHODS = ("anh-el", "anh-te", "anh-te-theory", "anh-bl", "nh", "naive")


def choose_method(r: int, s: int) -> str:
    """The paper's Section 8.1 selection rule between ANH-EL and ANH-TE."""
    if (r, s) == (1, 2):
        return "anh-te"
    return "anh-el" if s - r <= 2 else "anh-te"


def nucleus_decomposition(graph: Graph, r: int, s: int,
                          method: str = "auto",
                          hierarchy: bool = True,
                          approx: bool = False,
                          delta: float = 0.5,
                          strategy: str = "materialized",
                          counter: Optional[WorkSpanCounter] = None,
                          seed: int = 0,
                          backend=None,
                          workers: Optional[int] = None,
                          kernel: str = "auto") -> NucleusDecomposition:
    """Compute the (r, s) nucleus decomposition of ``graph``.

    Parameters
    ----------
    graph:
        The input graph.
    r, s:
        Nucleus parameters, ``1 <= r < s``. (1, 2) is k-core, (2, 3) is
        k-truss.
    method:
        Algorithm selector (see module docstring); ``"auto"`` applies the
        paper's empirical rule.
    hierarchy:
        When ``False``, only core numbers are computed (``ARB-NUCLEUS`` /
        ``APPROX-ARB-NUCLEUS``) and ``result.tree`` is ``None``.
    approx:
        Use the approximate peeling (Algorithm 2) with parameter ``delta``.
    strategy:
        s-clique incidence strategy: ``"materialized"`` (space ~ n_s,
        the default), ``"reenum"`` (space ~ n_r, recompute on demand),
        or ``"csr"`` (the materialized data in flat numpy CSR arrays,
        enabling the vectorized peeling kernel and zero-copy process
        broadcast).
    counter:
        Optional work-span counter; a fresh one is used if omitted.
    seed:
        Seed for the randomized union-find priorities.
    backend:
        Execution backend (see :mod:`repro.parallel.backend`): ``None``
        (the default instrumented serial runtime), a name from
        ``BACKEND_NAMES`` (``"serial"`` / ``"process"``), or an
        :class:`~repro.parallel.backend.ExecutionBackend` instance. The
        clique listing, incidence construction, and peeling batch
        gathering dispatch through it; results are identical for every
        backend (differential-tested).
    workers:
        Worker-process count for the process backend; ``workers >= 2``
        with ``backend=None`` implies ``backend="process"``.
    kernel:
        Unified kernel selector
        (:data:`~repro.core.nucleus.KERNEL_CHOICES`), driving the clique
        enumeration, peeling, and hierarchy construction engines:
        ``"auto"`` (array paths everywhere they apply -- the tree stage
        goes array-native whenever the CSR incidence ran), ``"array"``
        (force the flat-array enumeration and hierarchy kernels; the
        latter requires ``strategy="csr"``), ``"vectorized"`` (force the
        array peeling kernel; requires ``strategy="csr"``), or
        ``"loop"`` (the scalar reference path for every stage). Results
        are identical for every kernel.
    """
    if method == "auto":
        method = choose_method(r, s)
    if method not in EXACT_METHODS:
        raise ParameterError(
            f"unknown method {method!r}; expected one of "
            f"{('auto',) + EXACT_METHODS}")
    if approx and delta <= 0:
        raise ParameterError(f"delta must be > 0, got {delta}")
    counter = counter if counter is not None else WorkSpanCounter()
    enum_kernel, peel_kernel, _ = split_kernel(kernel)
    owns_backend = not isinstance(backend, ExecutionBackend)
    exec_backend = make_backend(backend, workers=workers)

    try:
        t_start = time.perf_counter()
        prepared = prepare(graph, r, s, strategy=strategy, counter=counter,
                           backend=exec_backend, kernel=enum_kernel)
        t_prepared = time.perf_counter()

        if not hierarchy:
            if approx:
                coreness = peel_approx(prepared.incidence, delta,
                                       counter=counter)
            else:
                coreness = peel_exact(prepared.incidence, counter=counter,
                                      backend=exec_backend,
                                      kernel=peel_kernel)
            result = NucleusDecomposition(
                graph=graph, r=r, s=s, method="coreness-only",
                index=prepared.index, coreness=coreness, tree=None,
                stats=dict(coreness.stats),
                approx_delta=delta if approx else None)
        else:
            run = _run_hierarchy(graph, r, s, method, approx, delta, prepared,
                                 counter, seed, exec_backend, kernel)
            result = NucleusDecomposition(
                graph=graph, r=r, s=s, method=method,
                index=prepared.index, coreness=run.coreness, tree=run.tree,
                stats=dict(run.stats),
                approx_delta=delta if approx else None)
        t_end = time.perf_counter()
    finally:
        if owns_backend and exec_backend is not get_default_backend():
            exec_backend.close()
    result.seconds_prepare = t_prepared - t_start
    result.seconds_total = t_end - t_start
    return result


def _run_hierarchy(graph: Graph, r: int, s: int, method: str, approx: bool,
                   delta: float, prepared, counter: WorkSpanCounter,
                   seed: int, backend=None,
                   kernel: str = "auto") -> InterleavedResult:
    if approx:
        if method == "anh-el":
            return approx_anh_el(graph, r, s, delta=delta, prepared=prepared,
                                 counter=counter, seed=seed)
        if method == "anh-bl":
            return approx_anh_bl(graph, r, s, delta=delta, prepared=prepared,
                                 counter=counter, seed=seed)
        if method == "anh-te":
            return approx_anh_te(graph, r, s, delta=delta, prepared=prepared,
                                 counter=counter, seed=seed)
        if method == "anh-te-theory":
            return approx_anh_te(graph, r, s, delta=delta, prepared=prepared,
                                 counter=counter, theoretical=True, seed=seed)
        raise ParameterError(
            f"method {method!r} has no approximate variant; use one of "
            f"anh-el / anh-bl / anh-te / anh-te-theory")
    if method == "anh-el":
        return anh_el(graph, r, s, prepared=prepared, counter=counter,
                      seed=seed, backend=backend, kernel=kernel)
    if method == "anh-bl":
        return anh_bl(graph, r, s, prepared=prepared, counter=counter,
                      seed=seed, backend=backend, kernel=kernel)
    if method == "anh-te":
        return hierarchy_te_practical(graph, r, s, prepared=prepared,
                                      counter=counter, seed=seed,
                                      backend=backend, kernel=kernel)
    if method == "anh-te-theory":
        return hierarchy_te_theoretical(graph, r, s, prepared=prepared,
                                        counter=counter)
    if method == "nh":
        from ..baselines.nh import nh as run_nh
        out = run_nh(graph, r, s, prepared=prepared)
        return InterleavedResult(out.coreness, out.tree, out.stats)
    # method == "naive"
    from ..baselines.naive_hierarchy import naive_hierarchy
    coreness = peel_exact(prepared.incidence, counter=counter,
                          backend=backend, kernel=split_kernel(kernel)[1])
    tree = naive_hierarchy(prepared.incidence, coreness.core, counter=counter)
    return InterleavedResult(coreness, tree, dict(coreness.stats))


def decompose_to_artifact(graph: Graph, r: int, s: int, path: str,
                          **kwargs) -> str:
    """Decompose ``graph`` and persist the result as a ``.nda`` artifact.

    The compute-once entry point of the serving workflow: equivalent to
    ``nucleus_decomposition`` followed by
    :func:`repro.store.write_artifact`, building the query index exactly
    once. Returns ``path``; load with :func:`repro.store.load_artifact`
    or serve with ``repro serve``. All ``nucleus_decomposition`` keyword
    arguments are accepted (``hierarchy=False`` is rejected -- the
    artifact stores the hierarchy).
    """
    from ..store import write_artifact
    from .queries import HierarchyQueryIndex
    if kwargs.get("hierarchy") is False:
        raise ParameterError(
            "artifacts store the full hierarchy; drop hierarchy=False")
    result = nucleus_decomposition(graph, r, s, **kwargs)
    return write_artifact(result, path,
                          query_index=HierarchyQueryIndex(result))


def k_core(graph: Graph, **kwargs) -> NucleusDecomposition:
    """The (1, 2) nucleus decomposition (classic k-core)."""
    return nucleus_decomposition(graph, 1, 2, **kwargs)


def k_truss(graph: Graph, **kwargs) -> NucleusDecomposition:
    """The (2, 3) nucleus decomposition (classic k-truss)."""
    return nucleus_decomposition(graph, 2, 3, **kwargs)
