"""Tests for the persistent artifact store (repro.store).

The load-bearing property: a mmap-loaded artifact answers every query
*identically* to a fresh in-memory :class:`HierarchyQueryIndex` over the
same decomposition (differential round-trip over the corpus graphs and
(r, s) pairs). Plus format hardening: corrupted/truncated/foreign files
are rejected with :class:`ArtifactError`, writes are atomic, and the
mapped object is shareable across threads and processes.
"""

import os
import pickle
import struct
import threading

import numpy as np
import pytest

from conftest import RS_PAIRS
from repro import nucleus_decomposition
from repro.core.queries import HierarchyQueryIndex
from repro.errors import ArtifactError, ParameterError
from repro.store import (EXTENSION, FORMAT_VERSION, load_artifact,
                         read_header, write_artifact)
from repro.store.format import COLUMN_ORDER, HEADER_SIZE


def build_artifact(graph, r, s, directory):
    """(decomposition, query index, artifact path) for one corpus point."""
    result = nucleus_decomposition(graph, r, s)
    index = HierarchyQueryIndex(result)
    path = os.path.join(str(directory),
                        f"{graph.name or 'g'}-{r}-{s}{EXTENSION}")
    write_artifact(result, path, query_index=index)
    return result, index, path


def assert_same_answers(index, artifact, graph):
    """Every query endpoint must agree between memory and mmap."""
    # Coreness: byte-identical column.
    expected = np.asarray(index.decomposition.core, dtype=np.float64)
    assert artifact.core.dtype == np.float64
    assert np.array_equal(expected, np.asarray(artifact.core))
    for rid in range(min(index.decomposition.n_r, 25)):
        clique = index.decomposition.index.clique_of(rid)
        assert artifact.clique_of(rid) == tuple(clique)
        assert artifact.id_of(clique) == rid
        assert artifact.core_of(clique) == expected[rid]
    # Per-vertex queries.
    for v in range(graph.n):
        assert index.membership(v) == artifact.membership(v)
        assert index.strongest_community(v) == artifact.strongest_community(v)
    # Multi-vertex community search over a deterministic pair sample.
    for a in range(0, graph.n, 3):
        b = (a * 7 + 1) % graph.n
        got = artifact.community([a, b]) if a != b \
            else artifact.community([a])
        want = index.community([a, b]) if a != b else index.community([a])
        assert got == want
    # Rankings.
    for k in (1, 3, 10):
        assert index.top_k_densest(k) == artifact.top_k_densest(k)
        assert index.top_k_deepest(k) == artifact.top_k_deepest(k)


@pytest.fixture(scope="module")
def planted_point(planted, tmp_path_factory):
    directory = tmp_path_factory.mktemp("store")
    return build_artifact(planted, 2, 3, directory)


class TestRoundTrip:
    @pytest.mark.parametrize("r,s", RS_PAIRS)
    def test_small_corpus_all_pairs(self, two_triangles_bridge,
                                    paper_like_graph, r, s, tmp_path):
        for graph in (two_triangles_bridge, paper_like_graph):
            _, index, path = build_artifact(graph, r, s, tmp_path)
            with load_artifact(path) as artifact:
                assert_same_answers(index, artifact, graph)

    @pytest.mark.parametrize("r,s", [(1, 2), (2, 3), (3, 4)])
    def test_planted_and_social(self, planted, social_graph, r, s, tmp_path):
        for graph in (planted, social_graph):
            _, index, path = build_artifact(graph, r, s, tmp_path)
            with load_artifact(path) as artifact:
                assert_same_answers(index, artifact, graph)

    def test_metadata_and_stats(self, planted_point, planted):
        result, index, path = planted_point
        artifact = load_artifact(path)
        assert artifact.r == 2 and artifact.s == 3
        assert artifact.meta["graph"]["n"] == planted.n
        assert artifact.meta["graph"]["m"] == planted.m
        assert artifact.meta["format_version"] == FORMAT_VERSION
        assert [c["name"] for c in artifact.meta["columns"]] \
            == list(COLUMN_ORDER)
        memory, mapped = index.stats(), artifact.stats()
        for key in ("n_leaves", "n_nuclei", "n_nodes", "n_roots",
                    "max_level", "n_vertices", "n_vertex_entries"):
            assert memory[key] == mapped[key], key
        assert len(artifact) == len(index)
        assert "nuclei" in artifact.summary()

    def test_verify_passes_on_clean_file(self, planted_point):
        _, _, path = planted_point
        assert load_artifact(path).verify() is True

    def test_columns_are_readonly_views(self, planted_point):
        _, _, path = planted_point
        artifact = load_artifact(path)
        with pytest.raises((ValueError, RuntimeError)):
            artifact.core[0] = 99.0

    def test_coreness_only_result_rejected(self, planted, tmp_path):
        flat = nucleus_decomposition(planted, 2, 3, hierarchy=False)
        with pytest.raises(ParameterError):
            write_artifact(flat, str(tmp_path / "flat.nda"))


class TestRejection:
    def _copy(self, path, tmp_path, mutate):
        data = bytearray(open(path, "rb").read())
        mutate(data)
        out = tmp_path / "mutated.nda"
        out.write_bytes(bytes(data))
        return str(out)

    def test_bad_magic(self, planted_point, tmp_path):
        _, _, path = planted_point
        bad = self._copy(path, tmp_path, lambda d: d.__setitem__(0, 0x00))
        with pytest.raises(ArtifactError, match="magic"):
            load_artifact(bad)

    def test_unsupported_version(self, planted_point, tmp_path):
        _, _, path = planted_point

        def bump(data):
            data[4:6] = struct.pack("<H", FORMAT_VERSION + 7)

        bad = self._copy(path, tmp_path, bump)
        with pytest.raises(ArtifactError, match="version"):
            load_artifact(bad)

    def test_truncated_file(self, planted_point, tmp_path):
        _, _, path = planted_point
        bad = self._copy(path, tmp_path, lambda d: d.__delitem__(
            slice(len(d) - 16, len(d))))
        with pytest.raises(ArtifactError, match="truncated|padded"):
            load_artifact(bad)

    def test_corrupted_metadata(self, planted_point, tmp_path):
        _, _, path = planted_point
        bad = self._copy(path, tmp_path, lambda d: d.__setitem__(
            HEADER_SIZE + 4, d[HEADER_SIZE + 4] ^ 0xFF))
        with pytest.raises(ArtifactError, match="checksum|JSON"):
            load_artifact(bad)

    def test_corrupted_payload_caught_by_verify(self, planted_point,
                                                tmp_path):
        _, _, path = planted_point
        payload_start, _ = read_header(path)
        bad = self._copy(path, tmp_path, lambda d: d.__setitem__(
            payload_start + 3, d[payload_start + 3] ^ 0xFF))
        artifact = load_artifact(bad)  # open stays cheap: no payload hash
        with pytest.raises(ArtifactError, match="payload checksum"):
            artifact.verify()

    def test_not_an_artifact(self, tmp_path):
        junk = tmp_path / "junk.nda"
        junk.write_bytes(b"definitely not a decomposition artifact")
        with pytest.raises(ArtifactError):
            load_artifact(str(junk))
        empty = tmp_path / "empty.nda"
        empty.write_bytes(b"")
        with pytest.raises(ArtifactError, match="too short"):
            load_artifact(str(empty))

    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError, match="cannot read"):
            load_artifact(str(tmp_path / "nope.nda"))


class TestAtomicity:
    def test_failed_write_leaves_previous_version(self, planted, tmp_path):
        result, index, path = build_artifact(planted, 2, 3, tmp_path)
        before = open(path, "rb").read()
        flat = nucleus_decomposition(planted, 2, 3, hierarchy=False)
        with pytest.raises(ParameterError):
            write_artifact(flat, path)
        assert open(path, "rb").read() == before
        assert not [f for f in os.listdir(tmp_path)
                    if f.startswith(".nda-tmp-")]

    def test_interrupted_replace_leaves_no_temp(self, planted_point,
                                                planted, tmp_path,
                                                monkeypatch):
        result = nucleus_decomposition(planted, 2, 3)

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr("repro.store.format.os.replace", boom)
        with pytest.raises(OSError):
            write_artifact(result, str(tmp_path / "x.nda"))
        assert os.listdir(tmp_path) == []

    def test_rewrite_is_deterministic_modulo_timing(self, planted, tmp_path):
        result = nucleus_decomposition(planted, 2, 3)
        a = str(tmp_path / "a.nda")
        b = str(tmp_path / "b.nda")
        write_artifact(result, a)
        write_artifact(result, b)
        _, meta_a = read_header(a)
        _, meta_b = read_header(b)
        assert meta_a["payload_crc32"] == meta_b["payload_crc32"]
        assert meta_a["columns"] == meta_b["columns"]


def _chunk_coreness(artifact, chunk):
    # Module-level so ProcessBackend can pickle it; the artifact arrives
    # via broadcast and re-maps in each worker (__reduce__ ships the path).
    return [artifact.core_of(artifact.clique_of(rid)) for rid in chunk]


class TestSharing:
    def test_pickle_round_trip(self, planted_point):
        _, index, path = planted_point
        artifact = load_artifact(path)
        clone = pickle.loads(pickle.dumps(artifact))
        assert clone.path == path
        assert clone.top_k_densest(3) == index.top_k_densest(3)

    def test_process_backend_broadcast(self, planted_point):
        from repro.parallel.backend import ProcessBackend
        _, index, path = planted_point
        artifact = load_artifact(path)
        rids = list(range(artifact.n_leaves))
        expected = [float(c) for c in np.asarray(artifact.core)]
        with ProcessBackend(workers=2) as backend:
            token = backend.broadcast(artifact)
            chunks = backend.map_chunks(_chunk_coreness, rids, token=token)
        got = [v for chunk in chunks for v in chunk]
        assert got == expected

    def test_concurrent_readers_one_mapping(self, planted_point, planted):
        _, index, path = planted_point
        artifact = load_artifact(path)
        expected = {v: index.membership(v) for v in range(planted.n)}
        failures = []

        def reader(offset):
            for v in range(planted.n):
                u = (v + offset) % planted.n
                if artifact.membership(u) != expected[u]:
                    failures.append((offset, u))

        threads = [threading.Thread(target=reader, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert failures == []


class TestLifecycle:
    def test_close_is_idempotent_and_invalidates(self, planted, tmp_path):
        _, _, path = build_artifact(planted, 2, 3, tmp_path)
        artifact = load_artifact(path)
        assert artifact.nbytes > 0
        artifact.close()
        artifact.close()
        assert artifact.nbytes == 0

    def test_context_manager(self, planted_point):
        _, _, path = planted_point
        with load_artifact(path) as artifact:
            assert len(artifact) > 0
        assert artifact.nbytes == 0

    def test_repr_mentions_shape(self, planted_point):
        _, _, path = planted_point
        artifact = load_artifact(path)
        assert "DecompositionArtifact" in repr(artifact)
        assert str(artifact.r) in repr(artifact)
