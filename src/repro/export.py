"""Serialization of decomposition results.

Makes the library's outputs durable and toolable:

* :func:`decomposition_to_dict` / :func:`decomposition_to_json` -- a
  stable JSON document with the core numbers (keyed by r-clique vertex
  tuples), the hierarchy (parents / levels / leaf sets), and run
  statistics; :func:`load_coreness` reads the core numbers back.
* :func:`tree_to_dot` -- Graphviz DOT for the hierarchy forest, the
  paper's Figure 1/3-style visualization (no dependencies; render with
  ``dot -Tpng``).
* :func:`nuclei_to_rows` -- flat (level, size, density, vertices) rows
  for spreadsheets.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, TextIO, Tuple, Union

from .analysis.density import edge_density, nucleus_vertices
from .core.decomposition import NucleusDecomposition
from .core.tree import NO_PARENT
from .errors import ParameterError

PathOrFile = Union[str, os.PathLike, TextIO]

#: Schema version embedded in every JSON document.
SCHEMA_VERSION = 1


def decomposition_to_dict(result: NucleusDecomposition,
                          include_tree: bool = True) -> Dict:
    """A JSON-serializable document describing one decomposition."""
    doc: Dict = {
        "schema_version": SCHEMA_VERSION,
        "graph": {"name": result.graph.name, "n": result.graph.n,
                  "m": result.graph.m},
        "r": result.r,
        "s": result.s,
        "method": result.method,
        "approx_delta": result.approx_delta,
        "n_r_cliques": result.n_r,
        "n_s_cliques": result.n_s,
        "max_core": result.max_core,
        "peeling_rounds": result.rho,
        "coreness": [
            {"clique": list(result.index.clique_of(rid)),
             "core": result.core[rid]}
            for rid in range(result.n_r)
        ],
        "stats": dict(result.stats),
        "seconds_total": result.seconds_total,
    }
    if include_tree and result.tree is not None:
        tree = result.tree
        doc["hierarchy"] = {
            "n_leaves": tree.n_leaves,
            "parent": list(tree.parent),
            "level": list(tree.level),
            "nuclei": [
                {"node": node,
                 "level": tree.level[node],
                 "r_cliques": tree.leaves_under(node)}
                for node in range(tree.n_leaves, tree.n_nodes)
            ],
        }
    return doc


def decomposition_to_json(result: NucleusDecomposition,
                          target: Optional[PathOrFile] = None,
                          include_tree: bool = True, indent: int = 2) -> str:
    """Serialize to JSON; optionally also write to a path or file object."""
    text = json.dumps(decomposition_to_dict(result, include_tree),
                      indent=indent, sort_keys=True)
    if target is not None:
        if hasattr(target, "write"):
            target.write(text)  # type: ignore[union-attr]
        else:
            with open(target, "w", encoding="utf-8") as handle:
                handle.write(text)
    return text


def load_coreness(source: PathOrFile) -> Dict[Tuple[int, ...], float]:
    """Read the core-number table back from a JSON document."""
    if hasattr(source, "read"):
        doc = json.load(source)  # type: ignore[arg-type]
    else:
        with open(source, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ParameterError(
            f"unsupported schema version {version!r} "
            f"(expected {SCHEMA_VERSION})")
    return {tuple(entry["clique"]): float(entry["core"])
            for entry in doc["coreness"]}


def tree_to_dot(result: NucleusDecomposition, max_leaves: int = 200,
                include_leaves: bool = True) -> str:
    """Graphviz DOT rendering of the hierarchy forest.

    Internal nodes are boxes labeled ``level / #vertices``; leaves are the
    r-clique vertex tuples. Trees with more than ``max_leaves`` leaves
    drop the leaf layer automatically (set ``include_leaves=False`` to
    force that).
    """
    tree = result.tree
    if tree is None:
        raise ParameterError("no hierarchy to render; run with hierarchy=True")
    include_leaves = include_leaves and tree.n_leaves <= max_leaves
    lines = ["digraph nucleus_hierarchy {",
             "  rankdir=BT;",
             "  node [fontsize=10];"]
    for node in range(tree.n_leaves, tree.n_nodes):
        vertices = nucleus_vertices(result.index, tree.leaves_under(node))
        lines.append(
            f'  n{node} [shape=box, label="level {tree.level[node]:g}\\n'
            f'{len(vertices)} vertices"];')
    if include_leaves:
        for leaf in range(tree.n_leaves):
            label = ",".join(map(str, result.index.clique_of(leaf)))
            lines.append(f'  n{leaf} [shape=ellipse, label="{{{label}}}"];')
    for node in range(tree.n_nodes):
        par = tree.parent[node]
        if par == NO_PARENT:
            continue
        if node < tree.n_leaves and not include_leaves:
            continue
        lines.append(f"  n{node} -> n{par};")
    lines.append("}")
    return "\n".join(lines)


def nuclei_to_rows(result: NucleusDecomposition,
                   min_vertices: int = 2) -> List[Dict]:
    """Flat per-nucleus rows (for CSV/spreadsheet export)."""
    tree = result.tree
    if tree is None:
        raise ParameterError("no hierarchy; run with hierarchy=True")
    rows = []
    for node in range(tree.n_leaves, tree.n_nodes):
        leaves = tree.leaves_under(node)
        vertices = sorted(nucleus_vertices(result.index, leaves))
        if len(vertices) < min_vertices:
            continue
        rows.append({
            "node": node,
            "level": tree.level[node],
            "n_vertices": len(vertices),
            "n_r_cliques": len(leaves),
            "density": edge_density(result.graph, vertices),
            "vertices": vertices,
        })
    rows.sort(key=lambda row: (-row["level"], -row["n_vertices"]))
    return rows
