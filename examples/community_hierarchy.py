"""Exploring community structure at multiple resolutions.

The nucleus hierarchy is an unsupervised, parameter-free way to see a
social network's dense substructures at every resolution at once (the
paper's Figure 1 / Section 8.2 motivation). This example:

1. builds a social-network stand-in with known planted communities,
2. computes the (2, 3) nucleus hierarchy,
3. walks the tree from coarse to fine, showing how communities split,
4. answers "which community does this vertex's relationship belong to,
   and how does it sharpen as we zoom in?" with ``nucleus_of``.

Run:  python examples/community_hierarchy.py
"""

from repro import nucleus_decomposition
from repro.graphs.generators import powerlaw_cluster, with_planted_communities


def build_network():
    """A 600-vertex social network with five planted communities."""
    base = powerlaw_cluster(600, 3, 0.4, seed=9)
    return with_planted_communities(base, sizes=[24, 18, 14, 12, 10],
                                    p_in=0.65, seed=10, name="social")


def main():
    graph = build_network()
    print(f"network: {graph.n} members, {graph.m} friendships")
    result = nucleus_decomposition(graph, r=2, s=3)
    print(result.summary())
    print()

    # Coarse-to-fine: the nuclei at each level are communities; deeper
    # levels are tighter (higher minimum triangle support per edge).
    print("resolution sweep (level = min triangles per friendship):")
    for level in reversed(result.hierarchy_levels()):
        nuclei = [n for n in result.nuclei_at(level) if len(n) >= 4]
        sizes = sorted((len(n) for n in nuclei), reverse=True)[:6]
        print(f"  level {level:>4g}: {len(nuclei):3d} communities, "
              f"largest: {sizes}")
    print()

    # Zoom in on one relationship: follow it through the hierarchy.
    deepest_level = result.hierarchy_levels()[0]
    deep_nucleus = result.nuclei_at(deepest_level, as_vertices=False)[0]
    edge = result.index.clique_of(deep_nucleus[0])
    print(f"zooming in on friendship {edge} "
          f"(core number {result.core_of(edge):g}):")
    for level in reversed(result.hierarchy_levels()):
        community = result.nucleus_of(edge, level)
        if community is None:
            print(f"  level {level:>4g}: not in any community this tight")
        else:
            print(f"  level {level:>4g}: community of "
                  f"{len(community)} members")
    print()

    # The five densest communities the hierarchy surfaced.
    profiles = result.density_profile(min_vertices=6)
    profiles.sort(key=lambda p: (p.density, p.n_vertices), reverse=True)
    print("densest communities found (>= 6 members):")
    for p in profiles[:5]:
        print(f"  {p.n_vertices:3d} members, edge density {p.density:.2f}, "
              f"at level {p.level:g}")


if __name__ == "__main__":
    main()
