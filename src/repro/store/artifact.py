"""Zero-copy artifact loading and queries over the mapped columns.

:func:`load_artifact` memory-maps a ``.nda`` file (see
:mod:`repro.store.format`) and returns a :class:`DecompositionArtifact`
whose query surface mirrors :class:`~repro.core.queries.HierarchyQueryIndex`
-- ``community`` / ``strongest_community`` / ``membership`` /
``top_k_densest`` / ``top_k_deepest`` / ``coreness`` -- with **identical
answers** (the differential tests in ``tests/test_store.py`` pin this).
The columns are read-only views into one shared ``numpy.memmap``, so:

* opening costs header validation plus one ``mmap(2)`` -- milliseconds
  regardless of artifact size;
* nothing is resident until touched, and touched pages live in the OS
  page cache, shared between every process mapping the same file;
* the object pickles as its path (:meth:`__reduce__`), so broadcasting
  it through a :class:`~repro.parallel.backend.ProcessBackend` ships a
  few bytes and each worker re-maps the same physical pages.

Densities are precomputed at build time, so no graph is needed at query
time -- the artifact is the complete serving index.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.queries import Community
from ..core.tree import NO_PARENT
from ..errors import ArtifactError, ParameterError
from .format import read_header

__all__ = ["DecompositionArtifact", "load_artifact"]


class DecompositionArtifact:
    """A mmap-backed, read-only nucleus decomposition (one ``.nda`` file)."""

    def __init__(self, path: str) -> None:
        self.path = path
        payload_start, meta = read_header(path)
        self.meta = meta
        self._buffer = np.memmap(path, dtype=np.uint8, mode="r")
        self._columns: Dict[str, np.ndarray] = {}
        for entry in meta["columns"]:
            start = payload_start + entry["offset"]
            raw = self._buffer[start:start + entry["nbytes"]]
            array = raw.view(np.dtype(entry["dtype"]))
            self._columns[entry["name"]] = array.reshape(
                tuple(entry["shape"]))
        try:
            self.core = self._columns["core"]
            self.cliques = self._columns["cliques"]
            self.parent = self._columns["parent"]
            self.level = self._columns["level"]
            self.rep = self._columns["rep"]
            self._n_leaves_under = self._columns["n_leaves_under"]
            self._node_indptr = self._columns["node_indptr"]
            self._node_vertices = self._columns["node_vertices"]
            self._vertex_indptr = self._columns["vertex_indptr"]
            self._vertex_leaves = self._columns["vertex_leaves"]
            self.density = self._columns["density"]
        except KeyError as exc:
            raise ArtifactError(f"{path}: missing column {exc}")
        self.r = int(meta["r"])
        self.s = int(meta["s"])
        self.n_leaves = int(meta["n_r_cliques"])
        self.n_nodes = int(self.parent.shape[0])
        self.graph_n = int(self._vertex_indptr.shape[0]) - 1
        self._encoded: Optional[Tuple[Optional[np.ndarray], int]] = None

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Drop the mapping (views become invalid); idempotent."""
        self._columns.clear()
        self._buffer = None

    def __enter__(self) -> "DecompositionArtifact":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __reduce__(self):
        # Pickle as the path: workers re-map the same file (page-cache
        # shared) instead of serializing gigabytes of columns.
        return (load_artifact, (self.path,))

    @property
    def nbytes(self) -> int:
        """Mapped file size in bytes (the LRU cache's cost metric)."""
        return int(self._buffer.shape[0]) if self._buffer is not None else 0

    def verify(self) -> bool:
        """Recompute the payload CRC-32 against the recorded one.

        This touches every page (O(file size)); it is the integrity
        check deliberately *not* run on open. Raises
        :class:`ArtifactError` on mismatch, returns ``True`` otherwise.
        """
        crc = 0
        for entry in self.meta["columns"]:
            crc = zlib.crc32(self._columns[entry["name"]].tobytes(), crc)
        if crc != self.meta.get("payload_crc32"):
            raise ArtifactError(
                f"{self.path}: payload checksum mismatch (stored "
                f"{self.meta.get('payload_crc32')}, computed {crc})")
        return True

    # -- structure ---------------------------------------------------------

    def __len__(self) -> int:
        """Number of nuclei (internal nodes), as on HierarchyQueryIndex."""
        return self.n_nodes - self.n_leaves

    def is_leaf(self, node: int) -> bool:
        return node < self.n_leaves

    def clique_of(self, rid: int) -> Tuple[int, ...]:
        """Canonical vertex tuple of r-clique ``rid``."""
        if not 0 <= rid < self.n_leaves:
            raise ParameterError(
                f"clique id {rid} out of range [0, {self.n_leaves})")
        return tuple(int(v) for v in self.cliques[rid])

    def vertices_of(self, node: int) -> np.ndarray:
        """Sorted vertex ids of ``node``'s nucleus (mapped view)."""
        return self._node_vertices[
            self._node_indptr[node]:self._node_indptr[node + 1]]

    def n_vertices_of(self, node: int) -> int:
        return int(self._node_indptr[node + 1] - self._node_indptr[node])

    def leaves_of_vertex(self, vertex: int) -> np.ndarray:
        if not 0 <= vertex < self.graph_n:
            return np.empty(0, dtype=np.int64)
        return self._vertex_leaves[
            self._vertex_indptr[vertex]:self._vertex_indptr[vertex + 1]]

    def stats(self) -> Dict[str, float]:
        """The same summary shape as ``HierarchyQueryIndex.stats()``."""
        internal_levels = self.level[self.n_leaves:]
        positive = np.unique(self.level[self.level > 0]) \
            if self.n_nodes else np.empty(0)
        return {
            "n_leaves": self.n_leaves,
            "n_nuclei": len(self),
            "n_nodes": self.n_nodes,
            "n_roots": int((self.parent == NO_PARENT).sum()),
            "max_level": float(positive.max()) if positive.size else 0.0,
            "n_vertices": int((self._vertex_indptr[1:]
                               > self._vertex_indptr[:-1]).sum()),
            "n_vertex_entries": int(self._node_indptr[-1]),
            "index_bytes": self.nbytes,
        }

    def summary(self) -> str:
        """One-line human-readable description (``repro store info``)."""
        meta = self.meta
        graph = meta.get("graph", {})
        return (f"({self.r},{self.s}) artifact of "
                f"{graph.get('name') or 'graph'} "
                f"(n={graph.get('n')}, m={graph.get('m')}): "
                f"{self.n_leaves} {self.r}-cliques, "
                f"{len(self)} nuclei, max core {meta.get('max_core'):g}, "
                f"{self.nbytes} bytes")

    # -- coreness lookups --------------------------------------------------

    def _encoding(self) -> Tuple[Optional[np.ndarray], int]:
        """Sorted int64 keys over the clique rows (see CliqueIndex)."""
        if self._encoded is None:
            if self.n_leaves == 0:
                self._encoded = (None, 0)
            else:
                stride = int(self.cliques.max()) + 1
                if self.r * max(stride - 1, 1).bit_length() >= 63:
                    self._encoded = (None, 0)
                else:
                    keys = self.cliques[:, 0].astype(np.int64)
                    for col in range(1, self.r):
                        keys = keys * stride + self.cliques[:, col]
                    self._encoded = (keys, stride)
        return self._encoded

    def id_of(self, clique: Sequence[int]) -> int:
        """Id of the r-clique with the given vertices (any order)."""
        key = sorted(int(v) for v in clique)
        if len(key) != self.r:
            raise ParameterError(
                f"expected an r-clique of {self.r} vertices, got {len(key)}")
        keys, stride = self._encoding()
        if keys is not None and all(0 <= v < stride for v in key):
            query = 0
            for v in key:
                query = query * stride + v
            pos = int(np.searchsorted(keys, query))
            if pos < len(keys) and keys[pos] == query:
                return pos
        elif keys is None and self.n_leaves:
            # Overflow fallback: lexicographic binary search on the rows.
            row = np.asarray(key, dtype=np.int64)
            lo, hi = 0, self.n_leaves
            while lo < hi:
                mid = (lo + hi) // 2
                cmp = self.cliques[mid]
                if tuple(cmp) < tuple(row):
                    lo = mid + 1
                else:
                    hi = mid
            if lo < self.n_leaves and tuple(self.cliques[lo]) == tuple(row):
                return lo
        raise ParameterError(f"clique {tuple(key)} is not in the artifact")

    def core_of(self, clique: Sequence[int]) -> float:
        """Core number of the r-clique with the given vertices."""
        return float(self.core[self.id_of(clique)])

    # -- queries (mirroring HierarchyQueryIndex exactly) -------------------

    def _community_at(self, node: int) -> Community:
        return Community(
            node=node,
            level=float(self.level[node]),
            vertices=tuple(int(v) for v in self.vertices_of(node)),
            n_r_cliques=int(self._n_leaves_under[node]),
            density=float(self.density[node]),
        )

    def _ancestors(self, node: int) -> List[int]:
        out = [node]
        parent = self.parent
        while parent[out[-1]] != NO_PARENT:
            out.append(int(parent[out[-1]]))
        return out

    def _nodes_containing(self, vertex: int) -> List[int]:
        seen: Set[int] = set()
        for leaf in self.leaves_of_vertex(vertex):
            for node in self._ancestors(int(leaf)):
                if node in seen:
                    break
                seen.add(node)
        return sorted(seen,
                      key=lambda n: (self.level[n], -self.n_vertices_of(n)),
                      reverse=True)

    def _contains_all(self, node: int, vertices: Sequence[int]) -> bool:
        mine = self.vertices_of(node)
        pos = np.searchsorted(mine, list(vertices))
        return bool(np.all(pos < len(mine))
                    and np.all(mine[np.minimum(pos, len(mine) - 1)]
                               == list(vertices)))

    def community(self, vertices: Sequence[int],
                  min_level: float = 1.0) -> Optional[Community]:
        """Smallest (deepest, then smallest) nucleus containing the query."""
        query = set(int(v) for v in vertices)
        if not query:
            raise ParameterError("community() needs at least one vertex")
        for v in query:
            if not 0 <= v < self.graph_n:
                raise ParameterError(f"vertex {v} out of range")
        sorted_query = sorted(query)
        anchor = next(iter(query))
        best: Optional[int] = None
        for node in self._nodes_containing(anchor):
            if self.is_leaf(node):
                continue
            if self.level[node] < min_level:
                continue
            if not self._contains_all(node, sorted_query):
                continue
            if best is None or self._better_community(node, best):
                best = node
        return self._community_at(best) if best is not None else None

    def _better_community(self, a: int, b: int) -> bool:
        la, lb = self.level[a], self.level[b]
        if la != lb:
            return bool(la > lb)
        return self.n_vertices_of(a) < self.n_vertices_of(b)

    def strongest_community(self, vertex: int,
                            min_vertices: int = 2) -> Optional[Community]:
        """The deepest nucleus of size >= ``min_vertices`` with ``vertex``."""
        for node in self._nodes_containing(int(vertex)):
            if (self.level[node] >= 1
                    and self.n_vertices_of(node) >= min_vertices
                    and not self.is_leaf(node)):
                return self._community_at(node)
        return None

    def membership(self, vertex: int) -> List[Community]:
        """All nuclei containing ``vertex``, deepest first."""
        return [self._community_at(node)
                for node in self._nodes_containing(int(vertex))
                if self.level[node] >= 1 and not self.is_leaf(node)]

    def top_k_densest(self, k: int, min_vertices: int = 3) -> List[Community]:
        """The k densest nuclei with at least ``min_vertices`` vertices."""
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        candidates = [
            self._community_at(node)
            for node in range(self.n_leaves, self.n_nodes)
            if self.n_vertices_of(node) >= min_vertices
        ]
        candidates.sort(key=lambda c: (c.density, c.level, -len(c)),
                        reverse=True)
        return candidates[:k]

    def top_k_deepest(self, k: int, min_vertices: int = 2) -> List[Community]:
        """The k deepest (highest-level) nuclei with >= ``min_vertices``."""
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        candidates = [
            self._community_at(node)
            for node in range(self.n_leaves, self.n_nodes)
            if self.n_vertices_of(node) >= min_vertices
        ]
        candidates.sort(key=lambda c: (c.level, c.density), reverse=True)
        return candidates[:k]

    def __repr__(self) -> str:
        return (f"DecompositionArtifact(path={self.path!r}, r={self.r}, "
                f"s={self.s}, n_r={self.n_leaves}, nuclei={len(self)})")


def load_artifact(path: str) -> DecompositionArtifact:
    """Open a ``.nda`` artifact read-only via ``numpy.memmap``.

    Validates the header and column table (magic, version, metadata
    checksum, truncation) but does not touch the payload pages -- a
    multi-GB artifact opens in milliseconds. Use
    :meth:`DecompositionArtifact.verify` for a full integrity pass.
    """
    return DecompositionArtifact(path)
