"""Unit + property tests for the baseline implementations (NH, PHCD, oracles)."""

import pytest
from hypothesis import given, settings, strategies as st

from conftest import oracle_chain
from repro.baselines.kcore import (core_numbers, degeneracy, k_core_subgraph)
from repro.baselines.ktruss import max_truss, truss_core_numbers
from repro.baselines.naive_hierarchy import (coreness_histogram,
                                             level_graph_components,
                                             naive_hierarchy,
                                             nuclei_without_hierarchy)
from repro.baselines.nh import nh
from repro.baselines.phcd import kcore_peel, phcd
from repro.core.nucleus import peel_exact, prepare
from repro.graphs.generators import erdos_renyi, planted_nuclei
from repro.graphs.graph import Graph


class TestKCoreOracle:
    def test_complete_graph(self):
        assert core_numbers(Graph.complete(5)) == [4] * 5

    def test_path(self):
        assert core_numbers(Graph(3, [(0, 1), (1, 2)])) == [1, 1, 1]

    def test_matches_networkx(self):
        import networkx as nx
        g = erdos_renyi(80, 0.1, seed=12)
        nxg = nx.Graph(list(g.edges()))
        nxg.add_nodes_from(range(g.n))
        expected = nx.core_number(nxg)
        got = core_numbers(g)
        assert all(got[v] == expected[v] for v in range(g.n))

    def test_degeneracy_and_subgraph(self):
        g = planted_nuclei([5, 3], bridge=True)
        assert degeneracy(g) == 4
        assert k_core_subgraph(g, 4) == [0, 1, 2, 3, 4]
        assert k_core_subgraph(g, 5) == []


class TestKTrussOracle:
    def test_complete_graph(self):
        cores = truss_core_numbers(Graph.complete(5))
        assert set(cores.values()) == {3}
        assert max_truss(Graph.complete(5)) == 3

    def test_triangle_free(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert set(truss_core_numbers(g).values()) == {0}

    def test_two_triangles_sharing_edge(self):
        g = Graph(4, [(0, 1), (0, 2), (1, 2), (0, 3), (1, 3)])
        cores = truss_core_numbers(g)
        # peeling: all edges support >= 1; the shared edge ends at 1 too
        assert cores[(0, 1)] == 1
        assert cores[(2, 3)] if (2, 3) in cores else True


class TestNaiveOracleInternals:
    def test_level_components_definition(self, two_triangles_bridge):
        prep = prepare(two_triangles_bridge, 2, 3)
        res = peel_exact(prep.incidence)
        comps = level_graph_components(prep.incidence, res.core, 1)
        assert sorted(len(c) for c in comps) == [3, 3]

    def test_nuclei_without_hierarchy_matches_cut(self, social_graph):
        prep = prepare(social_graph, 2, 3)
        res = peel_exact(prep.incidence)
        tree = naive_hierarchy(prep.incidence, res.core)
        for c in tree.distinct_levels():
            direct = sorted(map(tuple, nuclei_without_hierarchy(
                prep.incidence, res.core, c)))
            from_tree = sorted(map(tuple, tree.nuclei_at(c)))
            assert direct == from_tree

    def test_coreness_histogram(self):
        assert coreness_histogram([1.0, 1.0, 0.0]) == {1.0: 2, 0.0: 1}


class TestNH:
    def test_matches_oracle_on_fixture_graphs(self, paper_like_graph):
        for r, s in [(1, 2), (2, 3), (3, 4)]:
            prep, res, oracle = oracle_chain(paper_like_graph, r, s)
            out = nh(paper_like_graph, r, s, prepared=prep)
            assert out.coreness.core == res.core
            assert out.tree.partition_chain() == oracle

    @settings(deadline=None, max_examples=12)
    @given(pairs=st.sets(st.tuples(st.integers(0, 11), st.integers(0, 11)),
                         max_size=40),
           rs=st.sampled_from([(1, 2), (2, 3), (2, 4), (3, 4)]))
    def test_matches_oracle_on_random_graphs(self, pairs, rs):
        r, s = rs
        g = Graph(12, [(u, v) for u, v in pairs if u != v])
        prep, res, oracle = oracle_chain(g, r, s)
        if prep.n_r == 0:
            return
        out = nh(g, r, s, prepared=prep)
        assert out.coreness.core == res.core
        assert out.tree.partition_chain() == oracle

    def test_pair_list_memory_footprint(self, social_graph):
        """NH's defining overhead: the stored cross-core pair list."""
        out = nh(social_graph, 2, 3)
        assert out.stats["cross_pairs_stored"] > 0
        assert out.stats["memory_units"] > out.coreness.n_r

    def test_generalizes_beyond_paper_rs(self, social_graph):
        prep, res, oracle = oracle_chain(social_graph, 1, 3)
        out = nh(social_graph, 1, 3, prepared=prep)
        assert out.tree.partition_chain() == oracle


class TestPHCD:
    def test_kcore_peel_matches_classic(self):
        g = erdos_renyi(60, 0.12, seed=6)
        res = kcore_peel(g)
        assert [int(c) for c in res.core] == core_numbers(g)

    def test_tree_matches_oracle(self, paper_like_graph):
        prep, res, oracle = oracle_chain(paper_like_graph, 1, 2)
        out = phcd(paper_like_graph)
        assert out.coreness.core == res.core
        assert out.tree.partition_chain() == oracle

    @settings(deadline=None, max_examples=12)
    @given(pairs=st.sets(st.tuples(st.integers(0, 14), st.integers(0, 14)),
                         max_size=50))
    def test_matches_oracle_on_random_graphs(self, pairs):
        g = Graph(15, [(u, v) for u, v in pairs if u != v])
        prep, res, oracle = oracle_chain(g, 1, 2)
        out = phcd(g)
        assert out.coreness.core == res.core
        assert out.tree.partition_chain() == oracle

    def test_no_clique_machinery_in_stats(self, social_graph):
        out = phcd(social_graph)
        assert out.stats["memory_units"] == 2 * social_graph.n
