"""Approximation-error statistics (Section 8.3).

The paper reports, per graph and (r, s): the mean/median multiplicative
error of the coreness estimates, the error of the maximum core number, and
the worst per-clique error -- all relative to the exact values. These
helpers compute the same statistics, with the same conventions:

* cliques with exact core 0 must have estimate 0 (checked) and are
  excluded from the ratios;
* the multiplicative error of a clique is ``estimate / exact`` (always
  ``>= 1`` for a valid run).
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean, median
from typing import List, Sequence

from ..errors import ParameterError


@dataclass(frozen=True)
class ErrorSummary:
    """Aggregate multiplicative-error statistics for one approximate run."""

    n_compared: int
    mean_error: float
    median_error: float
    max_error: float
    max_core_exact: float
    max_core_approx: float

    @property
    def max_core_error(self) -> float:
        """Multiplicative error of the maximum core number."""
        if self.max_core_exact == 0:
            return 1.0
        return self.max_core_approx / self.max_core_exact


def multiplicative_errors(exact: Sequence[float],
                          approx: Sequence[float]) -> List[float]:
    """Per-clique ratios ``approx / exact`` over cliques with exact > 0.

    Raises :class:`ParameterError` on a ratio below 1 (an under-estimate
    would violate Theorem 6.3) or on a nonzero estimate for a zero core.
    """
    if len(exact) != len(approx):
        raise ParameterError(
            f"length mismatch: {len(exact)} exact vs {len(approx)} approx")
    ratios: List[float] = []
    for i, (e, a) in enumerate(zip(exact, approx)):
        if e == 0:
            if a != 0:
                raise ParameterError(
                    f"clique {i}: estimate {a} for exact core 0")
            continue
        ratio = a / e
        if ratio < 1.0 - 1e-9:
            raise ParameterError(
                f"clique {i}: estimate {a} below exact core {e}")
        ratios.append(max(ratio, 1.0))
    return ratios


def summarize_errors(exact: Sequence[float],
                     approx: Sequence[float]) -> ErrorSummary:
    """Compute the Section 8.3 error statistics for one run."""
    ratios = multiplicative_errors(exact, approx)
    if not ratios:
        return ErrorSummary(0, 1.0, 1.0, 1.0,
                            max(exact, default=0.0), max(approx, default=0.0))
    return ErrorSummary(
        n_compared=len(ratios),
        mean_error=mean(ratios),
        median_error=median(ratios),
        max_error=max(ratios),
        max_core_exact=max(exact, default=0.0),
        max_core_approx=max(approx, default=0.0),
    )
