"""The k-clique densest subgraph, and its relationship to nuclei.

The paper's related work frames nucleus decomposition next to the
k-clique densest subgraph problem (Tsourakakis; Shi et al.'s parallel
peeling). This example runs both on one graph and shows how they relate:

* the greedy 1/k-approximation and the O(log n)-round batch variant find
  (nearly) the same dense block;
* the block they find lives inside a deep (1, k) nucleus, so the
  hierarchy's deepest nuclei are natural densest-subgraph candidates --
  and the hierarchy gives you *all* of the candidates at once.

Run:  python examples/densest_subgraph.py
"""

from math import comb

from repro import (k_clique_densest, k_clique_densest_parallel,
                   nucleus_decomposition)
from repro.graphs.generators import barabasi_albert, with_planted_communities

K = 3


def main():
    base = barabasi_albert(600, 3, seed=55)
    graph = with_planted_communities(base, sizes=[16, 10], p_in=0.85,
                                     seed=56, name="densest-demo")
    print(f"graph: n={graph.n}, m={graph.m}\n")

    greedy = k_clique_densest(graph, k=K)
    batch = k_clique_densest_parallel(graph, k=K, eps=0.5)
    print(f"greedy 1/{K}-approx : {greedy.size} vertices, "
          f"{K}-clique density {greedy.density:.2f}, "
          f"{greedy.rounds} peel rounds")
    print(f"batch (eps=0.5)    : {batch.size} vertices, "
          f"density {batch.density:.2f}, "
          f"{batch.rounds} peel rounds  <- O(log n) rounds\n")

    # The nucleus view: the deepest (1, K) nuclei are the dense blocks.
    decomposition = nucleus_decomposition(graph, 1, K)
    deepest = decomposition.nuclei_at(decomposition.max_core)
    print(f"(1,{K}) nucleus hierarchy: max core "
          f"{decomposition.max_core:g}; deepest nuclei: "
          f"{[len(n) for n in deepest]} vertices")
    overlap = set(greedy.vertices) & set(deepest[0])
    print(f"overlap of densest subgraph with the deepest nucleus: "
          f"{len(overlap)}/{greedy.size} vertices")

    # And the hierarchy gives every density level, not just the top:
    print("\ncandidate dense blocks from the hierarchy (level = min "
          f"{K}-cliques per vertex):")
    for level in decomposition.hierarchy_levels()[:5]:
        sizes = [len(n) for n in decomposition.nuclei_at(level)]
        print(f"  level {level:>5g}: {len(sizes)} nuclei, sizes {sizes[:6]}")

    assert greedy.density >= batch.density / 2  # sanity: same ballpark


if __name__ == "__main__":
    main()
