"""Figure 8: self-relative speedup of ANH-TE and ANH-EL vs thread count.

The paper plots speedups on dblp and skitter for several (r, s) values on
1..30 cores plus 60 hyper-threads ("30h"). Two series are produced:

* **Brent-model series** -- the algorithms' *work* and *span* measured
  with the instrumented runtime and mapped through Brent's bound, the
  same scheduling model the paper's analysis uses, with T_1 calibrated
  to the measured wall-clock (see DESIGN.md Section 2).
* **Measured series** -- real wall-clock speedups of the dominant cost
  (the per-vertex s-clique listing, Section 8.1) run through
  ``repro.parallel.backend.ProcessBackend`` at several worker counts,
  against the ``SerialBackend`` baseline. This series only shows real
  speedups on a multi-core machine; on a single-CPU host it reports the
  process-dispatch overhead instead (still a useful number).

Expected shape: near-linear speedup at low thread counts, saturation
toward 30h; larger (r, s) (more work per peel round) scale further, and
the approximate algorithm (polylog span) scales furthest.
"""

from __future__ import annotations

import os
from typing import Dict, List

import pytest

from repro.analysis.reporting import banner, format_series
from repro.cliques.enumeration import enumerate_cliques_via
from repro.core.approx import approx_anh_el
from repro.core.framework import anh_el
from repro.core.hierarchy_te import hierarchy_te_practical
from repro.graphs.orientation import arb_orient
from repro.parallel.backend import ProcessBackend, SerialBackend
from repro.parallel.counters import WorkSpanCounter
from repro.parallel.runtime import (amdahl_fraction, speedup_curve)

from bench_common import bench_graph, kernel_graph, timed, within_budget

THREADS = (1, 2, 4, 8, 16, 30, 60)
GRAPHS = ("dblp", "skitter")
RS = ((2, 3), (3, 4), (1, 2))

#: Dataset scale for the measured (wall-clock) backend series: large
#: enough that pool start-up and result pickling amortize.
MEASURED_SCALE = float(os.environ.get("REPRO_BENCH_MEASURED_SCALE", "12.0"))

#: Worker counts for the measured series (clamped to the host's CPUs in
#: the test; the script reports all of them regardless).
MEASURED_WORKERS = (1, 2, 4)


def run_curves(graph_names=GRAPHS, rs_values=RS):
    """List of (label, curve, serial_fraction, wall_seconds)."""
    out = []
    for name in graph_names:
        graph = bench_graph(name)
        for r, s in rs_values:
            if not within_budget(graph, r, s):
                continue
            for algo_name, fn in (("anh-te", hierarchy_te_practical),
                                  ("anh-el", anh_el)):
                counter = WorkSpanCounter()
                run = timed(lambda: fn(graph, r, s, counter=counter))
                snap = counter.snapshot()
                out.append((f"{name} ({r},{s}) {algo_name}",
                            speedup_curve(snap, THREADS),
                            amdahl_fraction(snap), run.seconds))
    return out


def run_measured_backend_rows(graph_name: str = "dblp", s: int = 3,
                              worker_counts=MEASURED_WORKERS,
                              scale: float = MEASURED_SCALE):
    """Measured wall-clock of (2, 3)-style s-clique listing per backend.

    Returns ``(rows, identical)`` where each row is
    ``(backend_label, workers, seconds, speedup_vs_serial)`` and
    ``identical`` states whether every backend produced the same clique
    list (the differential check, repeated here so the benchmark itself
    guards against a silently wrong fast path).
    """
    graph = bench_graph(graph_name, scale=scale)
    orientation = arb_orient(graph)
    serial = timed(lambda: enumerate_cliques_via(SerialBackend(),
                                                 orientation, s))
    baseline = serial.payload
    rows = [("serial", 1, serial.seconds, 1.0)]
    identical = True
    for workers in worker_counts:
        with ProcessBackend(workers=workers) as backend:
            run = timed(lambda: enumerate_cliques_via(backend, orientation, s))
        identical = identical and run.payload == baseline
        rows.append((f"process[{workers}]", workers, run.seconds,
                     serial.seconds / run.seconds if run.seconds else 1.0))
    return rows, identical


def format_measured_rows(rows, identical: bool, graph_name: str = "dblp",
                         s: int = 3) -> str:
    lines = [f"measured wall-clock: {graph_name} {s}-clique listing "
             f"(scale {MEASURED_SCALE:g}, {os.cpu_count()} CPU(s) visible)"]
    for label, workers, seconds, speedup in rows:
        lines.append(f"  {label:<12} {seconds:8.3f}s  {speedup:5.2f}x")
    lines.append(f"  backend outputs identical: {identical}")
    return "\n".join(lines)


def build_report(curves=None, measured=None) -> str:
    if curves is None:
        curves = run_curves()
    series = {label: [f"{v:.2f}x" for v in curve]
              for label, curve, _, _ in curves}
    xs = [f"{t}t" if t <= 30 else "30h" for t in THREADS]
    table = format_series("threads", xs, series,
                          title="Figure 8: simulated self-relative speedups "
                                "(Brent's bound over measured work/span)")
    details = "\n".join(
        f"  {label}: wall {seconds:.3f}s, span/work {fraction:.2e}"
        for label, _, fraction, seconds in curves)
    if measured is None:
        measured = run_measured_backend_rows()
    measured_block = format_measured_rows(*measured)
    return (banner("Figure 8") + "\n" + table + "\n" + details
            + "\n" + measured_block)


def test_fig8_report():
    curves = run_curves(graph_names=("dblp",), rs_values=((2, 3), (3, 4)))
    print(build_report(curves))
    assert curves
    for label, curve, fraction, _ in curves:
        # monotone speedups starting at 1
        assert abs(curve[0] - 1.0) < 1e-9
        assert curve == sorted(curve), label
        # meaningful parallelism: 30 cores give clearly superlinear-over-1
        assert curve[THREADS.index(30)] > 4, label

    # Larger (r, s) scales at least as well (more work per round).
    by_rs = {}
    for label, curve, _, _ in curves:
        rs = label.split("(")[1].split(")")[0]
        by_rs.setdefault(rs, []).append(curve[-1])
    if "2,3" in by_rs and "3,4" in by_rs:
        assert max(by_rs["3,4"]) >= 0.8 * max(by_rs["2,3"])


def test_fig8_measured_backend_speedup():
    """ProcessBackend beats SerialBackend on real wall-clock (multicore).

    On a single-CPU host a process pool cannot beat serial CPU-bound
    Python, so the speedup assertion is gated on visible CPUs; the
    differential half (identical clique lists) is asserted regardless.
    """
    ncpu = os.cpu_count() or 1
    if ncpu < 2:
        rows, identical = run_measured_backend_rows(worker_counts=(2,),
                                                    scale=2.0)
        print(format_measured_rows(rows, identical))
        assert identical
        pytest.skip("measured speedup needs >= 2 CPUs "
                    "(backend equivalence verified)")
    rows, identical = run_measured_backend_rows(
        worker_counts=tuple(sorted({2, min(4, ncpu)})))
    print(format_measured_rows(rows, identical))
    assert identical
    best = max(speedup for _, workers, _, speedup in rows if workers >= 2)
    assert best > 1.3, rows


def test_fig8_approx_scales_further():
    graph = bench_graph("dblp")
    exact_counter, approx_counter = WorkSpanCounter(), WorkSpanCounter()
    anh_el(graph, 2, 3, counter=exact_counter)
    approx_anh_el(graph, 2, 3, delta=0.5, counter=approx_counter)
    exact_curve = speedup_curve(exact_counter.snapshot(), THREADS)
    approx_curve = speedup_curve(approx_counter.snapshot(), THREADS)
    print(f"exact 30h speedup {exact_curve[-1]:.2f}x, "
          f"approx 30h speedup {approx_curve[-1]:.2f}x")
    assert approx_curve[-1] >= exact_curve[-1] * 0.9


def test_benchmark_counter_overhead(benchmark):
    """The instrumented run vs the kernel cost (overhead sanity)."""
    graph = kernel_graph("dblp")
    benchmark(lambda: anh_el(graph, 2, 3, counter=WorkSpanCounter()))


if __name__ == "__main__":
    print(build_report())
