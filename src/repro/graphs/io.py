"""SNAP-style edge-list input/output.

The paper's inputs are SNAP [37] graphs distributed as whitespace-separated
edge lists with ``#`` comment lines. :func:`read_edge_list` accepts that
format (with arbitrary vertex labels, which are densified to ``0..n-1``),
and :func:`write_edge_list` produces it, so users can round-trip real SNAP
downloads through this library unchanged.
"""

from __future__ import annotations

import gzip
import io
import os
from typing import Dict, List, TextIO, Tuple, Union

from ..errors import GraphFormatError
from .graph import Graph

PathOrFile = Union[str, os.PathLike, TextIO]


def _is_gzip_path(path: PathOrFile) -> bool:
    return str(path).endswith(".gz")


def _open_for_read(source: PathOrFile) -> Tuple[TextIO, bool]:
    if hasattr(source, "read"):
        return source, False  # type: ignore[return-value]
    if _is_gzip_path(source):
        # SNAP distributes its edge lists gzip-compressed.
        return gzip.open(source, "rt", encoding="utf-8"), True
    return open(source, "r", encoding="utf-8"), True


def _open_for_write(target: PathOrFile) -> Tuple[TextIO, bool]:
    if hasattr(target, "write"):
        return target, False  # type: ignore[return-value]
    if _is_gzip_path(target):
        return gzip.open(target, "wt", encoding="utf-8"), True
    return open(target, "w", encoding="utf-8"), True


def read_edge_list(source: PathOrFile, name: str = "",
                   directed_ok: bool = True) -> Graph:
    """Parse a SNAP-style edge list into a :class:`Graph`.

    * lines starting with ``#`` or ``%`` are comments;
    * each data line holds two whitespace-separated vertex labels (any
      hashable token: integers are kept numeric-ordered, other labels are
      densified in first-seen order);
    * duplicate and reversed edges merge (SNAP ships many directed lists;
      set ``directed_ok=False`` to reject files containing both (u,v) and
      (v,u));
    * self-loops are skipped (SNAP data contains a few).
    """
    handle, should_close = _open_for_read(source)
    try:
        labels: Dict[str, int] = {}
        edges: List[Tuple[int, int]] = []
        seen_directed = set()
        has_reverse = False
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(("#", "%")):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"line {lineno}: expected two tokens, got {stripped!r}")
            a, b = parts[0], parts[1]
            if a == b:
                continue
            ia = labels.setdefault(a, len(labels))
            ib = labels.setdefault(b, len(labels))
            if (ib, ia) in seen_directed:
                has_reverse = True
            seen_directed.add((ia, ib))
            edges.append((ia, ib))
        if has_reverse and not directed_ok:
            raise GraphFormatError(
                "edge list contains both directions of an edge")
        # If every label is an integer, keep numeric order for stable ids.
        if labels and all(k.lstrip("-").isdigit() for k in labels):
            ordered = sorted(labels, key=int)
            remap = {labels[k]: i for i, k in enumerate(ordered)}
            edges = [(remap[u], remap[v]) for u, v in edges]
        return Graph.from_edges(edges, n=len(labels), name=name)
    finally:
        if should_close:
            handle.close()


def write_edge_list(graph: Graph, target: PathOrFile,
                    header: bool = True) -> None:
    """Write ``graph`` as a SNAP-style edge list (one ``u v`` line per edge)."""
    handle, should_close = _open_for_write(target)
    try:
        if header:
            handle.write(f"# Nodes: {graph.n} Edges: {graph.m}\n")
            if graph.name:
                handle.write(f"# Name: {graph.name}\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")
    finally:
        if should_close:
            handle.close()


def graph_from_string(text: str, name: str = "") -> Graph:
    """Parse an edge list from an in-memory string (tests, examples)."""
    return read_edge_list(io.StringIO(text), name=name)
