"""Connected components: linear-work low-span algorithm + BFS reference.

Algorithm 1 (line 15) runs "parallel linear-work connectivity" on the level
graphs ``H``; the theoretical bounds cite Gazit's O(m) work / O(log n) span
w.h.p. algorithm [22]. We implement the classic *hook-and-contract*
(random-mate style) scheme, which has the same profile up to log factors
and -- unlike plugging in a union-find -- is a genuinely low-span parallel
algorithm, so the span accounting in the simulated runtime is honest:

repeat until no live edge:
  1. **hook**: every edge (u, v) between different super-vertices hooks the
     higher label under the lower (a priority write);
  2. **shortcut**: pointer-jump all labels to their roots;
  3. **contract**: keep only edges whose endpoints still differ.

Each round halves (in expectation, deterministically here via min-hooking)
the number of live components touched by edges, giving O(log n) rounds.

Graphs are passed as an edge list over ``n`` dense vertex ids because the
level graphs ``H`` are materialized that way by the hierarchy algorithms.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence, Tuple

from ..errors import GraphFormatError
from ..parallel.counters import NullCounter, WorkSpanCounter, log2_ceil
from .graph import Graph


def connected_components_edges(n: int, edges: Sequence[Tuple[int, int]],
                               counter: WorkSpanCounter = None) -> List[int]:
    """Component labels via hook-and-contract; label = min vertex id.

    Returns ``labels`` with ``labels[v]`` the smallest vertex id in ``v``'s
    component. Work is O((n + m) log n) in the worst case but O(n + m) in
    the common geometric-decay case; span is O(log^2 n). Both are charged
    per round to ``counter``.
    """
    counter = counter if counter is not None else NullCounter()
    for u, v in edges:
        if not (0 <= u < n and 0 <= v < n):
            raise GraphFormatError(
                f"edge ({u}, {v}) out of range for {n} vertices")
    label = list(range(n))
    live = [(u, v) for u, v in edges if u != v]
    rounds = 0
    while live:
        rounds += 1
        # Hook: min-priority write on each edge's endpoints.
        counter.add_parallel(len(live), 1)
        for u, v in live:
            lu, lv = label[u], label[v]
            if lu == lv:
                continue
            hi, lo = (lu, lv) if lu > lv else (lv, lu)
            if label[hi] > lo:
                label[hi] = lo
        # Shortcut: pointer jumping until labels are self-rooted.
        jump_rounds = 0
        while True:
            jump_rounds += 1
            counter.add_parallel(n, 1)
            changed = False
            for x in range(n):
                root = label[label[x]]
                if root != label[x]:
                    label[x] = root
                    changed = True
            if not changed:
                break
        counter.add_span(log2_ceil(max(jump_rounds, 1)))
        # Contract: drop intra-component edges.
        counter.add_parallel(len(live), 1)
        live = [(u, v) for u, v in live if label[u] != label[v]]
    # Final normalization so every vertex points directly at its root.
    counter.add_parallel(n, 1)
    for x in range(n):
        label[x] = label[label[x]]
    return label


def connected_components(graph: Graph,
                         counter: WorkSpanCounter = None) -> List[int]:
    """Component labels for a :class:`Graph` (min vertex id per component)."""
    return connected_components_edges(graph.n, list(graph.edges()), counter)


def components_as_dict(labels: Sequence[int]) -> Dict[int, List[int]]:
    """Group vertices by component label."""
    out: Dict[int, List[int]] = {}
    for v, lab in enumerate(labels):
        out.setdefault(lab, []).append(v)
    return out


def n_components(labels: Sequence[int]) -> int:
    return len(set(labels))


def bfs_components(graph: Graph) -> List[int]:
    """Sequential BFS reference implementation (oracle for tests)."""
    label = [-1] * graph.n
    for start in range(graph.n):
        if label[start] != -1:
            continue
        label[start] = start
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if label[v] == -1:
                    label[v] = start
                    queue.append(v)
    return label


def same_partition(labels_a: Sequence[int], labels_b: Sequence[int]) -> bool:
    """Whether two labelings induce the same partition of the vertices."""
    if len(labels_a) != len(labels_b):
        return False
    forward: Dict[int, int] = {}
    backward: Dict[int, int] = {}
    for a, b in zip(labels_a, labels_b):
        if forward.setdefault(a, b) != b:
            return False
        if backward.setdefault(b, a) != a:
            return False
    return True
