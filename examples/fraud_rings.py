"""Detecting dense collusion rings in a sparse interaction graph.

Fraud detection is one of the paper's motivating applications (Section 1):
collusion rings -- accounts that all interact with one another -- appear
as small, unusually dense subgraphs buried in a large sparse graph. The
higher-order (r, s) nuclei are much more selective than plain k-cores:
a (3, 4) nucleus requires every *triangle* to be in many 4-cliques, which
organic interaction graphs rarely produce.

This example plants three rings in a sparse transaction-like graph and
shows that:

* the (1, 2) core (classic k-core) flags a large, noisy candidate set;
* the (3, 4) nuclei isolate the planted rings almost exactly.

Run:  python examples/fraud_rings.py
"""

import random

from repro import nucleus_decomposition
from repro.graphs.generators import barabasi_albert, with_planted_communities
from repro.graphs.graph import Graph


def build_transactions(n=900, seed=5):
    """A sparse scale-free interaction graph with 3 planted rings."""
    base = barabasi_albert(n, 2, seed=seed)
    rng = random.Random(seed + 1)
    rings = []
    edges = list(base.edges())
    used = set()
    for size in (9, 7, 6):
        ring = []
        while len(ring) < size:
            v = rng.randrange(n)
            if v not in used:
                used.add(v)
                ring.append(v)
        rings.append(sorted(ring))
        for i, u in enumerate(ring):
            for v in ring[i + 1:]:
                if rng.random() < 0.9:
                    edges.append((u, v))
    return Graph(n, edges, name="transactions"), rings


def jaccard(a, b):
    a, b = set(a), set(b)
    return len(a & b) / len(a | b)


def main():
    graph, rings = build_transactions()
    print(f"interaction graph: {graph.n} accounts, {graph.m} interactions")
    print(f"planted rings: {[len(r) for r in rings]} accounts\n")

    # Baseline: classic k-core (the (1,2) nucleus). The deep core is big
    # and noisy -- hubs of the scale-free graph survive peeling.
    kcore = nucleus_decomposition(graph, 1, 2)
    deepest = kcore.max_core
    candidates = sorted({v for nucleus in kcore.nuclei_at(deepest)
                         for v in nucleus})
    print(f"k-core baseline: deepest core (k={deepest:g}) flags "
          f"{len(candidates)} accounts")

    # Higher-order: (3,4) nuclei. Only near-clique structure survives.
    nucleus = nucleus_decomposition(graph, 3, 4)
    print(f"(3,4) decomposition: max core {nucleus.max_core:g}, "
          f"{nucleus.tree.n_internal} nuclei\n")
    suspects = [n for n in nucleus.nuclei_at(1) if len(n) >= 5]
    suspects.sort(key=len, reverse=True)
    print(f"(3,4) nuclei with >= 5 accounts: {len(suspects)}")
    for found in suspects:
        best = max(rings, key=lambda ring: jaccard(found, ring))
        print(f"  flagged {len(found)} accounts -> best planted-ring "
              f"overlap (Jaccard): {jaccard(found, best):.2f}")

    recovered = sum(
        1 for ring in rings
        if any(jaccard(found, ring) > 0.6 for found in suspects))
    print(f"\nrecovered {recovered}/{len(rings)} planted rings via "
          f"(3,4) nuclei")
    assert recovered >= 2, "expected the higher-order nuclei to find rings"


if __name__ == "__main__":
    main()
