"""Section 8.1 statistics: link/unite counts, memory, time split.

The paper explains Figure 6's rankings with three measurements on dblp and
youtube, all machine-independent, which this harness reproduces exactly:

* the number of LINK + UNITE operations each variant performs (ANH-BL up
  to 39.75x the others; ANH-EL vs ANH-TE flips with ``s - r``);
* the memory overhead of the hierarchy structures (ANH-EL = 2 n_r ints,
  ANH-TE slightly more, ANH-BL = k n_r);
* the fraction of total time spent computing coreness vs building the
  hierarchy (the paper: 46.5% / 35.3% / 36.1% on average for BL/EL/TE).
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.reporting import banner, format_table
from repro.core.framework import anh_bl, anh_el
from repro.core.hierarchy_te import hierarchy_te_practical

from bench_common import (bench_graph, kernel_graph, prepare_cached,
                          rs_grid, within_budget)

GRAPHS = ("dblp", "youtube")
RS = ((1, 2), (1, 3), (2, 3), (2, 4), (3, 4), (2, 5))

VARIANTS = (("anh-te", hierarchy_te_practical),
            ("anh-el", anh_el),
            ("anh-bl", anh_bl))


def run_stats(graph_names=GRAPHS, rs_values=RS):
    cache: Dict = {}
    rows = []
    for name in graph_names:
        graph = bench_graph(name)
        for r, s in rs_values:
            if not within_budget(graph, r, s):
                continue
            prepared = prepare_cached(cache, graph, r, s)
            per_variant = {}
            for variant, fn in VARIANTS:
                out = fn(graph, r, s, prepared=prepared)
                ops = out.stats.get("link_calls", 0) + \
                    out.stats.get("unite_calls", 0)
                t_core = out.stats.get("seconds_coreness", 0.0)
                t_tree = out.stats.get("seconds_tree", 0.0)
                per_variant[variant] = {
                    "ops": ops,
                    "memory": out.stats.get("memory_units", 0),
                    "core_fraction": (t_core / (t_core + t_tree)
                                      if t_core + t_tree > 0 else 0.0),
                }
            rows.append((name, r, s, per_variant))
    return rows


def build_report(rows=None) -> str:
    if rows is None:
        rows = run_stats()
    op_rows, mem_rows, frac_rows = [], [], []
    for name, r, s, pv in rows:
        op_rows.append((name, f"({r},{s})", pv["anh-te"]["ops"],
                        pv["anh-el"]["ops"], pv["anh-bl"]["ops"],
                        f"{pv['anh-bl']['ops'] / max(min(pv['anh-te']['ops'], pv['anh-el']['ops']), 1):.2f}x"))
        mem_rows.append((name, f"({r},{s})", pv["anh-te"]["memory"],
                         pv["anh-el"]["memory"], pv["anh-bl"]["memory"],
                         f"{pv['anh-bl']['memory'] / max(pv['anh-el']['memory'], 1):.2f}x"))
        frac_rows.append((name, f"({r},{s})",
                          f"{pv['anh-te']['core_fraction']:.1%}",
                          f"{pv['anh-el']['core_fraction']:.1%}",
                          f"{pv['anh-bl']['core_fraction']:.1%}"))
    ops = format_table(
        ("graph", "(r,s)", "anh-te", "anh-el", "anh-bl", "bl blowup"),
        op_rows, title="Section 8.1: LINK + UNITE operation counts")
    mem = format_table(
        ("graph", "(r,s)", "anh-te", "anh-el", "anh-bl", "bl vs el"),
        mem_rows, title="Section 8.1: hierarchy memory overhead (ints held)")
    frac = format_table(
        ("graph", "(r,s)", "anh-te core%", "anh-el core%", "anh-bl core%"),
        frac_rows,
        title="Section 8.1: coreness share of total decomposition time")
    return banner("Section 8.1") + "\n" + "\n\n".join((ops, mem, frac))


def test_sec81_report():
    rows = run_stats(graph_names=("dblp",), rs_values=((2, 3), (1, 3)))
    print(build_report(rows))
    for name, r, s, pv in rows:
        # ANH-BL performs the most link+unite work and holds the most
        # memory -- the paper's core observation.
        assert pv["anh-bl"]["ops"] >= pv["anh-el"]["ops"]
        assert pv["anh-bl"]["memory"] >= pv["anh-el"]["memory"]
        # ANH-EL's overhead is exactly 2 n_r; ANH-TE's is 3 n_r.
        assert pv["anh-te"]["memory"] == 1.5 * pv["anh-el"]["memory"]


def test_benchmark_link_el_kernel(benchmark):
    graph = kernel_graph("dblp")
    benchmark(lambda: anh_el(graph, 2, 4))


if __name__ == "__main__":
    print(build_report())
