"""Unit tests for the work-span counters (repro.parallel.counters)."""

import pytest
from hypothesis import given, strategies as st

from repro.parallel.counters import (NullCounter, WorkSpanCounter,
                                     WorkSpanSnapshot, geometric_span,
                                     log2_ceil)


class TestLog2Ceil:
    def test_small_values(self):
        assert log2_ceil(0) == 0
        assert log2_ceil(1) == 0
        assert log2_ceil(2) == 1
        assert log2_ceil(3) == 2
        assert log2_ceil(4) == 2
        assert log2_ceil(5) == 3
        assert log2_ceil(1024) == 10
        assert log2_ceil(1025) == 11

    @given(st.integers(min_value=1, max_value=10 ** 9))
    def test_is_ceiling_of_log2(self, n):
        k = log2_ceil(n)
        assert 2 ** k >= n
        assert k == 0 or 2 ** (k - 1) < n


class TestGeometricSpan:
    def test_trivial(self):
        assert geometric_span(0) == 0
        assert geometric_span(1) == 0

    def test_rounds_cover_contraction(self):
        # base^span >= n for all tested n
        for n in (2, 3, 10, 1000, 12345):
            s = geometric_span(n)
            assert 2.0 ** s >= n

    def test_other_base(self):
        assert geometric_span(8, base=8) == 1


class TestWorkSpanCounter:
    def test_initial_state(self):
        c = WorkSpanCounter()
        assert c.work == 0 and c.span == 0

    def test_serial_adds_to_both(self):
        c = WorkSpanCounter()
        c.add_serial(7)
        assert c.work == 7 and c.span == 7

    def test_parallel_round(self):
        c = WorkSpanCounter()
        c.add_parallel(100, 3)
        assert c.work == 100 and c.span == 3

    def test_parallel_for_span_is_logarithmic(self):
        c = WorkSpanCounter()
        c.add_parallel_for(1024, work_per_item=2)
        assert c.work == 2048
        assert c.span == 2 + 10

    def test_parallel_for_empty_is_noop(self):
        c = WorkSpanCounter()
        c.add_parallel_for(0)
        assert c.work == 0 and c.span == 0

    def test_merge_sequential_vs_parallel(self):
        a = WorkSpanCounter()
        a.add_parallel(10, 5)
        b = WorkSpanCounter()
        b.add_parallel(20, 3)
        seq = WorkSpanCounter()
        seq.merge(a)
        seq.merge(b)
        assert (seq.work, seq.span) == (30, 8)
        par = WorkSpanCounter()
        par.merge_parallel(a)
        par.merge_parallel(b)
        assert (par.work, par.span) == (30, 5)

    def test_snapshot_subtraction(self):
        c = WorkSpanCounter()
        c.add_parallel(10, 2)
        before = c.snapshot()
        c.add_parallel(5, 1)
        delta = c.snapshot() - before
        assert delta.work == 5 and delta.span == 1

    def test_reset(self):
        c = WorkSpanCounter()
        c.add_serial(3)
        c.reset()
        assert c.work == 0 and c.span == 0

    def test_parallelism(self):
        c = WorkSpanCounter()
        c.add_parallel(100, 4)
        assert c.parallelism == 25.0

    def test_parallelism_degenerate(self):
        assert WorkSpanCounter().parallelism == 1.0
        zero_span = WorkSpanSnapshot(work=10, span=0)
        assert zero_span.parallelism == 10.0

    @given(st.lists(st.tuples(st.integers(0, 1000), st.integers(0, 50)),
                    max_size=30))
    def test_totals_are_sums(self, rounds):
        c = WorkSpanCounter()
        for w, s in rounds:
            c.add_parallel(w, s)
        assert c.work == sum(w for w, _ in rounds)
        assert c.span == sum(s for _, s in rounds)


class TestNullCounter:
    def test_everything_is_a_noop(self):
        c = NullCounter()
        c.add_serial(10)
        c.add_parallel(10, 10)
        c.add_parallel_for(10)
        c.add_work(10)
        c.add_span(10)
        other = WorkSpanCounter()
        other.add_serial(5)
        c.merge(other)
        c.merge_parallel(other)
        assert c.work == 0 and c.span == 0

    def test_is_substitutable_for_counter(self):
        assert isinstance(NullCounter(), WorkSpanCounter)
