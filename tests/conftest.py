"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.nucleus import peel_exact, prepare
from repro.graphs import (Graph, erdos_renyi, planted_nuclei,
                          powerlaw_cluster)

#: (r, s) pairs exercised by the cross-validation tests. Small enough to be
#: fast on tiny graphs, wide enough to cover r=1, equal gaps, and big gaps.
RS_PAIRS = [(1, 2), (1, 3), (2, 3), (2, 4), (3, 4), (3, 5)]


@pytest.fixture(scope="session")
def triangle_graph() -> Graph:
    """A single triangle."""
    return Graph(3, [(0, 1), (1, 2), (0, 2)], name="triangle")


@pytest.fixture(scope="session")
def two_triangles_bridge() -> Graph:
    """Two triangles joined by a bridge edge -- the smallest interesting

    hierarchy: each triangle is a 1-(2,3) nucleus; the bridge edge has
    (2,3) core 0.
    """
    return Graph(6, [(0, 1), (1, 2), (0, 2),
                     (3, 4), (4, 5), (3, 5), (2, 3)], name="two-triangles")


@pytest.fixture(scope="session")
def paper_like_graph() -> Graph:
    """A graph shaped like the paper's Figure 1: nested dense blocks.

    A K6 (deep core) inside a looser community, a separate K4 community,
    both hanging off a sparse periphery -- produces a multi-level (1,3)
    and (2,3) hierarchy.
    """
    edges = []
    # K6 on 0-5
    for a in range(6):
        for b in range(a + 1, 6):
            edges.append((a, b))
    # Looser shell 6-9 around the K6
    edges += [(6, 0), (6, 1), (7, 1), (7, 2), (8, 2), (8, 3), (9, 0),
              (9, 3), (6, 7), (7, 8), (8, 9), (9, 6)]
    # Separate K4 on 10-13, bridged to the shell
    for a in range(10, 14):
        for b in range(a + 1, 14):
            edges.append((a, b))
    edges += [(9, 10)]
    # Sparse periphery
    edges += [(13, 14), (14, 15), (15, 16)]
    return Graph(17, edges, name="paper-like")


@pytest.fixture(scope="session")
def planted() -> Graph:
    """Cliques of sizes 6, 5, 4 chained by bridges (known core numbers)."""
    return planted_nuclei([6, 5, 4], bridge=True)


@pytest.fixture(scope="session")
def social_graph() -> Graph:
    """A small clique-rich social-network-like graph."""
    return powerlaw_cluster(120, 4, 0.8, seed=7)


def random_graphs(count: int = 4, n: int = 28, p: float = 0.3):
    """A deterministic family of small random graphs for sweeps."""
    return [erdos_renyi(n, p, seed=seed) for seed in range(count)]


def oracle_chain(graph: Graph, r: int, s: int):
    """(prepared, exact coreness, oracle partition chain) for a graph."""
    from repro.baselines.naive_hierarchy import naive_hierarchy
    prep = prepare(graph, r, s)
    result = peel_exact(prep.incidence)
    tree = naive_hierarchy(prep.incidence, result.core)
    return prep, result, tree.partition_chain()
