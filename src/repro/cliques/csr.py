"""Array-native s-clique incidence in CSR layout.

:class:`CSRIncidence` is the flat-array sibling of
:class:`~repro.cliques.incidence.MaterializedIncidence`: the same data --
every s-clique's member r-clique ids plus the per-r-clique postings --
held in ``numpy`` int64 arrays instead of Python tuples and lists. This
is the layout the paper's C++ artifact keeps (flat parallel arrays over
clique ids, Shi et al., SIGMOD 2024) and what the vectorized peeling
kernel (:mod:`repro.core.peel_csr`) scatters through with
``np.bincount``/fancy indexing.

Layout
------
``member_array``
    ``(n_s, s_choose_r)`` -- row ``sid`` holds the member r-clique ids of
    s-clique ``sid``, in :func:`itertools.combinations` order (identical
    to ``MaterializedIncidence.members(sid)``).
``posting_indptr`` / ``posting_indices``
    CSR postings: the s-clique ids containing r-clique ``rid`` are
    ``posting_indices[posting_indptr[rid]:posting_indptr[rid + 1]]``, in
    ascending sid order (identical to the streaming append order of the
    dict/list path).
``degree_array``
    ``posting_indptr[rid + 1] - posting_indptr[rid]`` -- the initial
    s-clique degrees, precomputed.

Construction consumes the existing chunked enumeration (serial generator
or :class:`~repro.parallel.backend.ExecutionBackend` fan-out), charges the
same work/span meters as the dict path, and produces ids/sids in exactly
the same order -- the differential suites pin byte-identical coreness and
identical hierarchy partition chains against ``MaterializedIncidence``.

The class also implements the
:class:`~repro.parallel.backend.ShareableContext` protocol, so a
:class:`~repro.parallel.backend.ProcessBackend` broadcast ships the four
arrays through ``multiprocessing.shared_memory`` (zero-copy, once per
pool) instead of pickling them per pool.
"""

from __future__ import annotations

from functools import partial
from itertools import combinations
from math import comb
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..parallel.backend import ExecutionBackend
from ..parallel.counters import NullCounter, WorkSpanCounter, log2_ceil
from ..graphs.graph import Graph
from ..graphs.orientation import Orientation
from .enumeration import enumerate_cliques
from .index import CliqueIndex
from .list_kernel import clique_matrix, clique_matrix_via, use_array_kernel

MemberTuple = Tuple[int, ...]


def member_id_array(index: CliqueIndex, s_cliques, s: int) -> np.ndarray:
    """Member-id rows for canonical s-clique vertex tuples, vectorized.

    Column ``j`` of the result is the id of the ``j``-th
    ``combinations(clique, r)`` subset -- each subset of a sorted tuple is
    itself sorted, so one :meth:`CliqueIndex.ids_of` bulk lookup per
    column pattern replaces ``n_s * s_choose_r`` dict probes.
    """
    r = index.r
    k = comb(s, r)
    n_s = len(s_cliques)
    out = np.empty((n_s, k), dtype=np.int64)
    if n_s == 0:
        return out
    verts = np.asarray(s_cliques, dtype=np.int64)
    for j, cols in enumerate(combinations(range(s), r)):
        out[:, j] = index.ids_of(verts[:, cols])
    return out


def _postings_csr(members: np.ndarray,
                  n_r: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build ``(indptr, indices, degrees)`` from the member-id rows.

    A stable argsort of the row-major flattened members groups postings
    by rid while preserving ascending sid order within each rid -- the
    exact order the streaming dict path appends them in.
    """
    n_s, k = members.shape
    flat = members.ravel()
    degrees = np.bincount(flat, minlength=n_r).astype(np.int64) \
        if flat.size else np.zeros(n_r, dtype=np.int64)
    indptr = np.zeros(n_r + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    order = np.argsort(flat, kind="stable")
    indices = order // max(k, 1)
    return indptr, indices.astype(np.int64, copy=False), degrees


def member_degree_counts(members: np.ndarray, n_r: int) -> List[int]:
    """Initial s-clique degree per r-clique id from the member-id rows.

    One ``bincount`` over the flattened rows -- the degrees-only slice of
    :func:`_postings_csr` for strategies that never store postings
    (``ReEnumIncidence``).
    """
    flat = members.ravel()
    if not flat.size:
        return [0] * n_r
    return np.bincount(flat, minlength=n_r).tolist()


class CSRIncidence:
    """Incidence with all s-cliques stored in flat CSR numpy arrays."""

    strategy = "csr"

    def __init__(self, graph: Graph, orientation: Orientation,
                 index: CliqueIndex, s: int,
                 counter: Optional[WorkSpanCounter] = None,
                 backend: Optional[ExecutionBackend] = None,
                 chunk_size: Optional[int] = None,
                 kernel: str = "auto") -> None:
        from .incidence import _members_chunk, _use_pool, validate_rs
        counter = counter if counter is not None else NullCounter()
        validate_rs(index.r, s)
        self.graph = graph
        self.orientation = orientation
        self.index = index
        self.r = index.r
        self.s = s
        self.s_choose_r = comb(s, index.r)
        n_r = len(index)
        if use_array_kernel(kernel):
            # Array-native path: the flat kernel emits the s-cliques as
            # one (n_s, s) matrix (workers return matrices against the
            # shared-memory-broadcast CSR orientation), and member ids
            # resolve via bulk CliqueIndex.ids_of -- no tuple round-trip.
            if _use_pool(backend):
                matrix = clique_matrix_via(backend, orientation, s, counter,
                                           chunk_size=chunk_size)
            else:
                matrix = clique_matrix(orientation, s, counter)
            members = member_id_array(index, matrix, s)
        elif _use_pool(backend):
            # Same fan-out as MaterializedIncidence: per-vertex s-clique
            # listing + member-id computation in workers, walked in
            # vertex-major chunk order so sids match the streaming path.
            token = backend.broadcast((orientation, index))
            results = backend.map_chunks(partial(_members_chunk, s=s),
                                         range(graph.n), token=token,
                                         chunk_size=chunk_size)
            enum_work = 0
            rows: List[MemberTuple] = []
            for chunk_members, chunk_work in results:
                enum_work += chunk_work
                rows.extend(chunk_members)
            counter.add_parallel(max(enum_work, 1),
                                 s + log2_ceil(max(graph.n, 1)))
            members = np.asarray(rows, dtype=np.int64).reshape(
                len(rows), self.s_choose_r)
        else:
            s_cliques = list(enumerate_cliques(orientation, s, counter))
            members = member_id_array(index, s_cliques, s)
        self.member_array = members
        self.posting_indptr, self.posting_indices, self.degree_array = \
            _postings_csr(members, n_r)
        counter.add_parallel(members.shape[0] * self.s_choose_r + 1,
                             1 + log2_ceil(max(members.shape[0], 1)))

    # -- MaterializedIncidence-compatible interface -----------------------

    @property
    def n_r(self) -> int:
        return int(self.posting_indptr.shape[0] - 1)

    @property
    def n_s(self) -> int:
        return int(self.member_array.shape[0])

    def initial_degrees(self) -> List[int]:
        return self.degree_array.tolist()

    def members(self, sid: int) -> MemberTuple:
        """Member r-clique ids of s-clique ``sid``."""
        return tuple(self.member_array[sid].tolist())

    def s_clique_ids_of(self, rid: int) -> Tuple[int, ...]:
        """Ids of the s-cliques containing r-clique ``rid``."""
        lo, hi = self.posting_indptr[rid], self.posting_indptr[rid + 1]
        return tuple(self.posting_indices[lo:hi].tolist())

    def s_cliques_containing(self, rid: int) -> Iterator[MemberTuple]:
        """Member tuples of every s-clique containing ``rid``."""
        lo, hi = self.posting_indptr[rid], self.posting_indptr[rid + 1]
        for row in self.member_array[self.posting_indices[lo:hi]].tolist():
            yield tuple(row)

    def iter_s_cliques(self) -> Iterator[MemberTuple]:
        """All s-cliques as member-id tuples (Algorithm 1, line 6)."""
        return (tuple(row) for row in self.member_array.tolist())

    def memory_units(self) -> int:
        """Integers held (the memory-overhead proxy used by Section 8.1)."""
        return int(self.member_array.size + self.posting_indices.size)

    # -- ShareableContext protocol ----------------------------------------

    def __shm_export__(self):
        """(meta, arrays) for zero-copy process broadcast.

        The worker-side reconstruction is a peeling-capable view: it has
        the arrays and the (r, s) parameters but not the graph,
        orientation, or index -- none of which the parallel gather path
        (:func:`repro.core.nucleus._gather_chunk`) touches.
        """
        meta = {"r": self.r, "s": self.s}
        arrays = (self.member_array, self.posting_indptr,
                  self.posting_indices, self.degree_array)
        return meta, arrays

    @classmethod
    def __shm_import__(cls, meta, arrays) -> "CSRIncidence":
        self = cls.__new__(cls)
        self.graph = None
        self.orientation = None
        self.index = None
        self.r = meta["r"]
        self.s = meta["s"]
        self.s_choose_r = comb(meta["s"], meta["r"])
        (self.member_array, self.posting_indptr,
         self.posting_indices, self.degree_array) = arrays
        return self
