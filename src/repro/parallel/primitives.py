"""Instrumented parallel primitives (Section 3 of the paper).

Each primitive executes sequentially but charges the work and span of its
standard work-efficient parallel implementation to a
:class:`~repro.parallel.counters.WorkSpanCounter`:

==================  =========================  ======================
primitive           work                       span
==================  =========================  ======================
``par_map``         ``O(n)``                   ``O(log n)``
``par_filter``      ``O(n)``                   ``O(log n)``
``par_reduce``      ``O(n)``                   ``O(log n)``
``par_scan``        ``O(n)``                   ``O(log n)``
``par_sort``        ``O(n log n)``             ``O(log^2 n)``
``par_semisort``    ``O(n)`` (expected)        ``O(log n)`` w.h.p.
``par_hash_build``  ``O(n)`` (expected)        ``O(log n)`` w.h.p.
``par_count``       ``O(n)``                   ``O(log n)``
==================  =========================  ======================

These spans are the ones quoted in the paper's preliminaries (parallel hash
tables [25], list ranking [30], semisorting, Cole's merge sort). Keeping the
charges centralized here means the algorithm modules read like their
pseudocode and the accounting stays consistent.
"""

from __future__ import annotations

from collections import defaultdict
from typing import (Callable, Dict, Hashable, Iterable, List, Optional,
                    Sequence, Tuple, TypeVar)

from .counters import WorkSpanCounter, log2_ceil

T = TypeVar("T")
U = TypeVar("U")
K = TypeVar("K", bound=Hashable)


def par_map(items: Sequence[T], fn: Callable[[T], U],
            counter: WorkSpanCounter, work_per_item: int = 1) -> List[U]:
    """Apply ``fn`` to every item; one parallel round."""
    n = len(items)
    counter.add_parallel(n * work_per_item, work_per_item + log2_ceil(n))
    return [fn(x) for x in items]


def par_filter(items: Sequence[T], predicate: Callable[[T], bool],
               counter: WorkSpanCounter, work_per_item: int = 1) -> List[T]:
    """Keep items satisfying ``predicate`` (filter + pack = map + scan)."""
    n = len(items)
    counter.add_parallel(n * work_per_item + n, work_per_item + 2 * log2_ceil(n))
    return [x for x in items if predicate(x)]


def par_reduce(items: Sequence[T], fn: Callable[[T, T], T],
               counter: WorkSpanCounter, identity: T) -> T:
    """Tree reduction with associative ``fn``."""
    n = len(items)
    counter.add_parallel(max(n, 1), 1 + log2_ceil(n))
    out = identity
    for x in items:
        out = fn(out, x)
    return out


def par_scan(items: Sequence[int], counter: WorkSpanCounter) -> Tuple[List[int], int]:
    """Exclusive prefix sum; returns (prefixes, total)."""
    n = len(items)
    counter.add_parallel(2 * max(n, 1), 1 + 2 * log2_ceil(n))
    out: List[int] = []
    total = 0
    for x in items:
        out.append(total)
        total += x
    return out, total


def par_count(items: Iterable[T], predicate: Callable[[T], bool],
              counter: WorkSpanCounter) -> int:
    """Count items satisfying ``predicate`` (map + reduce)."""
    items = list(items)
    n = len(items)
    counter.add_parallel(n, 1 + log2_ceil(n))
    return sum(1 for x in items if predicate(x))


def par_sort(items: Sequence[T], counter: WorkSpanCounter,
             key: Optional[Callable[[T], object]] = None,
             reverse: bool = False) -> List[T]:
    """Comparison sort; charges ``O(n log n)`` work, ``O(log^2 n)`` span.

    Used by the practical ANH-TE variant (Section 7.4: "we perform a
    parallel sort on the r-cliques based on their core numbers").
    """
    n = len(items)
    lg = log2_ceil(n)
    counter.add_parallel(n * max(lg, 1), max(1, lg * lg))
    return sorted(items, key=key, reverse=reverse)  # type: ignore[type-var, arg-type]


def par_semisort(pairs: Sequence[Tuple[K, T]],
                 counter: WorkSpanCounter) -> Dict[K, List[T]]:
    """Group values by key in expected linear work (parallel semisort)."""
    n = len(pairs)
    counter.add_parallel(max(n, 1), 1 + log2_ceil(n))
    groups: Dict[K, List[T]] = defaultdict(list)
    for k, v in pairs:
        groups[k].append(v)
    return dict(groups)


def par_hash_build(pairs: Sequence[Tuple[K, T]],
                   counter: WorkSpanCounter) -> Dict[K, T]:
    """Build a hash table from key/value pairs (parallel hash table [25]).

    ``n`` insertions take ``O(n)`` work and ``O(log n)`` span w.h.p. Later
    entries win on duplicate keys, matching a linearized concurrent insert.
    """
    n = len(pairs)
    counter.add_parallel(max(n, 1), 1 + log2_ceil(n))
    table: Dict[K, T] = {}
    for k, v in pairs:
        table[k] = v
    return table


def par_flatten(lists: Sequence[Sequence[T]], counter: WorkSpanCounter) -> List[T]:
    """Concatenate nested sequences (scan over lengths + parallel copy)."""
    total = sum(len(sub) for sub in lists)
    counter.add_parallel(total + len(lists), 1 + 2 * log2_ceil(max(len(lists), 1)))
    out: List[T] = []
    for sub in lists:
        out.extend(sub)
    return out


def par_max(items: Sequence[int], counter: WorkSpanCounter, default: int = 0) -> int:
    """Maximum via tree reduction."""
    if not items:
        return default
    counter.add_parallel(len(items), 1 + log2_ceil(len(items)))
    return max(items)
