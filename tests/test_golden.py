"""Golden regression tests: pin exact outputs for a fixed instance.

Every algorithm in this repo is deterministic for a fixed seed, so the
complete decomposition of one small, hand-checkable graph is pinned here.
If an optimization ever changes observable behaviour, these tests name
exactly what moved. The instance is the paper-style nested structure:
K6 ⊃ shell, separate K4, sparse tail (see tests/conftest.py).
"""

import json
import os

import pytest

from repro import nucleus_decomposition
from repro.graphs.datasets import load_dataset
from repro.graphs.graph import Graph

#: Directory of JSON snapshots for the dataset-registry golden tests.
GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

#: (dataset, scale, r, s) instances pinned as full-decomposition snapshots.
GOLDEN_CASES = (("amazon", 0.05, 2, 3), ("dblp", 0.05, 2, 3))


@pytest.fixture(scope="module")
def graph(paper_like_graph):
    return paper_like_graph


@pytest.fixture(scope="module")
def truss(graph):
    return nucleus_decomposition(graph, 2, 3)


class TestGoldenCoreness:
    def test_k6_edges(self, truss):
        # every K6 edge sits in 4 triangles inside the K6
        for a in range(6):
            for b in range(a + 1, 6):
                assert truss.core_of((a, b)) == 4

    def test_k4_edges(self, truss):
        for a in range(10, 14):
            for b in range(a + 1, 14):
                assert truss.core_of((a, b)) == 2

    def test_tail_edges_zero(self, truss):
        assert truss.core_of((13, 14)) == 0
        assert truss.core_of((14, 15)) == 0

    def test_global_shape(self, truss):
        assert truss.max_core == 4
        assert truss.n_r == truss.graph.m == 37
        assert truss.n_s == 32
        assert truss.rho == 5

    def test_coreness_histogram(self, truss):
        from repro.baselines.naive_hierarchy import coreness_histogram
        assert coreness_histogram(truss.core) == {
            4.0: 15, 1.0: 12, 2.0: 6, 0.0: 4}


class TestGoldenHierarchy:
    def test_levels(self, truss):
        assert truss.hierarchy_levels() == [4, 2, 1]

    def test_nuclei_at_each_level(self, truss):
        assert truss.nuclei_at(4) == [[0, 1, 2, 3, 4, 5]]
        assert sorted(map(tuple, truss.nuclei_at(2))) == [
            (0, 1, 2, 3, 4, 5), (10, 11, 12, 13)]
        level1 = sorted(map(tuple, truss.nuclei_at(1)))
        assert (0, 1, 2, 3, 4, 5, 6, 7, 8, 9) in level1

    def test_tree_shape(self, truss):
        tree = truss.tree
        assert tree.n_internal == 3
        assert len(tree.roots()) == 2 + 4  # two trees + 4 core-0 leaves

    def test_densest(self, truss):
        best = truss.densest_nucleus(min_vertices=4)
        assert best.n_vertices == 6
        assert best.density == pytest.approx(1.0)


class TestGoldenOneThreeNucleus:
    def test_13_core_values(self, graph):
        d = nucleus_decomposition(graph, 1, 3)
        # a K6 vertex is in C(5,2)=10 triangles of the K6
        assert d.core_of((0,)) == 10
        # a K4 vertex is in C(3,2)=3 triangles
        assert d.core_of((10,)) == 3
        # the tail vertices touch no triangle
        assert d.core_of((15,)) == 0

    def test_34_nucleus(self, graph):
        d = nucleus_decomposition(graph, 3, 4)
        # K6 triangles are each in C(3,1)=3 of the K6's 4-cliques
        assert d.core_of((0, 1, 2)) == 3
        assert d.max_core == 3


class TestGoldenApproximate:
    def test_delta_one_estimates(self, graph):
        d = nucleus_decomposition(graph, 2, 3, approx=True, delta=1.0)
        # deterministic geometric peeling; estimates refined by original
        # degree, so K6 edges touching the shell may differ slightly
        k6_values = {d.core_of((a, b))
                     for a in range(6) for b in range(a + 1, 6)}
        assert k6_values == {4.0, 5.0}
        assert all(4 <= v <= (3 + 1) * 2 * 4 for v in k6_values)
        assert d.core_of((13, 14)) == 0


def _golden_path(name: str, scale: float, r: int, s: int) -> str:
    return os.path.join(GOLDEN_DIR, f"{name}_scale{scale:g}_r{r}_s{s}.json")


def decomposition_snapshot(result) -> dict:
    """JSON-stable snapshot of a full decomposition.

    Covers the coreness array verbatim, the hierarchy's partition chain
    (the level-by-level nucleus partitions), and the canonically
    relabeled tree itself (``HierarchyTree.canonical_form`` -- parents,
    levels, and single-child chains included), so any behavioural drift
    -- peeling order, bucket handling, tree construction -- shows up as
    a named diff.
    """
    chain = result.tree.partition_chain()
    return {
        "n": result.graph.n,
        "m": result.graph.m,
        "n_r": result.n_r,
        "n_s": result.n_s,
        "rho": result.rho,
        "k_max": result.max_core,
        "coreness": list(result.core),
        "hierarchy_levels": [float(v) for v in result.hierarchy_levels()],
        "partition_chain": {
            f"{level:g}": sorted(sorted(int(rid) for rid in group)
                                 for group in groups)
            for level, groups in chain.items()},
        "tree": result.tree.canonical_form(),
    }


class TestGoldenDatasets:
    """Snapshots of two dataset-registry graphs, checked on both backends.

    After an *intentional* behaviour change, regenerate with::

        REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden.py
    """

    @pytest.mark.parametrize("name,scale,r,s", GOLDEN_CASES)
    def test_serial_matches_snapshot(self, name, scale, r, s):
        graph = load_dataset(name, scale=scale)
        snap = decomposition_snapshot(nucleus_decomposition(graph, r, s))
        path = _golden_path(name, scale, r, s)
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            os.makedirs(GOLDEN_DIR, exist_ok=True)
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(snap, handle, indent=1, sort_keys=True)
                handle.write("\n")
        with open(path, encoding="utf-8") as handle:
            expected = json.load(handle)
        assert snap == expected

    @pytest.mark.parametrize("name,scale,r,s", GOLDEN_CASES)
    def test_process_backend_matches_snapshot(self, name, scale, r, s):
        graph = load_dataset(name, scale=scale)
        result = nucleus_decomposition(graph, r, s, backend="process",
                                       workers=2)
        with open(_golden_path(name, scale, r, s), encoding="utf-8") as handle:
            expected = json.load(handle)
        assert decomposition_snapshot(result) == expected

    @pytest.mark.parametrize("name,scale,r,s", GOLDEN_CASES)
    def test_csr_strategy_matches_snapshot(self, name, scale, r, s):
        graph = load_dataset(name, scale=scale)
        result = nucleus_decomposition(graph, r, s, strategy="csr")
        with open(_golden_path(name, scale, r, s), encoding="utf-8") as handle:
            expected = json.load(handle)
        assert decomposition_snapshot(result) == expected

    @pytest.mark.parametrize("name,scale,r,s", GOLDEN_CASES)
    @pytest.mark.parametrize("use_shm", (True, False),
                             ids=("shm", "pickle"))
    def test_csr_process_backend_matches_snapshot(self, name, scale, r, s,
                                                  use_shm):
        from repro.parallel.backend import ProcessBackend
        graph = load_dataset(name, scale=scale)
        with ProcessBackend(workers=2,
                            use_shared_memory=use_shm) as backend:
            # the loop kernel broadcasts the CSR incidence to the pool,
            # exercising the shared-memory (or pickled) shipping path
            result = nucleus_decomposition(graph, r, s, strategy="csr",
                                           kernel="loop", backend=backend)
        with open(_golden_path(name, scale, r, s), encoding="utf-8") as handle:
            expected = json.load(handle)
        assert decomposition_snapshot(result) == expected
