"""Clique substrate: enumeration, indexing, and s/r incidence."""

from .enumeration import (Clique, clique_degeneracy_guard, cliques_containing,
                          cliques_of_vertices, count_cliques,
                          enumerate_cliques, enumerate_cliques_via,
                          list_cliques, triangle_count)
from .incidence import (MaterializedIncidence, MemberTuple, ReEnumIncidence,
                        build_incidence, validate_rs)
from .index import CliqueIndex
from .list_kernel import (ENUM_KERNEL_NAMES, clique_matrix, clique_matrix_via,
                          count_cliques_array, intersect_sorted,
                          use_array_kernel)

__all__ = [
    "Clique", "clique_degeneracy_guard", "cliques_containing",
    "cliques_of_vertices", "count_cliques", "enumerate_cliques",
    "enumerate_cliques_via", "list_cliques", "triangle_count",
    "MaterializedIncidence", "MemberTuple", "ReEnumIncidence",
    "build_incidence", "validate_rs", "CliqueIndex",
    "ENUM_KERNEL_NAMES", "clique_matrix", "clique_matrix_via",
    "count_cliques_array", "intersect_sorted", "use_array_kernel",
]
