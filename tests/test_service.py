"""Tests for the concurrent query service (repro.service).

Covers the in-process :class:`DecompositionService` (dispatch, structured
errors, multi-artifact resolution), the LRU :class:`ArtifactCache` byte
budget, and the HTTP front end -- including the acceptance scenario: a
100-query ``/batch`` answered correctly under >= 8 concurrent client
threads with the latency / hit-rate counters populated.
"""

import os
import threading

import pytest

from repro import nucleus_decomposition
from repro.core.queries import HierarchyQueryIndex
from repro.errors import ServiceError
from repro.service import (ArtifactCache, DecompositionService, ENDPOINTS,
                           http_batch, http_query, serve_background)
from repro.store import load_artifact, write_artifact


@pytest.fixture(scope="module")
def artifacts(planted, paper_like_graph, tmp_path_factory):
    """{name: path} for two decompositions, plus their query indices."""
    directory = tmp_path_factory.mktemp("service")
    paths, indices = {}, {}
    for name, graph in (("planted", planted), ("paper", paper_like_graph)):
        result = nucleus_decomposition(graph, 2, 3)
        index = HierarchyQueryIndex(result)
        path = str(directory / f"{name}-2-3.nda")
        write_artifact(result, path, query_index=index)
        paths[name] = path
        indices[name] = index
    return paths, indices


@pytest.fixture(scope="module")
def service(artifacts):
    paths, _ = artifacts
    return DecompositionService(paths)


@pytest.fixture(scope="module")
def server(artifacts):
    paths, _ = artifacts
    server, thread = serve_background(paths)
    host, port = server.server_address
    yield f"http://{host}:{port}"
    server.shutdown()
    thread.join(timeout=5)


class TestDispatch:
    def test_community_matches_index(self, service, artifacts):
        _, indices = artifacts
        want = indices["planted"].community([0, 5])
        got = service.query("community",
                            {"artifact": "planted", "vertices": [0, 5]})
        assert got["found"] is True
        assert tuple(got["community"]["vertices"]) == want.vertices
        assert got["community"]["level"] == want.level

    def test_not_found_is_structured(self, service):
        got = service.query("community",
                            {"artifact": "planted", "vertices": [0, 6],
                             "min_level": 1})
        assert got == {"found": False, "community": None}

    def test_membership_and_strongest(self, service, artifacts):
        _, indices = artifacts
        chain = service.query("membership",
                              {"artifact": "planted", "vertex": 0})
        assert chain["found"] and len(chain["communities"]) \
            == len(indices["planted"].membership(0))
        strongest = service.query("strongest_community",
                                  {"artifact": "planted", "vertex": 12})
        assert strongest["community"]["level"] \
            == indices["planted"].strongest_community(12).level

    def test_top_k_and_coreness(self, service, artifacts):
        _, indices = artifacts
        top = service.query("top_k_densest", {"artifact": "planted", "k": 2,
                                              "min_vertices": 4})
        assert [tuple(c["vertices"]) for c in top["communities"]] \
            == [c.vertices for c in
                indices["planted"].top_k_densest(2, min_vertices=4)]
        core = service.query("coreness",
                             {"artifact": "planted", "clique": [1, 0]})
        assert core["clique"] == [0, 1]
        assert core["core"] == indices["planted"].decomposition.core_of((0, 1))

    def test_unknown_op_404(self, service):
        with pytest.raises(ServiceError) as exc:
            service.query("explode", {})
        assert exc.value.status == 404

    def test_unknown_artifact_404(self, service):
        with pytest.raises(ServiceError) as exc:
            service.query("membership", {"artifact": "nope", "vertex": 0})
        assert exc.value.status == 404

    def test_ambiguous_artifact_400(self, service):
        with pytest.raises(ServiceError) as exc:
            service.query("membership", {"vertex": 0})
        assert exc.value.status == 400

    def test_single_artifact_needs_no_name(self, artifacts):
        paths, indices = artifacts
        solo = DecompositionService({"planted": paths["planted"]})
        got = solo.query("membership", {"vertex": 0})
        assert len(got["communities"]) == len(indices["planted"].membership(0))

    def test_missing_and_mistyped_params_400(self, service):
        for params in ({"artifact": "planted"},
                       {"artifact": "planted", "vertex": "abc"}):
            with pytest.raises(ServiceError) as exc:
                service.query("membership", params)
            assert exc.value.status == 400
        with pytest.raises(ServiceError):
            service.query("community",
                          {"artifact": "planted", "vertices": 7})

    def test_bad_vertex_becomes_service_error(self, service):
        with pytest.raises(ServiceError) as exc:
            service.query("community",
                          {"artifact": "planted", "vertices": [99999]})
        assert exc.value.status == 400

    def test_register_validates_eagerly(self, service, tmp_path):
        junk = tmp_path / "junk.nda"
        junk.write_bytes(b"not an artifact at all, sorry")
        with pytest.raises(Exception):
            service.register(str(junk))
        assert "junk" not in service.artifact_names()


class TestBatch:
    def test_batch_matches_singles(self, service, artifacts):
        _, indices = artifacts
        queries = [{"artifact": "planted", "op": "membership", "vertex": v}
                   for v in range(10)]
        results = service.batch(queries)
        assert len(results) == 10
        for v, result in enumerate(results):
            assert len(result["communities"]) \
                == len(indices["planted"].membership(v))

    def test_bad_entries_reported_in_place(self, service):
        results = service.batch([
            {"artifact": "planted", "op": "membership", "vertex": 0},
            {"artifact": "planted", "op": "no-such-op"},
            "not an object",
            {"artifact": "ghost", "op": "membership", "vertex": 0},
        ])
        assert "communities" in results[0]
        assert results[1]["error"]["status"] == 404
        assert "error" in results[2]
        assert results[3]["error"]["status"] == 404

    def test_batch_spans_artifacts(self, service, artifacts):
        _, indices = artifacts
        results = service.batch([
            {"artifact": "planted", "op": "top_k_densest", "k": 1},
            {"artifact": "paper", "op": "top_k_densest", "k": 1},
        ])
        assert tuple(results[0]["communities"][0]["vertices"]) \
            == indices["planted"].top_k_densest(1)[0].vertices
        assert tuple(results[1]["communities"][0]["vertices"]) \
            == indices["paper"].top_k_densest(1)[0].vertices

    def test_batch_counter_meters_parallel_round(self, artifacts):
        paths, _ = artifacts
        svc = DecompositionService(paths)
        svc.batch([{"artifact": "planted", "op": "membership", "vertex": v}
                   for v in range(20)])
        snap = svc.stats()["endpoints"]["batch"]
        assert snap["requests"] == 20
        assert snap["work"] >= 20
        assert snap["span"] < snap["work"]  # one round over 20 queries

    def test_non_list_batch_rejected(self, service):
        with pytest.raises(ServiceError):
            service.batch({"op": "membership"})


class TestCache:
    def test_lru_eviction_under_byte_budget(self, artifacts):
        paths, _ = artifacts
        sizes = {name: os.path.getsize(path)
                 for name, path in paths.items()}
        budget = max(sizes.values()) + 1  # room for exactly one artifact
        cache = ArtifactCache(budget_bytes=budget)
        a = cache.get(paths["planted"])
        b = cache.get(paths["paper"])
        snap = cache.snapshot()
        assert snap["evictions"] >= 1
        assert snap["resident"] == 1
        assert snap["resident_bytes"] <= budget
        # The evicted mapping stays usable by existing holders.
        assert a.n_leaves > 0 and b.n_leaves > 0

    def test_hits_and_misses(self, artifacts):
        paths, _ = artifacts
        cache = ArtifactCache()
        first = cache.get(paths["planted"])
        second = cache.get(paths["planted"])
        assert first is second
        snap = cache.snapshot()
        assert snap["hits"] == 1 and snap["misses"] == 1
        assert snap["hit_rate"] == 0.5

    def test_zero_budget_disables_caching(self, artifacts):
        paths, _ = artifacts
        cache = ArtifactCache(budget_bytes=0)
        first = cache.get(paths["planted"])
        second = cache.get(paths["planted"])
        assert first is not second
        assert cache.snapshot()["resident"] == 0

    def test_never_evicts_last_entry(self, artifacts):
        paths, _ = artifacts
        cache = ArtifactCache(budget_bytes=1)  # below any artifact size
        cache.get(paths["planted"])
        assert cache.snapshot()["resident"] == 1


class TestStats:
    def test_counters_populate(self, artifacts):
        paths, _ = artifacts
        svc = DecompositionService(paths)
        svc.query("membership", {"artifact": "planted", "vertex": 0})
        with pytest.raises(ServiceError):
            svc.query("membership", {"artifact": "planted"})
        stats = svc.stats()
        assert set(ENDPOINTS) <= set(stats["endpoints"])
        membership = stats["endpoints"]["membership"]
        assert membership["requests"] == 2
        assert membership["errors"] == 1
        assert membership["seconds_total"] > 0
        assert stats["cache"]["hits"] + stats["cache"]["misses"] >= 1
        assert stats["uptime_seconds"] >= 0

    def test_artifact_info(self, service):
        info = service.artifact_info()
        assert [e["name"] for e in info] == ["paper", "planted"]
        for entry in info:
            assert "columns" not in entry["meta"]
            assert entry["stats"]["n_nodes"] > 0


class TestHTTP:
    def test_health_and_artifacts(self, server):
        health = http_query(server, "health")
        assert health["ok"] is True
        assert sorted(health["artifacts"]) == ["paper", "planted"]
        listing = http_query(server, "artifacts")
        assert len(listing["artifacts"]) == 2

    def test_query_over_http_matches_index(self, server, artifacts):
        _, indices = artifacts
        want = indices["planted"].community([0, 5])
        got = http_query(server, "community",
                         {"artifact": "planted", "vertices": [0, 5]})
        assert tuple(got["community"]["vertices"]) == want.vertices

    def test_http_errors_are_structured(self, server):
        with pytest.raises(ServiceError) as exc:
            http_query(server, "community", {"artifact": "planted"})
        assert exc.value.status == 400
        with pytest.raises(ServiceError) as exc:
            http_query(server, "no_such_op", {})
        assert exc.value.status == 404

    def test_malformed_body_400(self, server):
        from urllib.error import HTTPError
        from urllib.request import Request, urlopen
        request = Request(f"{server}/community", data=b"{nope",
                          headers={"Content-Type": "application/json"})
        with pytest.raises(HTTPError) as exc:
            urlopen(request, timeout=10)
        assert exc.value.code == 400

    def test_get_unknown_path_404(self, server):
        with pytest.raises(ServiceError) as exc:
            http_query(server, "stats/../secret")
        assert exc.value.status == 404

    def test_concurrent_batches_acceptance(self, server, artifacts):
        """The ISSUE acceptance bar: 100-query batches, >= 8 threads."""
        _, indices = artifacts
        index = indices["planted"]
        n = index.decomposition.graph.n
        queries = [{"artifact": "planted", "op": "membership",
                    "vertex": v % n} for v in range(100)]
        expected = [len(index.membership(v % n)) for v in range(100)]
        failures = []

        def client(tid):
            try:
                results = http_batch(server, queries)
                got = [len(r["communities"]) for r in results]
                if got != expected:
                    failures.append((tid, "wrong answers"))
            except Exception as exc:  # noqa: BLE001 - collect, don't die
                failures.append((tid, repr(exc)))

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert failures == []
        stats = http_query(server, "stats")
        batch = stats["endpoints"]["batch"]
        assert batch["requests"] >= 800  # 8 threads x 100 queries
        assert batch["seconds_mean"] > 0
        cache = stats["cache"]
        assert cache["hits"] > 0
        assert 0.0 < cache["hit_rate"] <= 1.0
