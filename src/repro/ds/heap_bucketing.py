"""Heap-based bucketing: the paper's space-restricted alternative.

Footnote 2 of the paper (Section 6): *"if we instead restrict our space
usage to be proportional to the number of r-cliques, we can modify the
bucketing structure to use a batch-parallel Fibonacci heap [56], which
would increase the work bound to O(m alpha^(s-2) + log^3 n) amortized."*

:class:`HeapBucketQueue` realizes that regime with an addressable binary
heap: exactly three arrays of length ``n_r`` (heap order, positions,
values), ``decrease-key`` for the peeling decrements, and batch
extraction of every id holding the minimum value. The interface matches
:class:`repro.ds.bucketing.BucketQueue`, so the peeling engine accepts
either (``peel_exact(..., bucketing="heap")``), and
``benchmarks/bench_ablation.py`` compares the two.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import DataStructureError


class HeapBucketQueue:
    """Minimum-batch extraction backed by an addressable binary heap.

    Space is exactly ``3 * n`` integers regardless of how many updates
    occur -- the property the paper's footnote is about.
    """

    __slots__ = ("_value", "_alive", "_heap", "_pos", "_remaining",
                 "rounds", "updates")

    def __init__(self, values: Sequence[int]) -> None:
        self._value: List[int] = list(values)
        for i, v in enumerate(self._value):
            if v < 0:
                raise DataStructureError(
                    f"bucket value must be >= 0, got {v} for id {i}")
        n = len(self._value)
        self._alive = [True] * n
        self._heap: List[int] = list(range(n))
        self._pos: List[int] = list(range(n))
        # heapify by value
        for i in range(n // 2 - 1, -1, -1):
            self._sift_down(i)
        self._remaining = n
        self.rounds = 0
        self.updates = 0

    # -- heap internals ----------------------------------------------------

    def _less(self, a: int, b: int) -> bool:
        va, vb = self._value[a], self._value[b]
        if va != vb:
            return va < vb
        return a < b  # deterministic tie-break by id

    def _swap(self, i: int, j: int) -> None:
        heap = self._heap
        heap[i], heap[j] = heap[j], heap[i]
        self._pos[heap[i]] = i
        self._pos[heap[j]] = j

    def _sift_up(self, i: int) -> None:
        while i > 0:
            parent = (i - 1) // 2
            if self._less(self._heap[i], self._heap[parent]):
                self._swap(i, parent)
                i = parent
            else:
                break

    def _sift_down(self, i: int) -> None:
        n = len(self._heap)
        while True:
            left, right = 2 * i + 1, 2 * i + 2
            smallest = i
            if left < n and self._less(self._heap[left],
                                       self._heap[smallest]):
                smallest = left
            if right < n and self._less(self._heap[right],
                                        self._heap[smallest]):
                smallest = right
            if smallest == i:
                break
            self._swap(i, smallest)
            i = smallest

    def _pop_min(self) -> int:
        top = self._heap[0]
        last = self._heap.pop()
        self._pos[top] = -1
        if self._heap:
            self._heap[0] = last
            self._pos[last] = 0
            self._sift_down(0)
        return top

    # -- BucketQueue-compatible API ----------------------------------------

    def __len__(self) -> int:
        return self._remaining

    @property
    def empty(self) -> bool:
        return self._remaining == 0

    def value(self, ident: int) -> int:
        return self._value[ident]

    def alive(self, ident: int) -> bool:
        return self._alive[ident]

    def update(self, ident: int, new_value: int) -> None:
        """Lower the value of a live identifier (decrease-key)."""
        if not self._alive[ident]:
            raise DataStructureError(
                f"cannot update extracted identifier {ident}")
        old = self._value[ident]
        if new_value > old:
            raise DataStructureError(
                f"bucket values may only decrease: id {ident} "
                f"{old} -> {new_value}")
        if new_value == old:
            return
        if new_value < 0:
            raise DataStructureError(
                f"bucket value must be >= 0, got {new_value} for id {ident}")
        self.updates += 1
        self._value[ident] = new_value
        self._sift_up(self._pos[ident])

    def decrement(self, ident: int, amount: int = 1) -> None:
        self.update(ident, max(0, self._value[ident] - amount))

    def peek_min(self) -> Optional[int]:
        if self._remaining == 0:
            return None
        return self._value[self._heap[0]]

    def next_bucket(self) -> Tuple[int, List[int]]:
        """Extract every live identifier holding the minimum value."""
        if self._remaining == 0:
            raise DataStructureError("next_bucket() on empty HeapBucketQueue")
        minimum = self._value[self._heap[0]]
        extracted: List[int] = []
        while self._heap and self._value[self._heap[0]] == minimum:
            ident = self._pop_min()
            self._alive[ident] = False
            extracted.append(ident)
        self._remaining -= len(extracted)
        self.rounds += 1
        return minimum, extracted

    def drain(self) -> Iterable[Tuple[int, List[int]]]:
        while not self.empty:
            yield self.next_bucket()

    def memory_units(self) -> int:
        """Integers held: three arrays of length n (the footnote's point)."""
        return 3 * len(self._value)
