"""Unit + property tests for hook-and-contract connectivity."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GraphFormatError
from repro.graphs.connectivity import (bfs_components, components_as_dict,
                                       connected_components,
                                       connected_components_edges,
                                       n_components, same_partition)
from repro.graphs.generators import erdos_renyi, planted_nuclei
from repro.graphs.graph import Graph
from repro.parallel.counters import WorkSpanCounter


class TestBasics:
    def test_empty(self):
        assert connected_components(Graph.empty(0)) == []
        assert connected_components(Graph.empty(3)) == [0, 1, 2]

    def test_single_component(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert connected_components(g) == [0, 0, 0, 0]

    def test_two_components_min_label(self):
        g = Graph(5, [(1, 3), (2, 4)])
        labels = connected_components(g)
        assert labels == [0, 1, 2, 1, 2]

    def test_labels_are_minimum_member(self):
        g = planted_nuclei([4, 3], bridge=False)
        labels = connected_components(g)
        comps = components_as_dict(labels)
        for label, members in comps.items():
            assert label == min(members)

    def test_self_loop_edges_ignored(self):
        labels = connected_components_edges(3, [(0, 0), (1, 2)])
        assert labels == [0, 1, 1]

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphFormatError):
            connected_components_edges(2, [(0, 5)])

    def test_counter_receives_rounds(self):
        c = WorkSpanCounter()
        connected_components(erdos_renyi(100, 0.05, seed=1), c)
        assert c.work > 0
        assert 0 < c.span < 200  # low-span, not O(n)

    def test_n_components(self):
        assert n_components([0, 0, 2, 2, 4]) == 3


class TestHelpers:
    def test_components_as_dict(self):
        assert components_as_dict([0, 0, 2]) == {0: [0, 1], 2: [2]}

    def test_same_partition_invariance(self):
        assert same_partition([0, 0, 1], [5, 5, 9])
        assert not same_partition([0, 0, 1], [0, 1, 1])
        assert not same_partition([0], [0, 1])

    def test_same_partition_requires_bijection(self):
        # a refines b but is not equal
        assert not same_partition([0, 1, 1], [0, 0, 0])
        assert not same_partition([0, 0, 0], [0, 1, 1])


@given(st.integers(0, 25),
       st.sets(st.tuples(st.integers(0, 24), st.integers(0, 24)), max_size=60))
def test_matches_bfs_reference(n, pairs):
    edges = [(u, v) for u, v in pairs if u != v and u < n and v < n]
    g = Graph(n, edges)
    assert same_partition(connected_components(g), bfs_components(g))


def test_large_random_graph_matches_networkx():
    import networkx as nx
    g = erdos_renyi(400, 0.004, seed=11)
    labels = connected_components(g)
    nxg = nx.Graph(list(g.edges()))
    nxg.add_nodes_from(range(g.n))
    expected = len(list(nx.connected_components(nxg)))
    assert n_components(labels) == expected
