"""``PHCD``: Chu et al.'s parallel k-core hierarchy [11] (r=1, s=2 only).

The specialized parallel comparator of Figure 9's (1,2) panel. PHCD:

1. computes vertex core numbers with standard parallel k-core peeling
   (degree buckets; no clique machinery at all -- the specialization that
   makes it faster than general nucleus code on k-core);
2. **reorders vertices by core number** so each level's vertices are
   contiguous (their key optimization for dividing hierarchy work across
   threads);
3. builds the hierarchy bottom-up with a union-find: at level ``c``, each
   core-``c`` vertex unites with neighbors of core ``>= c``, and the new
   components become the level's tree nodes.

Like the original, it operates directly on adjacency lists -- compare with
ANH-TE which reaches the same tree through the general r/s machinery.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..core.nucleus import CorenessResult
from ..core.tree import HierarchyTree, HierarchyTreeBuilder
from ..ds.bucketing import BucketQueue
from ..ds.union_find import ConcurrentUnionFind
from ..graphs.graph import Graph
from ..parallel.counters import (NullCounter, WorkSpanCounter, log2_ceil)


class PHCDResult:
    """Coreness + hierarchy + statistics from a PHCD run."""

    def __init__(self, coreness: CorenessResult, tree: HierarchyTree,
                 stats: Dict[str, float]) -> None:
        self.coreness = coreness
        self.tree = tree
        self.stats = stats


def kcore_peel(graph: Graph,
               counter: Optional[WorkSpanCounter] = None) -> CorenessResult:
    """Parallel k-core peeling on plain adjacency (degree buckets)."""
    counter = counter if counter is not None else NullCounter()
    n = graph.n
    queue = BucketQueue(graph.degrees())
    core = [0.0] * n
    k_cur = 0
    n_log = log2_ceil(max(n, 1))
    while not queue.empty:
        value, batch = queue.next_bucket()
        k_cur = max(k_cur, value)
        round_work = len(batch)
        for v in batch:
            core[v] = float(k_cur)
        for v in batch:
            for u in graph.neighbors(v):
                round_work += 1
                if queue.alive(u):
                    queue.decrement(u)
        counter.add_parallel(round_work, 1 + n_log)
    return CorenessResult(core=core, rho=queue.rounds,
                          k_max=max(core, default=0.0), n_r=n, n_s=graph.m,
                          work_span=counter.snapshot(),
                          stats={"bucket_updates": float(queue.updates)})


def phcd(graph: Graph,
         counter: Optional[WorkSpanCounter] = None,
         seed: int = 0) -> PHCDResult:
    """Parallel k-core hierarchy (the (1,2) nucleus hierarchy)."""
    counter = counter if counter is not None else WorkSpanCounter()
    t0 = time.perf_counter()
    coreness = kcore_peel(graph, counter)
    core = coreness.core
    t1 = time.perf_counter()
    n = graph.n
    # Core-ordered vertex processing: PHCD's reordering optimization.
    by_level: Dict[float, List[int]] = {}
    order = sorted(range(n), key=lambda v: core[v], reverse=True)
    counter.add_parallel(n * max(log2_ceil(max(n, 1)), 1),
                         max(1, log2_ceil(max(n, 1)) ** 2))
    for v in order:
        if core[v] > 0:
            by_level.setdefault(core[v], []).append(v)

    uf = ConcurrentUnionFind(n, seed=seed)
    builder = HierarchyTreeBuilder(core)
    active: List[int] = []
    unite_calls = 0
    for level in sorted(by_level, reverse=True):
        fresh = by_level[level]
        active.extend(fresh)
        merges_before = uf.stats.effective_unites
        round_work = 0
        for v in fresh:
            for u in graph.neighbors(v):
                round_work += 1
                # The reordering lets PHCD skip lower-core neighbors
                # cheaply; only same-or-higher cores matter at this level.
                if core[u] >= level:
                    uf.unite(v, u)
                    unite_calls += 1
        counter.add_parallel(round_work + len(fresh),
                             1 + log2_ceil(max(n, 1)))
        if uf.stats.effective_unites == merges_before and not fresh:
            continue
        groups: Dict[int, List[int]] = {}
        for v in active:
            groups.setdefault(uf.find(v), []).append(v)
        counter.add_parallel(len(active) + 1, 1 + log2_ceil(max(n, 1)))
        for members in groups.values():
            if len(members) >= 2:
                builder.merge(members, level)
    tree = builder.build()
    t2 = time.perf_counter()
    stats = {
        "unite_calls": float(unite_calls),
        "effective_unites": float(uf.stats.effective_unites),
        "memory_units": float(2 * n),
        "seconds_coreness": t1 - t0,
        "seconds_tree": t2 - t1,
    }
    return PHCDResult(coreness, tree, stats)
