"""Array-native hierarchy construction -- the batched Algorithm 4 kernel.

The Section 7.4 practical ANH-TE construction
(:func:`repro.core.hierarchy_te.hierarchy_te_practical`) walks the peeled
r-cliques in descending core order and, one Python ``unite`` at a time,
connects each clique to its s-clique-adjacent neighbors of core at least
its own -- then re-groups every active clique per level through a dict.
This module runs the *identical* construction as a handful of whole-array
passes per distinct core value:

* every s-clique row of the CSR incidence is pre-sorted by member core
  number; the chain of consecutive members carries exactly the level
  connectivity the all-pairs unites produce (at level ``c`` the members
  of core ``>= c`` are a prefix of the sorted row, and the chain connects
  any prefix), shrinking the edge set from ``C(k, 2)`` to ``k - 1`` per
  s-clique;
* edges are bucketed by weight (the smaller endpoint core -- the level at
  which the pair becomes active) with one argsort, giving the per-level
  frontiers of Algorithm 4's rounds;
* each level's frontier goes to
  :class:`~repro.ds.flat_union_find.FlatUnionFind` as one batch
  (hook-and-compress over the flat parent array), replacing the per-pair
  ``unite`` loop;
* new tree nodes are detected by counting distinct *current top nodes*
  per component (one ``np.unique`` over ``(component, top)`` pairs): a
  component with two or more tops becomes a new internal node, exactly
  when :class:`~repro.core.tree.HierarchyTreeBuilder.merge` would have
  created one.

Equivalence contract (differentially tested in
``tests/test_hierarchy_kernel.py``): for any CSR incidence and core
array, :func:`build_tree_arrays` emits a tree whose ``parent`` /
``level`` / ``rep`` arrays are **element-for-element identical** to the
scalar path's -- same node ids in the same creation order, not merely the
same partition chain -- and charges the same work/span meters and the
same ``link_calls`` / ``unite_calls`` / ``effective_unites`` statistics.
Artifacts written from either kernel therefore carry byte-identical
hierarchy columns.

Node-order argument: the scalar path iterates each level's groups in
first-member order over the ``(descending core, ascending id)`` active
sequence, appending one node per group whose current tops differ. The
kernel sorts merged components by the first position of any member in
that same sequence, so node ids coincide; representatives (``min`` over
group members) and levels are order-independent.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..ds.flat_union_find import FlatUnionFind
from ..errors import ParameterError
from ..parallel.counters import NullCounter, WorkSpanCounter, log2_ceil
from .tree import NO_PARENT, HierarchyTree


def supports_array_tree(incidence) -> bool:
    """True when ``incidence`` carries the flat arrays the kernel needs."""
    return getattr(incidence, "member_array", None) is not None


def _chain_edges(member_array: np.ndarray, core: np.ndarray
                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-s-clique core-descending chains as ``(u, v, weight)`` arrays.

    Each row's members are ordered by descending core (ties by id, for
    determinism); consecutive pairs form the edges, weighted by the
    lower core -- the level at which the pair first appears in a level
    graph. Weight-zero edges carry no hierarchy information and are
    dropped, like Algorithm 1's level filter.
    """
    n_s, k = member_array.shape
    if n_s == 0 or k < 2:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0, dtype=np.float64)
    row_core = core[member_array]
    order = np.argsort(-row_core, axis=1, kind="stable")
    ordered = np.take_along_axis(member_array, order, axis=1)
    u = ordered[:, :-1].ravel()
    v = ordered[:, 1:].ravel()
    weight = core[v]
    keep = weight > 0
    return u[keep], v[keep], weight[keep]


def _unite_call_histogram(member_array: np.ndarray, core: np.ndarray,
                          levels_desc: np.ndarray) -> np.ndarray:
    """Scalar-path ``unite`` calls per level, computed in closed form.

    The scalar construction, while processing a fresh clique of core
    ``c``, calls ``unite`` once per (s-clique containing it, member of
    core ``>= c``) pair. Summed over an s-clique's member pairs that is
    one call per pair with distinct positive cores (at the smaller core's
    level) and two per pair with equal positive cores (each member is
    fresh once). One pass per column pair of the member matrix.
    """
    counts = np.zeros(levels_desc.size, dtype=np.int64)
    n_s, k = member_array.shape
    if n_s == 0 or levels_desc.size == 0:
        return counts
    ascending = levels_desc[::-1]
    for i, j in combinations(range(k), 2):
        ca = core[member_array[:, i]]
        cb = core[member_array[:, j]]
        lo = np.minimum(ca, cb)
        positive = lo > 0
        if not positive.any():
            continue
        calls = np.where(ca[positive] == cb[positive], 2, 1)
        slot = np.searchsorted(ascending, lo[positive])
        counts += np.bincount(slot, weights=calls,
                              minlength=ascending.size).astype(np.int64)
    return counts[::-1].copy()


def build_tree_arrays(incidence, core: Sequence[float],
                      counter: Optional[WorkSpanCounter] = None,
                      ) -> Tuple[HierarchyTree, Dict[str, float]]:
    """Level-batched hierarchy construction over flat arrays.

    ``incidence`` must expose a ``member_array`` (the CSR layout --
    :class:`~repro.cliques.csr.CSRIncidence`); ``core`` is the final core
    number of every r-clique. Returns ``(tree, stats)`` where both are
    identical to what the scalar ANH-TE construction produces (see the
    module docstring for the contract).
    """
    if not supports_array_tree(incidence):
        raise ParameterError(
            "the array hierarchy kernel requires a CSR incidence "
            "(build_incidence(strategy='csr'))")
    counter = counter if counter is not None else NullCounter()
    core_arr = np.asarray(core, dtype=np.float64)
    n_r = core_arr.shape[0]
    n_log = log2_ceil(max(n_r, 1))

    # The scalar path's parallel sort of the r-cliques by core number
    # (Section 7.4); the kernel charges the same meter for its argsort.
    counter.add_parallel(n_r * max(n_log, 1), max(1, n_log * n_log))
    positives = np.flatnonzero(core_arr > 0)
    active_order = positives[np.argsort(-core_arr[positives],
                                        kind="stable")]
    active_cores = core_arr[active_order]
    if active_order.size:
        boundary = np.flatnonzero(np.diff(active_cores)) + 1
        level_starts = np.concatenate(([0], boundary))
        level_ends = np.concatenate((boundary, [active_order.size]))
        levels_desc = active_cores[level_starts]
    else:
        level_starts = level_ends = np.empty(0, dtype=np.int64)
        levels_desc = np.empty(0, dtype=np.float64)

    u, v, weight = _chain_edges(incidence.member_array, core_arr)
    edge_order = np.argsort(-weight, kind="stable")
    u = u[edge_order]
    v = v[edge_order]
    weight = weight[edge_order]
    # First edge index per level: edges are weight-descending, levels too.
    edge_starts = np.searchsorted(-weight, -levels_desc, side="left")
    edge_ends = np.searchsorted(-weight, -levels_desc, side="right")

    calls_per_level = _unite_call_histogram(incidence.member_array,
                                            core_arr, levels_desc)

    uf = FlatUnionFind(n_r)
    max_nodes = n_r + max(n_r - 1, 0)
    parent = np.full(max_nodes, NO_PARENT, dtype=np.int64)
    level_out = np.empty(max_nodes, dtype=np.float64)
    level_out[:n_r] = core_arr
    rep = np.empty(max_nodes, dtype=np.int64)
    rep[:n_r] = np.arange(n_r, dtype=np.int64)
    top = np.arange(n_r, dtype=np.int64)   # current top node per leaf
    node_of_root = np.full(n_r, -1, dtype=np.int64)
    rep_floor = np.full(n_r, n_r, dtype=np.int64)  # min-member scratch
    pair_base = np.int64(max(2 * n_r, 1))  # encodes (root, top) pairs

    next_node = n_r
    unite_calls = 0
    for li in range(levels_desc.size):
        level = float(levels_desc[li])
        n_active = int(level_ends[li])
        unite_calls += int(calls_per_level[li])
        lo_e, hi_e = int(edge_starts[li]), int(edge_ends[li])
        if hi_e > lo_e:
            uf.unite_batch(u[lo_e:hi_e], v[lo_e:hi_e])
        # The scalar path's two per-level rounds: the fresh/link loop
        # (its unite counter is cumulative at charge time) and the
        # active-set re-grouping. Fresh is never empty for a level, so
        # both rounds are always charged.
        fresh = n_active - int(level_starts[li])
        counter.add_parallel(fresh + unite_calls + 1, 1 + n_log)
        counter.add_parallel(n_active + 1, 1 + n_log)
        if hi_e == lo_e:
            continue  # no new adjacency => no component gained a top
        active = active_order[:n_active]
        roots = uf.find_many(active)
        tops = top[active]
        uroots, first_pos = np.unique(roots, return_index=True)
        pair_codes = np.unique(roots * pair_base + tops)
        pair_roots = pair_codes // pair_base
        pair_tops = pair_codes - pair_roots * pair_base
        top_counts = (np.searchsorted(pair_roots, uroots, side="right")
                      - np.searchsorted(pair_roots, uroots, side="left"))
        merged = top_counts >= 2
        if not merged.any():
            continue
        merged_roots = uroots[merged]
        creation_rank = np.argsort(first_pos[merged], kind="stable")
        merged_roots = merged_roots[creation_rank]
        n_new = merged_roots.size
        node_ids = next_node + np.arange(n_new, dtype=np.int64)
        node_of_root[merged_roots] = node_ids
        # Attach every distinct top of a merged component to its node.
        pair_sel = node_of_root[pair_roots] >= 0
        parent[pair_tops[pair_sel]] = node_of_root[pair_roots[pair_sel]]
        # Representatives (min member id) + top updates, members only.
        member_sel = node_of_root[roots] >= 0
        sel_roots = roots[member_sel]
        sel_ids = active[member_sel]
        np.minimum.at(rep_floor, sel_roots, sel_ids)
        rep[node_ids] = rep_floor[merged_roots]
        level_out[node_ids] = level
        top[sel_ids] = node_of_root[sel_roots]
        rep_floor[merged_roots] = n_r
        node_of_root[merged_roots] = -1
        next_node += n_new

    tree = HierarchyTree(n_r, parent[:next_node].tolist(),
                         level_out[:next_node].tolist(),
                         rep[:next_node].tolist())
    stats: Dict[str, float] = {
        "link_calls": float(unite_calls),
        "unite_calls": float(unite_calls),
        "effective_unites": float(n_r - uf.n_components()),
        "memory_units": float(3 * n_r),
    }
    return tree, stats
