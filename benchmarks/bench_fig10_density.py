"""Figure 10: usefulness of the hierarchy on the youtube stand-in.

Left panel: number of vertices vs edge density for the (2, s)-nuclei
discovered by the hierarchy, for s in {3, 4, 5}.

Right panel: time to produce *all* c-(2, s) nuclei for every c, with the
hierarchy (cut the tree once per level) vs without (run connectivity over
the level graph once per level). The paper reports 5.84-834x advantages;
the shape -- hierarchy cutting wins by orders of magnitude and the gap
grows with s -- is the claim this harness checks.
"""

from __future__ import annotations

import time
from typing import List

from repro import nucleus_decomposition
from repro.analysis.density import density_profile
from repro.analysis.reporting import banner, format_table
from repro.baselines.naive_hierarchy import nuclei_without_hierarchy
from repro.core.nucleus import peel_exact, prepare

from bench_common import bench_graph, kernel_graph, timed, within_budget

S_VALUES = (3, 4, 5)


def run_density(graph=None, s_values=S_VALUES):
    """Left panel data: (s, level, n_vertices, density) rows."""
    graph = graph if graph is not None else bench_graph("youtube")
    rows = []
    for s in s_values:
        if not within_budget(graph, 2, s):
            continue
        decomp = nucleus_decomposition(graph, 2, s)
        for profile in decomp.density_profile(min_vertices=3):
            rows.append((s, profile.level, profile.n_vertices,
                         profile.density))
    return rows


def run_cut_vs_connectivity(graph=None, s_values=S_VALUES):
    """Right panel data: (s, levels, with_hierarchy_s, without_s, speedup)."""
    graph = graph if graph is not None else bench_graph("youtube")
    rows = []
    for s in s_values:
        if not within_budget(graph, 2, s):
            continue
        prepared = prepare(graph, 2, s)
        coreness = peel_exact(prepared.incidence)
        decomp = nucleus_decomposition(graph, 2, s)
        levels = decomp.hierarchy_levels()
        if not levels:
            continue

        def with_hierarchy():
            return [decomp.nuclei_at(c, as_vertices=False) for c in levels]

        def without_hierarchy():
            return [nuclei_without_hierarchy(prepared.incidence,
                                             coreness.core, c)
                    for c in levels]

        cheap = timed(with_hierarchy)
        costly = timed(without_hierarchy)
        # same nuclei either way (consistency, not just speed)
        for a, b in zip(cheap.payload, costly.payload):
            assert sorted(map(tuple, a)) == sorted(map(tuple, b))
        rows.append((s, len(levels), cheap.seconds, costly.seconds,
                     costly.seconds / max(cheap.seconds, 1e-9)))
    return rows


def build_report() -> str:
    from statistics import mean, median
    graph = bench_graph("youtube")
    density_rows = run_density(graph)
    grouped = {}
    for s, level, n_vertices, density in density_rows:
        grouped.setdefault((s, level), []).append((n_vertices, density))
    agg_rows = []
    for (s, level) in sorted(grouped, key=lambda key: (key[0], -key[1])):
        entries = grouped[(s, level)]
        sizes = [n for n, _ in entries]
        densities = [d for _, d in entries]
        agg_rows.append((s, level, len(entries), min(sizes),
                         int(median(sizes)), max(sizes), mean(densities)))
    left = format_table(
        ("s", "level", "nuclei", "min |V|", "median |V|", "max |V|",
         "mean density"),
        agg_rows,
        title="Figure 10 (left): (2,s)-nuclei size vs edge density, youtube "
              f"({len(density_rows)} nuclei total)")
    more = ""
    cut_rows = run_cut_vs_connectivity(graph)
    right = format_table(
        ("s", "levels", "with hierarchy", "without hierarchy", "speedup"),
        cut_rows,
        title="Figure 10 (right): finding all (2,s)-nuclei, hierarchy cut "
              "vs per-level connectivity")
    return banner("Figure 10") + "\n" + left + more + "\n\n" + right


def test_fig10_density_shape():
    graph = bench_graph("youtube")
    rows = run_density(graph, s_values=(3,))
    assert rows, "no nuclei found"
    print(f"{len(rows)} nuclei profiled")
    # density is valid and the deepest levels reach high density
    for s, level, n_vertices, density in rows:
        assert 0 <= density <= 1
        assert n_vertices >= 3
    # The paper's shape: deep nuclei are small and dense; the big shallow
    # shells are loose. Compare the deepest nucleus against the *largest*
    # nucleus of the shallowest level (the loose shell).
    deepest = max(rows, key=lambda row: row[1])
    min_level = min(row[1] for row in rows)
    shell = max((row for row in rows if row[1] == min_level),
                key=lambda row: row[2])
    assert deepest[3] >= shell[3]
    assert deepest[2] <= shell[2]


def test_fig10_hierarchy_beats_connectivity():
    graph = bench_graph("youtube")
    rows = run_cut_vs_connectivity(graph, s_values=(3,))
    assert rows
    for s, levels, cheap, costly, speedup in rows:
        print(f"s={s}: {levels} levels, cut {cheap:.4f}s vs "
              f"connectivity {costly:.4f}s ({speedup:.1f}x)")
        assert speedup > 1.0


def test_benchmark_hierarchy_cut_kernel(benchmark):
    graph = kernel_graph("youtube")
    decomp = nucleus_decomposition(graph, 2, 3)
    levels = decomp.hierarchy_levels()
    benchmark(lambda: [decomp.nuclei_at(c, as_vertices=False)
                       for c in levels])


def test_benchmark_no_hierarchy_kernel(benchmark):
    graph = kernel_graph("youtube")
    prepared = prepare(graph, 2, 3)
    coreness = peel_exact(prepared.incidence)
    levels = sorted({c for c in coreness.core if c > 0}, reverse=True)
    benchmark(lambda: [nuclei_without_hierarchy(prepared.incidence,
                                                coreness.core, c)
                       for c in levels])


if __name__ == "__main__":
    print(build_report())
