"""Unit tests for graph statistics (repro.graphs.stats)."""

import pytest

from repro.graphs.generators import (barabasi_albert, erdos_renyi,
                                     ring_lattice, watts_strogatz)
from repro.graphs.graph import Graph
from repro.graphs.stats import (average_local_clustering, degree_histogram,
                                degree_skew, degree_summary,
                                global_clustering, profile_graph)


class TestDegreeSummaries:
    def test_summary_values(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])  # star
        summary = degree_summary(g)
        assert summary["max"] == 3
        assert summary["min"] == 1
        assert summary["mean"] == pytest.approx(1.5)

    def test_empty_graph(self):
        assert degree_summary(Graph.empty(0))["max"] == 0

    def test_histogram(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert degree_histogram(g) == [(1, 3), (3, 1)]

    def test_skew_star_vs_ring(self):
        star = Graph(11, [(0, v) for v in range(1, 11)])
        ring = ring_lattice(11, 1)
        assert degree_skew(star) > degree_skew(ring)
        assert degree_skew(ring) == pytest.approx(1.0)

    def test_skew_degenerate(self):
        assert degree_skew(Graph.empty(3)) == 0.0


class TestClustering:
    def test_complete_graph_is_fully_clustered(self):
        k5 = Graph.complete(5)
        assert global_clustering(k5) == pytest.approx(1.0)
        assert average_local_clustering(k5) == pytest.approx(1.0)

    def test_triangle_free_graph(self):
        path = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert global_clustering(path) == 0.0
        assert average_local_clustering(path) == 0.0

    def test_matches_networkx(self):
        import networkx as nx
        g = erdos_renyi(60, 0.15, seed=4)
        nxg = nx.Graph(list(g.edges()))
        nxg.add_nodes_from(range(g.n))
        assert global_clustering(g) == pytest.approx(nx.transitivity(nxg))
        assert average_local_clustering(g) == pytest.approx(
            nx.average_clustering(nxg))

    def test_lattice_more_clustered_than_random(self):
        ws = watts_strogatz(100, 3, 0.05, seed=2)
        er = erdos_renyi(100, 6 / 99, seed=2)
        assert average_local_clustering(ws) > average_local_clustering(er)


class TestProfile:
    def test_profile_fields(self):
        g = barabasi_albert(80, 3, seed=6)
        profile = profile_graph(g)
        assert profile.n == 80
        assert profile.m == g.m
        assert profile.max_degree == g.max_degree()
        assert profile.degeneracy >= 1
        assert profile.degree_skew > 1.0

    def test_profile_of_clique(self):
        profile = profile_graph(Graph.complete(6))
        assert profile.degeneracy == 5
        assert profile.global_clustering == pytest.approx(1.0)
        assert profile.degree_skew == pytest.approx(1.0)
