"""Comparing two hierarchies over the same r-clique universe.

Used to quantify how close an *approximate* hierarchy is to the exact one
(Section 8.3 reports coreness errors; these helpers extend the analysis
to the tree structure itself):

* :func:`rand_index` / :func:`partition_agreement` -- pairwise-agreement
  similarity between two partitions of the same elements;
* :func:`hierarchy_similarity` -- level-by-level agreement between two
  trees, aligning each level of tree A with the partition tree B induces
  at the same threshold;
* :func:`confusion_summary` -- how many exact nuclei are preserved /
  merged / split in the second hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..core.tree import HierarchyTree
from ..errors import ParameterError


def _labels_from_partition(groups: Iterable[Iterable[int]],
                           n: int) -> List[int]:
    labels = [-1] * n
    for label, group in enumerate(groups):
        for x in group:
            if not 0 <= x < n:
                raise ParameterError(f"element {x} out of range for n={n}")
            labels[x] = label
    return labels


def rand_index(partition_a: Sequence[Iterable[int]],
               partition_b: Sequence[Iterable[int]], n: int) -> float:
    """Rand index between two partitions of (subsets of) ``0..n-1``.

    Elements missing from a partition form singletons, so partial
    partitions (only the active r-cliques at a level) compare sensibly.
    Returns 1.0 for identical groupings.
    """
    a = _labels_from_partition(partition_a, n)
    b = _labels_from_partition(partition_b, n)
    # contingency counts over pairs via label-pair frequencies
    from collections import Counter
    pair = Counter()
    count_a = Counter()
    count_b = Counter()
    for x in range(n):
        la = (a[x], x) if a[x] == -1 else (a[x],)
        lb = (b[x], x) if b[x] == -1 else (b[x],)
        pair[(la, lb)] += 1
        count_a[la] += 1
        count_b[lb] += 1

    def choose2(c: int) -> int:
        return c * (c - 1) // 2

    same_both = sum(choose2(c) for c in pair.values())
    same_a = sum(choose2(c) for c in count_a.values())
    same_b = sum(choose2(c) for c in count_b.values())
    total = choose2(n)
    if total == 0:
        return 1.0
    agreements = total + 2 * same_both - same_a - same_b
    return agreements / total


def partition_agreement(partition_a: Sequence[Iterable[int]],
                        partition_b: Sequence[Iterable[int]]) -> float:
    """Fraction of groups of A that appear verbatim in B."""
    sets_b = {frozenset(g) for g in partition_b}
    groups_a = [frozenset(g) for g in partition_a]
    if not groups_a:
        return 1.0
    return sum(1 for g in groups_a if g in sets_b) / len(groups_a)


@dataclass(frozen=True)
class LevelSimilarity:
    """Agreement between two hierarchies at one exact level."""

    level: float
    rand: float
    exact_nuclei: int
    other_nuclei: int
    preserved: int   # exact nuclei appearing verbatim
    merged: int      # exact nuclei strictly inside one other-nucleus
    split: int       # exact nuclei spread over several other-nuclei


def hierarchy_similarity(exact: HierarchyTree,
                         other: HierarchyTree) -> List[LevelSimilarity]:
    """Per-level agreement of ``other`` against ``exact``.

    At each distinct level of the exact tree, both trees are cut at that
    threshold and the resulting partitions compared. Requires both trees
    to share the leaf universe.
    """
    if exact.n_leaves != other.n_leaves:
        raise ParameterError(
            f"trees have different leaf counts: {exact.n_leaves} vs "
            f"{other.n_leaves}")
    n = exact.n_leaves
    out: List[LevelSimilarity] = []
    for level in exact.distinct_levels():
        nuclei_exact = [frozenset(g) for g in exact.nuclei_at(level)]
        nuclei_other = [frozenset(g) for g in other.nuclei_at(level)]
        owner: Dict[int, int] = {}
        for i, group in enumerate(nuclei_other):
            for x in group:
                owner[x] = i
        preserved = merged = split = 0
        other_set = set(nuclei_other)
        for group in nuclei_exact:
            if group in other_set:
                preserved += 1
                continue
            owners = {owner.get(x) for x in group}
            if len(owners) == 1 and None not in owners:
                merged += 1
            else:
                split += 1
        out.append(LevelSimilarity(
            level=level,
            rand=rand_index(nuclei_exact, nuclei_other, n),
            exact_nuclei=len(nuclei_exact),
            other_nuclei=len(nuclei_other),
            preserved=preserved,
            merged=merged,
            split=split,
        ))
    return out


def confusion_summary(similarities: Sequence[LevelSimilarity]
                      ) -> Dict[str, float]:
    """Aggregate preserved/merged/split fractions over all levels."""
    total = sum(s.exact_nuclei for s in similarities)
    if total == 0:
        return {"preserved": 1.0, "merged": 0.0, "split": 0.0,
                "mean_rand": 1.0}
    return {
        "preserved": sum(s.preserved for s in similarities) / total,
        "merged": sum(s.merged for s in similarities) / total,
        "split": sum(s.split for s in similarities) / total,
        "mean_rand": (sum(s.rand for s in similarities)
                      / len(similarities)),
    }
