"""Unit + property tests for the parallel hash table."""

import pytest
from hypothesis import given, strategies as st

from repro.parallel.counters import WorkSpanCounter
from repro.parallel.hashtable import ParallelHashTable


class TestBasics:
    def test_set_get(self):
        t = ParallelHashTable()
        t.set("a", 1)
        assert t.get("a") == 1
        assert t["a"] == 1
        assert len(t) == 1

    def test_get_missing(self):
        t = ParallelHashTable()
        assert t.get("x") is None
        assert t.get("x", 7) == 7
        with pytest.raises(KeyError):
            t["x"]

    def test_overwrite(self):
        t = ParallelHashTable()
        t["k"] = 1
        t["k"] = 2
        assert t["k"] == 2
        assert len(t) == 1

    def test_setdefault_insert_if_absent(self):
        t = ParallelHashTable()
        assert t.setdefault("k", 1) == 1
        assert t.setdefault("k", 2) == 1  # loser gets the winner's value
        assert t["k"] == 1

    def test_contains_and_iter(self):
        t = ParallelHashTable()
        for key in ("a", "b", "c"):
            t[key] = key.upper()
        assert "a" in t and "z" not in t
        assert sorted(t) == ["a", "b", "c"]
        assert sorted(t.keys()) == ["a", "b", "c"]
        assert sorted(t.values()) == ["A", "B", "C"]
        assert sorted(t.items()) == [("a", "A"), ("b", "B"), ("c", "C")]

    def test_pop(self):
        t = ParallelHashTable()
        t["k"] = 1
        assert t.pop("k") == 1
        assert "k" not in t
        assert len(t) == 0
        assert t.pop("k", 9) == 9
        with pytest.raises(KeyError):
            t.pop("k")

    def test_reinsert_after_pop_uses_tombstone_path(self):
        t = ParallelHashTable()
        t["k"] = 1
        t.pop("k")
        t["k"] = 2
        assert t["k"] == 2
        assert len(t) == 1


class TestGrowth:
    def test_grows_past_initial_capacity(self):
        t = ParallelHashTable(capacity=8)
        for i in range(100):
            t[i] = i * i
        assert len(t) == 100
        for i in range(100):
            assert t[i] == i * i

    def test_growth_with_tombstones(self):
        t = ParallelHashTable(capacity=8)
        for i in range(50):
            t[i] = i
        for i in range(0, 50, 2):
            t.pop(i)
        for i in range(100, 140):
            t[i] = i
        assert len(t) == 25 + 40
        assert all(i in t for i in range(1, 50, 2))
        assert all(i not in t for i in range(0, 50, 2))

    def test_integer_keys_colliding_mod_capacity(self):
        t = ParallelHashTable(capacity=8)
        keys = [0, 8, 16, 24, 32]  # all hash to slot 0 mod 8
        for k in keys:
            t[k] = k
        assert all(t[k] == k for k in keys)


class TestAccounting:
    def test_operations_metered(self):
        c = WorkSpanCounter()
        t = ParallelHashTable(counter=c)
        t["a"] = 1
        t.get("a")
        t.pop("a")
        assert c.work >= 3

    def test_charge_batch(self):
        c = WorkSpanCounter()
        t = ParallelHashTable(counter=c)
        t.charge_batch(1024)
        assert c.span >= 10

    def test_cas_stats_exposed(self):
        t = ParallelHashTable()
        t["a"] = 1
        assert t.atomic_stats.cas_attempts >= 1


@given(st.lists(st.tuples(st.sampled_from("abcdefgh"),
                          st.sampled_from(["set", "pop", "setdefault"]),
                          st.integers(0, 9)),
                max_size=200))
def test_matches_dict_model(operations):
    """Differential test against Python's dict under random op sequences."""
    table = ParallelHashTable(capacity=8)
    model = {}
    for key, op, value in operations:
        if op == "set":
            table[key] = value
            model[key] = value
        elif op == "setdefault":
            got = table.setdefault(key, value)
            expected = model.setdefault(key, value)
            assert got == expected
        else:  # pop
            got = table.pop(key, None)
            expected = model.pop(key, None)
            assert got == expected
        assert len(table) == len(model)
    assert sorted(table.items()) == sorted(model.items())
