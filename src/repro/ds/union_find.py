"""Union-find data structures.

Two implementations:

* :class:`ConcurrentUnionFind` -- the randomized concurrent disjoint-set
  union of Jayanti and Tarjan [31], which the paper uses for its interleaved
  hierarchy algorithms (Algorithms 4 and 5). Roots are linked by random
  priority and finds use path splitting; both operations are lock-free in
  the original, synchronizing through CAS on parent cells. Here the CAS goes
  through :class:`~repro.parallel.atomics.AtomicCell`, so tests can inject
  contention (see :class:`~repro.parallel.atomics.FlakyAtomicCell`).
* :class:`SequentialUnionFind` -- classic union-by-rank with full path
  compression, used by the sequential ``NH`` baseline [49].

Both count their operations (`unites`, `finds`, pointer hops) because the
paper's Section 8.1 analysis compares algorithms by exactly those counts.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..errors import DataStructureError
from ..parallel.atomics import AtomicCell, AtomicStats


class UnionFindStats:
    """Operation counters shared by the union-find variants."""

    __slots__ = ("unites", "effective_unites", "finds", "hops")

    def __init__(self) -> None:
        self.unites = 0
        #: unites that actually merged two distinct sets
        self.effective_unites = 0
        self.finds = 0
        #: parent-pointer dereferences (the work measure)
        self.hops = 0

    def reset(self) -> None:
        self.unites = 0
        self.effective_unites = 0
        self.finds = 0
        self.hops = 0


class ConcurrentUnionFind:
    """Jayanti-Tarjan randomized concurrent union-find.

    Elements are the integers ``0 .. n-1``. ``unite`` links the root of
    lower random priority under the root of higher priority with a CAS on
    its parent cell, retrying on failure; ``find`` performs path splitting
    (every traversed node's parent is CAS'd to its grandparent). With these
    choices the structure is linearizable and runs in effectively-constant
    amortized time per operation.
    """

    __slots__ = ("n", "_parents", "_priority", "stats", "atomic_stats")

    def __init__(self, n: int, seed: int = 0) -> None:
        if n < 0:
            raise DataStructureError(f"union-find size must be >= 0, got {n}")
        self.n = n
        self.atomic_stats = AtomicStats()
        self._parents: List[AtomicCell[int]] = [
            AtomicCell(i, self.atomic_stats) for i in range(n)
        ]
        rng = random.Random(seed)
        perm = list(range(n))
        rng.shuffle(perm)
        self._priority = perm
        self.stats = UnionFindStats()

    # -- internal --------------------------------------------------------

    def _check(self, x: int) -> None:
        if not 0 <= x < self.n:
            raise DataStructureError(
                f"element {x} out of range for union-find of size {self.n}")

    def parent_cell(self, x: int) -> AtomicCell[int]:
        """Direct access to the parent cell (tests inject flaky cells)."""
        self._check(x)
        return self._parents[x]

    def set_parent_cell(self, x: int, cell: AtomicCell[int]) -> None:
        """Replace the parent cell of ``x`` (fault-injection hook)."""
        self._check(x)
        self._parents[x] = cell

    # -- public API ------------------------------------------------------

    def find(self, x: int) -> int:
        """Root of ``x``'s set, with path splitting."""
        self._check(x)
        self.stats.finds += 1
        while True:
            parent = self._parents[x].load()
            self.stats.hops += 1
            if parent == x:
                return x
            grandparent = self._parents[parent].load()
            self.stats.hops += 1
            if grandparent != parent:
                # Path splitting: point x at its grandparent. A CAS failure
                # means someone else already improved the path; ignore it.
                self._parents[x].compare_and_swap(parent, grandparent)
            x = parent

    def unite(self, x: int, y: int) -> int:
        """Join the sets of ``x`` and ``y``; return the surviving root."""
        self.stats.unites += 1
        while True:
            rx = self.find(x)
            ry = self.find(y)
            if rx == ry:
                return rx
            # Link the lower-priority root under the higher-priority one.
            if self._priority[rx] > self._priority[ry]:
                rx, ry = ry, rx
            if self._parents[rx].compare_and_swap(rx, ry):
                self.stats.effective_unites += 1
                return ry
            # CAS failed: rx was linked concurrently; retry from the top.

    def same_set(self, x: int, y: int) -> bool:
        return self.find(x) == self.find(y)

    def components(self) -> Dict[int, List[int]]:
        """Map each root to the sorted list of its members."""
        out: Dict[int, List[int]] = {}
        for x in range(self.n):
            out.setdefault(self.find(x), []).append(x)
        return out

    def roots(self) -> List[int]:
        """All current set representatives, sorted."""
        return sorted({self.find(x) for x in range(self.n)})

    def n_components(self) -> int:
        return len({self.find(x) for x in range(self.n)})


class SequentialUnionFind:
    """Union-by-rank with full path compression (the ``NH`` baseline's DSU).

    Sariyüce and Pinar's algorithm pays the inverse-Ackermann factor the
    paper's Theorem 5.1 avoids; this class is kept separate so baseline
    measurements use exactly their structure.
    """

    __slots__ = ("n", "_parent", "_rank", "stats")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise DataStructureError(f"union-find size must be >= 0, got {n}")
        self.n = n
        self._parent = list(range(n))
        self._rank = [0] * n
        self.stats = UnionFindStats()

    def _check(self, x: int) -> None:
        if not 0 <= x < self.n:
            raise DataStructureError(
                f"element {x} out of range for union-find of size {self.n}")

    def find(self, x: int) -> int:
        self._check(x)
        self.stats.finds += 1
        root = x
        while self._parent[root] != root:
            self.stats.hops += 1
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def unite(self, x: int, y: int) -> int:
        self.stats.unites += 1
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return rx
        self.stats.effective_unites += 1
        if self._rank[rx] < self._rank[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        if self._rank[rx] == self._rank[ry]:
            self._rank[rx] += 1
        return rx

    def same_set(self, x: int, y: int) -> bool:
        return self.find(x) == self.find(y)

    def components(self) -> Dict[int, List[int]]:
        out: Dict[int, List[int]] = {}
        for x in range(self.n):
            out.setdefault(self.find(x), []).append(x)
        return out

    def n_components(self) -> int:
        return len({self.find(x) for x in range(self.n)})


def partition_refines(fine: Dict[int, List[int]],
                      coarse: Dict[int, List[int]]) -> bool:
    """True if every block of ``fine`` lies inside one block of ``coarse``.

    Utility used by hierarchy tests: components at level ``c`` must refine
    components at every level ``c' < c``.
    """
    owner: Dict[int, int] = {}
    for root, members in coarse.items():
        for x in members:
            owner[x] = root
    for members in fine.values():
        owners = {owner.get(x) for x in members}
        if len(owners) > 1 or None in owners:
            return False
    return True
