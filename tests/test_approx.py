"""Unit + property tests for APPROX-ARB-NUCLEUS (Algorithm 2)."""

from math import comb

import pytest
from hypothesis import given, settings, strategies as st

from conftest import oracle_chain
from repro.baselines.naive_hierarchy import naive_hierarchy
from repro.core.approx import (approx_anh_bl, approx_anh_el, approx_anh_te,
                               approx_arb_nucleus, approximation_bound,
                               peel_approx)
from repro.core.nucleus import arb_nucleus, peel_exact, prepare
from repro.errors import ParameterError
from repro.graphs.generators import erdos_renyi, planted_nuclei
from repro.graphs.graph import Graph


class TestBound:
    def test_bound_formula(self):
        assert approximation_bound(3, 0.5) == pytest.approx(3.5 * 1.5)

    @settings(deadline=None, max_examples=15)
    @given(pairs=st.sets(st.tuples(st.integers(0, 12), st.integers(0, 12)),
                         max_size=45),
           rs=st.sampled_from([(1, 2), (2, 3), (2, 4), (3, 4)]),
           delta=st.sampled_from([0.1, 0.5, 1.0]))
    def test_estimates_within_proven_factor(self, pairs, rs, delta):
        """Theorem 6.3: exact <= estimate <= (C+d)(1+d) * exact."""
        r, s = rs
        g = Graph(13, [(u, v) for u, v in pairs if u != v])
        prep = prepare(g, r, s)
        if prep.n_r == 0:
            return
        exact = peel_exact(prep.incidence).core
        approx = peel_approx(prep.incidence, delta).core
        bound = approximation_bound(comb(s, r), delta)
        for e, a in zip(exact, approx):
            if e == 0:
                assert a == 0
            else:
                assert e <= a <= bound * e + 1e-9

    def test_zero_core_cliques_estimated_zero(self):
        g = Graph(5, [(0, 1), (1, 2), (0, 2), (3, 4)])  # isolated edge
        prep = prepare(g, 2, 3)
        approx = peel_approx(prep.incidence, 0.5)
        isolated = prep.index.id_of((3, 4))
        assert approx.core[isolated] == 0


class TestRounds:
    def test_fewer_rounds_than_exact_on_deep_graph(self):
        g = planted_nuclei([10, 9, 8, 7, 6], backbone_p=0.04, seed=3)
        prep = prepare(g, 2, 3)
        exact = peel_exact(prep.incidence)
        approx = peel_approx(prep.incidence, 0.5)
        assert approx.rho < exact.rho

    def test_rounds_shrink_with_larger_delta(self):
        g = planted_nuclei([10, 9, 8, 7], backbone_p=0.05, seed=5)
        prep = prepare(g, 2, 3)
        tight = peel_approx(prep.incidence, 0.1).rho
        loose = peel_approx(prep.incidence, 1.0).rho
        assert loose <= tight

    def test_round_cap_override(self):
        g = erdos_renyi(25, 0.35, seed=4)
        prep = prepare(g, 2, 3)
        generous = peel_approx(prep.incidence, 0.5)
        stingy = peel_approx(prep.incidence, 0.5, round_cap=1)
        # A stingy cap can only promote more cliques to higher buckets.
        assert (stingy.stats["bucket_promotions"]
                >= generous.stats["bucket_promotions"])
        # Estimates must still dominate the exact cores.
        exact = peel_exact(prep.incidence).core
        assert all(a >= e for a, e in zip(stingy.core, exact))


class TestValidation:
    def test_delta_must_be_positive(self):
        g = Graph.complete(4)
        with pytest.raises(ParameterError):
            approx_arb_nucleus(g, 2, 3, delta=0)
        prep = prepare(g, 2, 3)
        with pytest.raises(ParameterError):
            peel_approx(prep.incidence, -1)

    def test_core_out_filled(self):
        prep = prepare(Graph.complete(5), 2, 3)
        sink = [0.0] * prep.n_r
        res = peel_approx(prep.incidence, 0.5, core_out=sink)
        assert res.core is sink

    def test_stats_recorded(self):
        res = approx_arb_nucleus(erdos_renyi(25, 0.3, seed=2), 2, 3, 0.5)
        assert "round_cap" in res.stats
        assert res.stats["round_cap"] >= 1


class TestApproxHierarchies:
    @pytest.mark.parametrize("algorithm", [approx_anh_el, approx_anh_bl,
                                           approx_anh_te])
    def test_tree_matches_oracle_on_estimates(self, algorithm, social_graph):
        prep = prepare(social_graph, 2, 3)
        estimates = peel_approx(prep.incidence, 0.5)
        oracle = naive_hierarchy(prep.incidence,
                                 estimates.core).partition_chain()
        out = algorithm(social_graph, 2, 3, delta=0.5, prepared=prep)
        assert out.coreness.core == estimates.core
        assert out.tree.partition_chain() == oracle

    def test_theoretical_te_variant(self, social_graph):
        prep = prepare(social_graph, 2, 3)
        practical = approx_anh_te(social_graph, 2, 3, delta=0.5,
                                  prepared=prep)
        theoretical = approx_anh_te(social_graph, 2, 3, delta=0.5,
                                    prepared=prep, theoretical=True)
        assert (practical.tree.partition_chain()
                == theoretical.tree.partition_chain())

    def test_approx_hierarchy_coarsens_exact(self, social_graph):
        """Approximation can only merge levels, never split nuclei wrongly:

        every exact nucleus at level c is contained in some approximate
        nucleus at a level <= c (estimates only grow).
        """
        prep = prepare(social_graph, 2, 3)
        exact = peel_exact(prep.incidence)
        out = approx_anh_el(social_graph, 2, 3, delta=0.5, prepared=prep)
        exact_tree = naive_hierarchy(prep.incidence, exact.core)
        for c in exact_tree.distinct_levels():
            for nucleus in exact_tree.nuclei_at(c):
                containers = [n for n in out.tree.nuclei_at(c)
                              if set(nucleus) <= set(n)]
                assert containers, (c, nucleus)

    def test_approx_tree_height_bounded_by_bucket_count(self, social_graph):
        """Polylog levels: distinct estimates <= geometric bucket count."""
        out = approx_anh_el(social_graph, 2, 3, delta=1.0)
        n_levels = len(out.tree.distinct_levels())
        # estimates take at most (#buckets + #distinct refined degrees
        # below their bucket bound) values; with delta=1 this is tiny.
        assert n_levels <= 2 * (out.coreness.stats["round_cap"] + 20)
