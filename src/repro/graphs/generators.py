"""Seeded synthetic graph generators.

These provide the workloads for tests, examples, and the SNAP stand-ins in
:mod:`repro.graphs.datasets`. All generators are deterministic for a given
seed (``random.Random`` only; no global state) so every experiment in the
repository is exactly reproducible.

Generator menu:

* :func:`erdos_renyi` -- G(n, p) sparse random graphs;
* :func:`barabasi_albert` -- preferential attachment (heavy-tail degrees);
* :func:`powerlaw_cluster` -- Holme-Kim preferential attachment with
  triangle closure; the workhorse for social-network stand-ins because it
  produces abundant cliques (nucleus decomposition is all about cliques);
* :func:`ring_lattice` / :func:`watts_strogatz` -- high local clustering,
  the co-purchase-network (amazon) character;
* :func:`planted_nuclei` -- disjoint dense blocks wired to a sparse
  backbone, with *known* hierarchy structure, used heavily by tests;
* :func:`rmat` -- Kronecker-style skewed random graphs;
* :func:`random_bipartite_like` -- low-clique-count control workload.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..errors import ParameterError
from .graph import Edge, Graph


def _check_n(n: int) -> None:
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")


def erdos_renyi(n: int, p: float, seed: int = 0, name: str = "") -> Graph:
    """G(n, p): each pair is an edge independently with probability ``p``."""
    _check_n(n)
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"p must be in [0, 1], got {p}")
    rng = random.Random(seed)
    edges = [(u, v) for u in range(n) for v in range(u + 1, n)
             if rng.random() < p]
    return Graph(n, edges, name=name or f"er_{n}_{p}")


def barabasi_albert(n: int, m_attach: int, seed: int = 0,
                    name: str = "") -> Graph:
    """Preferential attachment: each new vertex attaches to ``m_attach`` others."""
    _check_n(n)
    if m_attach < 1:
        raise ParameterError(f"m_attach must be >= 1, got {m_attach}")
    if n <= m_attach:
        return Graph.complete(n, name=name or f"ba_{n}_{m_attach}")
    rng = random.Random(seed)
    edges: List[Edge] = []
    # Repeated-endpoint list implements degree-proportional sampling.
    targets = list(range(m_attach))
    repeated: List[int] = list(range(m_attach))
    for v in range(m_attach, n):
        chosen = set()
        while len(chosen) < m_attach:
            chosen.add(rng.choice(repeated) if repeated else rng.randrange(v))
        for u in chosen:
            edges.append((u, v))
            repeated.append(u)
            repeated.append(v)
        targets = list(chosen)
        del targets
    return Graph(n, edges, name=name or f"ba_{n}_{m_attach}")


def powerlaw_cluster(n: int, m_attach: int, p_triangle: float, seed: int = 0,
                     name: str = "") -> Graph:
    """Holme-Kim power-law graph with tunable clustering.

    Like Barabasi-Albert, but after each preferential attachment, with
    probability ``p_triangle`` the next link closes a triangle with a
    random neighbor of the previous target. High ``p_triangle`` yields the
    clique-rich structure that makes nucleus decomposition interesting.
    """
    _check_n(n)
    if m_attach < 1:
        raise ParameterError(f"m_attach must be >= 1, got {m_attach}")
    if not 0.0 <= p_triangle <= 1.0:
        raise ParameterError(f"p_triangle must be in [0, 1], got {p_triangle}")
    if n <= m_attach:
        return Graph.complete(n, name=name or "plc_small")
    rng = random.Random(seed)
    edges: set = set()
    adj: List[List[int]] = [[] for _ in range(n)]
    repeated: List[int] = list(range(m_attach))

    def add(u: int, v: int) -> bool:
        if u == v:
            return False
        key = (u, v) if u < v else (v, u)
        if key in edges:
            return False
        edges.add(key)
        adj[u].append(v)
        adj[v].append(u)
        repeated.append(u)
        repeated.append(v)
        return True

    for u in range(m_attach):
        for v in range(u + 1, m_attach):
            add(u, v)
    for v in range(m_attach, n):
        added = 0
        last_target: Optional[int] = None
        guard = 0
        while added < m_attach and guard < 50 * m_attach:
            guard += 1
            if (last_target is not None and rng.random() < p_triangle
                    and adj[last_target]):
                # Triangle step: link to a neighbor of the last target.
                candidate = rng.choice(adj[last_target])
            else:
                candidate = rng.choice(repeated)
            if add(candidate, v):
                added += 1
                last_target = candidate
    return Graph(n, sorted(edges), name=name or f"plc_{n}_{m_attach}")


def ring_lattice(n: int, k_each_side: int, name: str = "") -> Graph:
    """Ring where each vertex links to its ``k_each_side`` nearest on each side."""
    _check_n(n)
    if k_each_side < 0:
        raise ParameterError(f"k_each_side must be >= 0, got {k_each_side}")
    edges = [(v, (v + d) % n) for v in range(n)
             for d in range(1, k_each_side + 1) if n > 1 and v != (v + d) % n]
    return Graph(n, edges, name=name or f"ring_{n}_{k_each_side}")


def watts_strogatz(n: int, k_each_side: int, p_rewire: float, seed: int = 0,
                   name: str = "") -> Graph:
    """Small-world graph: ring lattice with random rewiring."""
    if not 0.0 <= p_rewire <= 1.0:
        raise ParameterError(f"p_rewire must be in [0, 1], got {p_rewire}")
    rng = random.Random(seed)
    base = ring_lattice(n, k_each_side)
    edges = set()
    for u, v in base.edges():
        if rng.random() < p_rewire and n > 2:
            w = rng.randrange(n)
            tries = 0
            while (w == u or (min(u, w), max(u, w)) in edges) and tries < 10:
                w = rng.randrange(n)
                tries += 1
            if w != u:
                edges.add((min(u, w), max(u, w)))
                continue
        edges.add((u, v))
    return Graph(n, sorted(edges), name=name or f"ws_{n}_{k_each_side}")


def planted_nuclei(block_sizes: Sequence[int], backbone_p: float = 0.0,
                   bridge: bool = True, seed: int = 0,
                   name: str = "") -> Graph:
    """Disjoint cliques ("planted nuclei") optionally chained by bridges.

    Block ``i`` is a clique on ``block_sizes[i]`` vertices; consecutive
    blocks are joined by a single bridge edge when ``bridge`` is set, and a
    sparse G(n, backbone_p) overlay can blur the boundaries. Because the
    exact core numbers of disjoint cliques are known in closed form, this
    family is the primary correctness workload for the tests.
    """
    for size in block_sizes:
        if size < 1:
            raise ParameterError(f"block sizes must be >= 1, got {size}")
    rng = random.Random(seed)
    edges: List[Edge] = []
    offsets: List[int] = []
    total = 0
    for size in block_sizes:
        offsets.append(total)
        for a in range(size):
            for b in range(a + 1, size):
                edges.append((total + a, total + b))
        total += size
    if bridge:
        for i in range(len(block_sizes) - 1):
            edges.append((offsets[i], offsets[i + 1]))
    if backbone_p > 0:
        for u in range(total):
            for v in range(u + 1, total):
                if rng.random() < backbone_p:
                    edges.append((u, v))
    return Graph(total, edges, name=name or "planted")


def rmat(scale: int, edge_factor: int, seed: int = 0,
         a: float = 0.57, b: float = 0.19, c: float = 0.19,
         name: str = "") -> Graph:
    """RMAT/Kronecker-style graph: ``2**scale`` vertices, skewed degrees."""
    if scale < 1:
        raise ParameterError(f"scale must be >= 1, got {scale}")
    if edge_factor < 1:
        raise ParameterError(f"edge_factor must be >= 1, got {edge_factor}")
    total = a + b + c
    if total >= 1.0:
        raise ParameterError("a + b + c must be < 1")
    rng = random.Random(seed)
    n = 1 << scale
    target_edges = n * edge_factor
    edges = set()
    attempts = 0
    while len(edges) < target_edges and attempts < 20 * target_edges:
        attempts += 1
        u = v = 0
        for _ in range(scale):
            r = rng.random()
            u <<= 1
            v <<= 1
            if r < a:
                pass
            elif r < a + b:
                v |= 1
            elif r < a + b + c:
                u |= 1
            else:
                u |= 1
                v |= 1
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return Graph(n, sorted(edges), name=name or f"rmat_{scale}")


def random_bipartite_like(n_left: int, n_right: int, p: float, seed: int = 0,
                          name: str = "") -> Graph:
    """Bipartite random graph (triangle-free: a useful degenerate workload).

    With no triangles there are no s-cliques for ``s >= 3``, so nucleus
    decompositions beyond (1, 2) are trivially zero -- tests use this to
    pin down edge-case behaviour.
    """
    rng = random.Random(seed)
    edges = [(u, n_left + v) for u in range(n_left) for v in range(n_right)
             if rng.random() < p]
    return Graph(n_left + n_right, edges, name=name or "bipartite")


def with_planted_communities(base: Graph, sizes: Sequence[int],
                             p_in: float, seed: int = 0,
                             name: str = "") -> Graph:
    """Overlay dense communities onto an existing graph.

    For each entry of ``sizes``, a random vertex group of that size gets
    internal edges with probability ``p_in``. This produces the deep,
    nested core structure of real social networks (which pure
    preferential-attachment generators lack), while keeping the base
    graph's degree distribution as the periphery.
    """
    if not 0.0 <= p_in <= 1.0:
        raise ParameterError(f"p_in must be in [0, 1], got {p_in}")
    for size in sizes:
        if size < 2 or size > base.n:
            raise ParameterError(
                f"community size {size} invalid for base graph of {base.n}")
    rng = random.Random(seed)
    extra: List[Edge] = []
    for size in sizes:
        group = rng.sample(range(base.n), size)
        for i, u in enumerate(group):
            for v in group[i + 1:]:
                if rng.random() < p_in:
                    extra.append((u, v))
    return Graph(base.n, list(base.edges()) + extra,
                 name=name or f"{base.name}+communities")


def tree_graph(n: int, seed: int = 0, name: str = "") -> Graph:
    """Uniform random recursive tree (acyclic control workload)."""
    _check_n(n)
    rng = random.Random(seed)
    edges = [(rng.randrange(v), v) for v in range(1, n)]
    return Graph(n, edges, name=name or f"tree_{n}")
