"""Geometric range bucketing for APPROX-ARB-NUCLEUS (Algorithm 2, line 6).

The approximate peeling algorithm replaces exact single-degree buckets with
geometric *ranges*: bucket ``B_i`` holds r-cliques whose s-clique degree lies
in ``[(C+d) * (1+d)^i, (C+d) * (1+d)^(i+1))`` where ``C = comb(s, r)`` and
``d`` is the approximation parameter ``delta``. Two special rules from the
paper drive the polylogarithmic span:

* **Aggregation** -- while bucket ``i`` is being processed, a clique whose
  degree falls below the bucket's range is *not* re-bucketed lower; it joins
  the current bucket and is peeled in a later round of the same bucket.
* **Round cap** -- each bucket is processed at most
  ``O(log_{1+delta/C}(n))`` rounds; any survivors are promoted to bucket
  ``i+1`` (Algorithm 2, lines 17-19). Lemma 6.2 guarantees the cap is large
  enough that no clique with core number inside bucket ``i``'s range is
  left behind, which is what preserves the approximation factor.

A clique peeled from bucket ``i`` receives the bucket's upper bound as its
coreness estimate (callers refine it with ``min(upper, original degree)``,
the practical improvement noted in Section 6).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..errors import DataStructureError, ParameterError


def bucket_upper_bound(index: int, base: float, growth: float) -> float:
    """Upper boundary of bucket ``index``: ``base * growth^(index+1)``."""
    return base * growth ** (index + 1)


def bucket_of_degree(degree: float, base: float, growth: float) -> int:
    """Geometric bucket index of ``degree`` (bucket 0 covers ``[0, base*growth)``)."""
    if degree < base * growth:
        return 0
    # i = floor(log_growth(degree / base)); fix float rounding by probing.
    i = int(math.log(degree / base, growth))
    while bucket_upper_bound(i, base, growth) <= degree:
        i += 1
    while i > 0 and bucket_upper_bound(i - 1, base, growth) > degree:
        i -= 1
    return i


def default_round_cap(n_items: int, s_choose_r: int, delta: float) -> int:
    """The per-bucket round budget ``ceil(log_{1+delta/C}(n)) + 1``.

    This is the ``O(log_{1+delta/binom(s,r)}(n))`` threshold of Algorithm 2
    line 17, sized by Lemma 6.2's geometric shrinkage argument.
    """
    if n_items <= 1:
        return 1
    shrink = 1.0 + delta / s_choose_r
    return int(math.ceil(math.log(n_items) / math.log(shrink))) + 1


class GeometricBucketQueue:
    """Range-bucketed peeling queue used by the approximate algorithm.

    Parameters
    ----------
    values:
        Initial s-clique degree of every r-clique (indexed by id).
    s_choose_r:
        ``comb(s, r)``, the ``C`` of the approximation factor.
    delta:
        Approximation parameter (> 0).
    round_cap:
        Per-bucket round budget; defaults to :func:`default_round_cap`.
    """

    __slots__ = ("_degree", "_alive", "_assignment", "_lists", "_base",
                 "_growth", "_current", "_rounds_in_bucket", "_remaining",
                 "round_cap", "rounds", "bucket_promotions", "updates")

    def __init__(self, values: Sequence[int], s_choose_r: int, delta: float,
                 round_cap: Optional[int] = None) -> None:
        if delta <= 0:
            raise ParameterError(f"delta must be > 0, got {delta}")
        if s_choose_r < 1:
            raise ParameterError(f"comb(s, r) must be >= 1, got {s_choose_r}")
        self._degree: List[float] = [float(v) for v in values]
        for i, v in enumerate(self._degree):
            if v < 0:
                raise DataStructureError(
                    f"degree must be >= 0, got {v} for id {i}")
        self._base = s_choose_r + delta
        self._growth = 1.0 + delta
        n = len(self._degree)
        self._alive = [True] * n
        self._assignment = [
            bucket_of_degree(v, self._base, self._growth)
            for v in self._degree
        ]
        max_bucket = max(self._assignment, default=0)
        self._lists: List[List[int]] = [[] for _ in range(max_bucket + 2)]
        for i, b in enumerate(self._assignment):
            self._lists[b].append(i)
        self._current = 0
        self._rounds_in_bucket = 0
        self._remaining = n
        self.round_cap = (default_round_cap(n, s_choose_r, delta)
                          if round_cap is None else round_cap)
        if self.round_cap < 1:
            raise ParameterError(f"round_cap must be >= 1, got {self.round_cap}")
        #: total peeling rounds performed (the span proxy of Theorem 6.3)
        self.rounds = 0
        #: how many ids were promoted to the next bucket by the round cap
        self.bucket_promotions = 0
        self.updates = 0

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return self._remaining

    @property
    def empty(self) -> bool:
        return self._remaining == 0

    @property
    def current_bucket(self) -> int:
        return self._current

    def current_upper_bound(self) -> float:
        return bucket_upper_bound(self._current, self._base, self._growth)

    def degree(self, ident: int) -> float:
        return self._degree[ident]

    def alive(self, ident: int) -> bool:
        return self._alive[ident]

    # -- updates ---------------------------------------------------------

    def decrement(self, ident: int, amount: int = 1) -> None:
        """Lower a live clique's degree, applying the aggregation rule."""
        if not self._alive[ident]:
            raise DataStructureError(
                f"cannot decrement extracted identifier {ident}")
        self.updates += 1
        self._degree[ident] = max(0.0, self._degree[ident] - amount)
        target = max(self._current,
                     bucket_of_degree(self._degree[ident], self._base,
                                      self._growth))
        if target != self._assignment[ident]:
            self._assignment[ident] = target
            self._ensure_bucket(target)
            self._lists[target].append(ident)

    def _ensure_bucket(self, index: int) -> None:
        while len(self._lists) <= index:
            self._lists.append([])

    def _valid_entries(self, index: int) -> List[int]:
        seen = set()
        out = []
        for i in self._lists[index]:
            if self._alive[i] and self._assignment[i] == index and i not in seen:
                out.append(i)
                seen.add(i)
        return out

    # -- extraction ------------------------------------------------------

    def next_round(self) -> Tuple[float, List[int]]:
        """Peel one round: all live cliques in the current bucket.

        Returns ``(upper_bound, ids)``. Internally advances through empty
        buckets and applies the round cap, promoting survivors. Raises when
        the queue is empty.
        """
        if self._remaining == 0:
            raise DataStructureError("next_round() on empty GeometricBucketQueue")
        while True:
            if self._current >= len(self._lists):
                raise DataStructureError(
                    "GeometricBucketQueue invariant violated: remaining > 0 "
                    "but all buckets exhausted")
            entries = self._valid_entries(self._current)
            if not entries or self._rounds_in_bucket >= self.round_cap:
                if entries:
                    # Round cap exceeded: promote survivors (line 18).
                    self._ensure_bucket(self._current + 1)
                    for i in entries:
                        self._assignment[i] = self._current + 1
                        self._lists[self._current + 1].append(i)
                    self.bucket_promotions += len(entries)
                self._lists[self._current] = []
                self._current += 1
                self._rounds_in_bucket = 0
                continue
            self._lists[self._current] = []
            for i in entries:
                self._alive[i] = False
            self._remaining -= len(entries)
            self._rounds_in_bucket += 1
            self.rounds += 1
            return self.current_upper_bound(), entries
