"""Differential suite: the array enumeration kernel vs the recursive oracle.

The equivalence contract of :mod:`repro.cliques.list_kernel`: for any
orientation and ``k``, the flat-array kernel emits exactly the cliques the
recursive enumerator yields -- same rows, same order, same canonical
vertex ordering within each row -- and charges byte-identical work/span to
the meters. The contract is pinned on random G(n,p) and power-law graphs,
the seeded fixture corpus, the golden stand-in datasets across the
Figure 7 (r, s) grid (budget-guarded), and the degenerate cases (empty
graphs, k=1, k larger than the largest clique).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import RS_PAIRS, random_graphs
from repro.cliques.csr import member_degree_counts, member_id_array
from repro.cliques.enumeration import (count_cliques, enumerate_cliques,
                                       triangle_count)
from repro.cliques.incidence import build_incidence
from repro.cliques.index import CliqueIndex
from repro.cliques.list_kernel import (ENUM_KERNEL_NAMES, clique_matrix,
                                       clique_matrix_of_vertices,
                                       clique_matrix_via, count_cliques_array,
                                       intersect_sorted, use_array_kernel)
from repro.core.nucleus import KERNEL_CHOICES, arb_nucleus, split_kernel
from repro.errors import ParameterError
from repro.graphs import Graph, powerlaw_cluster
from repro.graphs.datasets import load_dataset
from repro.graphs.orientation import CSROrientation, arb_orient
from repro.parallel.backend import ProcessBackend, SerialBackend
from repro.parallel.counters import WorkSpanCounter

#: The Figure 7 grid, capped at s <= 5 to stay in test budget.
FIG7_GRID = [(r, s) for s in range(2, 6) for r in range(1, s)]

#: Golden stand-in datasets (small enough at reduced scale for CI).
GOLDEN = (("amazon", 0.12), ("dblp", 0.12), ("youtube", 0.1))

#: Skip dataset/(r,s) configurations whose extension-step estimate blows
#: this budget (the benchmarks' predictive-timeout discipline).
TEST_BUDGET = 300_000


def estimated_steps(orientation, k: int) -> int:
    from math import comb
    return sum(comb(orientation.out_degree(v), max(k - 1, 0))
               for v in range(orientation.graph.n))


def assert_matrix_matches_oracle(orientation, k: int) -> np.ndarray:
    """Matrix rows + order + meters == the recursive enumerator's."""
    loop_counter = WorkSpanCounter()
    oracle = list(enumerate_cliques(orientation, k, loop_counter))
    array_counter = WorkSpanCounter()
    matrix = clique_matrix(orientation, k, array_counter)
    assert matrix.dtype == np.int64
    assert matrix.shape == (len(oracle), k)
    assert [tuple(row) for row in matrix.tolist()] == oracle
    assert (array_counter.work, array_counter.span) == \
        (loop_counter.work, loop_counter.span)
    count_counter = WorkSpanCounter()
    assert count_cliques_array(orientation, k, count_counter) == len(oracle)
    assert (count_counter.work, count_counter.span) == \
        (loop_counter.work, loop_counter.span)
    return matrix


class TestKernelFlag:
    def test_names(self):
        assert ENUM_KERNEL_NAMES == ("auto", "array", "loop")
        assert KERNEL_CHOICES == ("auto", "array", "vectorized", "loop")

    def test_use_array_kernel(self):
        assert use_array_kernel("auto") and use_array_kernel("array")
        assert not use_array_kernel("loop")
        with pytest.raises(ParameterError):
            use_array_kernel("vectorized")  # a peeling-only name

    def test_split_kernel(self):
        assert split_kernel("auto") == ("auto", "auto", "auto")
        assert split_kernel("loop") == ("loop", "loop", "loop")
        assert split_kernel("array") == ("array", "auto", "array")
        assert split_kernel("vectorized") == ("auto", "vectorized", "auto")
        with pytest.raises(ParameterError):
            split_kernel("simd")

    def test_invalid_k(self):
        orientation = arb_orient(Graph(3, [(0, 1)]))
        with pytest.raises(ParameterError):
            clique_matrix(orientation, 0)
        with pytest.raises(ParameterError):
            count_cliques_array(orientation, -1)


class TestIntersectSorted:
    def test_basic(self):
        a = np.array([1, 3, 5, 9], dtype=np.int64)
        b = np.array([0, 3, 4, 5, 10], dtype=np.int64)
        assert intersect_sorted(a, b).tolist() == [3, 5]
        assert intersect_sorted(b, a).tolist() == [3, 5]

    def test_empty_and_disjoint(self):
        empty = np.empty(0, dtype=np.int64)
        a = np.array([2, 4], dtype=np.int64)
        assert intersect_sorted(a, empty).size == 0
        assert intersect_sorted(empty, a).size == 0
        assert intersect_sorted(a, np.array([1, 3, 5],
                                            dtype=np.int64)).size == 0

    def test_out_of_range_probes(self):
        # Elements beyond b's max must not alias b's last entry.
        a = np.array([5, 7, 99], dtype=np.int64)
        b = np.array([5, 7], dtype=np.int64)
        assert intersect_sorted(a, b).tolist() == [5, 7]


class TestCSROrientation:
    def test_rows_are_ascending_rank_space(self):
        for graph in random_graphs(count=2, n=24):
            orientation = arb_orient(graph)
            csr = orientation.csr()
            assert csr is orientation.csr()  # cached
            assert csr.n == graph.n
            degrees = csr.out_degrees()
            for p in range(csr.n):
                row = csr.nbrs[csr.indptr[p]:csr.indptr[p + 1]]
                assert degrees[p] == row.shape[0]
                assert (np.diff(row) > 0).all()  # strictly ascending
                assert (row > p).all()  # ranks above the row's own
                v = int(csr.order[p])
                assert csr.rank[v] == p
                expected = [csr.rank[u] for u in orientation.out_neighbors(v)]
                assert row.tolist() == expected

    def test_shm_roundtrip(self):
        graph = random_graphs(count=1, n=20)[0]
        csr = arb_orient(graph).csr()
        meta, arrays = csr.__shm_export__()
        clone = CSROrientation.__shm_import__(meta, arrays)
        assert clone.n == csr.n
        for mine, theirs in zip(arrays, (clone.indptr, clone.nbrs,
                                         clone.order, clone.rank)):
            assert (mine == theirs).all()


class TestDifferentialRandom:
    @pytest.mark.parametrize("k", (1, 2, 3, 4, 5))
    def test_gnp(self, k):
        for graph in random_graphs(count=3, n=26):
            assert_matrix_matches_oracle(arb_orient(graph), k)

    @pytest.mark.parametrize("k", (2, 3, 4, 5, 6))
    def test_powerlaw(self, k):
        graph = powerlaw_cluster(70, 4, 0.7, seed=11)
        assert_matrix_matches_oracle(arb_orient(graph), k)

    def test_fixture_corpus(self, paper_like_graph, planted,
                            two_triangles_bridge):
        for graph in (paper_like_graph, planted, two_triangles_bridge):
            for k in (1, 2, 3, 4):
                assert_matrix_matches_oracle(arb_orient(graph), k)


class TestDifferentialEdgeCases:
    def test_empty_graph(self):
        orientation = arb_orient(Graph(0, []))
        for k in (1, 2, 3):
            matrix = assert_matrix_matches_oracle(orientation, k)
            assert matrix.shape == (0, k)

    def test_edgeless_graph(self):
        orientation = arb_orient(Graph(5, []))
        matrix = assert_matrix_matches_oracle(orientation, 1)
        assert matrix[:, 0].tolist() == [0, 1, 2, 3, 4]
        assert assert_matrix_matches_oracle(orientation, 2).shape == (0, 2)

    def test_k_exceeds_max_clique(self, planted):
        # planted's largest clique is a K6: k=7 must be empty but still
        # charge the oracle's traversal work.
        matrix = assert_matrix_matches_oracle(arb_orient(planted), 7)
        assert matrix.shape == (0, 7)

    def test_single_vertex(self):
        orientation = arb_orient(Graph(1, []))
        assert assert_matrix_matches_oracle(orientation, 1).shape == (1, 1)


class TestGoldenDatasetsGrid:
    """The array kernel on the stand-in datasets, Figure 7 grid."""

    @pytest.mark.parametrize("name,scale", GOLDEN)
    def test_dataset_grid(self, name, scale):
        graph = load_dataset(name, scale=scale)
        orientation = arb_orient(graph)
        checked = 0
        for r, s in FIG7_GRID:
            if estimated_steps(orientation, s) > TEST_BUDGET:
                continue
            assert_matrix_matches_oracle(orientation, r)
            assert_matrix_matches_oracle(orientation, s)
            checked += 1
        assert checked, f"budget guard skipped every (r, s) on {name}"


class TestChunkedAndBackends:
    def test_chunk_concatenation(self, planted):
        orientation = arb_orient(planted)
        full = clique_matrix(orientation, 3)
        n = planted.n
        for size in (1, 3, 7, n):
            parts = []
            total_work = 0
            for lo in range(0, n, size):
                part, work = clique_matrix_of_vertices(
                    orientation, range(lo, min(lo + size, n)), 3)
                parts.append(part)
                total_work += work
            stitched = np.vstack([p for p in parts if p.size] or
                                 [np.empty((0, 3), dtype=np.int64)])
            assert (stitched == full).all()
            counter = WorkSpanCounter()
            clique_matrix(orientation, 3, counter)
            # chunk work integers sum to the serial total charge
            assert counter.work == max(total_work, 1)

    @pytest.mark.parametrize("k", (1, 2, 3, 4))
    def test_serial_backend_via(self, k):
        graph = random_graphs(count=1, n=24)[0]
        orientation = arb_orient(graph)
        serial_counter = WorkSpanCounter()
        expected = clique_matrix(orientation, k, serial_counter)
        backend = SerialBackend()
        via_counter = WorkSpanCounter()
        got = clique_matrix_via(backend, orientation, k, via_counter,
                                chunk_size=5)
        assert (got == expected).all() and got.shape == expected.shape
        assert (via_counter.work, via_counter.span) == \
            (serial_counter.work, serial_counter.span)

    def test_process_backend_via(self):
        graph = random_graphs(count=1, n=24)[0]
        orientation = arb_orient(graph)
        with ProcessBackend(workers=2) as backend:
            for k in (2, 3, 4):
                serial_counter = WorkSpanCounter()
                expected = clique_matrix(orientation, k, serial_counter)
                via_counter = WorkSpanCounter()
                got = clique_matrix_via(backend, orientation, k, via_counter,
                                        chunk_size=7)
                assert (got == expected).all()
                assert (via_counter.work, via_counter.span) == \
                    (serial_counter.work, serial_counter.span)


class TestIndexFromMatrix:
    def test_matches_streaming_constructor(self):
        graph = random_graphs(count=1, n=26)[0]
        orientation = arb_orient(graph)
        for r in (1, 2, 3):
            streaming = CliqueIndex(enumerate_cliques(orientation, r), r=r)
            built = CliqueIndex.from_matrix(clique_matrix(orientation, r),
                                            r=r)
            assert list(built) == list(streaming)
            assert built.r == streaming.r

    def test_canonicalizes_and_dedupes(self):
        matrix = np.array([[3, 1], [1, 3], [0, 2], [2, 0]], dtype=np.int64)
        index = CliqueIndex.from_matrix(matrix, r=2)
        assert list(index) == [(0, 2), (1, 3)]
        assert index.ids_of(np.array([[3, 1], [0, 2]])).tolist() == [1, 0]

    def test_empty_and_bad_shapes(self):
        empty = CliqueIndex.from_matrix(np.empty((0, 2), dtype=np.int64), r=2)
        assert len(empty) == 0 and empty.r == 2
        with pytest.raises(ParameterError):
            CliqueIndex.from_matrix(np.zeros((2, 3), dtype=np.int64), r=2)
        with pytest.raises(ParameterError):
            CliqueIndex.from_matrix(np.zeros((2, 2), dtype=np.int64), r=0)


class TestMemberHelpers:
    def test_member_degree_counts(self):
        members = np.array([[0, 1, 2], [1, 2, 3]], dtype=np.int64)
        assert member_degree_counts(members, 5) == [1, 2, 2, 1, 0]
        assert member_degree_counts(np.empty((0, 3), dtype=np.int64),
                                    3) == [0, 0, 0]

    def test_member_id_array_accepts_matrix(self, planted):
        orientation = arb_orient(planted)
        index = CliqueIndex.from_orientation(orientation, 2)
        matrix = clique_matrix(orientation, 3)
        from_matrix = member_id_array(index, matrix, 3)
        from_tuples = member_id_array(
            index, [tuple(row) for row in matrix.tolist()], 3)
        assert (from_matrix == from_tuples).all()


class TestEndToEndEquivalence:
    """kernels are invisible end to end: incidence, coreness, meters."""

    @pytest.mark.parametrize("strategy", ("materialized", "reenum", "csr"))
    def test_incidence_across_kernels(self, planted, strategy):
        for r, s in ((1, 2), (2, 3), (2, 4), (3, 4)):
            loop_counter = WorkSpanCounter()
            _, loop_index, loop_inc = build_incidence(
                planted, r, s, strategy=strategy, counter=loop_counter,
                kernel="loop")
            array_counter = WorkSpanCounter()
            _, array_index, array_inc = build_incidence(
                planted, r, s, strategy=strategy, counter=array_counter,
                kernel="array")
            assert list(array_index) == list(loop_index)
            assert array_inc.n_r == loop_inc.n_r
            assert array_inc.n_s == loop_inc.n_s
            assert array_inc.initial_degrees() == loop_inc.initial_degrees()
            assert list(array_inc.iter_s_cliques()) == \
                list(loop_inc.iter_s_cliques())
            assert (array_counter.work, array_counter.span) == \
                (loop_counter.work, loop_counter.span), (strategy, r, s)

    def test_csr_incidence_arrays_identical(self, planted):
        _, _, loop_inc = build_incidence(planted, 2, 3, strategy="csr",
                                         kernel="loop")
        _, _, array_inc = build_incidence(planted, 2, 3, strategy="csr",
                                          kernel="array")
        assert (array_inc.member_array == loop_inc.member_array).all()
        assert (array_inc.posting_indptr == loop_inc.posting_indptr).all()
        assert (array_inc.posting_indices == loop_inc.posting_indices).all()
        assert (array_inc.degree_array == loop_inc.degree_array).all()

    @pytest.mark.parametrize("r,s", RS_PAIRS)
    def test_coreness_across_kernels(self, paper_like_graph, r, s):
        runs = {}
        for kernel in KERNEL_CHOICES:
            if kernel == "vectorized":
                continue  # requires strategy="csr"; covered below
            result = arb_nucleus(paper_like_graph, r, s, kernel=kernel)
            runs[kernel] = (result.core, result.rho, result.k_max,
                            result.work_span.work, result.work_span.span)
        assert runs["auto"] == runs["array"] == runs["loop"]

    def test_hierarchy_across_kernels(self, planted):
        from repro.core.api import nucleus_decomposition
        chains = {}
        for kernel in KERNEL_CHOICES:
            result = nucleus_decomposition(planted, 2, 3, strategy="csr",
                                           kernel=kernel)
            snap = result.coreness.work_span
            chains[kernel] = (
                result.coreness.core, result.coreness.rho,
                snap.work, snap.span,
                {level: sorted(sorted(g) for g in groups)
                 for level, groups in
                 result.tree.partition_chain().items()})
        reference = chains["loop"]
        for kernel, value in chains.items():
            assert value == reference, kernel


class TestCountingHelpers:
    def test_count_cliques_kernels(self, planted):
        orientation = arb_orient(planted)
        for k in (1, 2, 3, 4, 7):
            auto_counter = WorkSpanCounter()
            loop_counter = WorkSpanCounter()
            auto = count_cliques(orientation, k, auto_counter)
            loop = count_cliques(orientation, k, loop_counter, kernel="loop")
            assert auto == loop
            assert (auto_counter.work, auto_counter.span) == \
                (loop_counter.work, loop_counter.span)

    def test_triangle_count_matches_undirected(self):
        for graph in random_graphs(count=2, n=24):
            undirected = sum(
                len(graph.neighbor_set(u) & graph.neighbor_set(v))
                for u, v in graph.edges()) // 3
            assert triangle_count(graph) == undirected
        assert triangle_count(Graph(0, [])) == 0
        assert triangle_count(Graph(4, [(0, 1), (1, 2)])) == 0

    def test_degeneracy_guard_vectorized(self, planted):
        from repro.cliques.enumeration import clique_degeneracy_guard
        clique_degeneracy_guard(arb_orient(planted), 3)  # well within
        with pytest.raises(ParameterError):
            clique_degeneracy_guard(arb_orient(planted), 3, limit=1)
        clique_degeneracy_guard(arb_orient(Graph(0, [])), 3)  # empty ok
