"""Exception types for the :mod:`repro` library.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class. Input-validation failures use the more specific
subclasses below, which also carry enough context to debug a bad call site.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError):
    """Raised when a graph cannot be constructed or parsed.

    Typical causes: self-loops in input edges, vertex ids out of range,
    malformed edge-list files, or inconsistent CSR arrays.
    """


class ParameterError(ReproError, ValueError):
    """Raised when an algorithm is called with invalid parameters.

    For nucleus decomposition this covers ``r >= s``, non-positive ``r``,
    unsupported clique sizes, or an approximation parameter ``delta <= 0``.
    """


class DataStructureError(ReproError):
    """Raised when a data structure is used outside its contract.

    Examples: concatenating a tombstoned linked list, extracting from an
    empty bucketing structure, or querying a union-find element that does
    not exist.
    """


class HierarchyError(ReproError):
    """Raised when a hierarchy tree fails a structural invariant."""


class ArtifactError(ReproError):
    """Raised when a decomposition artifact cannot be read or verified.

    Typical causes: wrong magic bytes, an unsupported format version, a
    corrupted or truncated file, or a checksum mismatch (see
    :mod:`repro.store`).
    """


class ServiceError(ReproError):
    """Raised for invalid requests to the decomposition query service.

    Carries an HTTP-ish ``status`` so the HTTP front end can map service
    failures to response codes without string matching.
    """

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status
