"""Flat array union-find with batched linking.

:class:`FlatUnionFind` is the array-native sibling of
:class:`~repro.ds.union_find.ConcurrentUnionFind`: one ``int64`` parent
array, no per-element Python objects. Instead of accepting one
``unite(x, y)`` at a time it consumes *batches* of edges -- the shape in
which the hierarchy kernel (:mod:`repro.core.hierarchy_kernel`) produces
them, one batch per peeling level -- and resolves every link in the batch
with a hook-and-compress loop made of whole-array numpy operations:

* **hook** -- every edge whose endpoints have different roots hooks the
  larger root under the smaller one (``np.minimum.at`` resolves
  conflicting hooks of one root deterministically, keeping the smallest
  target). Hooks always point to a strictly smaller id, so no cycle can
  form -- the same argument that makes deterministic hooking safe in
  Shiloach-Vishkin connectivity.
* **compress** -- full pointer jumping (``parent <- parent[parent]``)
  until fixpoint, the batched equivalent of path compression.

The loop repeats until no edge spans two components; because every round
performs at least one effective merge and compression halves pointer
chains, batches converge in a handful of rounds in practice
(``hook_rounds`` is exposed for the curious).

Invariant: between :meth:`unite_batch` calls the parent array is fully
compressed and every root is the **minimum id of its component** -- so
``parent`` doubles as a canonical component-label array and
:meth:`find_many` is a single fancy index.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..errors import DataStructureError


class FlatUnionFind:
    """Batched min-label union-find over a flat ``int64`` parent array."""

    __slots__ = ("n", "parent", "batches", "hook_rounds", "jump_rounds")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise DataStructureError(f"union-find size must be >= 0, got {n}")
        self.n = n
        self.parent = np.arange(n, dtype=np.int64)
        self.batches = 0
        self.hook_rounds = 0
        self.jump_rounds = 0

    # -- internal ---------------------------------------------------------

    def _compress(self) -> None:
        """Pointer-jump the whole array to fixpoint (full compression)."""
        parent = self.parent
        while True:
            grand = parent[parent]
            if np.array_equal(grand, parent):
                return
            np.copyto(parent, grand)
            self.jump_rounds += 1

    # -- public API -------------------------------------------------------

    def unite_batch(self, u: np.ndarray, v: np.ndarray) -> int:
        """Unite every edge ``(u[i], v[i])``; return effective merges.

        ``u`` and ``v`` are integer arrays of equal length. The whole
        batch is resolved before returning, and the parent array is left
        fully compressed with min-id roots.
        """
        if u.shape != v.shape:
            raise DataStructureError(
                f"edge arrays must align, got {u.shape} vs {v.shape}")
        self.batches += 1
        parent = self.parent
        before = int((parent == np.arange(self.n, dtype=np.int64)).sum())
        while u.size:
            ru = parent[u]
            rv = parent[v]
            spanning = ru != rv
            if not spanning.any():
                break
            u = u[spanning]
            v = v[spanning]
            ru = ru[spanning]
            rv = rv[spanning]
            lo = np.minimum(ru, rv)
            hi = np.maximum(ru, rv)
            # Conflicting hooks of one root keep the smallest target;
            # every hook points strictly downward, so no cycles.
            np.minimum.at(parent, hi, lo)
            self._compress()
            self.hook_rounds += 1
        after = int((parent == np.arange(self.n, dtype=np.int64)).sum())
        return before - after

    def find(self, x: int) -> int:
        """Root (= minimum member id) of ``x``'s component."""
        if not 0 <= x < self.n:
            raise DataStructureError(
                f"element {x} out of range for union-find of size {self.n}")
        return int(self.parent[x])

    def find_many(self, ids: np.ndarray) -> np.ndarray:
        """Roots of ``ids`` -- one fancy index, thanks to the invariant."""
        return self.parent[ids]

    def labels(self) -> np.ndarray:
        """The component label of every element (a view, do not mutate)."""
        return self.parent

    def n_components(self) -> int:
        return int((self.parent ==
                    np.arange(self.n, dtype=np.int64)).sum())

    def components(self) -> Dict[int, List[int]]:
        """Root -> sorted member list (small-n debugging helper)."""
        out: Dict[int, List[int]] = {}
        for x, root in enumerate(self.parent.tolist()):
            out.setdefault(root, []).append(x)
        return out

    def same_set(self, x: int, y: int) -> bool:
        return self.find(x) == self.find(y)
