"""The paper's worked example (Figures 1, 3, 4, 5), executable.

Section 7.3 traces LINK-EFFICIENT through the (1,3)-nucleus hierarchy of
Figure 1: vertices ``1a`` (core 1), ``2a`` (core 2), ``3a,3b,3c``
(core 3), and ``4a..4d`` (core 4); the hierarchy nests
``4a,4b,4c -> {3a,3b,3c,...} -> {2a, 4d, ...} -> {1a, ...}``.

These tests drive :class:`LinkEfficient` with exactly the link calls the
example narrates and assert the *semantic* state the paper's Figure 4
tables show after each step (representatives are seed-dependent, so the
checks are component-level: who is united with whom, and which component
each nearest-core entry resolves to). The final tree must match
Figures 3/5's partition structure.
"""

import pytest

from repro.core.link_efficient import EMPTY, LinkEfficient

# id layout mirroring the paper's labels
ONE_A = 0
TWO_A = 1
THREE_A, THREE_B, THREE_C = 2, 3, 4
FOUR_A, FOUR_B, FOUR_C, FOUR_D = 5, 6, 7, 8

CORES = [1.0, 2.0, 3.0, 3.0, 3.0, 4.0, 4.0, 4.0, 4.0]

LABELS = {ONE_A: "1a", TWO_A: "2a", THREE_A: "3a", THREE_B: "3b",
          THREE_C: "3c", FOUR_A: "4a", FOUR_B: "4b", FOUR_C: "4c",
          FOUR_D: "4d"}


def nearest_of(le: LinkEfficient, rid: int):
    """The nearest-core entry of rid's component (EMPTY or an id)."""
    return le.L[le.uf.find(rid)].load()


@pytest.fixture()
def after_round_3() -> LinkEfficient:
    """Figure 4's first table: everything singleton, L = {3a: 1a}."""
    le = LinkEfficient(list(CORES), seed=1)
    le.link(ONE_A, THREE_A)
    return le


class TestFigure4Trace:
    def test_initial_state(self, after_round_3):
        le = after_round_3
        assert nearest_of(le, THREE_A) == ONE_A
        for rid in (TWO_A, THREE_B, THREE_C, FOUR_A, FOUR_B, FOUR_C,
                    FOUR_D):
            assert le.uf.find(rid) == rid
            assert nearest_of(le, rid) == EMPTY

    def test_after_3a_4c(self, after_round_3):
        """(R=3a, Q=4c): 4c had no nearest core; now it is 3a (line 15)."""
        le = after_round_3
        le.link(THREE_A, FOUR_C)
        assert nearest_of(le, FOUR_C) == THREE_A
        assert not le.uf.same_set(THREE_A, THREE_B)

    def test_after_3b_4c_cascade(self, after_round_3):
        """(R=3b, Q=4c): L[4c] already holds a core-3 entry, so the new

        knowledge is that 3a and 3b are connected -- the cascading call
        (line 26) must unite them, and the unite transfers 3a's nearest
        core (1a) to the merged component (lines 9-10 / Figure 4's
        'After (3b, 4c)' table, where L gains 3b -> 1a).
        """
        le = after_round_3
        le.link(THREE_A, FOUR_C)
        le.link(THREE_B, FOUR_C)
        assert le.uf.same_set(THREE_A, THREE_B)
        assert nearest_of(le, THREE_A) == ONE_A
        # 4c's entry still resolves to the 3-component
        assert le.uf.find(nearest_of(le, FOUR_C)) == le.uf.find(THREE_A)

    def test_after_2a_4c_full_cascade(self, after_round_3):
        """(R=2a, Q=4c): 2a is 'nearer' to the 3-component than 1a, so

        L[3-component] becomes 2a (line 20), and the displaced knowledge
        '2a connects to 1a' cascades into L[2a] = 1a (line 23 then 15) --
        Figure 4's 'After (2a, 4c)' table.
        """
        le = after_round_3
        le.link(THREE_A, FOUR_C)
        le.link(THREE_B, FOUR_C)
        le.link(TWO_A, FOUR_C)
        assert nearest_of(le, THREE_A) == TWO_A
        assert nearest_of(le, TWO_A) == ONE_A

    def test_final_round_4_state(self, after_round_3):
        """Figure 4's 'After Round 4' table, semantically."""
        le = after_round_3
        for early, late in [(THREE_A, FOUR_C), (THREE_B, FOUR_C),
                            (TWO_A, FOUR_C), (THREE_A, FOUR_A),
                            (THREE_B, FOUR_B), (THREE_C, FOUR_B),
                            (TWO_A, FOUR_D)]:
            le.link(early, late)
        # uf: 3a, 3b, 3c one component; everything else singleton
        assert le.uf.same_set(THREE_A, THREE_B)
        assert le.uf.same_set(THREE_A, THREE_C)
        for rid in (FOUR_A, FOUR_B, FOUR_C, FOUR_D, TWO_A, ONE_A):
            assert le.uf.find(rid) == rid
        # L: 2a -> 1a; 3-component -> 2a; 4a/4b/4c -> the 3-component;
        #    4d -> 2a (Figure 4, bottom table)
        assert nearest_of(le, TWO_A) == ONE_A
        assert nearest_of(le, THREE_A) == TWO_A
        three_root = le.uf.find(THREE_A)
        for rid in (FOUR_A, FOUR_B, FOUR_C):
            assert le.uf.find(nearest_of(le, rid)) == three_root, LABELS[rid]
        assert nearest_of(le, FOUR_D) == TWO_A


class TestFigure5Tree:
    @pytest.fixture()
    def tree(self, after_round_3):
        le = after_round_3
        for early, late in [(THREE_A, FOUR_C), (THREE_B, FOUR_C),
                            (TWO_A, FOUR_C), (THREE_A, FOUR_A),
                            (THREE_B, FOUR_B), (THREE_C, FOUR_B),
                            (TWO_A, FOUR_D)]:
            le.link(early, late)
        return le.construct_tree()

    def test_matches_figure_3_partitions(self, tree):
        """The nuclei of Figures 3/5, at every level."""
        def chains(level):
            return sorted(sorted(LABELS[x] for x in nucleus)
                          for nucleus in tree.nuclei_at(level))

        assert chains(4) == [["4a"], ["4b"], ["4c"], ["4d"]]
        assert chains(3) == [["3a", "3b", "3c", "4a", "4b", "4c"], ["4d"]]
        assert chains(2) == [["2a", "3a", "3b", "3c",
                              "4a", "4b", "4c", "4d"]]
        assert chains(1) == [["1a", "2a", "3a", "3b", "3c",
                              "4a", "4b", "4c", "4d"]]

    def test_nesting_matches_figure_5(self, tree):
        """4d joins at the 2-core, not the 3-core (the paper's subtlety)."""
        def nucleus_of(rid, level):
            found = tree.nucleus_of(rid, level)
            return set(found) if found is not None else None

        assert FOUR_D not in nucleus_of(THREE_A, 3)
        assert FOUR_D in nucleus_of(THREE_A, 2)
        assert ONE_A not in nucleus_of(THREE_A, 2)
        assert ONE_A in nucleus_of(THREE_A, 1)

    def test_seed_independence_of_the_example(self, after_round_3):
        chains = set()
        for seed in (0, 1, 5, 11):
            le = LinkEfficient(list(CORES), seed=seed)
            for early, late in [(ONE_A, THREE_A), (THREE_A, FOUR_C),
                                (THREE_B, FOUR_C), (TWO_A, FOUR_C),
                                (THREE_A, FOUR_A), (THREE_B, FOUR_B),
                                (THREE_C, FOUR_B), (TWO_A, FOUR_D)]:
                le.link(early, late)
            tree = le.construct_tree()
            chains.add(frozenset(tree.partition_chain().items()))
        assert len(chains) == 1
