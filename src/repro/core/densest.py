"""k-clique densest subgraph by peeling (Tsourakakis [59], Shi et al. [54]).

The problem the paper's related work positions nucleus decomposition
against: find the subgraph maximizing *k-clique density*
``#k-cliques(S) / |S|``. The classic greedy algorithm peels the vertex of
minimum k-clique degree and returns the best prefix; it is a
``1/k``-approximation, and the parallel variant of Shi et al. peels
*batches* (all vertices within a ``(1+eps)`` factor of the average
degree) to achieve ``O(log n)`` rounds at a slightly worse factor --
the same peel-in-batches idea Algorithm 2 applies to nucleus coreness.

Both variants are provided. They reuse the library's clique machinery:
vertices are the r-cliques of the ``(1, k)`` incidence, so "k-clique
degree of a vertex" is exactly the s-clique degree of a 1-clique.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..ds.bucketing import BucketQueue
from ..errors import ParameterError
from ..graphs.graph import Graph
from ..parallel.counters import NullCounter, WorkSpanCounter, log2_ceil
from .nucleus import prepare


@dataclass
class DensestResult:
    """Outcome of a densest-subgraph peeling run."""

    vertices: List[int]      # the best prefix found
    density: float           # k-cliques per vertex in that prefix
    k: int
    rounds: int
    method: str

    @property
    def size(self) -> int:
        return len(self.vertices)


def _density_of_prefix(n_alive: int, cliques_alive: int) -> float:
    return cliques_alive / n_alive if n_alive else 0.0


def k_clique_densest(graph: Graph, k: int = 3,
                     counter: Optional[WorkSpanCounter] = None
                     ) -> DensestResult:
    """Greedy sequential peeling: a ``1/k``-approximation.

    Repeatedly removes a vertex of minimum k-clique degree; returns the
    densest intermediate subgraph.
    """
    if k < 2:
        raise ParameterError(f"k must be >= 2, got {k}")
    counter = counter if counter is not None else NullCounter()
    prepared = prepare(graph, 1, k)
    incidence = prepared.incidence
    n = graph.n
    queue = BucketQueue(incidence.initial_degrees())
    alive = [True] * n
    cliques_alive = incidence.n_s
    best_density = _density_of_prefix(n, cliques_alive)
    best_size = n
    removal_order: List[int] = []
    rounds = 0
    while not queue.empty:
        rounds += 1
        _, batch = queue.next_bucket()
        for rid in sorted(batch):
            # With r = 1, r-clique ids are vertex ids (index is sorted).
            removal_order.append(rid)
            for members in incidence.s_cliques_containing(rid):
                others = [x for x in members if x != rid]
                if all(alive[o] for o in others):
                    cliques_alive -= 1
                    for other in others:
                        if queue.alive(other):
                            queue.decrement(other)
            alive[rid] = False
            remaining = n - len(removal_order)
            density = _density_of_prefix(remaining, cliques_alive)
            if density > best_density:
                best_density = density
                best_size = remaining
        counter.add_parallel(len(batch) + 1, 1 + log2_ceil(max(n, 1)))
    survivors = [v for v in range(n) if v not in set(removal_order[:n - best_size])]
    return DensestResult(vertices=sorted(survivors), density=best_density,
                         k=k, rounds=rounds, method="greedy")


def k_clique_densest_parallel(graph: Graph, k: int = 3, eps: float = 0.5,
                              counter: Optional[WorkSpanCounter] = None
                              ) -> DensestResult:
    """Batch peeling (Shi et al. [54]): ``O(log n)`` rounds.

    Each round removes every vertex whose k-clique degree is at most
    ``(1 + eps) * k * (cliques / vertices)``; the best intermediate
    subgraph is a ``1/(k (1+eps))``-approximation.
    """
    if k < 2:
        raise ParameterError(f"k must be >= 2, got {k}")
    if eps <= 0:
        raise ParameterError(f"eps must be > 0, got {eps}")
    counter = counter if counter is not None else NullCounter()
    prepared = prepare(graph, 1, k)
    incidence = prepared.incidence
    n = graph.n
    degree = list(incidence.initial_degrees())
    alive = [True] * n
    n_alive = n
    cliques_alive = incidence.n_s
    best_density = _density_of_prefix(n_alive, cliques_alive)
    best_snapshot = [v for v in range(n)]
    rounds = 0
    while n_alive > 0:
        rounds += 1
        threshold = (1 + eps) * k * cliques_alive / n_alive
        batch = [v for v in range(n) if alive[v] and degree[v] <= threshold]
        if not batch:
            # guard against float corner cases: remove the minimum
            batch = [min((v for v in range(n) if alive[v]),
                         key=lambda v: degree[v])]
        counter.add_parallel(n_alive + len(batch),
                             1 + log2_ceil(max(n_alive, 1)))
        for rid in batch:
            for members in incidence.s_cliques_containing(rid):
                others = [x for x in members if x != rid]
                if all(alive[o] for o in others):
                    cliques_alive -= 1
                    for other in others:
                        degree[other] -= 1
            alive[rid] = False
        n_alive -= len(batch)
        density = _density_of_prefix(n_alive, cliques_alive)
        if density > best_density:
            best_density = density
            best_snapshot = [v for v in range(n) if alive[v]]
    return DensestResult(vertices=best_snapshot, density=best_density,
                         k=k, rounds=rounds, method=f"batch(eps={eps})")


def exact_density(graph: Graph, vertices: List[int], k: int) -> float:
    """k-clique density of an explicit vertex set (for verification)."""
    sub, _ = graph.induced_subgraph(vertices)
    sub_prepared = prepare(sub, 1, k)
    if sub.n == 0:
        return 0.0
    return sub_prepared.n_s / sub.n
