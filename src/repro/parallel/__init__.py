"""Parallel runtime: work-span metering plus pluggable execution backends.

This package is the substitution layer for the paper's ParlayLib-based C++
parallelism (see DESIGN.md, Section 2): algorithms execute deterministically
while metering work and span, and :mod:`repro.parallel.runtime` maps the
measurements through Brent's bound to predict multi-core behaviour.
:mod:`repro.parallel.backend` adds real process-parallel execution for the
embarrassingly-parallel hot paths: the same algorithm code runs on the
instrumented serial backend or on a ``multiprocessing`` pool, with
differential tests proving the two produce identical results.
"""

from .atomics import (AtomicCell, AtomicStats, FlakyAtomicCell,
                      fetch_and_add, write_min)
from .backend import (BACKEND_NAMES, MAX_WORKERS, ExecutionBackend,
                      ProcessBackend, SerialBackend, chunked, clamp_workers,
                      default_chunk_size, get_default_backend, make_backend)
from .hashtable import ParallelHashTable
from .counters import (NullCounter, WorkSpanCounter, WorkSpanSnapshot,
                       geometric_span, log2_ceil)
from .list_ranking import (list_rank, lists_to_arrays, rank_and_order,
                           validate_successors)
from .primitives import (par_count, par_filter, par_flatten, par_hash_build,
                         par_map, par_max, par_reduce, par_scan, par_semisort,
                         par_sort)
from .runtime import (DEFAULT_SPAN_CONSTANT, PAPER_MACHINE, MachineModel,
                      amdahl_fraction, brent_time, format_speedup_table,
                      max_useful_threads, self_relative_speedup,
                      simulated_time, speedup_curve)

__all__ = [
    "BACKEND_NAMES", "MAX_WORKERS", "ExecutionBackend", "ProcessBackend",
    "SerialBackend", "chunked", "clamp_workers", "default_chunk_size",
    "get_default_backend", "make_backend",
    "ParallelHashTable", "AtomicCell", "AtomicStats", "FlakyAtomicCell", "fetch_and_add",
    "write_min", "NullCounter", "WorkSpanCounter", "WorkSpanSnapshot",
    "geometric_span", "log2_ceil", "list_rank", "lists_to_arrays",
    "rank_and_order", "validate_successors", "par_count", "par_filter",
    "par_flatten", "par_hash_build", "par_map", "par_max", "par_reduce",
    "par_scan", "par_semisort", "par_sort", "DEFAULT_SPAN_CONSTANT",
    "PAPER_MACHINE", "MachineModel", "amdahl_fraction", "brent_time",
    "format_speedup_table", "max_useful_threads", "self_relative_speedup",
    "simulated_time", "speedup_curve",
]
