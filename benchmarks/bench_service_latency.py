"""Serving-path benchmark: artifact sizes and query latencies.

The store + service subsystem exists for the compute-once / query-many
workflow (paper Section 1, Figure 10): a decomposition is computed once,
persisted as a ``.nda`` artifact, and then queried many times. This
harness measures what that buys:

* **artifact size** vs the graph and the decomposition shape;
* **cold open** -- ``load_artifact`` + first query, i.e. header
  validation plus one ``mmap(2)`` (the "opens in milliseconds" claim);
* **warm latency** -- per-query time against a hot mapping, for the
  point endpoints (``membership``, ``community``, ``coreness``);
* **batch throughput** -- queries/second through
  ``DecompositionService.batch`` (one artifact resolution per batch)
  and through the HTTP front end under concurrent clients.

Emits ``BENCH_service.json`` at the repo root via ``emit_json``.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from typing import Dict, List

from repro import nucleus_decomposition
from repro.analysis.reporting import banner, format_table
from repro.core.queries import HierarchyQueryIndex
from repro.service import DecompositionService, http_batch, serve_background
from repro.store import load_artifact, write_artifact

from bench_common import (bench_graph, bench_row, emit_json, kernel_graph,
                          within_budget)

#: (dataset, r, s) grid; the budget guard drops what the scale can't afford.
CONFIGS = (("dblp", 1, 2), ("dblp", 2, 3), ("youtube", 2, 3),
           ("youtube", 2, 4), ("amazon", 2, 3))

#: Point queries per warm-latency sample.
WARM_QUERIES = 200

#: Queries per batch and concurrent HTTP clients for the throughput legs.
BATCH_SIZE = 100
HTTP_CLIENTS = 8


def _measure_config(name: str, graph, r: int, s: int,
                    directory: str) -> Dict:
    """One row: build + persist + cold/warm/batch timings."""
    t0 = time.perf_counter()
    result = nucleus_decomposition(graph, r, s)
    index = HierarchyQueryIndex(result)
    decompose_seconds = time.perf_counter() - t0

    path = os.path.join(directory, f"{name}-{r}-{s}.nda")
    t0 = time.perf_counter()
    write_artifact(result, path, query_index=index)
    write_seconds = time.perf_counter() - t0

    # Cold: open + one membership query on a fresh mapping.
    t0 = time.perf_counter()
    artifact = load_artifact(path)
    artifact.membership(0)
    cold_seconds = time.perf_counter() - t0

    # Warm: point queries against the hot mapping.
    n = artifact.graph_n
    t0 = time.perf_counter()
    for i in range(WARM_QUERIES):
        artifact.membership(i % n)
    warm_membership = (time.perf_counter() - t0) / WARM_QUERIES
    t0 = time.perf_counter()
    for i in range(WARM_QUERIES):
        artifact.community([i % n, (i * 7 + 1) % n]
                           if n > 1 else [0])
    warm_community = (time.perf_counter() - t0) / WARM_QUERIES

    # Batch throughput through the in-process service.
    service = DecompositionService({"g": path})
    queries = [{"artifact": "g", "op": "membership", "vertex": i % n}
               for i in range(BATCH_SIZE)]
    service.batch(queries)  # prime the cache
    t0 = time.perf_counter()
    service.batch(queries)
    batch_qps = BATCH_SIZE / max(time.perf_counter() - t0, 1e-9)

    # HTTP batch throughput under concurrent clients.
    server, thread = serve_background({"g": path})
    url = "http://{}:{}".format(*server.server_address[:2])
    http_batch(url, queries)  # warm the server
    workers = []
    t0 = time.perf_counter()
    for _ in range(HTTP_CLIENTS):
        worker = threading.Thread(target=http_batch, args=(url, queries))
        worker.start()
        workers.append(worker)
    for worker in workers:
        worker.join()
    http_qps = HTTP_CLIENTS * BATCH_SIZE / max(time.perf_counter() - t0,
                                               1e-9)
    server.shutdown()
    thread.join(timeout=5)

    artifact_bytes = os.path.getsize(path)
    artifact.close()
    return bench_row(
        name, r, s, decompose_seconds,
        n_vertices=graph.n, n_edges=graph.m,
        n_r_cliques=result.n_r, n_nuclei=len(index),
        artifact_bytes=artifact_bytes,
        write_seconds=write_seconds,
        cold_open_ms=cold_seconds * 1e3,
        warm_membership_us=warm_membership * 1e6,
        warm_community_us=warm_community * 1e6,
        batch_qps=batch_qps,
        http_batch_qps=http_qps)


def run_latency(configs=CONFIGS, graph_loader=bench_graph) -> List[Dict]:
    rows = []
    with tempfile.TemporaryDirectory(prefix="bench-service-") as directory:
        for name, r, s in configs:
            graph = graph_loader(name)
            if not within_budget(graph, r, s):
                rows.append(bench_row(name, r, s, None))
                continue
            rows.append(_measure_config(name, graph, r, s, directory))
    return rows


def build_report() -> str:
    rows = run_latency()
    emit_json("service", rows, warm_queries=WARM_QUERIES,
              batch_size=BATCH_SIZE, http_clients=HTTP_CLIENTS)
    table = format_table(
        ("graph", "r", "s", "artifact KiB", "cold open ms",
         "warm member us", "batch q/s", "http q/s"),
        [(row["graph"], row["r"], row["s"],
          "-" if row["skipped"] else f"{row['artifact_bytes'] / 1024:.1f}",
          "-" if row["skipped"] else f"{row['cold_open_ms']:.2f}",
          "-" if row["skipped"] else f"{row['warm_membership_us']:.1f}",
          "-" if row["skipped"] else f"{row['batch_qps']:.0f}",
          "-" if row["skipped"] else f"{row['http_batch_qps']:.0f}")
         for row in rows],
        title="artifact store + service: sizes, latencies, throughput")
    return banner("service latency") + "\n" + table


def test_service_latency_rows():
    """Cheap correctness pass over the harness at kernel scale."""
    rows = run_latency(configs=(("dblp", 2, 3),),
                       graph_loader=kernel_graph)
    assert len(rows) == 1
    row = rows[0]
    assert not row["skipped"]
    assert row["artifact_bytes"] > 0
    assert row["cold_open_ms"] > 0
    assert row["warm_membership_us"] > 0
    assert row["batch_qps"] > 0
    assert row["http_batch_qps"] > 0
    print(f"cold {row['cold_open_ms']:.2f}ms, "
          f"warm {row['warm_membership_us']:.1f}us, "
          f"batch {row['batch_qps']:.0f} q/s, "
          f"http {row['http_batch_qps']:.0f} q/s")


def test_benchmark_warm_membership_kernel(benchmark, tmp_path):
    graph = kernel_graph("dblp")
    result = nucleus_decomposition(graph, 2, 3)
    path = str(tmp_path / "bench.nda")
    write_artifact(result, path)
    artifact = load_artifact(path)
    n = artifact.graph_n
    counter = iter(range(10 ** 9))
    benchmark(lambda: artifact.membership(next(counter) % n))


if __name__ == "__main__":
    print(build_report())
