"""Concatenable linked lists (Algorithm 1's ``L_i`` values).

``ARB-NUCLEUS-HIERARCHY`` stores, for every core level ``i``, a hash table
mapping r-cliques to linked lists of r-cliques. The operations it needs are:

* O(1) append of an element (lines 6-8),
* O(1) concatenation of two lists (line 19) -- crucially *without* touching
  the elements, which is what keeps the total work bound at the sum of list
  lengths in the proof of Theorem 5.1,
* conversion of all lists to arrays via parallel list ranking (line 14).

:class:`CatList` implements exactly that contract. Concatenation consumes
its argument: the paper "uses tombstones to delete the other keys", and a
consumed list raises on further use so the single-consumption invariant of
the work argument is machine-checked rather than assumed.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..errors import DataStructureError
from ..parallel.counters import WorkSpanCounter
from ..parallel.list_ranking import list_rank


class _Node:
    __slots__ = ("value", "next")

    def __init__(self, value: int) -> None:
        self.value = value
        self.next: Optional["_Node"] = None


class CatList:
    """A linked list of ints with O(1) append and O(1) destructive concat."""

    __slots__ = ("_head", "_tail", "_length", "_tombstoned")

    def __init__(self) -> None:
        self._head: Optional[_Node] = None
        self._tail: Optional[_Node] = None
        self._length = 0
        self._tombstoned = False

    def _check_live(self) -> None:
        if self._tombstoned:
            raise DataStructureError(
                "CatList was consumed by a concat and tombstoned")

    def __len__(self) -> int:
        self._check_live()
        return self._length

    @property
    def tombstoned(self) -> bool:
        return self._tombstoned

    def append(self, value: int) -> None:
        """Add ``value`` at the tail in O(1)."""
        self._check_live()
        node = _Node(value)
        if self._tail is None:
            self._head = node
        else:
            self._tail.next = node
        self._tail = node
        self._length += 1

    def concat(self, other: "CatList") -> None:
        """Splice ``other`` onto this list's tail in O(1); tombstones it."""
        self._check_live()
        other._check_live()
        if other is self:
            raise DataStructureError("cannot concatenate a CatList to itself")
        if other._head is not None:
            if self._tail is None:
                self._head = other._head
            else:
                self._tail.next = other._head
            self._tail = other._tail
            self._length += other._length
        other._head = None
        other._tail = None
        other._length = 0
        other._tombstoned = True

    def __iter__(self) -> Iterator[int]:
        self._check_live()
        node = self._head
        while node is not None:
            yield node.value
            node = node.next

    def to_list(self) -> List[int]:
        """Plain sequential traversal (test helper; O(n) work and span)."""
        return list(self)

    def to_array_via_ranking(self, counter: WorkSpanCounter) -> List[int]:
        """Convert to an array with pointer-jumping list ranking.

        This is the faithful Algorithm 1 line-14 conversion: ranks give each
        element a unique output slot, and all slots are written in one
        parallel round. Work is linear in the list length; span is
        ``O(log n)``.
        """
        self._check_live()
        n = self._length
        if n == 0:
            return []
        nodes: List[_Node] = []
        index = {}
        node = self._head
        while node is not None:
            index[id(node)] = len(nodes)
            nodes.append(node)
            node = node.next
        successor = [
            -1 if nd.next is None else index[id(nd.next)] for nd in nodes
        ]
        ranks = list_rank(successor, counter)
        out: List[int] = [0] * n
        counter.add_parallel(n, 1)
        for pos, nd in enumerate(nodes):
            out[n - 1 - ranks[pos]] = nd.value
        return out

    @classmethod
    def of(cls, values: List[int]) -> "CatList":
        """Build a list from a Python list (test helper)."""
        out = cls()
        for v in values:
            out.append(v)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._tombstoned:
            return "CatList(<tombstoned>)"
        return f"CatList({self.to_list()!r})"
