"""Array-backed Julienne bucketing for the vectorized peeling kernel.

:class:`ArrayBucketQueue` is the flat-array sibling of
:class:`~repro.ds.bucketing.BucketQueue`: the authoritative per-id value
store is a ``numpy`` int64 array, buckets hold append-only chunks of id
arrays, and value updates arrive as one *batched* decrement per round
(``apply_decrements``) instead of one Python call per posting. This is
the layout the paper's C++ artifact uses (flat parallel arrays over
r-clique ids) and what lets the peeling round's scatter run through
``np.bincount`` and fancy indexing.

Semantics match the lazy Julienne variant exactly where it is
observable:

* ``next_bucket()`` extracts the full set of live ids whose current
  value is minimal -- the same *set* per round as ``BucketQueue``, so
  the round count ``rounds`` (the peeling complexity ``rho``) and every
  per-round work charge are identical;
* values only decrease, clamped at zero;
* ``updates`` counts *elementary* unit decrements that change a value
  (``min(delta, old_value)`` per id), which is exactly how many
  ``update`` calls the scalar queue would have counted for the same
  round -- the ``bucket_updates`` statistic is therefore backend- and
  kernel-independent.

Within a bucket the extraction order is ascending insertion time with
round-level batches appended in id order; the scalar queue appends in
elementary-decrement order instead. The two orders can differ, but every
quantity the library pins (coreness, rho, hierarchy partition chains,
work/span) is invariant to within-bucket order -- see
``tests/test_link_order_independence.py`` and the differential suites.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..errors import DataStructureError


class ArrayBucketQueue:
    """Minimum-bucket extraction with an int-array value store."""

    __slots__ = ("_value", "_alive", "_buckets", "_cursor", "_remaining",
                 "_limit", "rounds", "updates")

    def __init__(self, values) -> None:
        value = np.array(values, dtype=np.int64, copy=True).reshape(-1)
        if value.size and int(value.min()) < 0:
            bad = int(np.argmax(value < 0))
            raise DataStructureError(
                f"bucket value must be >= 0, got {int(value[bad])} "
                f"for id {bad}")
        self._value = value
        self._alive = np.ones(value.size, dtype=bool)
        #: bucket value -> list of id-array chunks (append-only, lazy)
        self._buckets: Dict[int, List[np.ndarray]] = {}
        if value.size:
            order = np.argsort(value, kind="stable")
            sorted_vals = value[order]
            boundaries = np.flatnonzero(sorted_vals[1:] != sorted_vals[:-1]) + 1
            start = 0
            for stop in (*boundaries.tolist(), order.size):
                self._buckets[int(sorted_vals[start])] = [order[start:stop]]
                start = stop
        self._cursor = 0
        # Values only ever decrease, so the initial maximum is a standing
        # upper bound for every cursor scan (no per-round max() pass).
        self._limit = int(value.max(initial=0))
        self._remaining = int(value.size)
        #: number of ``next_bucket`` extractions performed (= peeling rounds)
        self.rounds = 0
        #: number of elementary value decrements applied
        self.updates = 0

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return self._remaining

    @property
    def empty(self) -> bool:
        return self._remaining == 0

    def value(self, ident: int) -> int:
        """Current value of ``ident`` (valid also after extraction)."""
        return int(self._value[ident])

    def values(self) -> np.ndarray:
        """The authoritative value array (a live view; do not mutate)."""
        return self._value

    def alive(self, ident: int) -> bool:
        """Whether ``ident`` has not yet been extracted."""
        return bool(self._alive[ident])

    def alive_mask(self) -> np.ndarray:
        """Boolean not-yet-extracted mask (a live view; do not mutate)."""
        return self._alive

    # -- updates ---------------------------------------------------------

    def apply_decrements(self, ids: np.ndarray, amounts: np.ndarray) -> None:
        """Batched decrement: lower ``ids[i]`` by ``amounts[i]``, clamped.

        ``ids`` must be unique, live identifiers and ``amounts`` positive
        -- the shape :func:`np.bincount` over a peeling round's dying
        s-cliques naturally produces. Ids landing in the same bucket are
        appended in ascending-id order (``bincount`` order).
        """
        if ids.size == 0:
            return
        old = self._value[ids]
        new = old - amounts
        np.maximum(new, 0, out=new)
        # min(delta, old) summed == total clamped drop == sum(old - new)
        self.updates += int(old.sum() - new.sum())
        changed = new < old
        if not changed.any():
            return
        ids = ids[changed]
        new = new[changed]
        self._value[ids] = new
        order = np.argsort(new, kind="stable")
        sorted_new = new[order]
        sorted_ids = ids[order]
        boundaries = np.flatnonzero(sorted_new[1:] != sorted_new[:-1]) + 1
        start = 0
        for stop in (*boundaries.tolist(), order.size):
            self._buckets.setdefault(int(sorted_new[start]),
                                     []).append(sorted_ids[start:stop])
            start = stop
        lowest = int(sorted_new[0])
        # Values can drop below the cursor; rewind so extraction sees them.
        if lowest < self._cursor:
            self._cursor = lowest

    def decrement(self, ident: int, amount: int = 1) -> None:
        """Scalar convenience wrapper over :meth:`apply_decrements`."""
        if not self._alive[ident]:
            raise DataStructureError(
                f"cannot update extracted identifier {ident}")
        if amount < 0:
            raise DataStructureError(
                f"bucket values may only decrease: id {ident} "
                f"{int(self._value[ident])} -> "
                f"{int(self._value[ident]) - amount}")
        self.apply_decrements(np.asarray([ident], dtype=np.int64),
                              np.asarray([amount], dtype=np.int64))

    # -- extraction ------------------------------------------------------

    def peek_min(self):
        """The minimum current value among live identifiers, or ``None``."""
        if self._remaining == 0:
            return None
        cursor = self._cursor
        while True:
            chunks = self._buckets.get(cursor)
            if chunks is not None:
                ids = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
                live = self._alive[ids] & (self._value[ids] == cursor)
                if live.any():
                    return cursor
            cursor += 1
            if cursor > self._limit:
                return None

    def next_bucket(self) -> Tuple[int, np.ndarray]:
        """Extract all live identifiers in the minimum bucket.

        Returns ``(value, ids)`` with ``ids`` an int64 array in insertion
        order (stale and dead entries skipped). Raises if empty.
        """
        if self._remaining == 0:
            raise DataStructureError("next_bucket() on empty ArrayBucketQueue")
        while self._cursor <= self._limit:
            chunks = self._buckets.pop(self._cursor, None)
            if chunks is not None:
                ids = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
                keep = self._alive[ids] & (self._value[ids] == self._cursor)
                extracted = ids[keep]
                if extracted.size:
                    self._alive[extracted] = False
                    self._remaining -= int(extracted.size)
                    self.rounds += 1
                    return self._cursor, extracted
            self._cursor += 1
        raise DataStructureError(
            "ArrayBucketQueue invariant violated: remaining > 0 but no "
            "live entries")

    def drain(self):
        """Iterate ``next_bucket()`` until empty (convenience for tests)."""
        while not self.empty:
            yield self.next_bucket()
