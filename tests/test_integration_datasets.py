"""Integration tests: the full pipeline on (small) dataset stand-ins.

These cover the exact composition the benchmarks use: load a named
dataset, run several algorithms across several (r, s) values, and check
that everything is mutually consistent. Scales are kept tiny so the whole
file runs in seconds.
"""

import pytest

from repro import nucleus_decomposition
from repro.baselines.nh import nh
from repro.baselines.phcd import phcd
from repro.core.nucleus import peel_exact, prepare
from repro.graphs.datasets import DATASET_NAMES, load_dataset

SCALE = 0.06


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_full_pipeline_on_every_dataset(name):
    g = load_dataset(name, scale=SCALE)
    exact = nucleus_decomposition(g, 2, 3, method="anh-el")
    te = nucleus_decomposition(g, 2, 3, method="anh-te")
    assert exact.core == te.core
    assert exact.tree.partition_chain() == te.tree.partition_chain()
    approx = nucleus_decomposition(g, 2, 3, approx=True, delta=0.5)
    assert all(a >= e for a, e in zip(approx.core, exact.core))
    assert approx.rho <= exact.rho + 2  # approximation never peels slower


def test_rs_grid_consistency_on_dblp():
    g = load_dataset("dblp", scale=SCALE)
    for r, s in [(1, 2), (1, 3), (2, 3), (2, 4), (3, 4), (3, 5)]:
        el = nucleus_decomposition(g, r, s, method="anh-el")
        te = nucleus_decomposition(g, r, s, method="anh-te-theory")
        assert el.core == te.core, (r, s)
        assert el.tree.partition_chain() == te.tree.partition_chain(), (r, s)


def test_baselines_agree_on_youtube():
    g = load_dataset("youtube", scale=SCALE)
    mine = nucleus_decomposition(g, 1, 2, method="anh-te")
    via_phcd = phcd(g)
    assert mine.core == via_phcd.coreness.core
    assert (mine.tree.partition_chain()
            == via_phcd.tree.partition_chain())
    via_nh = nh(g, 2, 3)
    mine23 = nucleus_decomposition(g, 2, 3, method="anh-el")
    assert mine23.core == via_nh.coreness.core
    assert mine23.tree.partition_chain() == via_nh.tree.partition_chain()


def test_hierarchy_cut_consistency_on_amazon():
    """Cutting at every level equals recomputing components (Figure 10)."""
    from repro.baselines.naive_hierarchy import nuclei_without_hierarchy
    g = load_dataset("amazon", scale=SCALE)
    prep = prepare(g, 2, 3)
    res = peel_exact(prep.incidence)
    decomp = nucleus_decomposition(g, 2, 3, method="anh-te")
    for c in decomp.hierarchy_levels():
        cheap = sorted(map(tuple, decomp.nuclei_at(c, as_vertices=False)))
        expensive = sorted(map(tuple, nuclei_without_hierarchy(
            prep.incidence, res.core, c)))
        assert cheap == expensive


def test_work_span_grows_with_s():
    """Larger s costs more metered work (the m * alpha^(s-2) scaling)."""
    g = load_dataset("orkut", scale=SCALE)
    w = {}
    for s in (3, 4, 5):
        out = nucleus_decomposition(g, 2, s, hierarchy=False)
        w[s] = out.work_span.work
    assert w[3] < w[4] < w[5] or w[4] == 0  # degenerate tiny graphs excepted
