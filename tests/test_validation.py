"""Unit tests for the self-validation module (core.validation)."""

import pytest

from repro import nucleus_decomposition
from repro.core.validation import ValidationReport, verify_decomposition
from repro.graphs.generators import erdos_renyi, planted_nuclei
from repro.graphs.graph import Graph


class TestPassingRuns:
    @pytest.mark.parametrize("method", ["anh-el", "anh-te", "anh-bl",
                                        "anh-te-theory", "nh"])
    def test_exact_methods_verify(self, method):
        g = erdos_renyi(22, 0.35, seed=3)
        result = nucleus_decomposition(g, 2, 3, method=method)
        report = verify_decomposition(result)
        assert report.ok, str(report)
        assert len(report.checks) == 6

    def test_approximate_run_verifies(self):
        g = planted_nuclei([6, 5], bridge=True)
        result = nucleus_decomposition(g, 2, 3, approx=True, delta=0.5)
        report = verify_decomposition(result)
        assert report.ok, str(report)
        assert any("bound" in check for check in report.checks)

    def test_coreness_only_verifies(self):
        g = Graph.complete(5)
        result = nucleus_decomposition(g, 2, 3, hierarchy=False)
        report = verify_decomposition(result)
        assert report.ok
        # no tree checks for coreness-only runs
        assert not any("tree" in check for check in report.checks)

    def test_max_levels_cap(self):
        g = planted_nuclei([6, 5, 4], bridge=True)
        result = nucleus_decomposition(g, 2, 3)
        report = verify_decomposition(result, max_levels=1)
        assert report.ok
        assert any("1 levels" in check for check in report.checks)


class TestDetectingCorruption:
    def test_tampered_coreness_detected(self):
        g = planted_nuclei([5, 4], bridge=True)
        result = nucleus_decomposition(g, 2, 3)
        result.coreness.core[0] += 1  # corrupt one value
        report = verify_decomposition(result)
        assert not report.ok
        assert report.failures

    def test_lowered_coreness_detected(self):
        g = planted_nuclei([5, 4], bridge=True)
        result = nucleus_decomposition(g, 2, 3)
        rid = result.core.index(3.0)
        result.coreness.core[rid] = 1.0
        report = verify_decomposition(result)
        assert not report.ok

    def test_tampered_tree_detected(self):
        g = planted_nuclei([5, 4], bridge=True)
        result = nucleus_decomposition(g, 2, 3)
        # graft a leaf from the K4 nucleus under the K5 nucleus
        tree = result.tree
        k4_leaf = result.index.id_of((5, 6))
        k5_node = next(n for n in range(tree.n_leaves, tree.n_nodes)
                       if tree.level[n] == 3)
        tree.parent[k4_leaf] = k5_node
        tree._children[k5_node].append(k4_leaf)
        report = verify_decomposition(result)
        assert not report.ok

    def test_report_formatting(self):
        report = ValidationReport(ok=True)
        report.record("alpha", True)
        report.record("beta", False, "broke")
        text = str(report)
        assert "FAILED" in text
        assert "ok: alpha" in text
        assert "FAIL: beta: broke" in text
