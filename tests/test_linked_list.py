"""Unit tests for the concatenable linked list (repro.ds.linked_list)."""

import pytest
from hypothesis import given, strategies as st

from repro.ds.linked_list import CatList
from repro.errors import DataStructureError
from repro.parallel.counters import WorkSpanCounter


class TestAppend:
    def test_empty(self):
        lst = CatList()
        assert len(lst) == 0
        assert lst.to_list() == []

    def test_append_preserves_order(self):
        lst = CatList.of([3, 1, 4])
        assert lst.to_list() == [3, 1, 4]
        lst.append(1)
        assert lst.to_list() == [3, 1, 4, 1]
        assert len(lst) == 4


class TestConcat:
    def test_concat_joins_in_order(self):
        a = CatList.of([1, 2])
        b = CatList.of([3, 4])
        a.concat(b)
        assert a.to_list() == [1, 2, 3, 4]
        assert len(a) == 4

    def test_concat_empty_cases(self):
        a = CatList.of([1])
        b = CatList()
        a.concat(b)
        assert a.to_list() == [1]
        c = CatList()
        d = CatList.of([2])
        c.concat(d)
        assert c.to_list() == [2]

    def test_concat_tombstones_source(self):
        a, b = CatList.of([1]), CatList.of([2])
        a.concat(b)
        assert b.tombstoned
        with pytest.raises(DataStructureError):
            b.to_list()
        with pytest.raises(DataStructureError):
            b.append(5)
        with pytest.raises(DataStructureError):
            len(b)

    def test_double_consumption_rejected(self):
        """The single-concatenation invariant of Theorem 5.1's proof."""
        a, b, c = CatList.of([1]), CatList.of([2]), CatList.of([3])
        a.concat(b)
        with pytest.raises(DataStructureError):
            c.concat(b)

    def test_tombstoned_target_rejected(self):
        a, b, c = CatList.of([1]), CatList.of([2]), CatList.of([3])
        a.concat(b)
        with pytest.raises(DataStructureError):
            b.concat(c)

    def test_self_concat_rejected(self):
        a = CatList.of([1])
        with pytest.raises(DataStructureError):
            a.concat(a)

    def test_append_after_concat(self):
        a, b = CatList.of([1]), CatList.of([2])
        a.concat(b)
        a.append(3)
        assert a.to_list() == [1, 2, 3]


class TestRankingConversion:
    def test_empty(self):
        assert CatList().to_array_via_ranking(WorkSpanCounter()) == []

    def test_matches_traversal(self):
        lst = CatList.of([5, 3, 5, 1])
        c = WorkSpanCounter()
        assert lst.to_array_via_ranking(c) == [5, 3, 5, 1]
        assert c.work > 0

    def test_conversion_does_not_consume(self):
        lst = CatList.of([1, 2])
        lst.to_array_via_ranking(WorkSpanCounter())
        assert lst.to_list() == [1, 2]

    @given(st.lists(st.lists(st.integers(0, 9), max_size=6), max_size=6))
    def test_concat_chain_matches_flat_list(self, chunks):
        lists = [CatList.of(chunk) for chunk in chunks]
        target = CatList()
        for lst in lists:
            target.concat(lst)
        expected = [x for chunk in chunks for x in chunk]
        assert target.to_list() == expected
        assert target.to_array_via_ranking(WorkSpanCounter()) == expected
