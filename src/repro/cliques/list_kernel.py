"""Array-native k-clique listing: the non-recursive ``REC-LIST-CLIQUES``.

The recursive enumerator (:mod:`repro.cliques.enumeration`) walks the
orientation's out-neighborhoods with Python lists and set probes, and
emits one ``tuple`` per clique -- per-clique interpreter overhead that
dominates the build stage once peeling is fast (the paper's Figure 6/7
breakdowns; Shi et al., *Parallel Clique Counting* keep the equivalent
stage in flat ParlayLib arrays for exactly this reason).

This module is the flat-array replacement:

* the DFS uses an **explicit stack** over rank-space candidate arrays
  (see :class:`~repro.graphs.orientation.CSROrientation`), so candidate
  intersection is a vectorized ``searchsorted`` merge of two ascending
  int64 arrays instead of a Python list comprehension over a frozenset;
* the leaf level emits whole candidate arrays as contiguous blocks, so a
  k-clique never exists as a Python tuple: the result is one
  ``(count, k)`` int64 matrix whose rows are the exact cliques
  :func:`~repro.cliques.enumeration.enumerate_cliques` would yield, in
  the same order, with vertices ascending;
* a **count-only mode** never materializes blocks at all
  (:func:`count_cliques_array`).

Equivalence contract (pinned by ``tests/test_list_kernel.py``): for any
orientation and ``k``, the emitted matrix equals the recursive
enumerator's output row for row, and the work/span charged to a
:class:`~repro.parallel.counters.WorkSpanCounter` is byte-identical --
each DFS frame charges exactly what the corresponding recursion frame
charges (``|C|`` at leaf frames, ``|C|^2`` at internal frames, one unit
per root). The recursive enumerator therefore remains the differential
oracle behind ``kernel="loop"``.
"""

from __future__ import annotations

from functools import partial
from typing import Iterable, List, Optional, Tuple, Union

import numpy as np

from ..errors import ParameterError
from ..graphs.orientation import CSROrientation, Orientation
from ..parallel.backend import ExecutionBackend
from ..parallel.counters import NullCounter, WorkSpanCounter, log2_ceil

#: Enumeration kernel selectors accepted by ``build_incidence`` and
#: ``CliqueIndex.from_orientation`` (the enumeration half of the API's
#: unified ``kernel`` flag -- see ``repro.core.nucleus.split_kernel``).
ENUM_KERNEL_NAMES = ("auto", "array", "loop")


def use_array_kernel(kernel: str) -> bool:
    """Validate an enumeration kernel name; True if the array path runs.

    ``"auto"`` and ``"array"`` both select this module (numpy is a hard
    dependency, so the array path is always available); ``"loop"`` forces
    the recursive oracle.
    """
    if kernel not in ENUM_KERNEL_NAMES:
        raise ParameterError(
            f"unknown enumeration kernel {kernel!r}; "
            f"expected one of {ENUM_KERNEL_NAMES}")
    return kernel != "loop"


def _as_csr(orientation: Union[Orientation, CSROrientation]) -> CSROrientation:
    if isinstance(orientation, CSROrientation):
        return orientation
    return orientation.csr()


def intersect_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersection of two ascending int64 arrays, in ``a``'s order.

    One ``searchsorted`` of ``a`` into ``b``: position clipping makes the
    out-of-range probes compare unequal, so no mask bookkeeping is
    needed. Both inputs are duplicate-free here (neighborhoods), so the
    result is, too.
    """
    if a.size == 0 or b.size == 0:
        return a[:0]
    pos = np.searchsorted(b, a)
    np.minimum(pos, b.size - 1, out=pos)
    return a[b[pos] == a]


def _segment_offsets(counts: np.ndarray, total: int) -> np.ndarray:
    """Per-element offset within its segment, for ragged flat layouts.

    ``counts`` gives segment lengths summing to ``total``; the result is
    ``[0..counts[0]-1, 0..counts[1]-1, ...]``.
    """
    starts = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


def _list_chunk(csr: CSROrientation, vertices: Iterable[int], k: int,
                blocks: Optional[List[np.ndarray]]) -> Tuple[int, int]:
    """Level-synchronous ``REC-LIST-CLIQUES`` rooted at ``vertices``.

    The whole DFS frontier advances one recursion level at a time: a
    level holds the frames as one prefix matrix plus one ragged candidate
    pool, and expanding every frame is a handful of bulk array
    operations (ragged gathers plus one ``searchsorted`` of encoded edge
    keys) instead of per-frame Python. Because frames stay in
    lexicographic (root, then candidate) order and every expansion is
    stable, the leaf level emits cliques in the recursive enumerator's
    exact DFS order.

    Appends rank-space ``(rows, k)`` blocks to ``blocks`` (pass ``None``
    for count-only) and returns ``(count, work)``; ``work`` reproduces
    the recursive enumerator's accounting level for level: one unit per
    root, ``|C|^2`` per internal frame, ``|C|`` per leaf frame (frames
    with empty candidate sets charge nothing in the recursion either, so
    dropping them is meter-neutral). Peak memory is proportional to the
    frontier -- the metered work of the level -- rather than the DFS
    depth; the same space/regularity trade the paper's flat-array
    artifact makes.
    """
    indptr = csr.indptr
    nbrs = csr.nbrs
    roots = np.fromiter(vertices, dtype=np.int64)
    if k == 1:
        if blocks is not None and roots.size:
            blocks.append(csr.rank[roots].reshape(-1, 1))
        return int(roots.size), int(roots.size)
    work = int(roots.size)
    if not roots.size:
        return 0, work
    n = csr.n
    edge_keys = csr.edge_keys()
    # Root frontier: one frame per root (in the given order), candidates
    # = the root's out-row.
    ranks = csr.rank[roots]
    counts = indptr[ranks + 1] - indptr[ranks]
    total = int(counts.sum())
    pool = nbrs[np.repeat(indptr[ranks], counts) +
                _segment_offsets(counts, total)]
    prefixes = ranks.reshape(-1, 1)
    for remaining in range(k - 1, 1, -1):
        work += int((counts * counts).sum())
        if not total:
            break
        # Expansion: frame (prefix P, candidates C) spawns one child per
        # candidate C[j] -- prefix P+(C[j],), candidates the w in
        # C[j+1:] with an edge C[j] -> w. Each pool element is a child
        # frame; its raw candidates are the tail of its own segment.
        frame_of = np.repeat(np.arange(counts.shape[0]), counts)
        j_within = _segment_offsets(counts, total)
        tail = counts[frame_of] - 1 - j_within
        t_total = int(tail.sum())
        prefixes = np.hstack((prefixes[frame_of], pool.reshape(-1, 1)))
        if not t_total:
            counts = np.zeros(total, dtype=np.int64)
            pool = pool[:0]
            total = 0
            continue
        frame_starts = np.cumsum(counts) - counts
        tail_elems = pool[np.repeat(frame_starts[frame_of] + j_within + 1,
                                    tail) + _segment_offsets(tail, t_total)]
        # One bulk edge-existence test: is (u, w) a directed edge?
        keys = np.repeat(pool, tail) * n + tail_elems
        pos = np.searchsorted(edge_keys, keys)
        np.minimum(pos, edge_keys.shape[0] - 1, out=pos)
        kept = edge_keys[pos] == keys
        counts = np.bincount(np.repeat(np.arange(total), tail)[kept],
                             minlength=total)
        pool = tail_elems[kept]
        total = int(pool.shape[0])
    # Leaf level: every frame's candidate array is a run of cliques.
    work += total
    if blocks is not None and total:
        block = np.empty((total, k), dtype=np.int64)
        block[:, :k - 1] = np.repeat(prefixes, counts, axis=0)
        block[:, k - 1] = pool
        blocks.append(block)
    return total, work


def _assemble(csr: CSROrientation, blocks: List[np.ndarray],
              k: int) -> np.ndarray:
    """Stack rank-space blocks into the final id-space clique matrix.

    One bulk translation (rank -> vertex id) plus one row-wise sort
    yields the canonical ascending-vertex rows the tuple enumerator
    emits, without touching individual cliques in Python.
    """
    if not blocks:
        return np.empty((0, k), dtype=np.int64)
    matrix = csr.order[np.vstack(blocks)]
    matrix.sort(axis=1)
    return matrix


def clique_matrix(orientation: Union[Orientation, CSROrientation], k: int,
                  counter: Optional[WorkSpanCounter] = None) -> np.ndarray:
    """All k-cliques as a contiguous ``(count, k)`` int64 matrix.

    Row ``i`` is the ``i``-th clique
    :func:`~repro.cliques.enumeration.enumerate_cliques` would emit
    (vertices ascending); the metered work/span is identical, too.
    """
    if k < 1:
        raise ParameterError(f"clique size must be >= 1, got {k}")
    counter = counter if counter is not None else NullCounter()
    csr = _as_csr(orientation)
    blocks: List[np.ndarray] = []
    _, work = _list_chunk(csr, range(csr.n), k, blocks)
    counter.add_parallel(max(work, 1), k + log2_ceil(max(csr.n, 1)))
    return _assemble(csr, blocks, k)


def count_cliques_array(orientation: Union[Orientation, CSROrientation],
                        k: int,
                        counter: Optional[WorkSpanCounter] = None) -> int:
    """Number of k-cliques, never materializing a single one.

    The count-only mode of the kernel: the DFS runs identically (same
    work/span charge as :func:`clique_matrix` and the recursive
    enumerator) but leaf frames only add their candidate counts.
    """
    if k < 1:
        raise ParameterError(f"clique size must be >= 1, got {k}")
    counter = counter if counter is not None else NullCounter()
    csr = _as_csr(orientation)
    count, work = _list_chunk(csr, range(csr.n), k, None)
    counter.add_parallel(max(work, 1), k + log2_ceil(max(csr.n, 1)))
    return count


def clique_matrix_of_vertices(orientation: Union[Orientation, CSROrientation],
                              vertices: Iterable[int],
                              k: int) -> Tuple[np.ndarray, int]:
    """k-cliques rooted at ``vertices`` as ``(matrix, work)``.

    The array sibling of
    :func:`~repro.cliques.enumeration.cliques_of_vertices` -- the
    per-vertex unit of the parallel top-level loop. Concatenating chunk
    matrices in chunk order reproduces :func:`clique_matrix` exactly,
    and the work integers sum to the serial total.
    """
    csr = _as_csr(orientation)
    blocks: List[np.ndarray] = []
    _, work = _list_chunk(csr, vertices, k, blocks)
    return _assemble(csr, blocks, k), work


def _matrix_chunk(csr: CSROrientation, vertices: List[int],
                  k: int) -> Tuple[np.ndarray, int]:
    """Backend chunk task wrapping :func:`clique_matrix_of_vertices`.

    The broadcast context is the :class:`CSROrientation` itself (shipped
    through shared memory by a process backend); the returned clique
    matrix pickles as one contiguous buffer instead of a tuple list.
    """
    return clique_matrix_of_vertices(csr, vertices, k)


def clique_matrix_via(backend: ExecutionBackend,
                      orientation: Union[Orientation, CSROrientation], k: int,
                      counter: Optional[WorkSpanCounter] = None,
                      chunk_size: Optional[int] = None) -> np.ndarray:
    """Backend-dispatched :func:`clique_matrix`: identical matrix + meters.

    The top-level vertex loop is chunked across workers against the
    shared-memory-broadcast CSR orientation; chunk matrices concatenate
    in submission order, so the result does not depend on the backend,
    worker count, or chunk size.
    """
    if k < 1:
        raise ParameterError(f"clique size must be >= 1, got {k}")
    counter = counter if counter is not None else NullCounter()
    csr = _as_csr(orientation)
    token = backend.broadcast(csr)
    results = backend.map_chunks(partial(_matrix_chunk, k=k), range(csr.n),
                                 token=token, chunk_size=chunk_size)
    work = sum(chunk_work for _, chunk_work in results)
    counter.add_parallel(max(work, 1), k + log2_ceil(max(csr.n, 1)))
    parts = [matrix for matrix, _ in results if matrix.shape[0]]
    if not parts:
        return np.empty((0, k), dtype=np.int64)
    return np.vstack(parts)
