"""Command-line interface: ``python -m repro``.

Decompose a SNAP-style edge list (or a named synthetic dataset) from the
shell, without writing Python:

    python -m repro decompose graph.txt --r 2 --s 3
    python -m repro decompose --dataset dblp --r 2 --s 4 --approx --delta 0.5
    python -m repro nuclei graph.txt --r 2 --s 3 --level 3
    python -m repro export graph.txt --r 2 --s 3 --format dot -o tree.dot
    python -m repro store build --dataset dblp --r 2 --s 3 -o dblp.nda
    python -m repro serve --artifact dblp.nda --port 8351
    python -m repro query --artifact dblp.nda --op community --vertices 0,5
    python -m repro datasets

Subcommands
-----------
``decompose``   run a decomposition, print the summary + hierarchy stats
``nuclei``      print the nuclei at one level (or the densest ones)
``export``      write the result as JSON or Graphviz DOT
``store``       build / inspect persistent ``.nda`` artifacts
``serve``       serve artifacts over HTTP (repro.service)
``query``       query a local artifact or a running server
``verify``      re-derive and validate a decomposition (self-check)
``datasets``    list the built-in synthetic stand-in datasets

Exit codes: 0 success; 1 a query ran cleanly but found nothing (e.g. no
covering community); 2 usage or runtime error (message on stderr).
"""

from __future__ import annotations

import argparse
import json as _json
import sys
from typing import List, Optional

from . import __version__
from .analysis.reporting import format_table
from .cliques.incidence import INCIDENCE_STRATEGIES
from .core.api import EXACT_METHODS, nucleus_decomposition
from .core.nucleus import KERNEL_CHOICES
from .parallel.backend import BACKEND_NAMES
from .core.queries import HierarchyQueryIndex, hierarchy_statistics
from .errors import ReproError
from .export import decomposition_to_json, tree_to_dot
from .graphs.datasets import dataset_names, dataset_spec, load_dataset
from .graphs.io import read_edge_list


def _add_input_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("path", nargs="?", default=None,
                        help="SNAP-style edge list file")
    parser.add_argument("--dataset", default=None, metavar="NAME",
                        help="use a built-in synthetic dataset instead of a file")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="scale factor for --dataset (default 1.0)")


def _add_decomposition_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--r", type=int, default=2, help="r (default 2)")
    parser.add_argument("--s", type=int, default=3, help="s (default 3)")
    parser.add_argument("--method", default="auto",
                        choices=("auto",) + EXACT_METHODS,
                        help="algorithm (default: the paper's auto rule)")
    parser.add_argument("--approx", action="store_true",
                        help="use APPROX-ARB-NUCLEUS (Algorithm 2)")
    parser.add_argument("--delta", type=float, default=0.5,
                        help="approximation parameter (default 0.5)")
    parser.add_argument("--strategy", "--incidence", default="materialized",
                        choices=INCIDENCE_STRATEGIES, dest="strategy",
                        help="s-clique incidence strategy: 'materialized' "
                             "(dict/list), 'reenum' (space-lean), or 'csr' "
                             "(flat numpy arrays + vectorized peeling)")
    parser.add_argument("--kernel", default="auto", choices=KERNEL_CHOICES,
                        help="compute kernel for enumeration, peeling, and "
                             "hierarchy construction: 'auto' (array paths "
                             "where applicable), 'array' (force flat-array "
                             "enumeration + hierarchy; the latter needs "
                             "--strategy csr), 'vectorized' (force array "
                             "peeling; needs --strategy csr), or 'loop' "
                             "(scalar oracle)")
    parser.add_argument("--backend", default="serial",
                        choices=BACKEND_NAMES,
                        help="execution backend: 'serial' (instrumented "
                             "work-span metering) or 'process' "
                             "(multiprocessing pool)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for --backend process "
                             "(default: one per CPU)")


def _load_graph(args: argparse.Namespace):
    if (args.path is None) == (args.dataset is None):
        raise ReproError("provide exactly one of: an edge-list path, "
                         "or --dataset NAME")
    if args.dataset is not None:
        return load_dataset(args.dataset, scale=args.scale)
    return read_edge_list(args.path, name=args.path)


def _decompose(args: argparse.Namespace):
    graph = _load_graph(args)
    return nucleus_decomposition(
        graph, args.r, args.s, method=args.method, approx=args.approx,
        delta=args.delta, strategy=args.strategy,
        backend=getattr(args, "backend", "serial"),
        workers=getattr(args, "workers", None),
        kernel=getattr(args, "kernel", "auto"))


def cmd_decompose(args: argparse.Namespace, out) -> int:
    result = _decompose(args)
    print(result.summary(), file=out)
    if result.tree is not None:
        stats = hierarchy_statistics(result.tree)
        print(f"hierarchy: {stats.n_nuclei} nuclei on {stats.n_levels} "
              f"levels, height {stats.height}, "
              f"largest nucleus {stats.largest_nucleus} r-cliques, "
              f"mean branching {stats.mean_branching:.2f}", file=out)
        best = result.densest_nucleus(min_vertices=3)
        if best.n_vertices:
            print(f"densest nucleus: {best.n_vertices} vertices at density "
                  f"{best.density:.3f} (level {best.level:g})", file=out)
    print(f"time: {result.seconds_total:.3f}s "
          f"(predicted 30-core: {result.simulated_seconds(30):.3f}s)",
          file=out)
    return 0


def cmd_nuclei(args: argparse.Namespace, out) -> int:
    result = _decompose(args)
    if args.level is not None:
        groups = result.nuclei_at(args.level)
        groups = [g for g in groups if len(g) >= args.min_vertices]
        print(f"{len(groups)} nuclei at level {args.level:g}:", file=out)
        for group in sorted(groups, key=len, reverse=True)[:args.top]:
            print(f"  [{len(group)} vertices] "
                  + " ".join(map(str, group[:30]))
                  + (" ..." if len(group) > 30 else ""), file=out)
        return 0
    index = HierarchyQueryIndex(result)
    rows = [(f"{c.level:g}", len(c), c.n_r_cliques, f"{c.density:.3f}",
             " ".join(map(str, c.vertices[:12]))
             + (" ..." if len(c) > 12 else ""))
            for c in index.top_k_densest(args.top,
                                         min_vertices=args.min_vertices)]
    print(format_table(("level", "|V|", "r-cliques", "density", "vertices"),
                       rows, title=f"top {args.top} densest nuclei"),
          file=out)
    return 0


def cmd_export(args: argparse.Namespace, out) -> int:
    result = _decompose(args)
    if args.format == "json":
        text = decomposition_to_json(result)
    else:
        text = tree_to_dot(result)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.format} to {args.output}", file=out)
    else:
        print(text, file=out)
    return 0


def cmd_verify(args: argparse.Namespace, out) -> int:
    from .core.validation import verify_decomposition
    result = _decompose(args)
    report = verify_decomposition(result, max_levels=args.max_levels)
    print(report, file=out)
    return 0 if report.ok else 1


def cmd_store_build(args: argparse.Namespace, out) -> int:
    from .store import write_artifact, load_artifact
    result = _decompose(args)
    index = HierarchyQueryIndex(result)
    write_artifact(result, args.output, query_index=index)
    with load_artifact(args.output) as artifact:
        print(f"wrote {args.output}: {artifact.summary()}", file=out)
    return 0


def cmd_store_info(args: argparse.Namespace, out) -> int:
    from .store import load_artifact
    with load_artifact(args.artifact) as artifact:
        if args.verify:
            artifact.verify()
        if args.format == "json":
            doc = {"path": artifact.path,
                   "meta": {k: v for k, v in artifact.meta.items()
                            if k != "columns"},
                   "stats": artifact.stats(),
                   "columns": artifact.meta["columns"],
                   "verified": bool(args.verify)}
            print(_json.dumps(doc, indent=2, sort_keys=True), file=out)
        else:
            print(artifact.summary(), file=out)
            for key, value in sorted(artifact.stats().items()):
                print(f"  {key}: {value:g}", file=out)
            if args.verify:
                print("  payload checksum: OK", file=out)
    return 0


def _artifact_map(args: argparse.Namespace):
    """Resolve repeated --artifact (and optional --name) flags to a map."""
    import os
    names = list(args.name or [])
    if len(names) > len(args.artifact):
        raise ReproError("more --name flags than --artifact flags")
    mapping = {}
    for i, path in enumerate(args.artifact):
        name = names[i] if i < len(names) else \
            os.path.splitext(os.path.basename(path))[0]
        if name in mapping:
            raise ReproError(f"duplicate artifact name {name!r}; "
                             f"disambiguate with --name")
        mapping[name] = path
    return mapping


def cmd_serve(args: argparse.Namespace, out) -> int:
    from .service.http import make_server
    server = make_server(_artifact_map(args), host=args.host, port=args.port,
                         cache_bytes=args.cache_bytes)
    host, port = server.server_address[:2]
    print(f"serving {len(args.artifact)} artifact(s) on "
          f"http://{host}:{port} (Ctrl-C to stop)", file=out)
    out.flush()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def _parse_ints(text: str, flag: str) -> List[int]:
    try:
        return [int(part) for part in text.replace(" ", "").split(",") if part]
    except ValueError:
        raise ReproError(f"{flag} expects comma-separated integers, "
                         f"got {text!r}")


def _format_communities(payload, out) -> None:
    communities = payload.get("communities")
    if communities is None:
        communities = [payload["community"]] if payload.get("community") \
            else []
    if not communities:
        print("no matching community", file=out)
        return
    rows = [(f"{c['level']:g}", len(c["vertices"]), c["n_r_cliques"],
             f"{c['density']:.3f}",
             " ".join(map(str, c["vertices"][:12]))
             + (" ..." if len(c["vertices"]) > 12 else ""))
            for c in communities]
    print(format_table(("level", "|V|", "r-cliques", "density", "vertices"),
                       rows), file=out)


def cmd_query(args: argparse.Namespace, out) -> int:
    if (args.url is None) == (args.artifact is None):
        raise ReproError("provide exactly one of --url or --artifact")
    params = {}
    if args.name:
        params["artifact"] = args.name
    if args.vertices is not None:
        params["vertices"] = _parse_ints(args.vertices, "--vertices")
    if args.vertex is not None:
        params["vertex"] = args.vertex
    if args.clique is not None:
        params["clique"] = _parse_ints(args.clique, "--clique")
    if args.k is not None:
        params["k"] = args.k
    if args.min_level is not None:
        params["min_level"] = args.min_level
    if args.min_vertices is not None:
        params["min_vertices"] = args.min_vertices

    if args.url is not None:
        from .service.http import http_query
        try:
            payload = http_query(args.url, args.op, params)
        except OSError as exc:  # connection refused, DNS, timeout...
            raise ReproError(f"cannot reach {args.url}: {exc}")
        except ValueError as exc:  # malformed --url (urllib raises bare)
            raise ReproError(f"invalid --url {args.url!r}: {exc}")
    elif args.op in ("stats", "health", "artifacts"):
        raise ReproError(f"--op {args.op} requires --url (a running server)")
    else:
        from .service import DecompositionService
        service = DecompositionService()
        params["artifact"] = service.register(args.artifact)
        payload = service.query(args.op, params)

    if args.format == "json":
        print(_json.dumps(payload, indent=2, sort_keys=True), file=out)
    elif args.op in ("stats", "health", "artifacts"):
        print(_json.dumps(payload, indent=2, sort_keys=True), file=out)
    elif args.op == "coreness":
        print(f"clique {{{','.join(map(str, payload['clique']))}}} "
              f"core {payload['core']:g}", file=out)
    else:
        _format_communities(payload, out)
    if payload.get("found") is False:
        return 1
    return 0


def cmd_datasets(args: argparse.Namespace, out) -> int:
    rows = []
    for name in dataset_names():
        spec = dataset_spec(name)
        graph = load_dataset(name, scale=args.scale)
        rows.append((name, spec.paper_n, spec.paper_m, graph.n, graph.m,
                     spec.description))
    print(format_table(
        ("name", "paper n", "paper m", "stand-in n", "stand-in m", "notes"),
        rows, title="built-in synthetic stand-ins (paper Table 1)"),
        file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="(r, s) nucleus decomposition with hierarchy "
                    "(SIGMOD 2024 reproduction)")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("decompose", help="run a decomposition")
    _add_input_arguments(p)
    _add_decomposition_arguments(p)
    p.set_defaults(func=cmd_decompose)

    p = sub.add_parser("nuclei", help="print nuclei at a level / densest")
    _add_input_arguments(p)
    _add_decomposition_arguments(p)
    p.add_argument("--level", type=float, default=None,
                   help="cut level (omit for the densest nuclei)")
    p.add_argument("--top", type=int, default=10,
                   help="max nuclei to print (default 10)")
    p.add_argument("--min-vertices", type=int, default=3,
                   help="hide nuclei smaller than this (default 3)")
    p.set_defaults(func=cmd_nuclei)

    p = sub.add_parser("export", help="export the result")
    _add_input_arguments(p)
    _add_decomposition_arguments(p)
    p.add_argument("--format", choices=("json", "dot"), default="json")
    p.add_argument("-o", "--output", default=None,
                   help="output path (default: stdout)")
    p.set_defaults(func=cmd_export)

    p = sub.add_parser("store", help="build / inspect .nda artifacts")
    store_sub = p.add_subparsers(dest="store_command", required=True)

    p = store_sub.add_parser(
        "build", help="decompose and write a persistent artifact")
    _add_input_arguments(p)
    _add_decomposition_arguments(p)
    p.add_argument("-o", "--output", required=True,
                   help="artifact path to write (convention: .nda)")
    p.set_defaults(func=cmd_store_build)

    p = store_sub.add_parser("info", help="print artifact metadata")
    p.add_argument("artifact", help="path to a .nda artifact")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--verify", action="store_true",
                   help="also recompute the payload checksum")
    p.set_defaults(func=cmd_store_info)

    p = sub.add_parser("serve", help="serve artifacts over HTTP")
    p.add_argument("--artifact", action="append", required=True,
                   metavar="PATH", help="artifact to serve (repeatable)")
    p.add_argument("--name", action="append", metavar="NAME",
                   help="name for the matching --artifact (default: "
                        "file stem)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8351,
                   help="port to bind (0 = ephemeral; default 8351)")
    p.add_argument("--cache-bytes", type=int, default=None,
                   help="artifact LRU cache budget in bytes")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("query",
                       help="query a local artifact or a running server")
    p.add_argument("--url", default=None,
                   help="base URL of a running `repro serve` instance")
    p.add_argument("--artifact", default=None, metavar="PATH",
                   help="query a local .nda artifact directly (no server)")
    p.add_argument("--op", required=True,
                   choices=("community", "membership", "strongest_community",
                            "top_k_densest", "coreness", "stats", "health",
                            "artifacts"))
    p.add_argument("--name", default=None,
                   help="artifact name on a multi-artifact server")
    p.add_argument("--vertices", default=None,
                   help="comma-separated vertex ids (community)")
    p.add_argument("--vertex", type=int, default=None,
                   help="vertex id (membership / strongest_community)")
    p.add_argument("--clique", default=None,
                   help="comma-separated r-clique vertices (coreness)")
    p.add_argument("--k", type=int, default=None,
                   help="result count (top_k_densest; default 10)")
    p.add_argument("--min-level", type=float, default=None)
    p.add_argument("--min-vertices", type=int, default=None)
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("verify", help="validate a decomposition end-to-end")
    _add_input_arguments(p)
    _add_decomposition_arguments(p)
    p.add_argument("--max-levels", type=int, default=None,
                   help="cap the per-level hierarchy checks")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("datasets", help="list built-in datasets")
    p.add_argument("--scale", type=float, default=1.0)
    p.set_defaults(func=cmd_datasets)

    return parser


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/`head` closed the pipe: not an error. Detach
        # stdout so the interpreter's shutdown flush does not re-raise.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0
