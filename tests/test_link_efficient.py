"""Unit tests for LINK-EFFICIENT internals (Algorithm 5)."""

import itertools

import pytest

from repro.core.link_efficient import EMPTY, LinkEfficient
from repro.errors import DataStructureError
from repro.parallel.atomics import FlakyAtomicCell


class TestUnionBehaviour:
    def test_equal_cores_unite(self):
        le = LinkEfficient([2.0, 2.0, 1.0])
        le.link(0, 1)
        assert le.uf.same_set(0, 1)
        assert not le.uf.same_set(0, 2)

    def test_different_cores_set_nearest(self):
        le = LinkEfficient([1.0, 3.0])
        le.link(0, 1)  # core 1 clique is the nearest core of clique 1
        root1 = le.uf.find(1)
        assert le.L[root1].load() == 0
        assert le.L[le.uf.find(0)].load() == EMPTY

    def test_nearer_core_replaces(self):
        le = LinkEfficient([1.0, 2.0, 5.0])
        le.link(0, 2)   # L[2] = 0 (core 1)
        le.link(1, 2)   # core 2 is nearer: replaces, cascades link(1, 0)...
        assert le.L[le.uf.find(2)].load() == 1
        # the displaced clique 0 becomes the nearest core of clique 1
        assert le.L[le.uf.find(1)].load() == 0

    def test_farther_core_does_not_replace_but_cascades(self):
        le = LinkEfficient([2.0, 1.0, 5.0])
        le.link(0, 2)   # L[2] = 0 (core 2)
        le.link(1, 2)   # core 1 is farther: keep 0, cascade link(1, 0)
        assert le.L[le.uf.find(2)].load() == 0
        assert le.L[le.uf.find(0)].load() == 1

    def test_same_core_discovery_through_higher_core(self):
        """The paper's worked example: 3a and 3b connect only via a 4-core."""
        # ids: 0 = "3a" (core 3), 1 = "3b" (core 3), 2 = "4c" (core 4)
        le = LinkEfficient([3.0, 3.0, 4.0])
        le.link(0, 2)
        le.link(1, 2)
        # the cascade must unite 3a and 3b even though they never linked
        # directly
        assert le.uf.same_set(0, 1)

    def test_unite_transfers_nearest_core(self):
        """Uniting equal cores must preserve the best nearest-core entry."""
        # 0,1 core 3; 2 core 1; 3 core 4 connecting 0 and 1
        le = LinkEfficient([3.0, 3.0, 1.0, 4.0])
        le.link(2, 0)       # L[0] = 2
        le.link(0, 3)
        le.link(1, 3)       # cascades unite(0, 1)
        root = le.uf.find(0)
        assert le.uf.same_set(0, 1)
        assert le.L[root].load() == 2  # survived the unite

    def test_link_empty_arguments_ignored(self):
        le = LinkEfficient([1.0, 2.0])
        le.link(EMPTY, 1)   # line 4: no-op
        le.link(0, EMPTY)
        assert le.L[0].load() == EMPTY
        assert le.L[1].load() == EMPTY

    def test_idempotent_relinks(self):
        le = LinkEfficient([1.0, 2.0])
        for _ in range(3):
            le.link(0, 1)
        assert le.L[le.uf.find(1)].load() == 0

    def test_stats(self):
        le = LinkEfficient([1.0, 2.0, 2.0])
        le.link(0, 1)
        le.link(1, 2)
        stats = le.stats()
        assert stats["link_calls"] == 2
        assert stats["memory_units"] == 6  # 2 * n_r


class TestCASContention:
    def test_retry_after_l_entry_appears_concurrently(self):
        """CAS on an empty L entry fails because 'another thread' filled it.

        The retry loop (Algorithm 5, line 12) must re-read and land in the
        compare-by-core branch instead.
        """
        le = LinkEfficient([1.0, 2.0, 5.0])
        root2 = le.uf.find(2)

        def interference(cell):
            # competing writer stores the core-2 clique first
            le.L[root2] = original
            le.L[root2].store(1)

        original = le.L[root2]
        le.L[root2] = FlakyAtomicCell(EMPTY, iter([True]),
                                      interference=interference)
        le.link(0, 2)  # wants to store 0 (core 1) but 1 (core 2) is nearer
        assert le.L[le.uf.find(2)].load() == 1
        # and the displaced/cascaded link recorded 0 as nearest of 1
        assert le.L[le.uf.find(1)].load() == 0

    def test_retry_after_replacement_race(self):
        """CAS replacing a worse entry loses a race to an even better one."""
        le = LinkEfficient([1.0, 2.5, 2.0, 5.0])
        root3 = le.uf.find(3)
        le.link(0, 3)  # L[3] = 0 (core 1)

        def interference(cell):
            le.L[root3] = original
            le.L[root3].store(1)  # a core-2.5 entry wins the race

        original = le.L[root3]
        le.L[root3] = FlakyAtomicCell(0, iter([True]),
                                      interference=interference)
        le.link(2, 3)  # core 2 would beat core 1, but loses to core 2.5
        assert le.L[le.uf.find(3)].load() == 1

    def test_cascade_budget_guards_against_cycles(self):
        le = LinkEfficient([1.0, 2.0])
        le.MAX_STEPS_FACTOR = 0

        # exhaust the budget instantly
        with pytest.raises(DataStructureError):
            le.link(0, 1)


class TestConstructTree:
    def test_single_component_chain(self):
        # cores: two core-2 cliques connected, one core-1 below
        le = LinkEfficient([2.0, 2.0, 1.0])
        le.link(0, 1)
        le.link(2, 0)
        tree = le.construct_tree()
        assert tree.nuclei_at(2) == [[0, 1]]
        assert tree.nuclei_at(1) == [[0, 1, 2]]

    def test_attachment_of_singleton_component(self):
        # one core-4 clique attaches to a core-2 clique ("4d -> 2a")
        le = LinkEfficient([4.0, 2.0])
        le.link(1, 0)
        tree = le.construct_tree()
        assert tree.nuclei_at(4) == [[0]]
        assert tree.nuclei_at(2) == [[0, 1]]

    def test_forest_when_unlinked(self):
        le = LinkEfficient([1.0, 1.0])
        tree = le.construct_tree()
        assert tree.n_internal == 0
        assert len(tree.roots()) == 2


class _InterferingCell:
    """An atomic cell whose successful CAS also runs a side effect first,

    modelling a racing thread that acts between this thread's read of
    ``uf.parent(Q)`` and its CAS on ``L[Q]`` -- the window Algorithm 5's
    lines 16-17 and 21-22 exist for.
    """

    def __init__(self, value, interference):
        self._value = value
        self._interference = interference

    def load(self):
        return self._value

    def store(self, value):
        self._value = value

    def compare_and_swap(self, expected, new):
        if self._value != expected:
            return False
        # the racing thread acts just before our CAS lands
        self._interference()
        self._value = new
        return True


class TestRootChangeDuringCAS:
    def test_line_16_17_root_changed_after_empty_cas(self):
        """A successful CAS on an empty L[Q] whose component was united

        concurrently: the algorithm must re-link R against Q's new root
        (lines 16-17), otherwise the new root never learns about R.
        """
        le = LinkEfficient([1.0, 3.0, 3.0])  # 0 = core 1; 1, 2 = core 3
        root1 = le.uf.find(1)

        def racing_unite():
            # another thread unites the two core-3 components while our
            # CAS is in flight
            le.uf.unite(1, 2)

        le.L[root1] = _InterferingCell(EMPTY, racing_unite)
        le.link(0, 1)
        # whichever clique now represents the merged core-3 component
        # must know its nearest core is 0
        assert le.L[le.uf.find(1)].load() == 0 or \
            le.L[le.uf.find(2)].load() == 0
        # and the tree comes out right
        tree = le.construct_tree()
        assert tree.nuclei_at(1) == [[0, 1, 2]]

    def test_line_21_22_root_changed_after_replacement_cas(self):
        """Same race on the replace path (lines 21-22)."""
        # 0 = core 1, 3 = core 2, 1/2 = core 4 (two components to merge)
        le = LinkEfficient([1.0, 4.0, 4.0, 2.0])
        le.link(0, 1)  # L[1] = 0 (core 1)
        root1 = le.uf.find(1)

        def racing_unite():
            le.uf.unite(1, 2)

        le.L[root1] = _InterferingCell(0, racing_unite)
        le.link(3, 1)  # core 2 beats core 1; CAS succeeds amid the race
        merged_root = le.uf.find(1)
        assert le.uf.same_set(1, 2)
        # the merged component's nearest core must be the core-2 clique,
        # and the displaced core-1 knowledge must survive under it
        assert le.L[merged_root].load() == 3 or \
            le.L[le.uf.find(3)].load() == 0
        tree = le.construct_tree()
        assert sorted(map(tuple, tree.nuclei_at(1))) == [(0, 1, 2, 3)]
        assert sorted(map(tuple, tree.nuclei_at(2))) == [(1, 2, 3)]
