"""Unit tests for the analysis helpers (density, errors, reporting)."""

import pytest

from repro.analysis.density import (densest_nucleus, density_profile,
                                    edge_density, nucleus_vertices)
from repro.analysis.errors import (ErrorSummary, multiplicative_errors,
                                   summarize_errors)
from repro.analysis.reporting import (banner, format_series, format_slowdowns,
                                      format_table)
from repro.cliques.index import CliqueIndex
from repro.core.framework import anh_el
from repro.core.nucleus import prepare
from repro.errors import ParameterError
from repro.graphs.generators import planted_nuclei
from repro.graphs.graph import Graph


class TestDensity:
    def test_edge_density_extremes(self):
        k4 = Graph.complete(4)
        assert edge_density(k4, [0, 1, 2, 3]) == pytest.approx(1.0)
        empty = Graph.empty(4)
        assert edge_density(empty, [0, 1, 2]) == 0.0
        assert edge_density(k4, [0]) == 0.0

    def test_nucleus_vertices_unions_cliques(self):
        idx = CliqueIndex([(0, 1), (1, 2)])
        assert nucleus_vertices(idx, [0, 1]) == {0, 1, 2}

    def test_density_profile_on_planted_cliques(self):
        g = planted_nuclei([5, 4], bridge=True)
        out = anh_el(g, 2, 3)
        prep = prepare(g, 2, 3)
        profile = density_profile(g, prep.index, out.tree)
        assert profile  # nuclei exist
        # the deepest nucleus is the K5 at full density
        top = profile[0]
        assert top.level == 3
        assert top.n_vertices == 5
        assert top.density == pytest.approx(1.0)

    def test_densest_nucleus(self):
        g = planted_nuclei([6, 4], bridge=True)
        out = anh_el(g, 2, 3)
        prep = prepare(g, 2, 3)
        best = densest_nucleus(g, prep.index, out.tree, min_vertices=5)
        assert best.n_vertices == 6
        assert best.density == pytest.approx(1.0)

    def test_densest_nucleus_empty_tree(self):
        g = Graph(4, [(0, 1), (2, 3)])  # no triangles
        out = anh_el(g, 2, 3)
        prep = prepare(g, 2, 3)
        best = densest_nucleus(g, prep.index, out.tree)
        assert best.n_vertices == 0 and best.density == 0.0


class TestErrors:
    def test_ratios_exclude_zero_cores(self):
        ratios = multiplicative_errors([0, 2, 4], [0, 3, 4])
        assert ratios == [1.5, 1.0]

    def test_underestimate_rejected(self):
        with pytest.raises(ParameterError):
            multiplicative_errors([2], [1])

    def test_nonzero_estimate_for_zero_core_rejected(self):
        with pytest.raises(ParameterError):
            multiplicative_errors([0], [1])

    def test_length_mismatch(self):
        with pytest.raises(ParameterError):
            multiplicative_errors([1], [1, 1])

    def test_summary_statistics(self):
        s = summarize_errors([1, 2, 4, 0], [1, 3, 4, 0])
        assert s.n_compared == 3
        assert s.median_error == 1.0
        assert s.max_error == 1.5
        assert s.max_core_error == pytest.approx(1.0)

    def test_summary_on_all_zero(self):
        s = summarize_errors([0, 0], [0, 0])
        assert s.n_compared == 0
        assert s.mean_error == 1.0
        assert s.max_core_error == 1.0


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(("name", "value"), [("a", 1.23456), ("bb", 7)],
                           title="demo")
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "1.235" in out
        assert all(len(line) <= 40 for line in lines)

    def test_format_table_huge_and_tiny_floats(self):
        out = format_table(("x",), [(123456.0,), (0.00001,)])
        assert "e+" in out and "e-" in out

    def test_format_slowdowns_marks_timeouts(self):
        out = format_slowdowns(["fast", "slow", "dead"],
                               [0.5, 1.0, float("inf")])
        assert "1.00x" in out and "2.00x" in out
        assert "OOM/timeout" in out
        assert "fastest: 0.5" in out

    def test_format_series(self):
        out = format_series("threads", [1, 2], {"dblp": [1.0, 1.9]})
        assert "threads" in out and "dblp" in out

    def test_banner(self):
        assert "Figure 6" in banner("Figure 6")
