"""One command to regenerate every paper table and figure.

Runs all benchmark harnesses at the current ``REPRO_BENCH_SCALE`` and
writes their reports into ``results/`` -- the artifact set EXPERIMENTS.md
is written against.

Run:  python examples/reproduce_paper.py [output_dir]

Environment knobs (see benchmarks/bench_common.py):
  REPRO_BENCH_SCALE    graph scale factor (default 1.0)
  REPRO_BENCH_BUDGET   per-configuration work budget (default 3e6)
"""

import importlib.util
import os
import sys
import time

HARNESSES = [
    ("table1_graphs", "Table 1"),
    ("fig6_exact_variants", "Figure 6"),
    ("fig7_best_times", "Figure 7"),
    ("fig8_scalability", "Figure 8"),
    ("fig9_comparison", "Figure 9"),
    ("fig10_density", "Figure 10"),
    ("sec81_link_counts", "Section 8.1"),
    ("sec83_approx", "Section 8.3"),
    ("ablation", "Ablations"),
    ("local_convergence", "Local model"),
]


def load_harness(name):
    root = os.path.join(os.path.dirname(__file__), "..", "benchmarks")
    sys.path.insert(0, root)
    path = os.path.join(root, f"bench_{name}.py")
    spec = importlib.util.spec_from_file_location(f"bench_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def main():
    out_dir = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        os.path.dirname(__file__), "..", "results")
    os.makedirs(out_dir, exist_ok=True)
    total_start = time.perf_counter()
    for name, label in HARNESSES:
        start = time.perf_counter()
        print(f"[{label}] running bench_{name} ...", flush=True)
        module = load_harness(name)
        report = module.build_report()
        path = os.path.join(out_dir, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"[{label}] wrote {path} "
              f"({time.perf_counter() - start:.1f}s)", flush=True)
    print(f"\nall reports regenerated in "
          f"{time.perf_counter() - total_start:.1f}s; see EXPERIMENTS.md "
          f"for the paper-vs-measured reading guide")


if __name__ == "__main__":
    main()
