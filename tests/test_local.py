"""Unit + property tests for the local update baseline (Sariyüce [51])."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.local import LocalResult, h_index, local_nucleus
from repro.core.nucleus import peel_exact, prepare
from repro.errors import ParameterError
from repro.graphs.generators import planted_nuclei, powerlaw_cluster
from repro.graphs.graph import Graph
from repro.parallel.counters import WorkSpanCounter


class TestHIndex:
    def test_known_values(self):
        assert h_index([]) == 0
        assert h_index([0, 0]) == 0
        assert h_index([1]) == 1
        assert h_index([5, 4, 3, 2, 1]) == 3
        assert h_index([10, 10, 10]) == 3
        assert h_index([1, 1, 1, 1]) == 1

    @given(st.lists(st.integers(0, 50), max_size=60))
    def test_definition(self, values):
        h = h_index([float(v) for v in values])
        assert sum(1 for v in values if v >= h) >= h
        assert sum(1 for v in values if v >= h + 1) < h + 1


class TestConvergence:
    @settings(deadline=None, max_examples=15)
    @given(pairs=st.sets(st.tuples(st.integers(0, 12), st.integers(0, 12)),
                         max_size=45),
           rs=st.sampled_from([(1, 2), (1, 3), (2, 3), (2, 4), (3, 4)]))
    def test_fixpoint_is_exact_coreness(self, pairs, rs):
        r, s = rs
        g = Graph(13, [(u, v) for u, v in pairs if u != v])
        prep = prepare(g, r, s)
        if prep.n_r == 0:
            return
        result = local_nucleus(prep.incidence)
        assert result.converged
        assert result.core == peel_exact(prep.incidence).core

    def test_estimates_decrease_monotonically_from_degrees(self):
        g = powerlaw_cluster(80, 4, 0.7, seed=2)
        prep = prepare(g, 2, 3)
        degrees = prep.incidence.initial_degrees()
        result = local_nucleus(prep.incidence)
        assert all(c <= d for c, d in zip(result.core, degrees))

    def test_rounds_usually_far_below_rho(self):
        g = planted_nuclei([8, 7, 6, 5], backbone_p=0.05, seed=3)
        prep = prepare(g, 2, 3)
        exact = peel_exact(prep.incidence)
        result = local_nucleus(prep.incidence)
        assert result.rounds < exact.rho

    def test_max_rounds_cap(self):
        g = planted_nuclei([6, 5], bridge=True)
        prep = prepare(g, 2, 3)
        capped = local_nucleus(prep.incidence, max_rounds=1)
        full = local_nucleus(prep.incidence)
        # a single round is an upper bound refinement, not the fixpoint
        assert all(a >= b for a, b in zip(capped.core, full.core))

    def test_invalid_max_rounds(self):
        prep = prepare(Graph.complete(4), 2, 3)
        with pytest.raises(ParameterError):
            local_nucleus(prep.incidence, max_rounds=-1)

    def test_zero_rounds_reports_not_converged(self):
        prep = prepare(Graph.complete(4), 2, 3)
        result = local_nucleus(prep.incidence, max_rounds=0)
        assert not result.converged or prep.n_r == 0

    def test_empty_graph(self):
        prep = prepare(Graph.empty(3), 1, 2)
        result = local_nucleus(prep.incidence)
        assert result.converged
        assert result.core == [0.0, 0.0, 0.0]

    def test_counter_charged_per_round(self):
        g = powerlaw_cluster(60, 3, 0.6, seed=5)
        prep = prepare(g, 2, 3)
        c = WorkSpanCounter()
        result = local_nucleus(prep.incidence, counter=c)
        assert c.work > 0
        # span is per-round, far below the peeling span for deep graphs
        assert c.span <= (result.rounds + 1) * 20
