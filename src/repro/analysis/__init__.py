"""Result analysis: nucleus density, approximation errors, reporting."""

from .compare import (LevelSimilarity, confusion_summary,
                      hierarchy_similarity, partition_agreement, rand_index)
from .density import (NucleusProfile, densest_nucleus, density_profile,
                      edge_density, nucleus_vertices)
from .errors import ErrorSummary, multiplicative_errors, summarize_errors
from .peeling import (PeelingProfile, profile_approx_peeling,
                      profile_exact_peeling, round_histogram)
from .reporting import banner, format_series, format_slowdowns, format_table

__all__ = [
    "LevelSimilarity", "confusion_summary", "hierarchy_similarity",
    "partition_agreement", "rand_index", "NucleusProfile", "densest_nucleus", "density_profile", "edge_density",
    "nucleus_vertices", "ErrorSummary", "multiplicative_errors",
    "summarize_errors", "PeelingProfile", "profile_approx_peeling",
    "profile_exact_peeling", "round_histogram", "banner", "format_series",
    "format_slowdowns",
    "format_table",
]
