"""The vectorized CSR peeling kernel: selection, errors, byte-identity."""

from array import array

import pytest

from conftest import RS_PAIRS, random_graphs
from repro.core.api import nucleus_decomposition
from repro.core.nucleus import KERNEL_NAMES, peel_exact, prepare
from repro.errors import ParameterError


def run(graph, r, s, strategy, **kwargs):
    prep = prepare(graph, r, s, strategy=strategy)
    return peel_exact(prep.incidence, **kwargs)


def signature(result):
    return (array("d", result.core).tobytes(), result.rho,
            result.work_span.work, result.work_span.span, result.stats)


class TestKernelSelection:
    def test_kernel_names_constant(self):
        assert KERNEL_NAMES == ("auto", "vectorized", "loop")

    def test_unknown_kernel_rejected(self, planted):
        with pytest.raises(ParameterError, match="kernel"):
            run(planted, 2, 3, "csr", kernel="simd")

    def test_vectorized_requires_csr(self, planted):
        with pytest.raises(ParameterError, match="vectorized"):
            run(planted, 2, 3, "materialized", kernel="vectorized")

    def test_vectorized_requires_julienne(self, planted):
        with pytest.raises(ParameterError, match="julienne"):
            run(planted, 2, 3, "csr", kernel="vectorized", bucketing="heap")

    def test_loop_kernel_allowed_on_csr(self, planted):
        baseline = run(planted, 2, 3, "materialized")
        assert signature(run(planted, 2, 3, "csr", kernel="loop")) == \
            signature(baseline)

    def test_heap_bucketing_falls_back_to_loop(self, planted):
        # auto + heap cannot vectorize; it must still produce the heap
        # path's results rather than erroring.
        baseline = run(planted, 2, 3, "materialized", bucketing="heap")
        got = run(planted, 2, 3, "csr", bucketing="heap")
        assert array("d", got.core).tobytes() == \
            array("d", baseline.core).tobytes()


class TestByteIdentity:
    """The headline contract: every kernel produces the same bytes."""

    @pytest.mark.parametrize("r,s", RS_PAIRS)
    def test_corpus_all_rs(self, paper_like_graph, planted, r, s):
        for graph in (paper_like_graph, planted,
                      *random_graphs(count=2, n=24)):
            baseline = signature(run(graph, r, s, "materialized"))
            for kernel in ("auto", "vectorized", "loop"):
                assert signature(run(graph, r, s, "csr", kernel=kernel)) == \
                    baseline, (graph.name, r, s, kernel)

    def test_core_out_filled_in_place(self, planted):
        prep = prepare(planted, 2, 3, strategy="csr")
        core_out = [7.0] * prep.n_r
        result = peel_exact(prep.incidence, core_out=core_out)
        assert result.core is core_out
        assert core_out == run(planted, 2, 3, "materialized").core

    def test_core_out_length_checked(self, planted):
        prep = prepare(planted, 2, 3, strategy="csr")
        with pytest.raises(ParameterError, match="core_out"):
            peel_exact(prep.incidence, core_out=[0.0])

    def test_link_sequence_observes_final_cores(self, paper_like_graph):
        """The link callback sees pairs whose earlier side's core number
        is final, and the vectorized kernel reports the same multiset of
        unordered pairs. (Pair *orientation* within one peeling round may
        differ -- within-bucket processing order is not pinned; see
        tests/test_link_order_independence.py.)"""
        def collect(graph, strategy):
            prep = prepare(graph, 2, 3, strategy=strategy)
            pairs = []
            core_live = [0.0] * prep.n_r
            result = peel_exact(prep.incidence, core_out=core_live,
                                link=lambda a, b: pairs.append((a, b)))
            for early, late in pairs:
                assert result.core[early] <= result.core[late]
            return (sorted(tuple(sorted(p)) for p in pairs),
                    result.stats["link_calls"])

        scalar_pairs, scalar_calls = collect(paper_like_graph, "materialized")
        csr_pairs, csr_calls = collect(paper_like_graph, "csr")
        assert csr_pairs == scalar_pairs
        assert csr_calls == scalar_calls

    @pytest.mark.parametrize("method", ("anh-el", "anh-bl", "anh-te",
                                        "naive"))
    def test_hierarchy_methods_kernel_invariant(self, paper_like_graph,
                                                method):
        def chain(kernel):
            res = nucleus_decomposition(paper_like_graph, 2, 3,
                                        method=method, strategy="csr",
                                        kernel=kernel)
            return {level: sorted(sorted(g) for g in groups)
                    for level, groups in res.tree.partition_chain().items()}

        assert chain("auto") == chain("loop")

    def test_api_kernel_parameter(self, planted):
        base = nucleus_decomposition(planted, 2, 3)
        vec = nucleus_decomposition(planted, 2, 3, strategy="csr",
                                    kernel="vectorized")
        assert list(vec.core) == list(base.core)
        assert vec.rho == base.rho
