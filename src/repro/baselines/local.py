"""Local update model for nucleus coreness (Sariyüce et al. [51]).

The paper cites two prior parallel approaches to nucleus decomposition:
global peeling (which ``ARB-NUCLEUS`` descends from) and Sariyüce,
Seshadhri, and Pinar's *local* algorithm, which never peels: every
r-clique repeatedly recomputes an upper bound on its own core number from
its neighbors' current bounds, and the system converges to the exact core
numbers from above.

The update operator generalizes the h-index iteration for k-core
(Lü et al.): with current estimates ``lambda``, one round sets

    lambda'(R) = H( { min over other members R' in S of lambda(R')
                      : s-cliques S containing R } )

where ``H`` is the h-index (the largest ``h`` such that at least ``h``
of the values are ``>= h``). Starting from ``lambda_0(R) =`` R's
s-clique degree, the sequence is monotonically non-increasing and its
fixpoint is exactly the (r, s)-clique core number (the value function of
the peeling process satisfies the same recurrence, and induction on
rounds keeps the iterates above it).

Each round is embarrassingly parallel (no peeling order), which is the
model's selling point; the price is a data-dependent number of rounds to
convergence -- reported by the result so the tradeoff is visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import ParameterError
from ..parallel.counters import NullCounter, WorkSpanCounter, log2_ceil


def h_index(values: List[float]) -> int:
    """The largest ``h`` with at least ``h`` values ``>= h``."""
    ordered = sorted(values, reverse=True)
    h = 0
    for i, v in enumerate(ordered, start=1):
        if v >= i:
            h = i
        else:
            break
    return h


@dataclass
class LocalResult:
    """Outcome of the local update iteration."""

    core: List[float]
    rounds: int
    converged: bool
    total_updates: int


def local_nucleus(incidence, counter: Optional[WorkSpanCounter] = None,
                  max_rounds: Optional[int] = None) -> LocalResult:
    """Iterate the local h-index operator to the coreness fixpoint.

    ``max_rounds`` bounds the iteration (default: ``n_r + 1``, always
    sufficient since at least one estimate strictly drops per round until
    convergence); ``converged`` reports whether the fixpoint was reached.
    """
    counter = counter if counter is not None else NullCounter()
    n_r = incidence.n_r
    if max_rounds is None:
        max_rounds = n_r + 1
    if max_rounds < 0:
        raise ParameterError(f"max_rounds must be >= 0, got {max_rounds}")
    estimates = [float(d) for d in incidence.initial_degrees()]
    rounds = 0
    total_updates = 0
    converged = n_r == 0
    n_log = log2_ceil(max(n_r, 1))
    for _ in range(max_rounds):
        rounds += 1
        changed = 0
        round_work = 0
        # Jacobi-style round: all updates read the previous estimates.
        new_estimates = list(estimates)
        for rid in range(n_r):
            supports: List[float] = []
            for members in incidence.s_cliques_containing(rid):
                round_work += len(members)
                supports.append(min(estimates[other] for other in members
                                    if other != rid))
            value = float(h_index(supports))
            if value < estimates[rid]:
                new_estimates[rid] = value
                changed += 1
        estimates = new_estimates
        total_updates += changed
        counter.add_parallel(round_work + n_r, 1 + n_log)
        if changed == 0:
            converged = True
            rounds -= 1  # the last round was a no-op verification pass
            break
    return LocalResult(core=estimates, rounds=rounds, converged=converged,
                       total_updates=total_updates)
