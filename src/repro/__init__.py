"""repro: parallel algorithms for hierarchical nucleus decomposition.

A complete, tested Python reproduction of Shi, Dhulipala, and Shun,
"Parallel Algorithms for Hierarchical Nucleus Decomposition" (SIGMOD 2024):
exact and approximate (r, s) nucleus decomposition with full hierarchy
construction, the paper's three hierarchy algorithms (ANH-TE, ANH-EL,
ANH-BL), its baselines (NH, PHCD), and a work-span-instrumented simulated
parallel runtime standing in for shared-memory threads (see DESIGN.md).

Quickstart::

    from repro import nucleus_decomposition, powerlaw_cluster

    graph = powerlaw_cluster(500, 4, 0.7, seed=1)
    result = nucleus_decomposition(graph, r=2, s=3)   # k-truss hierarchy
    print(result.summary())
    for nucleus in result.nuclei_at(3):               # all 3-(2,3) nuclei
        print(nucleus)
"""

from .core import (Community, CorenessResult, HierarchyQueryIndex,
                   HierarchyTree, NucleusDecomposition, approx_arb_nucleus,
                   approximation_bound, arb_nucleus, choose_method,
                   decompose_to_artifact, hierarchy_statistics,
                   k_clique_densest, k_clique_densest_parallel, k_core,
                   k_truss, nucleus_decomposition)
from .export import (decomposition_from_dict, decomposition_from_json,
                     decomposition_to_dict, decomposition_to_json,
                     load_coreness, nuclei_to_rows, tree_to_dot)
from .errors import (ArtifactError, DataStructureError, GraphFormatError,
                     HierarchyError, ParameterError, ReproError,
                     ServiceError)
from .graphs import (Graph, barabasi_albert, erdos_renyi, load_dataset,
                     planted_nuclei, powerlaw_cluster, read_edge_list,
                     watts_strogatz, write_edge_list)
from .parallel import MachineModel, WorkSpanCounter

__version__ = "1.1.0"

from .store import DecompositionArtifact, load_artifact, write_artifact
from .service import DecompositionService

__all__ = [
    "Community", "HierarchyQueryIndex", "hierarchy_statistics",
    "decomposition_from_dict", "decomposition_from_json",
    "decomposition_to_dict", "decomposition_to_json", "load_coreness", "nuclei_to_rows",
    "k_clique_densest", "k_clique_densest_parallel",
    "tree_to_dot", "CorenessResult", "HierarchyTree", "NucleusDecomposition",
    "approx_arb_nucleus", "approximation_bound", "arb_nucleus",
    "choose_method", "decompose_to_artifact", "k_core", "k_truss",
    "nucleus_decomposition",
    "ArtifactError", "DataStructureError", "GraphFormatError",
    "HierarchyError", "ParameterError", "ReproError", "ServiceError",
    "Graph", "barabasi_albert",
    "erdos_renyi", "load_dataset", "planted_nuclei", "powerlaw_cluster",
    "read_edge_list", "watts_strogatz", "write_edge_list", "MachineModel",
    "WorkSpanCounter",
    "DecompositionArtifact", "load_artifact", "write_artifact",
    "DecompositionService", "__version__",
]
