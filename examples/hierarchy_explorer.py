"""Interactive-style exploration: queries, statistics, and export.

Shows the query layer a downstream analyst uses once a hierarchy exists:

* community search: "which community holds these two users?"
* strongest community per user, and the full membership chain
* top-k densest / deepest communities
* exporting the result to JSON (for storage) and Graphviz DOT (to draw
  the paper's Figure-1-style picture with ``dot -Tpng``)
* the same workflow from the shell via ``python -m repro``

Run:  python examples/hierarchy_explorer.py
"""

import os
import tempfile

from repro import (HierarchyQueryIndex, hierarchy_statistics,
                   nucleus_decomposition)
from repro.export import decomposition_to_json, load_coreness, tree_to_dot
from repro.graphs.generators import powerlaw_cluster, with_planted_communities


def main():
    base = powerlaw_cluster(500, 3, 0.45, seed=77)
    graph = with_planted_communities(base, sizes=[20, 15, 12], p_in=0.7,
                                     seed=78, name="explorer-demo")
    result = nucleus_decomposition(graph, 2, 3)
    print(result.summary())
    stats = hierarchy_statistics(result.tree)
    print(f"tree: {stats.n_nuclei} nuclei, {stats.n_levels} levels, "
          f"height {stats.height}, mean branching {stats.mean_branching:.1f}\n")

    index = HierarchyQueryIndex(result)

    # Top communities by density and by depth.
    print("top 3 densest communities (>= 6 vertices):")
    for c in index.top_k_densest(3, min_vertices=6):
        print(f"  level {c.level:g}: {len(c)} vertices, "
              f"density {c.density:.2f}")
    deepest = index.top_k_deepest(1)[0]
    print(f"\ndeepest community: level {deepest.level:g} with "
          f"{len(deepest)} vertices")

    # Community search between two members of the deepest community.
    u, v = deepest.vertices[0], deepest.vertices[-1]
    found = index.community([u, v])
    print(f"community search ({u}, {v}): "
          f"{len(found)} vertices at level {found.level:g}")

    # A vertex's membership chain: its communities, tightest first.
    chain = index.membership(u)
    print(f"\nvertex {u} belongs to {len(chain)} nested communities:")
    for c in chain[:5]:
        print(f"  level {c.level:g}: {len(c)} vertices "
              f"(density {c.density:.2f})")

    # Persist and reload.
    with tempfile.TemporaryDirectory() as tmp:
        json_path = os.path.join(tmp, "result.json")
        dot_path = os.path.join(tmp, "tree.dot")
        decomposition_to_json(result, target=json_path)
        with open(dot_path, "w", encoding="utf-8") as handle:
            handle.write(tree_to_dot(result, include_leaves=False))
        reloaded = load_coreness(json_path)
        assert reloaded == result.coreness_by_clique()
        print(f"\nexported JSON ({os.path.getsize(json_path)} bytes) and "
              f"DOT ({os.path.getsize(dot_path)} bytes); "
              f"coreness round-trips exactly")

    print("\nsame workflow from the shell:")
    print("  python -m repro decompose mygraph.txt --r 2 --s 3")
    print("  python -m repro nuclei mygraph.txt --level 3")
    print("  python -m repro export mygraph.txt --format dot -o tree.dot")


if __name__ == "__main__":
    main()
