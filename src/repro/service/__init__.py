"""Concurrent query serving over persistent decomposition artifacts.

The serving half of the compute-once / query-many workflow that the
hierarchy exists for (paper Section 1, Figure 10):

* :class:`~repro.service.core.DecompositionService` -- the in-process
  engine: an LRU artifact cache with a byte budget, five query
  endpoints, batch execution, and per-endpoint latency / hit-rate
  counters built on :mod:`repro.parallel.counters`.
* :mod:`repro.service.http` -- a dependency-free ``ThreadingHTTPServer``
  front end plus the matching client helpers.

Quickstart::

    from repro.service import DecompositionService

    svc = DecompositionService({"dblp": "dblp-2-3.nda"})
    svc.query("community", {"vertices": [0, 5]})
    svc.batch([{"op": "membership", "vertex": v} for v in range(100)])
    svc.stats()                        # latencies, hit rates, volumes

Or from the shell: ``repro serve --artifact dblp-2-3.nda`` and
``repro query --url http://127.0.0.1:8351 --op community --vertices 0,5``.
"""

from .core import (DEFAULT_CACHE_BYTES, ENDPOINTS, ArtifactCache,
                   DecompositionService, community_to_dict)
from .http import (ServiceHTTPServer, http_batch, http_query, make_server,
                   serve_background)

__all__ = [
    "DecompositionService", "ArtifactCache", "community_to_dict",
    "DEFAULT_CACHE_BYTES", "ENDPOINTS", "ServiceHTTPServer", "make_server",
    "serve_background", "http_query", "http_batch",
]
