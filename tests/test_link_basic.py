"""Unit tests for LINK-BASIC (Algorithm 4)."""

import pytest

from repro.core.link_basic import LinkBasic, integer_levels
from repro.errors import ParameterError


class TestLevels:
    def test_integer_levels_from_integral_cores(self):
        assert integer_levels([3.0, 1.0, 0.0]) == [1.0, 2.0, 3.0]

    def test_integer_levels_rejects_floats(self):
        assert integer_levels([1.5, 2.0]) is None

    def test_float_cores_get_distinct_levels(self):
        lb = LinkBasic([1.5, 2.5, 0.0])
        assert lb.levels == [1.5, 2.5]

    def test_nonpositive_level_rejected(self):
        with pytest.raises(ParameterError):
            LinkBasic([1.0], levels=[0.0, 1.0])


class TestLinking:
    def test_unites_in_every_level_up_to_min(self):
        lb = LinkBasic([3.0, 5.0])
        lb.link(0, 1)
        # united in levels 1..3, separate in 4..5
        for lv in (1.0, 2.0, 3.0):
            assert lb.ufs[lv].same_set(0, 1)
        for lv in (4.0, 5.0):
            assert not lb.ufs[lv].same_set(0, 1)

    def test_unite_count_is_min_core_per_pair(self):
        lb = LinkBasic([3.0, 5.0])
        lb.link(0, 1)
        assert lb.unite_calls == 3
        lb.link(0, 1)
        assert lb.unite_calls == 6  # redundant repeats, by design

    def test_memory_units_scale_with_k(self):
        small = LinkBasic([2.0, 2.0])
        large = LinkBasic([20.0, 20.0])
        assert large.memory_units() > small.memory_units()
        assert large.memory_units() == 20 * 2


class TestConstructTree:
    def test_matches_expected_partitions(self):
        # cores: 0,1 at 2 (connected); 2 at 1 connected below them
        lb = LinkBasic([2.0, 2.0, 1.0])
        lb.link(0, 1)
        lb.link(2, 0)
        tree = lb.construct_tree()
        assert tree.nuclei_at(2) == [[0, 1]]
        assert tree.nuclei_at(1) == [[0, 1, 2]]

    def test_empty_levels_produce_no_nodes(self):
        lb = LinkBasic([0.0, 0.0])
        tree = lb.construct_tree()
        assert tree.n_internal == 0

    def test_stats_shape(self):
        lb = LinkBasic([1.0, 1.0])
        lb.link(0, 1)
        stats = lb.stats()
        assert {"link_calls", "unite_calls", "effective_unites",
                "memory_units"} <= set(stats)
