"""Graph substrate: structure, orientation, connectivity, generators, IO."""

from .connectivity import (bfs_components, components_as_dict,
                           connected_components, connected_components_edges,
                           n_components, same_partition)
from .datasets import (DatasetSpec, dataset_names, dataset_spec, load_dataset,
                       table1_rows)
from .generators import (barabasi_albert, erdos_renyi, planted_nuclei,
                         powerlaw_cluster, random_bipartite_like, ring_lattice,
                         rmat, tree_graph, watts_strogatz)
from .graph import Edge, Graph, overlay, union_disjoint
from .io import graph_from_string, read_edge_list, write_edge_list
from .stats import (GraphProfile, average_local_clustering,
                    degree_histogram, degree_skew, degree_summary,
                    global_clustering, profile_graph)
from .orientation import (Orientation, arb_orient, arboricity_upper_bound,
                          degeneracy_order, parallel_orientation_order)

__all__ = [
    "bfs_components", "components_as_dict", "connected_components",
    "connected_components_edges", "n_components", "same_partition",
    "DatasetSpec", "dataset_names", "dataset_spec", "load_dataset",
    "table1_rows", "barabasi_albert", "erdos_renyi", "planted_nuclei",
    "powerlaw_cluster", "random_bipartite_like", "ring_lattice", "rmat",
    "tree_graph", "watts_strogatz", "Edge", "Graph", "overlay",
    "union_disjoint", "graph_from_string", "read_edge_list",
    "write_edge_list", "GraphProfile", "average_local_clustering",
    "degree_histogram", "degree_skew", "degree_summary",
    "global_clustering", "profile_graph", "Orientation", "arb_orient",
    "arboricity_upper_bound", "degeneracy_order",
    "parallel_orientation_order",
]
