"""Unit + property tests for k-clique enumeration (REC-LIST-CLIQUES)."""

from math import comb

import pytest
from hypothesis import given, settings, strategies as st

from repro.cliques.enumeration import (clique_degeneracy_guard,
                                       cliques_containing, count_cliques,
                                       enumerate_cliques, list_cliques,
                                       triangle_count)
from repro.errors import ParameterError
from repro.graphs.generators import erdos_renyi, random_bipartite_like
from repro.graphs.graph import Graph
from repro.graphs.orientation import arb_orient
from repro.parallel.counters import WorkSpanCounter


def brute_force_cliques(g, k):
    from itertools import combinations
    return sorted(tuple(c) for c in combinations(range(g.n), k)
                  if g.is_clique(c))


class TestCompleteGraphs:
    @pytest.mark.parametrize("n", [1, 3, 6])
    def test_counts_are_binomials(self, n):
        o = arb_orient(Graph.complete(n))
        for k in range(1, n + 1):
            assert count_cliques(o, k) == comb(n, k)

    def test_beyond_max_clique_is_zero(self):
        o = arb_orient(Graph.complete(4))
        assert count_cliques(o, 5) == 0


class TestBasics:
    def test_one_cliques_are_vertices(self):
        o = arb_orient(Graph(3, [(0, 1)]))
        assert list_cliques(o, 1) == [(0,), (1,), (2,)]

    def test_two_cliques_are_edges(self):
        g = Graph(4, [(0, 1), (2, 3), (1, 2)])
        o = arb_orient(g)
        assert list_cliques(o, 2) == sorted(g.edges())

    def test_invalid_k(self):
        o = arb_orient(Graph.empty(2))
        with pytest.raises(ParameterError):
            list(enumerate_cliques(o, 0))

    def test_canonical_sorted_tuples(self):
        o = arb_orient(Graph.complete(4))
        for clique in enumerate_cliques(o, 3):
            assert list(clique) == sorted(clique)

    def test_counter_charged(self):
        c = WorkSpanCounter()
        count_cliques(arb_orient(erdos_renyi(30, 0.3, seed=1)), 3, c)
        assert c.work > 0

    def test_bipartite_has_no_triangles(self):
        g = random_bipartite_like(10, 10, 0.5, seed=2)
        assert count_cliques(arb_orient(g), 3) == 0
        assert triangle_count(g) == 0


@settings(deadline=None)
@given(st.sets(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=30),
       st.integers(2, 5))
def test_matches_brute_force(pairs, k):
    g = Graph(10, [(u, v) for u, v in pairs if u != v])
    o = arb_orient(g)
    assert list_cliques(o, k) == brute_force_cliques(g, k)


def test_matches_networkx_triangles_on_random_graph():
    import networkx as nx
    g = erdos_renyi(80, 0.15, seed=6)
    nxg = nx.Graph(list(g.edges()))
    expected = sum(nx.triangles(nxg).values()) // 3
    assert count_cliques(arb_orient(g), 3) == expected
    assert triangle_count(g) == expected


class TestCliquesContaining:
    def test_extension_of_edge_to_triangles(self):
        g = Graph.complete(4)
        out = sorted(cliques_containing(g, (0, 1), 1))
        assert out == [(0, 1, 2), (0, 1, 3)]

    def test_zero_extension_returns_base(self):
        g = Graph.complete(3)
        assert list(cliques_containing(g, (0, 2), 0)) == [(0, 2)]

    def test_no_common_neighbors(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert list(cliques_containing(g, (0, 1), 1)) == []

    def test_invalid_arguments(self):
        g = Graph.complete(3)
        with pytest.raises(ParameterError):
            list(cliques_containing(g, (0,), -1))
        with pytest.raises(ParameterError):
            list(cliques_containing(g, (), 1))

    @settings(deadline=None)
    @given(st.sets(st.tuples(st.integers(0, 8), st.integers(0, 8)),
                   max_size=25))
    def test_extension_agrees_with_enumeration(self, pairs):
        g = Graph(9, [(u, v) for u, v in pairs if u != v])
        o = arb_orient(g)
        all_triangles = set(enumerate_cliques(o, 3))
        for edge in g.edges():
            got = set(cliques_containing(g, edge, 1))
            expected = {t for t in all_triangles
                        if edge[0] in t and edge[1] in t}
            assert got == expected


class TestGuard:
    def test_guard_allows_small(self):
        clique_degeneracy_guard(arb_orient(Graph.complete(6)), 4)

    def test_guard_blocks_excessive(self):
        o = arb_orient(Graph.complete(30))
        with pytest.raises(ParameterError):
            clique_degeneracy_guard(o, 15, limit=1000)
