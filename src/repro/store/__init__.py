"""Persistent decomposition artifacts: compute once, serve forever.

The ``.nda`` format stores one :class:`~repro.core.decomposition.
NucleusDecomposition` -- coreness, clique tuples, the hierarchy tree, and
the precomputed query-index arrays -- as flat, 64-byte-aligned numpy
columns behind a checksummed header. Writing is atomic; loading is a
single ``mmap`` so artifacts of any size open in milliseconds and share
pages across processes.

    from repro import nucleus_decomposition
    from repro.store import write_artifact, load_artifact

    result = nucleus_decomposition(graph, 2, 3)
    write_artifact(result, "results/graph-2-3.nda")
    art = load_artifact("results/graph-2-3.nda")     # zero-copy, instant
    art.community([0, 5])                    # same answers as the
    art.top_k_densest(10)                    # in-memory query index

See :mod:`repro.store.format` for the layout and
:mod:`repro.service` for the concurrent query front end.
"""

from .artifact import DecompositionArtifact, load_artifact
from .format import (EXTENSION, FORMAT_VERSION, MAGIC, SUPPORTED_VERSIONS,
                     read_header, write_artifact)

__all__ = [
    "DecompositionArtifact", "load_artifact", "write_artifact",
    "read_header", "EXTENSION", "FORMAT_VERSION", "MAGIC",
    "SUPPORTED_VERSIONS",
]
