"""Figure 7: best hierarchy construction time per (r, s), r < s <= 7.

For every stand-in graph and every (r, s) with ``r < s <= 7``, runs the
method the paper's selection rule picks (the fastest of ANH-TE/ANH-EL in
practice -- Section 8.1) and reports each configuration's slowdown over
the per-graph fastest, exactly like Figure 7's bars. Configurations whose
estimated work exceeds the budget are reported as OOM/timeout, mirroring
the paper's omitted bars (its friendster and large-(r,s) cases).
"""

from __future__ import annotations

from typing import Dict

from repro import nucleus_decomposition
from repro.analysis.reporting import banner, format_table
from repro.core.api import choose_method

from bench_common import (SKIPPED, bench_graph, guarded, kernel_graph,
                          rs_grid)

GRAPHS = ("amazon", "dblp", "youtube", "skitter", "livejournal", "orkut",
          "friendster")


def run_grid(graph_names=GRAPHS, max_s: int = 7):
    rows = []
    for name in graph_names:
        graph = bench_graph(name)
        for r, s in rs_grid(max_s):
            run = guarded(graph, r, s,
                          lambda: nucleus_decomposition(graph, r, s))
            rows.append((name, r, s, run.seconds))
    return rows


def build_report(rows=None) -> str:
    if rows is None:
        rows = run_grid()
    by_graph: Dict[str, float] = {}
    for name, r, s, seconds in rows:
        if seconds != SKIPPED:
            by_graph[name] = min(by_graph.get(name, float("inf")), seconds)
    out_rows = []
    for name, r, s, seconds in rows:
        if seconds == SKIPPED:
            out_rows.append((name, f"({r},{s})", "OOM/timeout", "",
                             choose_method(r, s)))
        else:
            fastest = by_graph[name]
            out_rows.append((name, f"({r},{s})", f"{seconds:.4f}s",
                             f"{seconds / fastest:.2f}x",
                             choose_method(r, s)))
    table = format_table(
        ("graph", "(r,s)", "time", "slowdown vs graph-best", "method"),
        out_rows,
        title="Figure 7: hierarchy time per (r,s) configuration, r < s <= 7")
    fastest_lines = "\n".join(
        f"  {name}: fastest {seconds:.4f}s"
        for name, seconds in sorted(by_graph.items()))
    return banner("Figure 7") + "\n" + table + "\n" + fastest_lines


def test_fig7_report():
    rows = run_grid(graph_names=("amazon", "dblp"), max_s=5)
    print(build_report(rows))
    finished = [row for row in rows if row[3] != SKIPPED]
    assert finished, "budget guard skipped everything"
    # Larger (r, s) generally cost more -- check the trend on dblp where
    # the clique counts grow with s (amazon's shrink, like the paper notes).
    dblp = {(r, s): t for name, r, s, t in finished if name == "dblp"}
    if (2, 3) in dblp and (2, 4) in dblp:
        assert dblp[(2, 4)] > dblp[(2, 3)] * 0.3  # same order or larger


def test_benchmark_auto_method_kernel(benchmark):
    graph = kernel_graph("dblp")
    benchmark(lambda: nucleus_decomposition(graph, 2, 4))


if __name__ == "__main__":
    print(build_report())
