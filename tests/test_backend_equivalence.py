"""Differential tests: ``ProcessBackend`` is indistinguishable from serial.

The execution backend only parallelizes read-only *gathering* (clique
listing, s-clique degrees, bucket membership scans); every mutation is
applied serially in the parent in the same deterministic order. These
tests pin that contract end to end: byte-identical coreness arrays,
identical partition chains (hierarchy isomorphism witness), identical
work/span meters, across the seeded corpus and all ``(r, s)`` pairs with
``s <= 5`` -- regardless of worker count, chunk size, or degradation.
"""

from __future__ import annotations

import io
from array import array

import pytest

from conftest import RS_PAIRS, random_graphs
from repro.cli import main as cli_main
from repro.cliques.enumeration import enumerate_cliques, enumerate_cliques_via
from repro.cliques.incidence import build_incidence
from repro.core.api import EXACT_METHODS, nucleus_decomposition
from repro.graphs.orientation import arb_orient
from repro.parallel.backend import ProcessBackend, SerialBackend
from repro.parallel.counters import WorkSpanCounter

#: Hierarchy methods that accept a backend (the theoretical TE variant and
#: the nh baseline are deliberately serial-only).
BACKEND_METHODS = tuple(m for m in EXACT_METHODS
                        if m not in ("anh-te-theory", "nh"))


def coreness_bytes(result) -> bytes:
    """The coreness array as raw bytes -- equality here is byte-identity."""
    return array("d", result.core).tobytes()


def chain_of(result):
    """Canonical partition chain: level -> sorted list of sorted groups.

    Two hierarchy trees with equal chains induce the same nested nucleus
    partitions at every level, i.e. they are isomorphic as laminar
    families.
    """
    return {level: sorted(sorted(group) for group in groups)
            for level, groups in result.tree.partition_chain().items()}


def fingerprint(result):
    snap = result.work_span
    return (result.n_r, result.n_s, result.rho, result.max_core,
            coreness_bytes(result), snap.work, snap.span,
            chain_of(result) if result.tree is not None else None)


@pytest.fixture(scope="module")
def pool():
    """One shared 2-worker pool for the whole module.

    Passed into the API as an instance so ``nucleus_decomposition`` does
    not close it between calls (``owns_backend`` is False).
    """
    with ProcessBackend(workers=2) as backend:
        yield backend


@pytest.fixture(scope="module")
def corpus(paper_like_graph, planted, social_graph):
    """(graph, restrict_to_cheap_rs) pairs: the seeded generator corpus."""
    graphs = [(paper_like_graph, False), (planted, False)]
    graphs += [(g, False) for g in random_graphs(count=2, n=24)]
    # the 120-vertex social graph is clique-rich; keep it to one (r, s)
    graphs += [(social_graph, True)]
    return graphs


class TestFullDecompositionEquivalence:
    """The headline differential property, over the corpus x RS_PAIRS."""

    @pytest.mark.parametrize("r,s", RS_PAIRS)
    def test_corpus_all_rs(self, corpus, pool, r, s):
        assert s <= 5
        for graph, cheap_only in corpus:
            if cheap_only and (r, s) != (2, 3):
                continue
            serial = nucleus_decomposition(graph, r, s)
            parallel = nucleus_decomposition(graph, r, s, backend=pool)
            assert coreness_bytes(parallel) == coreness_bytes(serial), \
                (graph.name, r, s)
            assert chain_of(parallel) == chain_of(serial), (graph.name, r, s)
            assert fingerprint(parallel) == fingerprint(serial), \
                (graph.name, r, s)

    @pytest.mark.parametrize("method", BACKEND_METHODS)
    def test_every_hierarchy_method(self, paper_like_graph, pool, method):
        serial = nucleus_decomposition(paper_like_graph, 2, 3, method=method)
        parallel = nucleus_decomposition(paper_like_graph, 2, 3,
                                         method=method, backend=pool)
        assert fingerprint(parallel) == fingerprint(serial)

    def test_reenum_strategy(self, planted, pool):
        serial = nucleus_decomposition(planted, 2, 3, strategy="reenum")
        parallel = nucleus_decomposition(planted, 2, 3, strategy="reenum",
                                         backend=pool)
        assert fingerprint(parallel) == fingerprint(serial)

    def test_csr_strategy(self, planted, pool):
        serial = nucleus_decomposition(planted, 2, 3, strategy="csr")
        parallel = nucleus_decomposition(planted, 2, 3, strategy="csr",
                                         backend=pool)
        assert fingerprint(parallel) == fingerprint(serial)
        assert fingerprint(serial) == \
            fingerprint(nucleus_decomposition(planted, 2, 3))

    def test_csr_loop_kernel_broadcasts_incidence(self, planted, pool):
        """kernel='loop' on a CSR incidence drives the generic peel path,
        which broadcasts the incidence to the pool -- the end-to-end
        exercise of the shared-memory shipping."""
        serial = nucleus_decomposition(planted, 2, 3, strategy="csr",
                                       kernel="loop")
        parallel = nucleus_decomposition(planted, 2, 3, strategy="csr",
                                         kernel="loop", backend=pool)
        assert fingerprint(parallel) == fingerprint(serial)

    def test_coreness_only(self, planted, pool):
        serial = nucleus_decomposition(planted, 2, 4, hierarchy=False)
        parallel = nucleus_decomposition(planted, 2, 4, hierarchy=False,
                                         backend=pool)
        assert coreness_bytes(parallel) == coreness_bytes(serial)
        assert parallel.tree is None and serial.tree is None

    def test_api_owned_backend_by_name(self, planted):
        serial = nucleus_decomposition(planted, 2, 3)
        parallel = nucleus_decomposition(planted, 2, 3, backend="process",
                                         workers=2)
        assert fingerprint(parallel) == fingerprint(serial)


class TestDeterminism:
    """Worker count and chunk size must never change a single byte."""

    def test_workers_and_chunk_sizes(self, planted):
        reference = fingerprint(nucleus_decomposition(planted, 2, 3))
        for workers in (2, 3):
            for chunk_size in (1, 7, 64):
                with ProcessBackend(workers=workers,
                                    chunk_size=chunk_size) as backend:
                    run = nucleus_decomposition(planted, 2, 3,
                                                backend=backend)
                assert fingerprint(run) == reference, (workers, chunk_size)

    def test_repeated_runs_on_one_pool(self, paper_like_graph, pool):
        runs = [fingerprint(nucleus_decomposition(paper_like_graph, 1, 3,
                                                  backend=pool))
                for _ in range(3)]
        assert runs[0] == runs[1] == runs[2]

    def test_degraded_pool_equivalence(self, planted):
        backend = ProcessBackend(workers=2, start_method="no-such-method")
        assert not backend.is_parallel()
        serial = nucleus_decomposition(planted, 2, 3)
        degraded = nucleus_decomposition(planted, 2, 3, backend=backend)
        assert fingerprint(degraded) == fingerprint(serial)


class TestSharedMemoryBroadcast:
    """Zero-copy CSR broadcast: on, off, and degraded all give one answer."""

    @staticmethod
    def _run(graph, backend):
        from repro.core.nucleus import peel_exact, prepare
        prep = prepare(graph, 2, 3, strategy="csr", backend=backend)
        # the loop kernel is what broadcasts the incidence to the pool
        result = peel_exact(prep.incidence, kernel="loop", backend=backend)
        return (coreness_bytes(result), result.rho, result.stats)

    def test_shm_on_off_identical(self, planted):
        serial = self._run(planted, None)
        with ProcessBackend(workers=2) as shm_on:
            with_shm = self._run(planted, shm_on)
            assert shm_on.shm_fallback_reason is None
            # 4 arrays for the CSR orientation (broadcast once for the
            # r-clique indexing and s-clique listing -- deduplicated by
            # object identity) + 4 for the CSR incidence the loop-kernel
            # peel broadcasts.
            assert shm_on.shm_segments() == 8
        assert shm_on.shm_segments() == 0  # released on close
        with ProcessBackend(workers=2, use_shared_memory=False) as shm_off:
            without_shm = self._run(planted, shm_off)
            assert shm_off.shm_segments() == 0
            assert shm_off.shm_fallback_reason == "disabled by configuration"
        assert with_shm == without_shm == serial

    def test_attach_failure_falls_back_to_pickle(self, planted,
                                                 monkeypatch):
        """A worker that cannot map segments forces a transparent retry
        with pickled contexts (fork inherits the patched attach)."""
        import repro.parallel.backend as backend_module

        def broken(descriptor):
            raise OSError("simulated /dev/shm failure")

        monkeypatch.setattr(backend_module, "_attach_shm", broken)
        serial = self._run(planted, None)
        with ProcessBackend(workers=2) as backend:
            degraded = self._run(planted, backend)
            assert backend.shm_fallback_reason is not None
            assert "attach" in backend.shm_fallback_reason
        assert degraded == serial

    def test_non_shareable_contexts_untouched(self, planted):
        """The loop kernel broadcasts (orientation, index) tuples, which
        lack the protocol: plain pickling, zero segments -- and still the
        same fingerprint as the default (array) kernel."""
        with ProcessBackend(workers=2) as backend:
            run = nucleus_decomposition(planted, 2, 3, backend=backend,
                                        kernel="loop")
            assert backend.shm_segments() == 0
        assert fingerprint(run) == \
            fingerprint(nucleus_decomposition(planted, 2, 3))

    def test_shm_reconstruction_roundtrip(self, planted):
        """__shm_export__/__shm_import__ rebuild an equivalent view."""
        from repro.cliques.csr import CSRIncidence
        from repro.cliques.incidence import build_incidence
        _, _, csr = build_incidence(planted, 2, 3, strategy="csr")
        meta, arrays = csr.__shm_export__()
        clone = CSRIncidence.__shm_import__(meta, arrays)
        assert clone.n_r == csr.n_r and clone.n_s == csr.n_s
        assert clone.initial_degrees() == csr.initial_degrees()
        for rid in range(csr.n_r):
            assert list(clone.s_cliques_containing(rid)) == \
                list(csr.s_cliques_containing(rid))


class TestStageEquivalence:
    """Each parallelized stage on its own, meters included."""

    @pytest.mark.parametrize("k", (1, 2, 3, 4))
    def test_clique_enumeration(self, pool, k):
        for graph in random_graphs(count=2, n=24):
            orientation = arb_orient(graph)
            serial_counter = WorkSpanCounter()
            expected = list(enumerate_cliques(orientation, k, serial_counter))
            pool_counter = WorkSpanCounter()
            got = enumerate_cliques_via(pool, orientation, k, pool_counter)
            assert got == expected
            assert (pool_counter.work, pool_counter.span) == \
                (serial_counter.work, serial_counter.span)

    @pytest.mark.parametrize("strategy", ("materialized", "reenum"))
    def test_incidence_construction(self, pool, strategy):
        graph = random_graphs(count=1, n=26)[0]
        for r, s in ((1, 2), (2, 3), (2, 4), (3, 4)):
            serial_counter = WorkSpanCounter()
            _, s_index, s_inc = build_incidence(graph, r, s,
                                                strategy=strategy,
                                                counter=serial_counter)
            pool_counter = WorkSpanCounter()
            _, p_index, p_inc = build_incidence(graph, r, s,
                                                strategy=strategy,
                                                counter=pool_counter,
                                                backend=pool)
            assert p_inc.n_r == s_inc.n_r and p_inc.n_s == s_inc.n_s
            assert p_inc.initial_degrees() == s_inc.initial_degrees(), (r, s)
            for rid in range(s_inc.n_r):
                assert p_index.clique_of(rid) == s_index.clique_of(rid)
                assert sorted(p_inc.s_cliques_containing(rid)) == \
                    sorted(s_inc.s_cliques_containing(rid)), (r, s, rid)
            assert (pool_counter.work, pool_counter.span) == \
                (serial_counter.work, serial_counter.span), (r, s)


class TestCliEquivalence:
    """`--backend process` is invisible in the CLI output."""

    @staticmethod
    def _run(argv):
        out = io.StringIO()
        code = cli_main(argv, out=out)
        lines = [line for line in out.getvalue().splitlines()
                 if not line.startswith("time:")]
        return code, lines

    def test_decompose_output_identical(self):
        base = ["decompose", "--dataset", "amazon", "--scale", "0.1",
                "--r", "2", "--s", "3"]
        serial_code, serial_lines = self._run(base + ["--backend", "serial"])
        process_code, process_lines = self._run(
            base + ["--backend", "process", "--workers", "2"])
        assert serial_code == process_code == 0
        assert process_lines == serial_lines
