"""Serialization of decomposition results.

Makes the library's outputs durable and toolable:

* :func:`decomposition_to_dict` / :func:`decomposition_to_json` -- a
  stable JSON document with the core numbers (keyed by r-clique vertex
  tuples), the hierarchy (parents / levels / leaf sets), and run
  statistics; :func:`decomposition_from_dict` rebuilds a full
  :class:`NucleusDecomposition` from the document (given the graph), and
  :func:`load_coreness` reads just the core-number table.
* :func:`tree_to_dot` -- Graphviz DOT for the hierarchy forest, the
  paper's Figure 1/3-style visualization (no dependencies; render with
  ``dot -Tpng``).
* :func:`nuclei_to_rows` -- flat (level, size, density, vertices) rows
  for spreadsheets.

For a compact, random-access binary artifact (rather than row-per-clique
JSON), see :mod:`repro.store`.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, TextIO, Tuple, Union

from .analysis.density import edge_density, nucleus_vertices
from .core.decomposition import NucleusDecomposition
from .core.tree import NO_PARENT
from .errors import ParameterError

PathOrFile = Union[str, os.PathLike, TextIO]

#: Schema version embedded in every JSON document.
SCHEMA_VERSION = 1


def decomposition_to_dict(result: NucleusDecomposition,
                          include_tree: bool = True) -> Dict:
    """A JSON-serializable document describing one decomposition."""
    doc: Dict = {
        "schema_version": SCHEMA_VERSION,
        "graph": {"name": result.graph.name, "n": result.graph.n,
                  "m": result.graph.m},
        "r": result.r,
        "s": result.s,
        "method": result.method,
        "approx_delta": result.approx_delta,
        "n_r_cliques": result.n_r,
        "n_s_cliques": result.n_s,
        "max_core": result.max_core,
        "peeling_rounds": result.rho,
        "coreness": [
            {"clique": list(result.index.clique_of(rid)),
             "core": result.core[rid]}
            for rid in range(result.n_r)
        ],
        "stats": dict(result.stats),
        "seconds_total": result.seconds_total,
    }
    if include_tree and result.tree is not None:
        tree = result.tree
        doc["hierarchy"] = {
            "n_leaves": tree.n_leaves,
            "parent": list(tree.parent),
            "level": list(tree.level),
            "nuclei": [
                {"node": node,
                 "level": tree.level[node],
                 "r_cliques": tree.leaves_under(node)}
                for node in range(tree.n_leaves, tree.n_nodes)
            ],
        }
    return doc


def decomposition_to_json(result: NucleusDecomposition,
                          target: Optional[PathOrFile] = None,
                          include_tree: bool = True, indent: int = 2) -> str:
    """Serialize to JSON; optionally also write to a path or file object."""
    text = json.dumps(decomposition_to_dict(result, include_tree),
                      indent=indent, sort_keys=True)
    if target is not None:
        if hasattr(target, "write"):
            target.write(text)  # type: ignore[union-attr]
        else:
            with open(target, "w", encoding="utf-8") as handle:
                handle.write(text)
    return text


def load_coreness(source: PathOrFile) -> Dict[Tuple[int, ...], float]:
    """Read the core-number table back from a JSON document."""
    if hasattr(source, "read"):
        doc = json.load(source)  # type: ignore[arg-type]
    else:
        with open(source, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ParameterError(
            f"unsupported schema version {version!r} "
            f"(expected {SCHEMA_VERSION})")
    return {tuple(entry["clique"]): float(entry["core"])
            for entry in doc["coreness"]}


def decomposition_from_dict(doc: Dict,
                            graph) -> NucleusDecomposition:
    """Rebuild a :class:`NucleusDecomposition` from its JSON document.

    The inverse of :func:`decomposition_to_dict`, closing the round-trip
    that :func:`load_coreness` only covered for core numbers. ``graph``
    must be the graph the document was produced from (the JSON records
    only its name and size); it is validated against the recorded ``n``
    and ``m``. Work--span meters are not serialized, so the rebuilt
    result carries zero meters; everything queryable -- coreness, clique
    index, hierarchy tree, stats -- is restored exactly.
    """
    from .cliques.index import CliqueIndex
    from .core.nucleus import CorenessResult
    from .core.tree import HierarchyTree
    from .parallel.counters import WorkSpanSnapshot

    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ParameterError(
            f"unsupported schema version {version!r} "
            f"(expected {SCHEMA_VERSION})")
    recorded = doc.get("graph", {})
    if (recorded.get("n") is not None and recorded["n"] != graph.n) or \
            (recorded.get("m") is not None and recorded["m"] != graph.m):
        raise ParameterError(
            f"graph mismatch: document records n={recorded.get('n')}, "
            f"m={recorded.get('m')} but the given graph has n={graph.n}, "
            f"m={graph.m}")
    r = int(doc["r"])
    cliques = [tuple(entry["clique"]) for entry in doc["coreness"]]
    index = CliqueIndex(cliques, r=r)
    core: List[float] = [0.0] * len(index)
    for entry in doc["coreness"]:
        core[index.id_of(entry["clique"])] = float(entry["core"])
    coreness = CorenessResult(
        core=core, rho=int(doc["peeling_rounds"]),
        k_max=float(doc["max_core"]), n_r=int(doc["n_r_cliques"]),
        n_s=int(doc["n_s_cliques"]), work_span=WorkSpanSnapshot(0, 0),
        stats=dict(doc.get("stats", {})))
    tree = None
    if "hierarchy" in doc:
        hier = doc["hierarchy"]
        n_leaves = int(hier["n_leaves"])
        parent = [int(p) for p in hier["parent"]]
        level = list(hier["level"])
        # ``rep`` (each internal node's representative leaf) is not part
        # of the document; any leaf under the node is a valid
        # representative, so take the smallest from the recorded nuclei.
        rep = list(range(len(parent)))
        for nucleus in hier.get("nuclei", []):
            if nucleus["r_cliques"]:
                rep[int(nucleus["node"])] = int(min(nucleus["r_cliques"]))
        tree = HierarchyTree(n_leaves, parent, level, rep)
    return NucleusDecomposition(
        graph=graph, r=r, s=int(doc["s"]), method=doc.get("method", ""),
        index=index, coreness=coreness, tree=tree,
        stats=dict(doc.get("stats", {})),
        seconds_total=float(doc.get("seconds_total", 0.0)),
        approx_delta=doc.get("approx_delta"))


def decomposition_from_json(source: PathOrFile, graph) -> NucleusDecomposition:
    """Read a JSON document (path or file object) back into a result."""
    if hasattr(source, "read"):
        doc = json.load(source)  # type: ignore[arg-type]
    else:
        with open(source, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    return decomposition_from_dict(doc, graph)


def _dot_quote(label: str) -> str:
    """A double-quoted DOT string with ``\\`` and ``"`` escaped.

    Without the escaping, a label containing ``"`` (e.g. from a custom
    ``leaf_labels`` map) terminates the quoted string early and produces
    invalid DOT.
    """
    return '"' + label.replace("\\", "\\\\").replace('"', '\\"') + '"'


def tree_to_dot(result: NucleusDecomposition, max_leaves: int = 200,
                include_leaves: bool = True,
                leaf_labels: Optional[Dict[int, str]] = None) -> str:
    """Graphviz DOT rendering of the hierarchy forest.

    Internal nodes are boxes labeled ``level / #vertices``; leaves are the
    r-clique vertex tuples (or ``leaf_labels[leaf_id]`` when a custom map
    is given -- labels are escaped, so quotes are safe). Trees with more
    than ``max_leaves`` leaves drop the leaf layer automatically (set
    ``include_leaves=False`` to force that).
    """
    tree = result.tree
    if tree is None:
        raise ParameterError("no hierarchy to render; run with hierarchy=True")
    include_leaves = include_leaves and tree.n_leaves <= max_leaves
    lines = ["digraph nucleus_hierarchy {",
             "  rankdir=BT;",
             "  node [fontsize=10];"]
    for node in range(tree.n_leaves, tree.n_nodes):
        vertices = nucleus_vertices(result.index, tree.leaves_under(node))
        label = _dot_quote(f"level {tree.level[node]:g}\n"
                           f"{len(vertices)} vertices"
                           ).replace("\n", "\\n")
        lines.append(f'  n{node} [shape=box, label={label}];')
    if include_leaves:
        for leaf in range(tree.n_leaves):
            if leaf_labels is not None and leaf in leaf_labels:
                text = leaf_labels[leaf]
            else:
                text = ("{" + ",".join(map(str, result.index.clique_of(leaf)))
                        + "}")
            lines.append(f'  n{leaf} [shape=ellipse, '
                         f'label={_dot_quote(text)}];')
    for node in range(tree.n_nodes):
        par = tree.parent[node]
        if par == NO_PARENT:
            continue
        if node < tree.n_leaves and not include_leaves:
            continue
        lines.append(f"  n{node} -> n{par};")
    lines.append("}")
    return "\n".join(lines)


def nuclei_to_rows(result: NucleusDecomposition,
                   min_vertices: int = 2) -> List[Dict]:
    """Flat per-nucleus rows (for CSV/spreadsheet export)."""
    tree = result.tree
    if tree is None:
        raise ParameterError("no hierarchy; run with hierarchy=True")
    rows = []
    for node in range(tree.n_leaves, tree.n_nodes):
        leaves = tree.leaves_under(node)
        vertices = sorted(nucleus_vertices(result.index, leaves))
        if len(vertices) < min_vertices:
            continue
        rows.append({
            "node": node,
            "level": tree.level[node],
            "n_vertices": len(vertices),
            "n_r_cliques": len(leaves),
            "density": edge_density(result.graph, vertices),
            "vertices": vertices,
        })
    rows.sort(key=lambda row: (-row["level"], -row["n_vertices"]))
    return rows
