"""Immutable undirected simple graph in CSR-like form.

The whole library operates on :class:`Graph`: vertices are ``0 .. n-1``,
adjacency lists are sorted tuples, and the structure is immutable after
construction (peeling algorithms remove *r-cliques*, never graph vertices,
so the underlying graph never changes during a decomposition -- see
DESIGN.md Section 5).

Construction normalizes input edges: direction is ignored, duplicates are
merged, and self-loops are rejected (the nucleus problem is defined on
simple graphs, Section 3 of the paper).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from ..errors import GraphFormatError

Edge = Tuple[int, int]


class Graph:
    """An undirected simple graph with sorted adjacency lists."""

    __slots__ = ("n", "m", "_adj", "_adj_sets", "name")

    def __init__(self, n: int, edges: Iterable[Edge], name: str = "") -> None:
        if n < 0:
            raise GraphFormatError(f"vertex count must be >= 0, got {n}")
        self.n = n
        self.name = name
        seen: set = set()
        adj: List[List[int]] = [[] for _ in range(n)]
        for u, v in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise GraphFormatError(
                    f"edge ({u}, {v}) out of range for {n} vertices")
            if u == v:
                raise GraphFormatError(f"self-loop at vertex {u}")
            key = (u, v) if u < v else (v, u)
            if key in seen:
                continue
            seen.add(key)
            adj[u].append(v)
            adj[v].append(u)
        self._adj: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(nbrs)) for nbrs in adj)
        self._adj_sets: Tuple[FrozenSet[int], ...] = tuple(
            frozenset(nbrs) for nbrs in self._adj)
        self.m = len(seen)

    # -- construction helpers ---------------------------------------------

    @classmethod
    def from_edges(cls, edges: Iterable[Edge], n: int = 0,
                   name: str = "") -> "Graph":
        """Build a graph, inferring ``n`` from the maximum endpoint if 0."""
        edge_list = list(edges)
        if n == 0:
            n = 1 + max((max(u, v) for u, v in edge_list), default=-1)
        return cls(n, edge_list, name=name)

    @classmethod
    def empty(cls, n: int = 0, name: str = "") -> "Graph":
        return cls(n, [], name=name)

    @classmethod
    def complete(cls, n: int, name: str = "") -> "Graph":
        """The complete graph K_n."""
        return cls(n, [(u, v) for u in range(n) for v in range(u + 1, n)],
                   name=name or f"K{n}")

    # -- queries ------------------------------------------------------------

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Sorted neighbors of ``v``."""
        return self._adj[v]

    def neighbor_set(self, v: int) -> FrozenSet[int]:
        """Neighbors of ``v`` as a frozenset (O(1) membership)."""
        return self._adj_sets[v]

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    def degrees(self) -> List[int]:
        return [len(nbrs) for nbrs in self._adj]

    def has_edge(self, u: int, v: int) -> bool:
        if not (0 <= u < self.n and 0 <= v < self.n):
            return False
        return v in self._adj_sets[u]

    def edges(self) -> Iterable[Edge]:
        """All edges as (u, v) with u < v, in lexicographic order."""
        for u in range(self.n):
            for v in self._adj[u]:
                if u < v:
                    yield (u, v)

    def vertices(self) -> range:
        return range(self.n)

    def max_degree(self) -> int:
        return max((len(nbrs) for nbrs in self._adj), default=0)

    def is_clique(self, vertices: Sequence[int]) -> bool:
        """Whether the given vertices are pairwise adjacent."""
        vs = list(vertices)
        for i, u in enumerate(vs):
            nbrs = self._adj_sets[u]
            for v in vs[i + 1:]:
                if v not in nbrs:
                    return False
        return True

    # -- derived graphs ------------------------------------------------------

    def induced_subgraph(self, vertices: Iterable[int]) -> Tuple["Graph", Dict[int, int]]:
        """Subgraph induced by ``vertices``; returns (graph, old->new map)."""
        keep = sorted(set(vertices))
        remap = {v: i for i, v in enumerate(keep)}
        edges = [
            (remap[u], remap[v]) for u in keep for v in self._adj[u]
            if u < v and v in remap
        ]
        return Graph(len(keep), edges, name=f"{self.name}[sub]"), remap

    def relabeled(self, permutation: Sequence[int]) -> "Graph":
        """Graph with vertex ``v`` renamed ``permutation[v]``."""
        if sorted(permutation) != list(range(self.n)):
            raise GraphFormatError("relabeling must be a permutation of vertices")
        return Graph(self.n,
                     [(permutation[u], permutation[v]) for u, v in self.edges()],
                     name=self.name)

    # -- misc ------------------------------------------------------------

    def density(self) -> float:
        """Edge density ``m / C(n, 2)`` (1.0 for cliques, 0 for n < 2)."""
        if self.n < 2:
            return 0.0
        return self.m / (self.n * (self.n - 1) / 2)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self.n == other.n and self._adj == other._adj

    def __hash__(self) -> int:
        return hash((self.n, self._adj))

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"Graph(n={self.n}, m={self.m}{label})"


def union_disjoint(graphs: Sequence[Graph], name: str = "") -> Graph:
    """Disjoint union of graphs (vertex ids shifted)."""
    edges: List[Edge] = []
    offset = 0
    for g in graphs:
        edges.extend((u + offset, v + offset) for u, v in g.edges())
        offset += g.n
    return Graph(offset, edges, name=name or "union")


def overlay(n: int, *edge_groups: Iterable[Edge], name: str = "") -> Graph:
    """Graph on ``n`` vertices from several edge collections (deduplicated)."""
    edges: List[Edge] = []
    for group in edge_groups:
        edges.extend(group)
    return Graph(n, edges, name=name)
