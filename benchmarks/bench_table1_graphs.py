"""Table 1: input graphs.

Prints the paper's Table 1 (SNAP graph sizes) side by side with the
synthetic stand-ins actually used by this reproduction, plus the clique
statistics that drive the decomposition workloads.
"""

from __future__ import annotations

from repro.analysis.reporting import banner, format_table
from repro.cliques import count_cliques
from repro.graphs.datasets import DATASET_NAMES, dataset_spec, table1_rows
from repro.graphs.orientation import arb_orient

from bench_common import BENCH_SCALE, kernel_graph


def build_report(scale: float = BENCH_SCALE) -> str:
    rows = []
    for name, paper_n, paper_m, n, m in table1_rows(scale=scale):
        spec = dataset_spec(name)
        g = spec.build(scale)
        orientation = arb_orient(g)
        triangles = count_cliques(orientation, 3)
        rows.append((name, paper_n, paper_m, n, m, triangles,
                     orientation.max_out_degree))
    table = format_table(
        ("graph", "paper n", "paper m", "stand-in n", "stand-in m",
         "triangles", "max outdeg"),
        rows,
        title="Table 1: input graphs (paper SNAP sizes vs synthetic stand-ins)")
    return banner("Table 1") + "\n" + table


def test_table1_report(capsys):
    report = build_report()
    print(report)
    # Structural expectations mirroring the paper's table:
    rows = table1_rows(scale=BENCH_SCALE)
    names = [row[0] for row in rows]
    assert names == list(DATASET_NAMES)
    # friendster is the largest stand-in by vertices, as in the paper.
    largest = max(rows, key=lambda row: row[3])
    assert largest[0] == "friendster"


def test_benchmark_dataset_load(benchmark):
    benchmark(lambda: kernel_graph("dblp"))


if __name__ == "__main__":
    print(build_report())
