"""Stdlib HTTP front end for :class:`~repro.service.core.DecompositionService`.

A ``ThreadingHTTPServer`` (one thread per connection, no dependencies)
exposing the service's endpoints as JSON-over-HTTP:

===========================  ==============================================
``GET  /health``             liveness probe
``GET  /stats``              per-endpoint latency + cache hit-rate counters
``GET  /artifacts``          registered artifacts with metadata and stats
``POST /community``          ``{"vertices": [...], "min_level": 1.0}``
``POST /membership``         ``{"vertex": 3}``
``POST /strongest_community``  ``{"vertex": 3, "min_vertices": 2}``
``POST /top_k_densest``      ``{"k": 10, "min_vertices": 3}``
``POST /coreness``           ``{"clique": [0, 1]}``
``POST /batch``              ``{"queries": [{"op": ..., ...}, ...]}``
===========================  ==============================================

Every request body and response is JSON. Multi-artifact deployments pass
``"artifact": "<name>"`` per query. Errors are structured:
``{"error": {"type", "message", "status"}}`` with the matching HTTP
status code; inside a batch, per-query errors are reported in place with
status 200 for the envelope.

:func:`http_query` is the matching client helper (used by
``repro query --url``).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Sequence, Tuple
from urllib.request import Request, urlopen

from ..errors import ReproError, ServiceError
from .core import DecompositionService

#: Cap on accepted request bodies (a batch of ~100k small queries).
MAX_BODY_BYTES = 16 << 20


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one DecompositionService."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int],
                 service: DecompositionService) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.service = service


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests into the service; JSON in, JSON out."""

    server: ServiceHTTPServer
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        pass  # queries are metered in service.stats(), not stderr

    def _respond(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _fail(self, exc: Exception, status: Optional[int] = None) -> None:
        status = status if status is not None else getattr(exc, "status", 400)
        self._respond(status, {"error": {"type": type(exc).__name__,
                                         "message": str(exc),
                                         "status": status}})

    def _read_json(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ServiceError(
                f"request body too large ({length} > {MAX_BODY_BYTES})",
                status=413)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            doc = json.loads(raw.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}")
        if not isinstance(doc, dict):
            raise ServiceError("request body must be a JSON object")
        return doc

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        service = self.server.service
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path in ("/", "/health"):
                self._respond(200, {"ok": True,
                                    "artifacts": service.artifact_names()})
            elif path == "/stats":
                self._respond(200, service.stats())
            elif path == "/artifacts":
                self._respond(200, {"artifacts": service.artifact_info()})
            else:
                self._fail(ServiceError(f"no such endpoint {path!r}",
                                        status=404))
        except ReproError as exc:
            self._fail(exc)

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        service = self.server.service
        op = self.path.split("?", 1)[0].strip("/")
        try:
            params = self._read_json()
            if op == "batch":
                queries = params.get("queries")
                if not isinstance(queries, list):
                    raise ServiceError(
                        'batch body must be {"queries": [...]}')
                self._respond(200,
                              {"results": service.batch(queries),
                               "n": len(queries)})
            else:
                self._respond(200, service.query(op, params))
        except ReproError as exc:
            self._fail(exc)
        except Exception as exc:  # never leak a stack trace as HTML
            self._fail(exc, status=500)


def make_server(artifacts: Dict[str, str], host: str = "127.0.0.1",
                port: int = 0,
                cache_bytes: Optional[int] = None) -> ServiceHTTPServer:
    """Build a server over ``{name: artifact_path}`` (port 0 = ephemeral)."""
    kwargs = {} if cache_bytes is None else {"cache_bytes": cache_bytes}
    service = DecompositionService(artifacts, **kwargs)
    return ServiceHTTPServer((host, port), service)


def serve_background(artifacts: Dict[str, str], host: str = "127.0.0.1",
                     port: int = 0, cache_bytes: Optional[int] = None,
                     ) -> Tuple[ServiceHTTPServer, threading.Thread]:
    """Start a server on a daemon thread; returns (server, thread).

    The test suite and embedding callers use this to get a live endpoint
    without blocking; call ``server.shutdown()`` to stop.
    """
    server = make_server(artifacts, host=host, port=port,
                         cache_bytes=cache_bytes)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-service", daemon=True)
    thread.start()
    return server, thread


# -- client helper -----------------------------------------------------------

def http_query(url: str, op: str, params: Optional[Dict[str, Any]] = None,
               timeout: float = 30.0) -> Dict[str, Any]:
    """POST one query (or GET an introspection path) to a running server.

    ``op`` of ``health`` / ``stats`` / ``artifacts`` issues a GET;
    anything else POSTs ``params`` to ``/<op>``. Returns the decoded
    JSON payload; raises :class:`ServiceError` carrying the server's
    structured error for non-2xx responses.
    """
    from urllib.error import HTTPError
    url = url.rstrip("/")
    try:
        if op in ("health", "stats", "artifacts"):
            request = Request(f"{url}/{op}")
        else:
            body = json.dumps(params or {}).encode("utf-8")
            request = Request(f"{url}/{op}", data=body,
                              headers={"Content-Type": "application/json"})
        with urlopen(request, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except HTTPError as exc:
        try:
            payload = json.loads(exc.read().decode("utf-8"))
            message = payload.get("error", {}).get("message", str(exc))
        except Exception:
            message = str(exc)
        raise ServiceError(message, status=exc.code)


def http_batch(url: str, queries: Sequence[Dict[str, Any]],
               timeout: float = 60.0) -> List[Dict[str, Any]]:
    """POST a batch; returns the per-query result list."""
    payload = http_query(url, "batch", {"queries": list(queries)},
                         timeout=timeout)
    return payload["results"]
