"""The user-facing decomposition result object.

:class:`NucleusDecomposition` bundles everything a downstream user needs
from one (r, s) nucleus decomposition run: the core number (or estimate)
of every r-clique, the hierarchy tree, the clique index that maps ids back
to vertex tuples, and the run's statistics (peeling rounds, link/unite
counts, metered work/span, timings).

Convenience queries operate in vertex-space so callers never have to touch
r-clique ids: ``core_of((u, v))``, ``nuclei_at(c)`` as vertex sets, the
densest nucleus, and simulated parallel running times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..cliques.index import CliqueIndex
from ..errors import ParameterError
from ..graphs.graph import Graph
from ..parallel.counters import WorkSpanSnapshot
from ..parallel.runtime import (PAPER_MACHINE, MachineModel,
                                self_relative_speedup, simulated_time)
from .nucleus import CorenessResult
from .tree import HierarchyTree


@dataclass
class NucleusDecomposition:
    """The complete result of an (r, s) nucleus decomposition."""

    graph: Graph
    r: int
    s: int
    method: str
    index: CliqueIndex
    coreness: CorenessResult
    tree: Optional[HierarchyTree]
    stats: Dict[str, float] = field(default_factory=dict)
    seconds_total: float = 0.0
    seconds_prepare: float = 0.0
    approx_delta: Optional[float] = None

    # -- basic accessors -------------------------------------------------

    @property
    def core(self) -> List[float]:
        """Core number (or estimate) per r-clique id."""
        return self.coreness.core

    @property
    def n_r(self) -> int:
        return self.coreness.n_r

    @property
    def n_s(self) -> int:
        return self.coreness.n_s

    @property
    def max_core(self) -> float:
        return self.coreness.k_max

    @property
    def rho(self) -> int:
        """Number of peeling rounds (the peeling complexity proxy)."""
        return self.coreness.rho

    @property
    def is_approximate(self) -> bool:
        return self.approx_delta is not None

    @property
    def work_span(self) -> WorkSpanSnapshot:
        return self.coreness.work_span

    def core_of(self, clique: Sequence[int]) -> float:
        """Core number of the r-clique with the given vertices."""
        if len(clique) != self.r:
            raise ParameterError(
                f"expected an r-clique of {self.r} vertices, got {len(clique)}")
        return self.core[self.index.id_of(clique)]

    def coreness_by_clique(self) -> Dict[Tuple[int, ...], float]:
        """Map canonical r-clique tuple -> core number."""
        return {self.index.clique_of(rid): self.core[rid]
                for rid in range(self.n_r)}

    # -- hierarchy queries --------------------------------------------------

    def _require_tree(self) -> HierarchyTree:
        if self.tree is None:
            raise ParameterError(
                "this decomposition was run coreness-only (no hierarchy); "
                "re-run with hierarchy=True")
        return self.tree

    def nuclei_at(self, c: float, as_vertices: bool = True) -> List[List[int]]:
        """All ``c``-(r, s) nuclei, as sorted vertex lists (or r-clique ids).

        Cutting the hierarchy -- the cheap operation Figure 10 (right)
        advertises.
        """
        tree = self._require_tree()
        groups = tree.nuclei_at(c)
        if not as_vertices:
            return groups
        out: List[List[int]] = []
        for leaf_ids in groups:
            vertices: Set[int] = set()
            for rid in leaf_ids:
                vertices.update(self.index.clique_of(rid))
            out.append(sorted(vertices))
        return out

    def nucleus_of(self, clique: Sequence[int], c: float,
                   as_vertices: bool = True) -> Optional[List[int]]:
        """The ``c``-nucleus containing the given r-clique, or ``None``."""
        tree = self._require_tree()
        leaf_ids = tree.nucleus_of(self.index.id_of(clique), c)
        if leaf_ids is None:
            return None
        if not as_vertices:
            return leaf_ids
        vertices: Set[int] = set()
        for rid in leaf_ids:
            vertices.update(self.index.clique_of(rid))
        return sorted(vertices)

    def hierarchy_levels(self) -> List[float]:
        """Distinct positive hierarchy levels, descending."""
        return self._require_tree().distinct_levels()

    def extract_subgraph(self, vertices: Sequence[int]):
        """Induced subgraph of a nucleus (for drill-down analysis).

        Returns ``(graph, old_to_new)``; the subgraph can itself be
        decomposed again, e.g. with different (r, s), to zoom into one
        community -- the exploration loop the hierarchy enables.
        """
        return self.graph.induced_subgraph(vertices)

    def densest_nucleus(self, min_vertices: int = 3):
        """The densest nucleus in the hierarchy (see analysis.density)."""
        from ..analysis.density import densest_nucleus
        return densest_nucleus(self.graph, self.index, self._require_tree(),
                               min_vertices=min_vertices)

    def density_profile(self, min_vertices: int = 2):
        """Size/density rows for every nucleus (Figure 10 left data)."""
        from ..analysis.density import density_profile
        return density_profile(self.graph, self.index, self._require_tree(),
                               min_vertices=min_vertices)

    # -- simulated parallel performance -----------------------------------

    def simulated_seconds(self, threads: int,
                          machine: MachineModel = PAPER_MACHINE) -> float:
        """Predicted wall-clock on ``threads`` threads (Brent model)."""
        return simulated_time(self.work_span, threads, self.seconds_total,
                              machine)

    def speedup(self, threads: int,
                machine: MachineModel = PAPER_MACHINE) -> float:
        """Predicted self-relative speedup on ``threads`` threads."""
        return self_relative_speedup(self.work_span, threads, machine)

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        kind = (f"approximate (delta={self.approx_delta})"
                if self.is_approximate else "exact")
        tree_part = ""
        if self.tree is not None:
            tree_part = (f", hierarchy: {self.tree.n_internal} nuclei over "
                         f"{len(self.tree.distinct_levels())} levels")
        return (f"({self.r},{self.s}) nucleus decomposition of "
                f"{self.graph.name or 'graph'} (n={self.graph.n}, "
                f"m={self.graph.m}) via {self.method} [{kind}]: "
                f"{self.n_r} {self.r}-cliques, {self.n_s} {self.s}-cliques, "
                f"max core {self.max_core:g}, {self.rho} peeling rounds"
                f"{tree_part}.")

    def __repr__(self) -> str:
        return (f"NucleusDecomposition(r={self.r}, s={self.s}, "
                f"method={self.method!r}, n_r={self.n_r}, "
                f"max_core={self.max_core:g})")
