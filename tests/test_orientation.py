"""Unit + property tests for low out-degree orientations."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphFormatError
from repro.graphs.generators import erdos_renyi, planted_nuclei
from repro.graphs.graph import Graph
from repro.graphs.orientation import (Orientation, arb_orient,
                                      arboricity_upper_bound,
                                      degeneracy_order,
                                      parallel_orientation_order)
from repro.parallel.counters import WorkSpanCounter


def small_graphs():
    return st.sets(st.tuples(st.integers(0, 11), st.integers(0, 11)),
                   max_size=40).map(
        lambda pairs: Graph(12, [(u, v) for u, v in pairs if u != v]))


class TestDegeneracyOrder:
    def test_path(self):
        g = Graph(3, [(0, 1), (1, 2)])
        order, degeneracy = degeneracy_order(g)
        assert degeneracy == 1
        assert sorted(order) == [0, 1, 2]

    def test_clique_degeneracy(self):
        _, degeneracy = degeneracy_order(Graph.complete(6))
        assert degeneracy == 5

    def test_empty_graph(self):
        order, degeneracy = degeneracy_order(Graph.empty(4))
        assert degeneracy == 0
        assert sorted(order) == [0, 1, 2, 3]

    def test_matches_networkx(self):
        import networkx as nx
        g = erdos_renyi(60, 0.15, seed=9)
        _, degeneracy = degeneracy_order(g)
        nxg = nx.Graph(list(g.edges()))
        nxg.add_nodes_from(range(g.n))
        assert degeneracy == max(nx.core_number(nxg).values())

    @given(small_graphs())
    def test_order_is_permutation_with_valid_degeneracy(self, g):
        order, degeneracy = degeneracy_order(g)
        assert sorted(order) == list(range(g.n))
        # definition: when removed, each vertex has at most `degeneracy`
        # later neighbors
        position = {v: i for i, v in enumerate(order)}
        for v in range(g.n):
            later = sum(1 for u in g.neighbors(v) if position[u] > position[v])
            assert later <= degeneracy


class TestParallelOrientationOrder:
    def test_covers_all_vertices(self):
        g = erdos_renyi(50, 0.2, seed=4)
        order, rounds = parallel_orientation_order(g)
        assert sorted(order) == list(range(g.n))
        assert rounds >= 1

    def test_logarithmic_rounds(self):
        g = erdos_renyi(300, 0.05, seed=2)
        _, rounds = parallel_orientation_order(g)
        assert rounds <= 30  # O(log n) with a generous constant

    def test_bounded_out_degree(self):
        g = planted_nuclei([8, 8, 8], backbone_p=0.05, seed=1)
        orientation = Orientation(g, parallel_orientation_order(g)[0])
        _, degeneracy = degeneracy_order(g)
        # (2 + eps) * 2 * alpha bound, alpha <= degeneracy
        assert orientation.max_out_degree <= (2.5) * 2 * max(degeneracy, 1)

    def test_invalid_eps(self):
        with pytest.raises(GraphFormatError):
            parallel_orientation_order(Graph.empty(1), eps=0)


class TestOrientation:
    def test_out_neighbors_follow_rank(self):
        g = Graph(3, [(0, 1), (1, 2), (0, 2)])
        o = Orientation(g, [2, 0, 1])  # rank: 2 -> 0, 0 -> 1, 1 -> 2
        assert o.out_neighbors(2) == (0, 1)
        assert o.out_neighbors(0) == (1,)
        assert o.out_neighbors(1) == ()

    def test_each_edge_directed_once(self):
        g = erdos_renyi(30, 0.3, seed=1)
        o = arb_orient(g)
        directed = sum(o.out_degree(v) for v in range(g.n))
        assert directed == g.m

    def test_rejects_non_permutation(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(GraphFormatError):
            Orientation(g, [0, 0, 2])

    def test_out_degree_bounded_by_degeneracy(self):
        g = erdos_renyi(40, 0.25, seed=3)
        o = arb_orient(g, method="degeneracy")
        _, degeneracy = degeneracy_order(g)
        assert o.max_out_degree <= degeneracy


class TestArbOrient:
    def test_methods_produce_valid_orientations(self):
        g = erdos_renyi(30, 0.2, seed=5)
        for method in ("degeneracy", "parallel"):
            o = arb_orient(g, method=method)
            assert sum(o.out_degree(v) for v in range(g.n)) == g.m

    def test_counter_charged(self):
        c = WorkSpanCounter()
        arb_orient(erdos_renyi(30, 0.2, seed=5), counter=c)
        assert c.work > 0 and c.span > 0

    def test_unknown_method(self):
        with pytest.raises(GraphFormatError):
            arb_orient(Graph.empty(1), method="bogus")

    def test_arboricity_upper_bound_positive(self):
        assert arboricity_upper_bound(Graph.complete(5)) == 4
        assert arboricity_upper_bound(Graph.empty(3)) == 1
